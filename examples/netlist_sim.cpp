// Using the simulator substrate directly: parse a SPICE netlist (here a
// two-stage RC-loaded common-source amplifier with a subcircuit), solve the
// operating point, sweep the input DC transfer and run an AC analysis.
//
// Run:  ./build/examples/netlist_sim [netlist.sp]
// Without an argument the built-in demo netlist below is used.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/analysis/dc_sweep.hpp"
#include "spice/devices/mosfet.hpp"
#include "spice/measure.hpp"
#include "spice/netlist.hpp"
#include "util/mathx.hpp"
#include "util/text_table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace ypm;
using namespace ypm::spice;

namespace {

// Bias note: the PMOS load at vsg = 0.85 V sources ~29 uA; the 10u/1u NMOS
// matches that current near vgs ~ 0.69 V, which centres both stages in
// their high-gain region.
const char* demo_netlist = R"(.title two-stage common-source amplifier demo
* stage subcircuit: common-source NMOS with PMOS current-source load
.subckt csstage in out vdd bias
M1 out in 0 0 nmos W=10u L=1u
M2 out bias vdd vdd pmos W=60u L=2u
.ends

Vdd vdd 0 3.3
Vbias bias 0 2.45
Vin in 0 DC 0.69 AC 1
X1 in mid vdd bias csstage
Cc mid g2 10p
Rb g2 bias2 500k
Vb2 bias2 0 0.69
X2 g2 out vdd bias csstage
CL out 0 2p
.end
)";

} // namespace

int main(int argc, char** argv) {
    std::string text;
    if (argc > 1) {
        std::ifstream f(argv[1]);
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", argv[1]);
            return 1;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        text = ss.str();
    } else {
        text = demo_netlist;
    }

    ParsedNetlist parsed = parse_netlist(text);
    std::printf("netlist: %s\n", parsed.title.c_str());
    std::printf("devices: %zu, nodes: %zu\n\n", parsed.circuit.devices().size(),
                parsed.circuit.node_count());

    // Operating point.
    const DcSolver solver;
    const DcResult op = solver.solve(parsed.circuit);
    if (!op.converged) {
        std::fprintf(stderr, "operating point did not converge\n");
        return 1;
    }
    std::printf("operating point (%s, %zu Newton iterations):\n",
                op.method.c_str(), op.iterations);
    TextTable nodes({"node", "V"});
    for (std::size_t id = 1; id <= parsed.circuit.node_count(); ++id) {
        const auto name = parsed.circuit.node_name(static_cast<NodeId>(id));
        nodes.add_row({name, str::fmt_fixed(op.solution.voltage(static_cast<NodeId>(id)), 4)});
    }
    std::printf("%s", nodes.to_string().c_str());

    // Transistor bias report.
    std::printf("\ntransistor bias:\n");
    TextTable bias({"device", "region", "id (A)", "gm (S)"});
    for (const auto& dev : parsed.circuit.devices()) {
        const auto* m = dynamic_cast<const Mosfet*>(dev.get());
        if (m == nullptr) continue;
        const auto info = m->op_info(op.solution);
        bias.add_row({m->name(), to_string(info.region),
                      units::format_eng(info.id, 3), units::format_eng(info.gm(), 3)});
    }
    std::printf("%s", bias.to_string().c_str());

    // DC sweep of the input. The demo's second stage is AC-coupled, so the
    // DC transfer is observed at the first stage's output ("mid"); fall
    // back to "out" for user netlists without that node.
    if (parsed.circuit.find_device("vin") != nullptr) {
        const auto values = mathx::linspace(0.5, 0.9, 9);
        const auto sweep = run_dc_sweep(parsed.circuit, "vin", values);
        auto watch = parsed.circuit.find_node("mid");
        if (!watch) watch = parsed.circuit.find_node("out");
        if (watch) {
            std::printf("\nDC transfer V(%s) vs V(in):\n",
                        parsed.circuit.node_name(*watch).c_str());
            TextTable dc({"Vin", "V(watch)"});
            const auto vout = sweep.node_voltage(*watch);
            for (std::size_t i = 0; i < values.size(); ++i)
                dc.add_row({str::fmt_fixed(values[i], 3), str::fmt_fixed(vout[i], 4)});
            std::printf("%s", dc.to_string().c_str());
        }
    }

    // AC response in -> out.
    const auto in_node = parsed.circuit.find_node("in");
    const auto out_node = parsed.circuit.find_node("out");
    if (in_node && out_node) {
        const auto freqs = log_sweep(10.0, 1e9, 8);
        const AcResult ac = run_ac(parsed.circuit, op.solution, freqs);
        const auto h = ac.transfer(*out_node, *in_node);
        const auto metrics = bode_metrics(freqs, h);
        std::printf("\nAC: dc gain %.2f dB, f3db %sHz, unity %sHz, pm %.1f deg\n",
                    metrics.dc_gain_db, units::format_eng(metrics.f3db, 3).c_str(),
                    units::format_eng(metrics.unity_freq, 3).c_str(),
                    metrics.phase_margin_deg);
        std::printf("\nBode magnitude:\n");
        TextTable bode({"freq (Hz)", "gain (dB)"});
        const auto mag = magnitude_db(h);
        for (std::size_t i = 0; i < freqs.size(); i += 4)
            bode.add_row({units::format_eng(freqs[i], 3), str::fmt_fixed(mag[i], 2)});
        std::printf("%s", bode.to_string().c_str());
    }
    return 0;
}
