// The paper's section 4 design example, end to end, with reporting:
// symmetrical OTA, 8 designable parameters (Table 1 ranges), WBGA
// optimisation, Pareto extraction, per-point Monte Carlo variation model,
// artifact generation (including the Verilog-A module) and the Table 3/4
// yield-targeting walk-through.
//
// Run:  ./build/examples/ota_design [artifact_dir]
// Scale knobs: YPM_EX_POP / YPM_EX_GENS / YPM_EX_MC (defaults 60/30/100).

#include <cstdio>
#include <cstdlib>

#include "core/behav_model.hpp"
#include "core/flow.hpp"
#include "core/verify.hpp"
#include "util/text_table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace ypm;

namespace {
std::size_t env_or(const char* name, std::size_t fallback) {
    // Read once at startup on the main thread; nothing calls setenv, so
    // the getenv race clang-tidy guards against cannot occur.
    const char* v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    return v != nullptr && *v != '\0'
               ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
               : fallback;
}
} // namespace

int main(int argc, char** argv) {
    circuits::OtaConfig ota;
    core::FlowConfig cfg;
    cfg.ga.population = env_or("YPM_EX_POP", 60);
    cfg.ga.generations = env_or("YPM_EX_GENS", 30);
    cfg.mc_samples = env_or("YPM_EX_MC", 100);
    cfg.max_mc_points = 40;
    cfg.seed = 42;
    cfg.artifact_dir = argc > 1 ? argv[1] : "ota_design_artifacts";

    std::printf("== symmetrical OTA design example (paper section 4) ==\n");
    std::printf("designable parameters (paper Table 1):\n");
    for (const auto& spec : circuits::OtaSizing::parameter_specs())
        std::printf("  %-3s %sm - %sm\n", spec.name.c_str(),
                    units::format_eng(spec.lo).c_str(),
                    units::format_eng(spec.hi).c_str());

    const core::YieldFlow flow(ota, cfg);
    const core::FlowResult result = flow.run();

    std::printf("\noptimisation: %zu evaluations in %.1f s; front %zu points; "
                "MC %zu points x %zu samples in %.1f s\n",
                result.optimisation.evaluations, result.timings.moo_seconds,
                result.pareto_indices.size(), result.front.size(), cfg.mc_samples,
                result.timings.mc_seconds);

    // Table 2 analogue.
    TextTable t2({"Design", "Gain (dB)", "dGain (%)", "PM (deg)", "dPM (%)"});
    const std::size_t step = std::max<std::size_t>(1, result.front.size() / 10);
    for (std::size_t i = 0; i < result.front.size(); i += step) {
        const auto& p = result.front[i];
        t2.add_row({std::to_string(p.design_id), str::fmt_fixed(p.gain_db, 2),
                    str::fmt_fixed(p.dgain_pct, 2), str::fmt_fixed(p.pm_deg, 2),
                    str::fmt_fixed(p.dpm_pct, 2)});
    }
    std::printf("\nperformance & variation values (cf. paper Table 2):\n%s",
                t2.to_string().c_str());

    // Table 3 analogue: yield-targeted sizing at an interior spec.
    const core::BehaviouralModel model(result.front);
    const double req_gain =
        model.gain_min() + 0.45 * (model.gain_max() - model.gain_min());
    const double req_pm = model.pm_min() + 0.3 * (model.pm_max() - model.pm_min());
    const core::SizingResult sized = model.size_for_spec(req_gain, req_pm);
    TextTable t3({"Performance", "Required", "Variation (%)", "New performance"});
    t3.add_row({"Gain", "> " + str::fmt_fixed(req_gain, 2) + " dB",
                str::fmt_fixed(sized.variation_gain_pct, 2),
                str::fmt_fixed(sized.target_gain_db, 2) + " dB"});
    t3.add_row({"Phase margin", "> " + str::fmt_fixed(req_pm, 2) + " deg",
                str::fmt_fixed(sized.variation_pm_pct, 2),
                str::fmt_fixed(sized.target_pm_deg, 2) + " deg"});
    std::printf("\nyield targeting (cf. paper Table 3):\n%s", t3.to_string().c_str());

    // Table 4 analogue: verify the proposed sizing at transistor level.
    const circuits::OtaEvaluator evaluator(ota);
    const core::ModelVsTransistor cmp =
        core::compare_model_vs_transistor(evaluator, sized);
    TextTable t4({"Performance", "Transistor", "Behavioural", "% error"});
    t4.add_row({"Gain (dB)", str::fmt_fixed(cmp.transistor_gain_db, 2),
                str::fmt_fixed(cmp.model_gain_db, 2),
                str::fmt_fixed(cmp.gain_error_pct, 2)});
    t4.add_row({"PM (deg)", str::fmt_fixed(cmp.transistor_pm_deg, 2),
                str::fmt_fixed(cmp.model_pm_deg, 2),
                str::fmt_fixed(cmp.pm_error_pct, 2)});
    std::printf("\nmodel vs transistor (cf. paper Table 4):\n%s",
                t4.to_string().c_str());

    // 500-sample MC yield verification at the original requirement.
    const process::ProcessSampler sampler(ota.card, process::VariationSpec::c35());
    Rng rng(500);
    const core::YieldVerification v = core::verify_ota_yield(
        evaluator, sized.sizing, sampler, req_gain, req_pm, 500, rng);
    std::printf("\nMC yield verification: %.2f%% over %zu samples "
                "(95%% CI low %.2f%%)  [paper: 100%%]\n",
                v.yield.yield * 100.0, v.yield.samples, v.yield.ci_low * 100.0);

    std::printf("\nartifacts written to %s (tables + %s)\n",
                result.artifacts.dir.c_str(), result.artifacts.va_module.c_str());
    return 0;
}
