// Yield explorer: sweeps the required specification across the behavioural
// model's coverage and prints, for each requirement, the interpolated
// variation, the inflated target, whether the front can satisfy it and the
// transistor-verified margins. Useful for reading the performance/yield
// trade-off off the model interactively - the "what can this topology
// guarantee?" question the paper's flow is built to answer.
//
// Run:  ./build/examples/yield_explorer

#include <cstdio>

#include "core/behav_model.hpp"
#include "core/flow.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"

using namespace ypm;

int main() {
    circuits::OtaConfig ota;
    core::FlowConfig cfg;
    cfg.ga.population = 40;
    cfg.ga.generations = 20;
    cfg.mc_samples = 60;
    cfg.max_mc_points = 20;
    cfg.seed = 17;
    std::printf("building the model (this is the one-off investment the paper "
                "amortises)...\n");
    const core::FlowResult flow = core::YieldFlow(ota, cfg).run();
    const core::BehaviouralModel model(flow.front);
    std::printf("model coverage: gain [%.2f, %.2f] dB x pm [%.2f, %.2f] deg\n\n",
                model.gain_min(), model.gain_max(), model.pm_min(), model.pm_max());

    const circuits::OtaEvaluator evaluator(ota);
    TextTable t({"req gain", "req pm", "dGain%", "dPM%", "target gain",
                 "target pm", "feasible", "sim gain", "sim pm"});
    for (double tg : {0.15, 0.40, 0.65, 0.90}) {
        for (double tp : {0.15, 0.45, 0.75}) {
            const double req_gain =
                model.gain_min() + tg * (model.gain_max() - model.gain_min());
            const double req_pm =
                model.pm_min() + tp * (model.pm_max() - model.pm_min());
            const core::SizingResult r = model.size_for_spec(req_gain, req_pm);

            std::string sim_gain = "-", sim_pm = "-";
            if (r.feasible) {
                const auto perf = evaluator.measure(r.sizing);
                if (perf.valid) {
                    sim_gain = str::fmt_fixed(perf.gain_db, 2);
                    sim_pm = str::fmt_fixed(perf.pm_deg, 2);
                }
            }
            t.add_row({str::fmt_fixed(req_gain, 2), str::fmt_fixed(req_pm, 2),
                       str::fmt_fixed(r.variation_gain_pct, 2),
                       str::fmt_fixed(r.variation_pm_pct, 2),
                       str::fmt_fixed(r.target_gain_db, 2),
                       str::fmt_fixed(r.target_pm_deg, 2),
                       r.feasible ? "yes" : "no", sim_gain, sim_pm});
        }
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("\n'feasible = no' rows ask for gain AND pm beyond the front - "
                "the model refuses instead of extrapolating (paper's \"3E\" "
                "no-extrapolation choice).\n");
    return 0;
}
