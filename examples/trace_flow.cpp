// Traced flow run: a scaled-down Fig. 3 pipeline (WBGA -> Monte Carlo ->
// yield certification -> tables) with span tracing enabled, producing the
// Chrome trace-event JSON artifact the observability stack is built
// around. Open the file in https://ui.perfetto.dev (or chrome://tracing)
// to see the flow steps, engine batches and kernel chunks on a shared
// timeline; scripts/check_trace.py validates the same artifact in CI.
//
// Run:  ./build/example_trace_flow [trace.json]

#include <cstdio>

#include "core/flow.hpp"
#include "mc/yield.hpp"

using namespace ypm;

int main(int argc, char** argv) {
    const std::string trace_path = argc > 1 ? argv[1] : "ypm_trace.json";

    circuits::OtaConfig ota;
    core::FlowConfig cfg;
    cfg.ga.population = 16;
    cfg.ga.generations = 8;
    cfg.mc_samples = 32;
    cfg.max_mc_points = 8;
    cfg.seed = 2008; // DATE'08
    // Interior specs most designs meet, tiny per-point budgets: enough to
    // exercise the yield stage (pilot spans, chunk instants) quickly.
    cfg.yield_specs = {mc::Spec::at_least("gain_db", 30.0),
                       mc::Spec::at_least("pm_deg", 15.0)};
    cfg.yield_sequential.pilot_samples = 16;
    cfg.yield_sequential.chunk_samples = 16;
    cfg.yield_sequential.max_samples = 32;
    cfg.yield_sequential.min_samples = 16;
    cfg.trace_path = trace_path;

    std::printf("running the traced flow (population %zu x %zu, %zu MC "
                "samples/point)...\n",
                cfg.ga.population, cfg.ga.generations, cfg.mc_samples);
    const core::FlowResult result = core::YieldFlow(ota, cfg).run();

    const auto& eng = result.timings.engine;
    std::printf("\nfront: %zu points, %zu with a yield certificate\n",
                result.front.size(), result.yields.size());
    std::printf("engine: %zu requests, %zu evaluated, %zu cached, %zu failed\n",
                eng.requests, eng.evaluations, eng.cache_hits, eng.failures);
    std::printf("\ntrace written to %s - open it in https://ui.perfetto.dev\n",
                trace_path.c_str());
    return 0;
}
