// Quickstart: the whole paper flow in ~60 lines.
//
// Builds a combined performance + variation behavioural model for the
// symmetrical OTA (scaled-down optimisation so it finishes in seconds),
// then asks it for a sizing that meets "gain >= G, PM >= P" with maximum
// yield, and verifies the answer against the transistor-level simulator.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "core/behav_model.hpp"
#include "core/flow.hpp"
#include "core/verify.hpp"

using namespace ypm;

int main() {
    // 1. Configure the flow (paper scale is 100 x 100 with 200 MC samples;
    //    this demo uses a lighter budget).
    circuits::OtaConfig ota;          // 0.35 um card, 20 uA tail, 10 pF load
    core::FlowConfig cfg;
    cfg.ga.population = 30;
    cfg.ga.generations = 15;
    cfg.mc_samples = 60;
    cfg.max_mc_points = 15;
    cfg.seed = 7;

    // 2. Run: WBGA optimisation -> Pareto front -> per-point Monte Carlo.
    std::printf("running the yield flow (WBGA %zux%zu + MC %zu/point)...\n",
                cfg.ga.population, cfg.ga.generations, cfg.mc_samples);
    const core::YieldFlow flow(ota, cfg);
    const core::FlowResult result = flow.run();
    std::printf("done in %.1f s: %zu evaluations, %zu Pareto points\n\n",
                result.timings.total_seconds, result.optimisation.evaluations,
                result.pareto_indices.size());

    // 3. Build the behavioural model and size for a spec.
    const core::BehaviouralModel model(result.front);
    const double req_gain =
        model.gain_min() + 0.4 * (model.gain_max() - model.gain_min());
    const double req_pm =
        model.pm_min() + 0.25 * (model.pm_max() - model.pm_min());
    const core::SizingResult sized = model.size_for_spec(req_gain, req_pm);

    std::printf("spec:       gain >= %.2f dB, pm >= %.2f deg\n", req_gain, req_pm);
    std::printf("variation:  dGain %.2f%%, dPM %.2f%% (interpolated)\n",
                sized.variation_gain_pct, sized.variation_pm_pct);
    std::printf("target:     gain %.2f dB, pm %.2f deg (inflated for yield)\n",
                sized.target_gain_db, sized.target_pm_deg);
    std::printf("sizing:     W1 %.1fu L1 %.2fu W2 %.1fu L2 %.2fu\n",
                sized.sizing.w1 * 1e6, sized.sizing.l1 * 1e6,
                sized.sizing.w2 * 1e6, sized.sizing.l2 * 1e6);

    // 4. Verify at transistor level (paper Table 4).
    const circuits::OtaEvaluator evaluator(ota);
    const core::ModelVsTransistor cmp =
        core::compare_model_vs_transistor(evaluator, sized);
    std::printf("\nverification against the transistor-level simulator:\n");
    std::printf("  gain: model %.2f dB vs simulated %.2f dB (%.2f%% error)\n",
                cmp.model_gain_db, cmp.transistor_gain_db, cmp.gain_error_pct);
    std::printf("  pm:   model %.2f deg vs simulated %.2f deg (%.2f%% error)\n",
                cmp.model_pm_deg, cmp.transistor_pm_deg, cmp.pm_error_pct);
    return 0;
}
