// The paper's section 5 application: designing a 2nd-order low-pass filter
// hierarchically with the OTA behavioural macromodel.
//
// The OTA spec is gain >= 50 dB and PM >= 60 deg (paper values). A small
// flow run builds the OTA model; the macromodel then drives a Sallen-Key
// filter whose capacitors C1-C3 are optimised by a 30x40 WBGA (paper's
// budget); the result is checked against the Fig. 10 anti-aliasing mask and
// Monte Carlo yield is verified.
//
// Run:  ./build/examples/filter_design

#include <cstdio>

#include "circuits/filter.hpp"
#include "circuits/filter_problem.hpp"
#include "core/behav_model.hpp"
#include "core/flow.hpp"
#include "moo/wbga.hpp"
#include "util/text_table.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

using namespace ypm;

int main() {
    // 1. OTA behavioural model from a light flow run.
    std::printf("building the OTA behavioural model...\n");
    circuits::OtaConfig ota;
    core::FlowConfig cfg;
    cfg.ga.population = 40;
    cfg.ga.generations = 20;
    cfg.mc_samples = 60;
    cfg.max_mc_points = 20;
    cfg.seed = 5;
    const core::FlowResult flow = core::YieldFlow(ota, cfg).run();
    const core::BehaviouralModel model(flow.front);

    // 2. Size the OTA. The paper asks gain >= 50 dB, PM >= 60 deg at its
    //    front's knee; on this topology gain correlates with bandwidth and
    //    the knee sits near 60 dB, so the equivalent spec is 60/60 (the
    //    full-scale bench_fig9to11_filter run uses 50/60 on a denser front
    //    and lands on the same kind of design).
    double req_gain = 60.0, req_pm = 60.0;
    if (req_gain < model.gain_min() || req_gain > model.gain_max())
        req_gain = model.gain_min() + 0.4 * (model.gain_max() - model.gain_min());
    if (req_pm < model.pm_min() || req_pm > model.pm_max())
        req_pm = model.pm_min() + 0.3 * (model.pm_max() - model.pm_min());
    const core::SizingResult sized = model.size_for_spec(req_gain, req_pm);
    std::printf("OTA: gain >= %.1f dB, pm >= %.1f deg -> macromodel %.2f dB, "
                "f3db %sHz\n",
                req_gain, req_pm, sized.predicted_gain_db,
                units::format_eng(sized.f3db, 3).c_str());

    // 3. Optimise the filter capacitors with the macromodel in the loop
    //    (paper: 30 individuals, 40 generations).
    circuits::FilterConfig fcfg;
    fcfg.ota_spec = model.macromodel_spec(sized);
    fcfg.ota_sizing = sized.sizing;
    const circuits::FilterSpecMask mask;
    circuits::FilterProblem problem{fcfg, mask};
    moo::WbgaConfig ga;
    ga.population = 30;
    ga.generations = 40;
    Rng rng(11);
    const auto result = moo::Wbga(problem, ga).run(rng);

    const circuits::FilterEvaluator evaluator{fcfg, mask};
    double best_err = 1e18;
    circuits::FilterSizing best{};
    for (const auto& e : result.archive) {
        if (moo::evaluation_failed(e.objectives)) continue;
        const auto s = circuits::FilterSizing::from_vector(e.params);
        const auto perf = evaluator.measure(s, circuits::OtaModelKind::behavioural);
        if (!perf.meets(mask)) continue;
        if (e.objectives[0] < best_err) {
            best_err = e.objectives[0];
            best = s;
        }
    }
    std::printf("\nchosen capacitors: C1=%sF  C2=%sF  C3=%sF\n",
                units::format_eng(best.c1, 3).c_str(),
                units::format_eng(best.c2, 3).c_str(),
                units::format_eng(best.c3, 3).c_str());

    // 4. Report the response against the mask, macromodel vs transistor.
    const auto pb = evaluator.measure(best, circuits::OtaModelKind::behavioural);
    const auto pt = evaluator.measure(best, circuits::OtaModelKind::transistor);
    TextTable t({"metric", "mask", "behavioural", "transistor"});
    t.add_row({"cutoff fc", units::format_eng(mask.fc_target, 3) + "Hz",
               units::format_eng(pb.fc, 3) + "Hz", units::format_eng(pt.fc, 3) + "Hz"});
    t.add_row({"passband dev (dB)", "<= " + str::fmt_fixed(mask.passband_ripple_db, 1),
               str::fmt_fixed(pb.worst_passband_dev_db, 2),
               str::fmt_fixed(pt.worst_passband_dev_db, 2)});
    t.add_row({"stopband atten (dB)", ">= " + str::fmt_fixed(mask.min_stop_atten_db, 1),
               str::fmt_fixed(pb.stopband_atten_db, 2),
               str::fmt_fixed(pt.stopband_atten_db, 2)});
    t.add_row({"meets mask", "yes", pb.meets(mask) ? "yes" : "no",
               pt.meets(mask) ? "yes" : "no"});
    std::printf("%s", t.to_string().c_str());

    // 5. Monte Carlo yield with the model's own variation numbers.
    circuits::FilterVariation var;
    var.gain_delta_pct = sized.variation_gain_pct;
    var.pm_delta_pct = sized.variation_pm_pct;
    Rng mc_rng(500);
    const auto yield = filter_yield_behavioural(evaluator, best, var, 500, mc_rng);
    std::printf("\nfilter MC yield: %.2f%% over %zu samples [paper: 100%%]\n",
                yield.yield * 100.0, yield.samples);
    return 0;
}
