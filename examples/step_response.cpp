// Transient analysis demo: step response of the behavioural OTA buffer and
// of the full 2nd-order low-pass filter (macromodel level), plus a square
// wave through the filter - the time-domain view of the hierarchy the flow
// builds.
//
// Run:  ./build/examples/step_response

#include <cstdio>

#include "circuits/filter.hpp"
#include "spice/analysis/transient.hpp"
#include "spice/devices/capacitor.hpp"
#include "spice/devices/sources.hpp"
#include "util/strings.hpp"
#include "util/text_table.hpp"
#include "util/units.hpp"

using namespace ypm;
using namespace ypm::spice;

namespace {

/// Render a quick ASCII sparkline of a waveform.
std::string sparkline(const std::vector<double>& v) {
    static const char* levels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
    double lo = v.front(), hi = v.front();
    for (double x : v) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    const double span = hi - lo > 0 ? hi - lo : 1.0;
    std::string out;
    const std::size_t step = std::max<std::size_t>(1, v.size() / 72);
    for (std::size_t i = 0; i < v.size(); i += step) {
        const auto idx = static_cast<std::size_t>((v[i] - lo) / span * 7.0);
        out += levels[std::min<std::size_t>(idx, 7)];
    }
    return out;
}

} // namespace

int main() {
    // 1. Behavioural OTA buffer: small step, single-pole settling.
    {
        Circuit c;
        const NodeId in = c.node("in");
        const NodeId out = c.node("out");
        auto& vs = c.add<VoltageSource>("vin", in, ground, 1.65);
        PulseWave p;
        p.v1 = 1.65;
        p.v2 = 1.75;
        p.delay = 5e-6;
        p.rise = 10e-9;
        p.width = 1.0;
        vs.set_pulse(p);
        circuits::FilterConfig fcfg; // carries the default macromodel spec
        c.add<va::BehaviouralOta>("ota", in, out, out, fcfg.ota_spec);
        c.add<Capacitor>("cl", out, ground, 10e-12);

        TranOptions opt;
        opt.tstop = 30e-6;
        opt.dt = 20e-9;
        const TranResult res = run_transient(c, opt);
        const auto v = res.node_waveform(out);
        std::printf("OTA buffer step (1.65 -> 1.75 V at t=5us):\n  %s\n",
                    sparkline(v).c_str());
        std::printf("  start %.4f V, end %.4f V over %zu points\n\n", v.front(),
                    v.back(), v.size());
    }

    // 2. Filter step response: 2nd-order settling at the macromodel level.
    {
        Circuit ckt = circuits::build_filter(circuits::FilterSizing{},
                                             circuits::FilterConfig{},
                                             circuits::OtaModelKind::behavioural);
        auto* vs = dynamic_cast<VoltageSource*>(ckt.find_device("vsrc"));
        PulseWave p;
        p.v1 = 1.65;
        p.v2 = 1.75;
        p.delay = 5e-6;
        p.rise = 10e-9;
        p.width = 1.0;
        vs->set_pulse(p);

        TranOptions opt;
        opt.tstop = 60e-6;
        opt.dt = 25e-9;
        const TranResult res = run_transient(ckt, opt);
        const auto v = res.node_waveform(*ckt.find_node("vout"));
        std::printf("filter step response (fc ~ 100 kHz):\n  %s\n",
                    sparkline(v).c_str());

        // 10-90 % rise time: for a 2nd-order Butterworth ~ 0.34/fc ~ 3.4 us.
        const double v0 = v.front();
        const double v1 = v.back();
        double t10 = 0.0, t90 = 0.0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            const double frac = (v[i] - v0) / (v1 - v0);
            if (t10 == 0.0 && frac >= 0.1) t10 = res.times[i];
            if (t90 == 0.0 && frac >= 0.9) t90 = res.times[i];
        }
        std::printf("  10-90%% rise time: %ss (2nd-order ~0.34/fc ~ 3.4us)\n\n",
                    units::format_eng(t90 - t10, 3).c_str());
    }

    // 3. Square wave through the filter: in-band fundamental passes,
    //    harmonics get stripped -> triangle-ish output.
    {
        Circuit ckt = circuits::build_filter(circuits::FilterSizing{},
                                             circuits::FilterConfig{},
                                             circuits::OtaModelKind::behavioural);
        auto* vs = dynamic_cast<VoltageSource*>(ckt.find_device("vsrc"));
        PulseWave p;
        p.v1 = 1.6;
        p.v2 = 1.7;
        p.delay = 0.0;
        p.rise = 50e-9;
        p.fall = 50e-9;
        p.width = 5e-6;   // 100 kHz square wave
        p.period = 10e-6;
        vs->set_pulse(p);

        TranOptions opt;
        opt.tstop = 100e-6;
        opt.dt = 25e-9;
        const TranResult res = run_transient(ckt, opt);
        std::printf("100 kHz square wave through the filter:\n  in:  %s\n  out: %s\n",
                    sparkline(res.node_waveform(*ckt.find_node("vin"))).c_str(),
                    sparkline(res.node_waveform(*ckt.find_node("vout"))).c_str());
    }
    return 0;
}
