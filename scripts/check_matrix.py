#!/usr/bin/env python3
"""Gate the estimator-zoo benchmark matrix (bench_yield_matrix).

Reads the yield_matrix.csv artifact (one row per {estimator} x {scenario}
cell) and enforces the per-column floors the bench-matrix CI job gates on.
Every floor is calibrated against the committed seeds (Rng(71)/(72)/(73)),
so the run is deterministic and a trip means a real estimator regression,
not runner noise.

Gates:
  shape        every registered estimator ran on every scenario
               (>= 5 estimators x >= 4 scenarios) and reached its CI target;
  rare_ota     every IS-family estimator reaches the target within 1/2 of
               the plain-MC samples (measured: 512-640 vs 2048);
  bimodal_ota  the mixture family reaches the target within 1/1.5 of the
               single shift's samples (measured: 1280-1408 vs 3072), while
               the single shift's fail-side ESS/sample stays collapsed
               (< 0.10) - the scenario's reason to exist;
  ce_scale     scale-adapted CE needs no more samples than mean-only CE on
               bimodal_ota (measured: 1280 vs 1408) - the gate that keeps
               the adapted variances from regressing into weight spikes;
  ess floors   fail-side ESS >= 10 effective failures wherever a weighted
               estimator reached its target on an OTA scenario, and the
               mixture family keeps ESS/sample >= 0.10 on the cheap
               synthetic_bimodal home scenario (measured: ~0.12);
  clean_sweep  all estimators report the identical unweighted Wilson
               estimate - the zero-failure reduction, zoo-wide.

Usage: check_matrix.py <yield_matrix.csv>
"""

import csv
import sys

IS_FAMILY = [
    "single_shift",
    "mixture_ce",
    "mixture_ce_scale",
    "mixture_merge",
    "control_variate",
]
MIXTURE_FAMILY = ["mixture_ce", "mixture_ce_scale", "mixture_merge"]
ALL_ESTIMATORS = ["plain_mc"] + IS_FAMILY

failures = []


def gate(ok, message):
    print(("PASS " if ok else "FAIL ") + message)
    if not ok:
        failures.append(message)


def main(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    cells = {(r["estimator"], r["scenario"]): r for r in rows}

    def num(estimator, scenario, field):
        return float(cells[(estimator, scenario)][field])

    scenarios = sorted({r["scenario"] for r in rows})
    estimators = sorted({r["estimator"] for r in rows})
    print(f"matrix: {len(estimators)} estimators x {len(scenarios)} scenarios "
          f"({len(rows)} cells)")
    gate(len(estimators) >= 5, f"matrix spans >= 5 estimators ({len(estimators)})")
    gate(len(scenarios) >= 4, f"matrix spans >= 4 scenarios ({len(scenarios)})")
    missing = [(e, s) for e in estimators for s in scenarios
               if (e, s) not in cells]
    gate(not missing, f"full cross product present (missing: {missing})")
    for e in ALL_ESTIMATORS:
        gate(e in estimators, f"estimator '{e}' present")
    if failures:
        return  # the per-cell gates below would only KeyError

    unreached = [(r["estimator"], r["scenario"]) for r in rows
                 if r["reached_target"] != "1"]
    gate(not unreached, f"every cell reached its CI target (missed: {unreached})")

    # rare_ota: the IS family must halve the plain-MC bill (the historical
    # bench gate is 3x for single_shift; the family-wide floor is 2x).
    plain = num("plain_mc", "rare_ota", "total_samples")
    for e in IS_FAMILY:
        total = num(e, "rare_ota", "total_samples")
        gate(2 * total <= plain,
             f"rare_ota: {e} total {total:.0f} <= 1/2 of plain MC {plain:.0f}")

    # bimodal_ota: the mixture family vs the collapsing single shift.
    single = num("single_shift", "bimodal_ota", "total_samples")
    single_eps = num("single_shift", "bimodal_ota", "ess_per_sample")
    gate(single_eps < 0.10,
         f"bimodal_ota: single-shift ESS/sample {single_eps:.4f} collapses (< 0.10)")
    for e in MIXTURE_FAMILY:
        total = num(e, "bimodal_ota", "total_samples")
        gate(1.5 * total <= single,
             f"bimodal_ota: {e} total {total:.0f} <= 1/1.5 of single shift "
             f"{single:.0f}")

    # Scale adaptation must help (or at least never hurt) where it is aimed.
    ce = num("mixture_ce", "bimodal_ota", "total_samples")
    ce_scale = num("mixture_ce_scale", "bimodal_ota", "total_samples")
    gate(ce_scale <= ce,
         f"bimodal_ota: scale-adapted CE {ce_scale:.0f} <= mean-only CE {ce:.0f}")

    # Fail-side ESS floors: enough effective failure observations behind
    # every weighted OTA estimate, and a healthy per-sample rate for the
    # mixture family on its cheap home scenario.
    for e in IS_FAMILY:
        for s in ("rare_ota", "bimodal_ota"):
            ess = num(e, s, "ess")
            gate(ess >= 10.0, f"{s}: {e} fail-side ESS {ess:.1f} >= 10")
    for e in MIXTURE_FAMILY:
        eps = num(e, "synthetic_bimodal", "ess_per_sample")
        gate(eps >= 0.10,
             f"synthetic_bimodal: {e} ESS/sample {eps:.4f} >= 0.10")

    # clean_sweep: the zero-failure Wilson reduction is zoo-wide and exact.
    ref = cells[("plain_mc", "clean_sweep")]
    for e in estimators:
        r = cells[(e, "clean_sweep")]
        same = all(r[k] == ref[k] for k in ("yield", "ci_low", "ci_high"))
        gate(same, f"clean_sweep: {e} matches the plain-MC Wilson numbers")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    main(sys.argv[1])
    if failures:
        print(f"\n{len(failures)} matrix gate(s) FAILED")
        sys.exit(1)
    print("\nall matrix gates passed")
