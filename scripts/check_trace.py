#!/usr/bin/env python3
"""Validate a ypm Chrome trace-event artifact (CI gate).

Usage: check_trace.py TRACE_JSON

Checks, in order:
 1. the file is valid JSON in Chrome trace-event *object form* with a
    "traceEvents" list (what chrome://tracing and Perfetto load);
 2. every event carries the required trace-event fields, with complete
    ("X") events owning a non-negative duration;
 3. the required span names from a traced flow run are all present:
    flow.run / flow.moo / flow.mc / flow.yield / engine.submit /
    engine.batch / engine.kernel / yield.chunk;
 4. yield.chunk instants carry the sequential runner's diagnostics
    (samples, ess, max_weight_share, half_width);
 5. time containment: every engine.kernel span lies inside its
    engine.batch span (matched by the "batch" argument), and the flow.run
    span covers the sum of the sequential step spans (flow.moo + flow.mc +
    flow.yield + flow.table);
 6. the embedded metrics snapshot agrees with the flow.run span's engine
    ledger arguments (requests / evaluations / cache_hits - same run, same
    process, so the process-wide counters must match the ledger exactly).

Exit status 0 when every check passes; 1 with a message otherwise.
"""

import json
import sys

REQUIRED_SPANS = [
    "flow.run",
    "flow.moo",
    "flow.mc",
    "flow.yield",
    "engine.submit",
    "engine.batch",
    "engine.kernel",
    "yield.chunk",
]

CHUNK_ARGS = ["samples", "ess", "max_weight_share", "half_width"]

# Export rounds timestamps to 1/1000 us; containment comparisons allow one
# rounding step on each side.
EPS_US = 0.002


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} TRACE_JSON")
    path = sys.argv[1]

    try:
        with open(path, encoding="utf-8") as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable as JSON: {e}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail("not in Chrome trace-event object form (no 'traceEvents' key)")
    events = trace["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("'traceEvents' is empty")

    for i, e in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"event {i} is missing '{key}': {e}")
        if e["ph"] not in ("X", "i"):
            fail(f"event {i} has unexpected phase {e['ph']!r}")
        if e["ph"] == "X" and e.get("dur", -1) < 0:
            fail(f"complete event {i} ({e['name']}) lacks a duration")

    by_name = {}
    for e in events:
        by_name.setdefault(e["name"], []).append(e)
    for name in REQUIRED_SPANS:
        if name not in by_name:
            fail(f"required span '{name}' absent from the trace")

    for e in by_name["yield.chunk"]:
        args = e.get("args", {})
        missing = [a for a in CHUNK_ARGS if a not in args]
        if missing:
            fail(f"yield.chunk instant lacks diagnostics {missing}: {e}")

    # --- kernel-within-batch containment, matched by the batch id arg.
    batch_span = {}
    for e in by_name["engine.batch"]:
        bid = e.get("args", {}).get("batch")
        if bid is None:
            fail(f"engine.batch span without a 'batch' argument: {e}")
        batch_span[bid] = (e["ts"], e["ts"] + e["dur"])
    for e in by_name["engine.kernel"]:
        bid = e.get("args", {}).get("batch")
        if bid is None:
            fail(f"engine.kernel span without a 'batch' argument: {e}")
        if bid not in batch_span:
            fail(f"engine.kernel span references unknown batch {bid}")
        lo, hi = batch_span[bid]
        if e["ts"] < lo - EPS_US or e["ts"] + e["dur"] > hi + EPS_US:
            fail(
                f"engine.kernel span [{e['ts']}, {e['ts'] + e['dur']}] us "
                f"escapes engine.batch {bid} [{lo}, {hi}] us"
            )

    # --- the run span covers the sequential flow steps.
    if len(by_name["flow.run"]) != 1:
        fail(f"expected exactly one flow.run span, got {len(by_name['flow.run'])}")
    run = by_name["flow.run"][0]
    step_total = 0.0
    for step in ("flow.moo", "flow.mc", "flow.yield", "flow.table"):
        step_total += sum(e["dur"] for e in by_name.get(step, []))
    if run["dur"] + EPS_US < step_total:
        fail(
            f"flow.run duration {run['dur']} us shorter than the sum of its "
            f"step spans {step_total} us"
        )

    # --- embedded metrics agree with the run span's engine ledger args.
    metrics = trace.get("metrics")
    if not isinstance(metrics, dict) or "counters" not in metrics:
        fail("no embedded 'metrics' snapshot")
    counters = metrics["counters"]
    run_args = run.get("args", {})
    for ledger_arg, counter in (
        ("requests", "engine.requests"),
        ("evaluations", "engine.evaluations"),
        ("cache_hits", "engine.cache_hits"),
    ):
        if ledger_arg not in run_args:
            fail(f"flow.run span lacks the '{ledger_arg}' ledger argument")
        if counters.get(counter) != run_args[ledger_arg]:
            fail(
                f"metrics counter {counter}={counters.get(counter)} disagrees "
                f"with the flow.run ledger arg {ledger_arg}={run_args[ledger_arg]}"
            )

    kernels = len(by_name["engine.kernel"])
    batches = len(by_name["engine.batch"])
    chunks = len(by_name["yield.chunk"])
    print(
        f"check_trace: OK: {len(events)} events, {batches} engine batches, "
        f"{kernels} kernel spans, {chunks} yield chunks, "
        f"flow.run {run['dur'] / 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
