#!/usr/bin/env python3
"""Project-invariant linter: repo law that generic static analysis can't know.

Every guarantee this repo advertises (bit-identical async-vs-blocking
dispatch, inflight-window invariance, reproducible IS estimates) rests on
two disciplines that no off-the-shelf tool checks:

 * RNG-stream discipline - all randomness flows from explicit `Rng` child
   streams; any wall-clock or OS-entropy source in `src/` silently breaks
   reproducibility;
 * lock discipline - every mutex is an annotated `util::Mutex` with a
   `YPM_GUARDED_BY` peer, so Clang's `-Wthread-safety` sees the whole
   concurrent surface.

Rules (applied to src/**/*.{hpp,cpp} after stripping comments/strings):

  wallclock        no std::random_device / rand() / srand() / time() /
                   localtime()/gmtime() - nondeterminism sources.
  raw-clock        no <chrono> *_clock::now() outside util/clock.hpp - all
                   timing reads the one monotonic clock seam (which is the
                   single allowlisted exception), so spans, ledgers and
                   FlowTimings share an epoch and the wall-clock ban stays
                   checkable.
  raw-thread       no std::thread / std::jthread / std::async /
                   pthread_create outside util/thread_pool.* - all
                   parallelism rides the deterministic pool.
  raw-mutex        no std::mutex / std::condition_variable / std::lock_guard
                   / std::unique_lock / std::scoped_lock outside
                   util/mutex.hpp - raw lock types are invisible to the
                   thread-safety analysis.
  unguarded-mutex  every util::Mutex (or std::mutex) variable must be named
                   by a YPM_* capability annotation in the same file.
  float-accum      no float/double accumulation (`+=`/`-=`) inside a
                   range-for over a std::unordered_* container - iteration
                   order is unspecified, so the reduction is not
                   reproducible across standard libraries.
  rng-construction no `Rng(...)` construction or raw std engine types
                   outside util/rng.* - streams are derived via
                   Rng::child(), never re-seeded ad hoc.

Violations that are genuinely intended (e.g. the engine ledger's wall-clock
timing) live in scripts/lint_allowlist.txt with a justification comment.
Unused allowlist entries are errors, so the list can only shrink.

Exit status: 0 clean, 1 violations or bad allowlist, 2 usage error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

RULES = (
    "wallclock",
    "raw-clock",
    "raw-thread",
    "raw-mutex",
    "unguarded-mutex",
    "float-accum",
    "rng-construction",
)

# Structural exemptions: the one file allowed to implement each primitive.
# (These are law, not allowlist: they never need justification entries.)
RULE_HOME = {
    "raw-thread": ("src/util/thread_pool.hpp", "src/util/thread_pool.cpp"),
    "raw-mutex": ("src/util/mutex.hpp",),
    "unguarded-mutex": ("src/util/mutex.hpp",),
    "rng-construction": ("src/util/rng.hpp", "src/util/rng.cpp"),
}

WALLCLOCK_RE = re.compile(
    r"std::random_device"
    r"|(?<![\w.>:])s?rand\s*\("
    r"|(?<![\w.>:])time\s*\("
    r"|(?<![\w.>:])(?:localtime|gmtime)\s*\("
)
RAW_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)::now"
)
RAW_THREAD_RE = re.compile(
    r"std::j?thread\b|std::async\b|pthread_create\b|std::promise\b"
)
RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
MUTEX_MEMBER_RE = re.compile(
    r"(?:^|[;{}(:]|\bmutable\s+)\s*(?:ypm::)?(?:util::)?\bMutex\s+(\w+)"
    r"|std::mutex\s+(\w+)\s*;"
)
ANNOTATION_RE = re.compile(
    r"YPM_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|TRY_ACQUIRE"
    r"|EXCLUDES|RETURN_CAPABILITY)\s*\(([^)]*)\)"
)
RNG_CONSTRUCT_RE = re.compile(
    r"\bRng\s*[({]"
    r"|std::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux\w+|knuth_b)\b"
)
ACCUM_RE = re.compile(r"(\w+)\s*[+\-]=")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*?):([^;]*?)\)\s*", re.DOTALL)


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative posix path
    line: int  # 1-based
    token: str  # subject (mutex name, matched text, ...)
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Replace comments and string/char literals with spaces, preserving
    newlines so reported line numbers match the source."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def unordered_container_names(code: str) -> set[str]:
    """Names declared with a std::unordered_* type (members or locals),
    matching balanced template angle brackets by hand."""
    names = set()
    for m in re.finditer(r"std::unordered_\w+\s*<", code):
        depth, i = 1, m.end()
        while i < len(code) and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        tail = code[i:]
        dm = re.match(r"\s*&?\s*(\w+)", tail)
        if dm and dm.group(1) not in ("const",):
            names.add(dm.group(1))
    return names


def body_after(code: str, pos: int) -> str:
    """The statement/block following position `pos` (a range-for header
    end): a balanced {...} block, or text up to the next ';'."""
    i = pos
    while i < len(code) and code[i] in " \t\n":
        i += 1
    if i < len(code) and code[i] == "{":
        depth, j = 1, i + 1
        while j < len(code) and depth > 0:
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
            j += 1
        return code[i:j]
    end = code.find(";", i)
    return code[i : end + 1 if end >= 0 else len(code)]


def scan_file(path: pathlib.Path, relpath: str) -> list[Finding]:
    text = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(text)
    findings: list[Finding] = []

    def flag(rule: str, pos: int, token: str, message: str) -> None:
        if relpath in RULE_HOME.get(rule, ()):
            return
        findings.append(Finding(rule, relpath, line_of(code, pos), token, message))

    for m in WALLCLOCK_RE.finditer(code):
        flag("wallclock", m.start(), m.group(0).strip(),
             f"nondeterminism source '{m.group(0).strip()}' - all randomness "
             "must derive from Rng child streams, all timing from the "
             "allowlisted ledger sites")
    for m in RAW_CLOCK_RE.finditer(code):
        flag("raw-clock", m.start(), m.group(0).strip(),
             f"direct clock read '{m.group(0).strip()}' - all timing goes "
             "through util::now_ns() (util/clock.hpp, the one allowlisted "
             "clock seam)")
    for m in RAW_THREAD_RE.finditer(code):
        flag("raw-thread", m.start(), m.group(0),
             f"raw threading primitive '{m.group(0)}' - use "
             "util::ThreadPool so work stays deterministic in item index")
    for m in RAW_MUTEX_RE.finditer(code):
        flag("raw-mutex", m.start(), m.group(0),
             f"raw lock type '{m.group(0)}' - use util::Mutex / "
             "util::MutexLock / util::ConditionVariable so the thread-safety "
             "analysis sees it")

    annotated = set()
    for m in ANNOTATION_RE.finditer(code):
        annotated.update(re.findall(r"\w+", m.group(1)))
    for m in MUTEX_MEMBER_RE.finditer(code):
        name = m.group(1) or m.group(2)
        if name in ("const", "return") or name is None:
            continue
        if name not in annotated:
            flag("unguarded-mutex", m.start(), name,
                 f"mutex '{name}' has no YPM_GUARDED_BY/YPM_REQUIRES peer in "
                 "this file - annotate what it protects or allowlist it with "
                 "a justification")

    unordered = unordered_container_names(code)
    float_vars = set()
    for m in re.finditer(r"\b(?:float|double)\b[^;(){}=]*?\b(\w+)\s*[;={]", code):
        float_vars.add(m.group(1))
    for m in RANGE_FOR_RE.finditer(code):
        seq_ids = re.findall(r"\w+", m.group(2))
        if not seq_ids or seq_ids[-1] not in unordered:
            continue
        body = body_after(code, m.end())
        for am in ACCUM_RE.finditer(body):
            if am.group(1) in float_vars:
                flag("float-accum", m.start(), am.group(1),
                     f"float accumulation into '{am.group(1)}' over unordered "
                     f"container '{seq_ids[-1]}' - iteration order is "
                     "unspecified, so the sum is not reproducible; iterate a "
                     "sorted view or restructure")
    for m in RNG_CONSTRUCT_RE.finditer(code):
        before = code[max(0, m.start() - 24):m.start()]
        if re.search(r"(?:\bexplicit|\bclass|\bstruct|Rng::)\s*$", before):
            continue  # declaration / out-of-line definition, not a call
        flag("rng-construction", m.start(), m.group(0).strip(" ({"),
             f"'{m.group(0).strip()}' constructs a generator outside "
             "util/rng - derive streams via Rng::child() from a documented "
             "seed root (or allowlist a new root with a justification)")

    return findings


@dataclass
class AllowEntry:
    rule: str
    path: str
    token: str | None
    lineno: int
    used: bool = False

    def matches(self, f: Finding) -> bool:
        return (self.rule == f.rule and self.path == f.path
                and (self.token is None or self.token == f.token))


def parse_allowlist(path: pathlib.Path, root: pathlib.Path) -> list[AllowEntry]:
    """Format: `<rule> <path> [<token>]`, '#' starts a comment. Raises
    ValueError on unknown rules or paths that don't exist under root."""
    entries: list[AllowEntry] = []
    errors: list[str] = []
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            errors.append(f"{path}:{lineno}: expected '<rule> <path> [<token>]'")
            continue
        rule, rel = parts[0], parts[1]
        token = parts[2] if len(parts) == 3 else None
        if rule not in RULES:
            errors.append(f"{path}:{lineno}: unknown rule '{rule}' "
                          f"(known: {', '.join(RULES)})")
        if not (root / rel).is_file():
            errors.append(f"{path}:{lineno}: no such file '{rel}' under {root}")
        entries.append(AllowEntry(rule, rel, token, lineno))
    if errors:
        raise ValueError("\n".join(errors))
    return entries


def apply_allowlist(findings: list[Finding],
                    entries: list[AllowEntry]) -> list[Finding]:
    kept = []
    for f in findings:
        suppressed = False
        for e in entries:
            if e.matches(f):
                e.used = True
                suppressed = True
        if not suppressed:
            kept.append(f)
    return kept


def lint_tree(root: pathlib.Path, allowlist: pathlib.Path) -> int:
    src = root / "src"
    if not src.is_dir():
        print(f"lint_invariants: no src/ under {root}", file=sys.stderr)
        return 2
    try:
        entries = parse_allowlist(allowlist, root) if allowlist.is_file() else []
    except ValueError as err:
        print(err, file=sys.stderr)
        return 1
    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp", ".h", ".cc"):
            continue
        findings.extend(scan_file(path, path.relative_to(root).as_posix()))
    findings = apply_allowlist(findings, entries)
    status = 0
    for f in findings:
        print(f.format())
        status = 1
    for e in entries:
        if not e.used:
            print(f"{allowlist}:{e.lineno}: unused allowlist entry "
                  f"({e.rule} {e.path}{' ' + e.token if e.token else ''}) - "
                  "remove it", file=sys.stderr)
            status = 1
    if status == 0:
        print(f"lint_invariants: clean ({len(entries)} allowlisted exceptions)")
    return status


def run_fixtures(root: pathlib.Path, fixtures: pathlib.Path) -> int:
    """Self-test: bad_<rule>*.cpp must trigger exactly that rule,
    good_*.cpp must be clean, allowlisted_<rule>*.cpp must trigger without
    the fixture allowlist and be clean with it."""
    if not fixtures.is_dir():
        print(f"lint_invariants: no fixture dir {fixtures}", file=sys.stderr)
        return 2
    fixture_allow = fixtures / "fixture_allowlist.txt"
    failures = 0
    checked = 0

    def fail(msg: str) -> None:
        nonlocal failures
        failures += 1
        print(f"FIXTURE FAIL: {msg}")

    for path in sorted(fixtures.glob("*.cpp")):
        checked += 1
        rel = path.name
        findings = scan_file(path, rel)
        stem = path.stem
        if stem.startswith("bad_"):
            rule = stem[len("bad_"):].rstrip("0123456789_").replace("_", "-")
            if not findings:
                fail(f"{rel}: expected >=1 '{rule}' violation, found none")
            for f in findings:
                if f.rule != rule:
                    fail(f"{rel}: expected only '{rule}', got {f.format()}")
        elif stem.startswith("good_"):
            for f in findings:
                fail(f"{rel}: expected clean, got {f.format()}")
        elif stem.startswith("allowlisted_"):
            if not findings:
                fail(f"{rel}: expected a violation before allowlisting")
                continue
            try:
                entries = [e for e in parse_allowlist(fixture_allow, fixtures)]
            except ValueError as err:
                fail(f"fixture allowlist failed to parse:\n{err}")
                continue
            left = apply_allowlist(findings, entries)
            for f in left:
                fail(f"{rel}: finding survived the fixture allowlist: "
                     f"{f.format()}")
        else:
            fail(f"{rel}: fixture names must start with bad_/good_/allowlisted_")
    if checked == 0:
        fail(f"no *.cpp fixtures found in {fixtures}")
    if failures == 0:
        print(f"lint_invariants: {checked} fixtures pass")
        return 0
    return 1


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repo root (default: this script's repo)")
    parser.add_argument("--allowlist", type=pathlib.Path, default=None,
                        help="allowlist file (default: "
                             "<root>/scripts/lint_allowlist.txt)")
    parser.add_argument("--check-allowlist", action="store_true",
                        help="only parse-validate the allowlist, then exit")
    parser.add_argument("--fixtures", type=pathlib.Path, default=None,
                        help="run the fixture self-test on this directory "
                             "instead of linting src/")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    allowlist = args.allowlist or root / "scripts" / "lint_allowlist.txt"

    if args.check_allowlist:
        try:
            entries = parse_allowlist(allowlist, root)
        except (ValueError, OSError) as err:
            print(err, file=sys.stderr)
            return 1
        print(f"lint_invariants: allowlist OK ({len(entries)} entries)")
        return 0
    if args.fixtures is not None:
        return run_fixtures(root, args.fixtures.resolve())
    return lint_tree(root, allowlist)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
