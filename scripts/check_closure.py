#!/usr/bin/env python3
"""Gate the yield-in-the-loop closure experiment (bench_yield_closure).

Reads the yield_closure.csv artifact (one row per arm: yield_aware vs
nominal) and enforces the bench-smoke CI gates. The experiment is
deterministic (committed seed 2008, fixed reduced scale), so a trip means a
real regression in the probe -> selection path, not runner noise.

Gates:
  shape         both arms present, each with >= 3 certified front points;
  equal_budget  the arms spent the same optimiser engine-evaluation budget
                (nominal may exceed yield_aware by at most 5 % - the
                ceil-to-whole-generations rounding of the equal-budget
                construction - and must never be below it);
  probes_ran    the yield-aware arm actually probed (probe_samples > 0)
                and the nominal arm did not;
  closure       the yield-aware arm's certified minimum yield beats the
                nominal arm's by the ratio floor (measured at the committed
                seed: 1.000 vs 0.822 -> 1.22x; floor 1.05x), and strictly.

Usage: check_closure.py <yield_closure.csv>
"""

import csv
import sys

RATIO_FLOOR = 1.05

failures = []


def gate(ok, message):
    print(("PASS " if ok else "FAIL ") + message)
    if not ok:
        failures.append(message)


def main(path):
    with open(path, newline="") as f:
        rows = {r["arm"]: r for r in csv.DictReader(f)}

    gate("yield_aware" in rows, "yield_aware arm present")
    gate("nominal" in rows, "nominal arm present")
    if failures:
        return

    ya, nom = rows["yield_aware"], rows["nominal"]

    def num(row, field):
        return float(row[field])

    for name, row in (("yield_aware", ya), ("nominal", nom)):
        points = num(row, "certified_points")
        gate(points >= 3, f"{name}: >= 3 certified front points ({points:.0f})")

    ya_budget = num(ya, "optimiser_evaluations")
    nom_budget = num(nom, "optimiser_evaluations")
    gate(nom_budget >= ya_budget,
         f"equal budget: nominal {nom_budget:.0f} >= yield_aware "
         f"{ya_budget:.0f} (never starved)")
    gate(nom_budget <= 1.05 * ya_budget,
         f"equal budget: nominal {nom_budget:.0f} within 5 % of yield_aware "
         f"{ya_budget:.0f}")

    gate(num(ya, "probe_samples") > 0,
         f"yield_aware probed ({ya['probe_samples']} samples)")
    gate(num(nom, "probe_samples") == 0, "nominal arm ran probe-free")

    ya_min = num(ya, "min_yield")
    nom_min = num(nom, "min_yield")
    gate(ya_min > nom_min,
         f"closure: yield_aware min yield {ya_min:.4f} strictly beats "
         f"nominal {nom_min:.4f}")
    gate(ya_min >= RATIO_FLOOR * nom_min,
         f"closure: yield_aware min yield {ya_min:.4f} >= {RATIO_FLOOR}x "
         f"nominal {nom_min:.4f}")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    main(sys.argv[1])
    if failures:
        print(f"\n{len(failures)} closure gate(s) FAILED")
        sys.exit(1)
    print("\nall closure gates passed")
