#include "process/process_card.hpp"

namespace ypm::process {

namespace {
constexpr double eps_sio2 = 3.45e-11; // F/m (3.9 * eps0)
} // namespace

double MosModelParams::cox() const { return eps_sio2 / tox; }

ProcessCard ProcessCard::c35() {
    ProcessCard card;
    card.name = "c35-class-0.35um";
    card.vdd = 3.3;

    // NMOS: u0 ~ 475 cm^2/Vs -> kp = u0*Cox ~ 215 uA/V^2 at tox 7.6 nm.
    card.nmos.vth0 = 0.50;
    card.nmos.kp = 215e-6;
    card.nmos.lambda_l = 0.04e-6;
    card.nmos.gamma = 0.58;
    card.nmos.phi = 0.70;
    card.nmos.nfac = 1.35;
    card.nmos.tox = 7.6e-9;
    card.nmos.cgso = 0.12e-9;
    card.nmos.cgdo = 0.12e-9;
    card.nmos.cj = 0.94e-3;
    card.nmos.cjsw = 0.25e-9;
    card.nmos.ldiff = 0.85e-6;

    // PMOS: u0 ~ 148 cm^2/Vs -> kp ~ 67 uA/V^2; higher |Vth|.
    card.pmos.vth0 = 0.65;
    card.pmos.kp = 67e-6;
    card.pmos.lambda_l = 0.05e-6;
    card.pmos.gamma = 0.40;
    card.pmos.phi = 0.70;
    card.pmos.nfac = 1.40;
    card.pmos.tox = 7.6e-9;
    card.pmos.cgso = 0.09e-9;
    card.pmos.cgdo = 0.09e-9;
    card.pmos.cj = 1.36e-3;
    card.pmos.cjsw = 0.32e-9;
    card.pmos.ldiff = 0.85e-6;

    return card;
}

} // namespace ypm::process
