#pragma once
/// \file sampler.hpp
/// \brief Draws process realisations (global + per-device mismatch deltas)
///        for Monte Carlo analysis, worst-case corners and importance-sampled
///        yield estimation (shifted/widened proposal distributions with exact
///        log likelihood ratios).

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "process/process_card.hpp"
#include "process/variation.hpp"
#include "util/rng.hpp"

namespace ypm::process {

/// Geometry of one MOS instance, used to scale Pelgrom mismatch.
struct MosGeometry {
    std::string name;   ///< instance name, e.g. "m3"
    bool is_pmos = false;
    double w = 10e-6;   ///< m
    double l = 1e-6;    ///< m
};

/// Combined parameter delta for one device instance.
struct MosDelta {
    double dvth = 0.0;     ///< additive threshold shift (V, magnitude space)
    double kp_scale = 1.0; ///< multiplicative KP factor
    double cox_scale = 1.0;///< multiplicative Cox factor (from tox)
};

/// One sampled die: global shifts plus per-instance mismatch.
class Realization {
public:
    Realization() = default;

    /// Total delta (global + local) for a named instance; unknown names get
    /// the global component only (devices excluded from mismatch, e.g.
    /// ideal bias elements).
    [[nodiscard]] MosDelta delta_for(const std::string& name, bool is_pmos) const;

    /// Global-only component for a polarity.
    [[nodiscard]] MosDelta global_for(bool is_pmos) const;

    struct Global {
        double dvth_n = 0.0, dvth_p = 0.0;
        double kp_scale_n = 1.0, kp_scale_p = 1.0;
        double cox_scale = 1.0;
    };

    Global global;
    std::unordered_map<std::string, MosDelta> local; ///< per-instance mismatch
};

/// Mean shift (and optional widening) of the sampling distribution in the
/// *standardized* process space: every underlying Gaussian draw u_i ~ N(0,1)
/// of a realisation is replaced by u_i ~ N(mu_i, scale^2). Used as the
/// proposal distribution for importance-sampled yield estimation; the
/// default-constructed shift is the nominal distribution.
///
/// Dimension layout (must match the draw order of ProcessSampler::sample):
///   0 dvth_n global   1 dvth_p global   2 kp_n global   3 kp_p global
///   4 tox global      5+2k dvth mismatch of devices[k]
///                     6+2k beta mismatch of devices[k]
struct SampleShift {
    /// Per-dimension mean shift in nominal-sigma units. Empty = all zero;
    /// otherwise the size must equal dimension(devices.size()).
    std::vector<double> mu;
    /// Proposal sigma multiplier (> 0). 1 keeps the nominal spread; pilot
    /// runs widen it to locate failure regions faster.
    double scale = 1.0;

    /// Number of standardized dimensions for a device list.
    [[nodiscard]] static std::size_t dimension(std::size_t device_count) {
        return 5 + 2 * device_count;
    }

    /// Euclidean norm of the mean shift (0 for an empty mu).
    [[nodiscard]] double norm() const;

    /// True when this shift changes the sampling distribution at all.
    [[nodiscard]] bool active() const;
};

/// One draw from a shifted proposal: the realisation, the exact log
/// likelihood ratio log(p_nominal(u) / p_proposal(u)) for importance
/// weighting (the estimator lives in yield/weighted.hpp), and (optionally)
/// the standardized coordinates u themselves for shift fitting. log_weight
/// is exactly 0 for the nominal proposal (zero mu, scale 1).
struct ShiftedDraw {
    Realization realization;
    double log_weight = 0.0;
    std::vector<double> u; ///< filled only when record_u was requested
};

/// Sampler bound to a card + statistical spec.
class ProcessSampler {
public:
    ProcessSampler(ProcessCard card, VariationSpec spec);

    /// Draw a full Monte Carlo realisation. Deterministic in the RNG state;
    /// callers derive per-sample child streams for parallel runs.
    [[nodiscard]] Realization sample(Rng& rng,
                                     const std::vector<MosGeometry>& devices) const;

    /// Draw from the shifted proposal distribution. Consumes the RNG stream
    /// exactly like sample() (same draws, same order), and with an inactive
    /// shift the realisation is bit-identical to sample() with log_weight
    /// exactly 0 - the zero-shift importance-sampling path reduces to plain
    /// Monte Carlo. \throws ypm::InvalidInputError on a mu dimension
    /// mismatch or non-positive scale.
    [[nodiscard]] ShiftedDraw sample_shifted(Rng& rng,
                                             const std::vector<MosGeometry>& devices,
                                             const SampleShift& shift,
                                             bool record_u = false) const;

    /// Global-only realisation for a worst-case corner (no mismatch).
    [[nodiscard]] Realization corner(Corner c) const;

    [[nodiscard]] const ProcessCard& card() const { return card_; }
    [[nodiscard]] const VariationSpec& spec() const { return spec_; }

private:
    ProcessCard card_;
    VariationSpec spec_;

    void sample_impl(Rng& rng, const std::vector<MosGeometry>& devices,
                     const SampleShift* shift, ShiftedDraw& out,
                     bool record_u) const;
};

} // namespace ypm::process
