#pragma once
/// \file sampler.hpp
/// \brief Draws process realisations (global + per-device mismatch deltas)
///        for Monte Carlo analysis, worst-case corners and importance-sampled
///        yield estimation (shifted/widened proposal distributions with exact
///        log likelihood ratios).

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "process/process_card.hpp"
#include "process/variation.hpp"
#include "util/rng.hpp"

namespace ypm::process {

/// Geometry of one MOS instance, used to scale Pelgrom mismatch.
struct MosGeometry {
    std::string name;   ///< instance name, e.g. "m3"
    bool is_pmos = false;
    double w = 10e-6;   ///< m
    double l = 1e-6;    ///< m
};

/// Combined parameter delta for one device instance.
struct MosDelta {
    double dvth = 0.0;     ///< additive threshold shift (V, magnitude space)
    double kp_scale = 1.0; ///< multiplicative KP factor
    double cox_scale = 1.0;///< multiplicative Cox factor (from tox)
};

/// One sampled die: global shifts plus per-instance mismatch.
class Realization {
public:
    Realization() = default;

    /// Total delta (global + local) for a named instance; unknown names get
    /// the global component only (devices excluded from mismatch, e.g.
    /// ideal bias elements).
    [[nodiscard]] MosDelta delta_for(const std::string& name, bool is_pmos) const;

    /// Global-only component for a polarity.
    [[nodiscard]] MosDelta global_for(bool is_pmos) const;

    struct Global {
        double dvth_n = 0.0, dvth_p = 0.0;
        double kp_scale_n = 1.0, kp_scale_p = 1.0;
        double cox_scale = 1.0;
    };

    Global global;
    std::unordered_map<std::string, MosDelta> local; ///< per-instance mismatch
};

/// Mean shift (and optional widening) of the sampling distribution in the
/// *standardized* process space: every underlying Gaussian draw u_i ~ N(0,1)
/// of a realisation is replaced by u_i ~ N(mu_i, scale^2). Used as the
/// proposal distribution for importance-sampled yield estimation; the
/// default-constructed shift is the nominal distribution.
///
/// Dimension layout (must match the draw order of ProcessSampler::sample):
///   0 dvth_n global   1 dvth_p global   2 kp_n global   3 kp_p global
///   4 tox global      5+2k dvth mismatch of devices[k]
///                     6+2k beta mismatch of devices[k]
struct SampleShift {
    /// Per-dimension mean shift in nominal-sigma units. Empty = all zero;
    /// otherwise the size must equal dimension(devices.size()).
    std::vector<double> mu;
    /// Proposal sigma multiplier (> 0). 1 keeps the nominal spread; pilot
    /// runs widen it to locate failure regions faster.
    double scale = 1.0;

    /// Number of standardized dimensions for a device list.
    [[nodiscard]] static std::size_t dimension(std::size_t device_count) {
        return 5 + 2 * device_count;
    }

    /// Euclidean norm of the mean shift (0 for an empty mu).
    [[nodiscard]] double norm() const;

    /// True when this shift changes the sampling distribution at all.
    [[nodiscard]] bool active() const;
};

/// One component of a Gaussian mixture proposal: a translated/widened
/// standard normal in the standardized process space (same layout and
/// semantics as SampleShift) plus a relative mixture weight. A component
/// may carry a *diagonal* covariance via per-dimension sigma multipliers
/// (`sigma`, scale-adapted cross-entropy refits emit these); when `sigma`
/// is empty the scalar `scale` applies to every dimension.
struct ProposalComponent {
    std::vector<double> mu; ///< empty = zero shift; else one entry per dim
    double scale = 1.0;     ///< isotropic sigma multiplier (> 0)
    /// Per-dimension sigma multipliers (diagonal covariance, each > 0);
    /// empty = use `scale` for every dimension. Non-empty sigma overrides
    /// `scale` entirely.
    std::vector<double> sigma;
    double weight = 1.0;    ///< relative (unnormalized) mixture weight (> 0)

    /// Sigma multiplier of dimension i under this component.
    [[nodiscard]] double scale_at(std::size_t i) const {
        return sigma.empty() ? scale : sigma[i];
    }
};

/// Defensive Gaussian-mixture proposal for importance-sampled yield
/// estimation: q(u) = sum_k p_k * prod_i phi((u_i - mu_k_i)/s_k)/s_k with
/// p_k the normalized component weights. A single mean-shift proposal
/// cannot cover the disjoint failure regions of a multi-spec problem; the
/// standard cure (Jonsson/Lelong-style defensive IS) is one component per
/// failure mode plus a nominal component that bounds the weights near the
/// bulk. An empty component list - the default - is the nominal
/// distribution, and a one-component mixture reduces exactly to the single
/// SampleShift path (no component-selection draw is consumed).
struct ProposalMixture {
    std::vector<ProposalComponent> components;

    /// The nominal (plain Monte Carlo) proposal as an explicit single
    /// component.
    [[nodiscard]] static ProposalMixture nominal();

    /// Wrap one SampleShift as a one-component mixture (the legacy ISLE
    /// single-shift proposal).
    [[nodiscard]] static ProposalMixture single(SampleShift shift);

    /// True when sampling from this mixture differs from the nominal
    /// distribution (any shifted/widened component, or >= 2 components).
    [[nodiscard]] bool active() const;

    /// Component index selected by a uniform [0, 1) variate against the
    /// cumulative normalized weights. \throws ypm::InvalidInputError on an
    /// empty mixture.
    [[nodiscard]] std::size_t pick_component(double u01) const;

    /// Exact log likelihood ratio log(phi(u) / q_mix(u)) for standardized
    /// coordinates u with *unit* nominal sigmas - the brute-force mixture
    /// density evaluation used by synthetic yield kernels and tests (the
    /// process sampler computes the same quantity internally, skipping
    /// zero-sigma dimensions). Exactly 0 for an inactive mixture.
    [[nodiscard]] double log_weight_of(const std::vector<double>& u) const;

    /// \throws ypm::InvalidInputError when any component has a non-positive
    /// or non-finite weight/scale, a non-finite mu entry, a mu or sigma
    /// dimension that is neither empty nor `dimension`, or a non-positive
    /// per-dimension sigma entry.
    void validate(std::size_t dimension) const;
};

/// One draw from a shifted proposal: the realisation, the exact log
/// likelihood ratio log(p_nominal(u) / p_proposal(u)) for importance
/// weighting (the estimator lives in yield/weighted.hpp), and (optionally)
/// the standardized coordinates u themselves for shift fitting. log_weight
/// is exactly 0 for the nominal proposal (zero mu, scale 1).
struct ShiftedDraw {
    Realization realization;
    double log_weight = 0.0;
    std::vector<double> u; ///< filled only when record_u was requested
    std::size_t component = 0; ///< mixture component the draw came from
};

/// Sampler bound to a card + statistical spec.
class ProcessSampler {
public:
    ProcessSampler(ProcessCard card, VariationSpec spec);

    /// Draw a full Monte Carlo realisation. Deterministic in the RNG state;
    /// callers derive per-sample child streams for parallel runs.
    [[nodiscard]] Realization sample(Rng& rng,
                                     const std::vector<MosGeometry>& devices) const;

    /// Draw from the shifted proposal distribution. Consumes the RNG stream
    /// exactly like sample() (same draws, same order), and with an inactive
    /// shift the realisation is bit-identical to sample() with log_weight
    /// exactly 0 - the zero-shift importance-sampling path reduces to plain
    /// Monte Carlo. \throws ypm::InvalidInputError on a mu dimension
    /// mismatch or non-positive scale.
    [[nodiscard]] ShiftedDraw sample_shifted(Rng& rng,
                                             const std::vector<MosGeometry>& devices,
                                             const SampleShift& shift,
                                             bool record_u = false) const;

    /// Draw from a defensive mixture proposal. With zero or one *isotropic*
    /// component this delegates to the single-shift path (same RNG
    /// consumption as sample(); an inactive component is bit-identical to
    /// sample() with log_weight exactly 0); a single diagonal-covariance
    /// component draws the same per-dimension sequence without a
    /// component-selection uniform. With >= 2 components one uniform draw
    /// picks the component, then the per-dimension Gaussians are drawn
    /// exactly like sample_shifted's; because a mixture density is not
    /// product-form across dimensions, the log weight is computed over the
    /// whole standardized vector: log w = log phi(u) - log q_mix(u).
    /// \throws ypm::InvalidInputError on an invalid mixture (see
    /// ProposalMixture::validate).
    [[nodiscard]] ShiftedDraw sample_mixture(Rng& rng,
                                             const std::vector<MosGeometry>& devices,
                                             const ProposalMixture& mixture,
                                             bool record_u = false) const;

    /// Global-only realisation for a worst-case corner (no mismatch).
    [[nodiscard]] Realization corner(Corner c) const;

    [[nodiscard]] const ProcessCard& card() const { return card_; }
    [[nodiscard]] const VariationSpec& spec() const { return spec_; }

private:
    ProcessCard card_;
    VariationSpec spec_;

    void sample_impl(Rng& rng, const std::vector<MosGeometry>& devices,
                     const SampleShift* shift, ShiftedDraw& out,
                     bool record_u) const;
};

} // namespace ypm::process
