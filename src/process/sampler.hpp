#pragma once
/// \file sampler.hpp
/// \brief Draws process realisations (global + per-device mismatch deltas)
///        for Monte Carlo analysis and worst-case corners.

#include <string>
#include <unordered_map>
#include <vector>

#include "process/process_card.hpp"
#include "process/variation.hpp"
#include "util/rng.hpp"

namespace ypm::process {

/// Geometry of one MOS instance, used to scale Pelgrom mismatch.
struct MosGeometry {
    std::string name;   ///< instance name, e.g. "m3"
    bool is_pmos = false;
    double w = 10e-6;   ///< m
    double l = 1e-6;    ///< m
};

/// Combined parameter delta for one device instance.
struct MosDelta {
    double dvth = 0.0;     ///< additive threshold shift (V, magnitude space)
    double kp_scale = 1.0; ///< multiplicative KP factor
    double cox_scale = 1.0;///< multiplicative Cox factor (from tox)
};

/// One sampled die: global shifts plus per-instance mismatch.
class Realization {
public:
    Realization() = default;

    /// Total delta (global + local) for a named instance; unknown names get
    /// the global component only (devices excluded from mismatch, e.g.
    /// ideal bias elements).
    [[nodiscard]] MosDelta delta_for(const std::string& name, bool is_pmos) const;

    /// Global-only component for a polarity.
    [[nodiscard]] MosDelta global_for(bool is_pmos) const;

    struct Global {
        double dvth_n = 0.0, dvth_p = 0.0;
        double kp_scale_n = 1.0, kp_scale_p = 1.0;
        double cox_scale = 1.0;
    };

    Global global;
    std::unordered_map<std::string, MosDelta> local; ///< per-instance mismatch
};

/// Sampler bound to a card + statistical spec.
class ProcessSampler {
public:
    ProcessSampler(ProcessCard card, VariationSpec spec);

    /// Draw a full Monte Carlo realisation. Deterministic in the RNG state;
    /// callers derive per-sample child streams for parallel runs.
    [[nodiscard]] Realization sample(Rng& rng,
                                     const std::vector<MosGeometry>& devices) const;

    /// Global-only realisation for a worst-case corner (no mismatch).
    [[nodiscard]] Realization corner(Corner c) const;

    [[nodiscard]] const ProcessCard& card() const { return card_; }
    [[nodiscard]] const VariationSpec& spec() const { return spec_; }

private:
    ProcessCard card_;
    VariationSpec spec_;
};

} // namespace ypm::process
