#pragma once
/// \file process_card.hpp
/// \brief Nominal process model card.
///
/// Substitute for the AMS 0.35 um C35B4 BSim3v3 foundry deck the paper
/// simulates with. Parameter values are 0.35 um-class textbook numbers (not
/// the proprietary deck); DESIGN.md section 2 records this substitution.

#include <string>

namespace ypm::process {

/// Per-polarity MOSFET model parameters consumed by spice::Mosfet.
struct MosModelParams {
    double vth0 = 0.5;     ///< zero-bias threshold magnitude (V)
    double kp = 170e-6;    ///< transconductance factor u0*Cox (A/V^2)
    double lambda_l = 0.03e-6; ///< CLM: lambda = lambda_l / L  (1/V * m)
    double gamma = 0.58;   ///< body-effect coefficient (sqrt(V))
    double phi = 0.7;      ///< surface potential 2*phiF (V)
    double nfac = 1.35;    ///< subthreshold slope factor
    double tox = 7.6e-9;   ///< gate oxide thickness (m)
    double cgso = 0.12e-9; ///< gate-source overlap capacitance (F/m)
    double cgdo = 0.12e-9; ///< gate-drain overlap capacitance (F/m)
    double cj = 0.9e-3;    ///< junction area capacitance (F/m^2)
    double cjsw = 0.25e-9; ///< junction sidewall capacitance (F/m)
    double ldiff = 0.85e-6;///< source/drain diffusion length (m)

    /// Oxide capacitance per area (F/m^2), eps_SiO2 / tox.
    [[nodiscard]] double cox() const;
};

/// Complete nominal card for one process.
struct ProcessCard {
    std::string name = "generic";
    double vdd = 3.3;      ///< nominal supply (V)
    double temperature = 300.15; ///< K
    MosModelParams nmos;
    MosModelParams pmos;

    /// 0.35 um-class card modelled on the AMS C35B4 generation: 3.3 V,
    /// tox 7.6 nm, Vthn ~ 0.50 V, Vthp ~ 0.65 V.
    [[nodiscard]] static ProcessCard c35();
};

} // namespace ypm::process
