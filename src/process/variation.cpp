#include "process/variation.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::process {

VariationSpec VariationSpec::c35() {
    return VariationSpec{}; // defaults are the c35-class numbers
}

std::string to_string(Corner c) {
    switch (c) {
    case Corner::tt: return "tt";
    case Corner::ff: return "ff";
    case Corner::ss: return "ss";
    case Corner::fs: return "fs";
    case Corner::sf: return "sf";
    }
    return "?";
}

Corner corner_from_string(const std::string& name) {
    const std::string n = str::to_lower(name);
    if (n == "tt") return Corner::tt;
    if (n == "ff") return Corner::ff;
    if (n == "ss") return Corner::ss;
    if (n == "fs") return Corner::fs;
    if (n == "sf") return Corner::sf;
    throw InvalidInputError("unknown process corner '" + name + "'");
}

CornerShift corner_shift(Corner c) {
    switch (c) {
    case Corner::tt: return {0.0, 0.0};
    case Corner::ff: return {+3.0, +3.0};
    case Corner::ss: return {-3.0, -3.0};
    case Corner::fs: return {+3.0, -3.0};
    case Corner::sf: return {-3.0, +3.0};
    }
    return {0.0, 0.0};
}

} // namespace ypm::process
