#pragma once
/// \file variation.hpp
/// \brief Statistical variation description: global (inter-die) spreads,
///        Pelgrom local mismatch, and worst-case corners.
///
/// Substitute for the foundry's statistical model deck (paper section 3.4
/// runs "foundry variation models" through Spectre MC). Global parameters
/// shift every device of a polarity together; local mismatch adds an
/// area-dependent per-device delta with sigma = A / sqrt(W*L) (Pelgrom).

#include <string>

namespace ypm::process {

/// Inter-die (global) 1-sigma spreads.
struct GlobalVariation {
    double sigma_vth_n = 0.010;   ///< V
    double sigma_vth_p = 0.012;   ///< V
    double sigma_kp_rel_n = 0.015;///< relative
    double sigma_kp_rel_p = 0.015;///< relative
    double sigma_tox_rel = 0.010; ///< relative (scales Cox for both types)
};

/// Pelgrom coefficients for local (intra-die) mismatch.
struct MismatchModel {
    double a_vt_n = 9.5e-9;   ///< V*m   : sigma(dVth) = a_vt / sqrt(W*L)
    double a_vt_p = 14.5e-9;  ///< V*m
    double a_beta_n = 0.019e-6; ///< m : sigma(dKP/KP) = a_beta / sqrt(W*L)
    double a_beta_p = 0.022e-6; ///< m
};

/// Full statistical description of a process.
struct VariationSpec {
    GlobalVariation global;
    MismatchModel mismatch;

    /// 0.35 um-class statistical deck (matches ProcessCard::c35()).
    [[nodiscard]] static VariationSpec c35();
};

/// Classic five worst-case corners (NMOS speed / PMOS speed).
enum class Corner { tt, ff, ss, fs, sf };

[[nodiscard]] std::string to_string(Corner c);

/// Parse "tt", "FF", ... \throws ypm::InvalidInputError on unknown names.
[[nodiscard]] Corner corner_from_string(const std::string& name);

/// Signed global shift (in sigma units) a corner applies to each polarity:
/// fast = lower Vth and higher KP. Returns {n_sigma_nmos, n_sigma_pmos};
/// tt gives {0, 0}, corners use +/- 3.
struct CornerShift {
    double nmos_speed = 0.0; ///< +3 fast, -3 slow
    double pmos_speed = 0.0;
};
[[nodiscard]] CornerShift corner_shift(Corner c);

} // namespace ypm::process
