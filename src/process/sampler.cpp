#include "process/sampler.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ypm::process {

MosDelta Realization::global_for(bool is_pmos) const {
    MosDelta d;
    d.dvth = is_pmos ? global.dvth_p : global.dvth_n;
    d.kp_scale = is_pmos ? global.kp_scale_p : global.kp_scale_n;
    d.cox_scale = global.cox_scale;
    return d;
}

MosDelta Realization::delta_for(const std::string& name, bool is_pmos) const {
    MosDelta d = global_for(is_pmos);
    const auto it = local.find(name);
    if (it != local.end()) {
        d.dvth += it->second.dvth;
        d.kp_scale *= it->second.kp_scale;
    }
    return d;
}

ProcessSampler::ProcessSampler(ProcessCard card, VariationSpec spec)
    : card_(std::move(card)), spec_(spec) {}

Realization ProcessSampler::sample(Rng& rng,
                                   const std::vector<MosGeometry>& devices) const {
    Realization r;
    const auto& g = spec_.global;
    r.global.dvth_n = rng.gauss(0.0, g.sigma_vth_n);
    r.global.dvth_p = rng.gauss(0.0, g.sigma_vth_p);
    r.global.kp_scale_n = 1.0 + rng.gauss(0.0, g.sigma_kp_rel_n);
    r.global.kp_scale_p = 1.0 + rng.gauss(0.0, g.sigma_kp_rel_p);
    // Thinner oxide -> larger Cox; tox and Cox are inversely related, and at
    // 1 % spreads the first-order reciprocal is adequate.
    r.global.cox_scale = 1.0 / (1.0 + rng.gauss(0.0, g.sigma_tox_rel));

    const auto& mm = spec_.mismatch;
    for (const auto& dev : devices) {
        if (dev.w <= 0.0 || dev.l <= 0.0)
            throw InvalidInputError("ProcessSampler: non-positive geometry for '" +
                                    dev.name + "'");
        const double inv_sqrt_area = 1.0 / std::sqrt(dev.w * dev.l);
        const double a_vt = dev.is_pmos ? mm.a_vt_p : mm.a_vt_n;
        const double a_beta = dev.is_pmos ? mm.a_beta_p : mm.a_beta_n;
        MosDelta d;
        d.dvth = rng.gauss(0.0, a_vt * inv_sqrt_area);
        d.kp_scale = 1.0 + rng.gauss(0.0, a_beta * inv_sqrt_area);
        r.local[dev.name] = d;
    }
    return r;
}

Realization ProcessSampler::corner(Corner c) const {
    Realization r;
    const CornerShift shift = corner_shift(c);
    const auto& g = spec_.global;
    // "Fast" = lower threshold magnitude and higher transconductance.
    r.global.dvth_n = -shift.nmos_speed * g.sigma_vth_n;
    r.global.dvth_p = -shift.pmos_speed * g.sigma_vth_p;
    r.global.kp_scale_n = 1.0 + shift.nmos_speed * g.sigma_kp_rel_n;
    r.global.kp_scale_p = 1.0 + shift.pmos_speed * g.sigma_kp_rel_p;
    r.global.cox_scale = 1.0;
    return r;
}

} // namespace ypm::process
