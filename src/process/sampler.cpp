#include "process/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace ypm::process {

MosDelta Realization::global_for(bool is_pmos) const {
    MosDelta d;
    d.dvth = is_pmos ? global.dvth_p : global.dvth_n;
    d.kp_scale = is_pmos ? global.kp_scale_p : global.kp_scale_n;
    d.cox_scale = global.cox_scale;
    return d;
}

MosDelta Realization::delta_for(const std::string& name, bool is_pmos) const {
    MosDelta d = global_for(is_pmos);
    const auto it = local.find(name);
    if (it != local.end()) {
        d.dvth += it->second.dvth;
        d.kp_scale *= it->second.kp_scale;
    }
    return d;
}

double SampleShift::norm() const {
    double sum = 0.0;
    for (double m : mu) sum += m * m;
    return std::sqrt(sum);
}

bool SampleShift::active() const {
    if (scale != 1.0) return true;
    for (double m : mu)
        if (m != 0.0) return true;
    return false;
}

ProposalMixture ProposalMixture::nominal() {
    ProposalMixture mix;
    mix.components.emplace_back();
    return mix;
}

ProposalMixture ProposalMixture::single(SampleShift shift) {
    ProposalMixture mix;
    ProposalComponent comp;
    comp.mu = std::move(shift.mu);
    comp.scale = shift.scale;
    mix.components.push_back(std::move(comp));
    return mix;
}

bool ProposalMixture::active() const {
    if (components.size() > 1) return true;
    for (const ProposalComponent& c : components) {
        for (double s : c.sigma)
            if (s != 1.0) return true;
        SampleShift shift;
        shift.mu = c.mu;
        shift.scale = c.sigma.empty() ? c.scale : 1.0;
        if (shift.active()) return true;
    }
    return false;
}

std::size_t ProposalMixture::pick_component(double u01) const {
    if (components.empty())
        throw InvalidInputError("ProposalMixture: cannot pick from an empty mixture");
    double total = 0.0;
    for (const ProposalComponent& c : components) total += c.weight;
    double cum = 0.0;
    for (std::size_t k = 0; k + 1 < components.size(); ++k) {
        cum += components[k].weight / total;
        if (u01 < cum) return k;
    }
    return components.size() - 1;
}

void ProposalMixture::validate(std::size_t dimension) const {
    for (const ProposalComponent& c : components) {
        if (!(c.weight > 0.0) || !std::isfinite(c.weight))
            throw InvalidInputError(
                "ProposalMixture: component weights must be finite and > 0");
        if (!(c.scale > 0.0) || !std::isfinite(c.scale))
            throw InvalidInputError(
                "ProposalMixture: component scales must be finite and > 0");
        if (!c.mu.empty() && c.mu.size() != dimension)
            throw InvalidInputError(
                "ProposalMixture: component dimension mismatch (got " +
                std::to_string(c.mu.size()) + ", expected " +
                std::to_string(dimension) + ")");
        for (double m : c.mu)
            if (!std::isfinite(m))
                throw InvalidInputError(
                    "ProposalMixture: non-finite component mean entry");
        if (!c.sigma.empty() && c.sigma.size() != dimension)
            throw InvalidInputError(
                "ProposalMixture: component sigma dimension mismatch (got " +
                std::to_string(c.sigma.size()) + ", expected " +
                std::to_string(dimension) + ")");
        for (double s : c.sigma)
            if (!(s > 0.0) || !std::isfinite(s))
                throw InvalidInputError(
                    "ProposalMixture: per-dimension sigma entries must be "
                    "finite and > 0");
    }
}

namespace {

/// log sum_k exp(terms[k]) without overflow; terms must be non-empty.
double log_sum_exp(const std::vector<double>& terms) {
    const double peak = *std::max_element(terms.begin(), terms.end());
    if (!std::isfinite(peak)) return peak; // all -inf (or a NaN poisoning)
    double sum = 0.0;
    for (double t : terms) sum += std::exp(t - peak);
    return peak + std::log(sum);
}

/// Mixture log density of the standardized vector given the per-component
/// log products (each already summed over the active dimensions, without
/// the -dim/2*log(2*pi) constant - it cancels against log phi(u)).
double log_mixture_density(const std::vector<ProposalComponent>& components,
                           std::vector<double>& log_q) {
    double total = 0.0;
    for (const ProposalComponent& c : components) total += c.weight;
    for (std::size_t k = 0; k < components.size(); ++k)
        log_q[k] += std::log(components[k].weight / total);
    return log_sum_exp(log_q);
}

} // namespace

double ProposalMixture::log_weight_of(const std::vector<double>& u) const {
    validate(u.size());
    if (components.empty()) return 0.0; // nominal: w = 1 exactly
    double log_p = 0.0;
    std::vector<double> log_q(components.size(), 0.0);
    for (std::size_t i = 0; i < u.size(); ++i) {
        log_p += -0.5 * u[i] * u[i];
        for (std::size_t k = 0; k < components.size(); ++k) {
            const ProposalComponent& c = components[k];
            const double m = c.mu.empty() ? 0.0 : c.mu[i];
            const double s = c.scale_at(i);
            const double t = (u[i] - m) / s;
            log_q[k] += -0.5 * t * t - std::log(s);
        }
    }
    return log_p - log_mixture_density(components, log_q);
}

ProcessSampler::ProcessSampler(ProcessCard card, VariationSpec spec)
    : card_(std::move(card)), spec_(spec) {}

Realization ProcessSampler::sample(Rng& rng,
                                   const std::vector<MosGeometry>& devices) const {
    ShiftedDraw draw;
    sample_impl(rng, devices, nullptr, draw, false);
    return std::move(draw.realization);
}

ShiftedDraw ProcessSampler::sample_shifted(Rng& rng,
                                           const std::vector<MosGeometry>& devices,
                                           const SampleShift& shift,
                                           bool record_u) const {
    ShiftedDraw draw;
    sample_impl(rng, devices, &shift, draw, record_u);
    return draw;
}

namespace {

/// The one definition of the standardized dimension order (documented on
/// SampleShift): fills a realisation by calling draw(sigma) once per
/// dimension. Every sampling path - plain, single shift, mixture - walks
/// this exact sequence so their RNG consumption stays aligned.
template <typename DrawFn>
void fill_realization(const VariationSpec& spec,
                      const std::vector<MosGeometry>& devices, DrawFn&& draw,
                      Realization& r) {
    const auto& g = spec.global;
    r.global.dvth_n = draw(g.sigma_vth_n);
    r.global.dvth_p = draw(g.sigma_vth_p);
    r.global.kp_scale_n = 1.0 + draw(g.sigma_kp_rel_n);
    r.global.kp_scale_p = 1.0 + draw(g.sigma_kp_rel_p);
    // Thinner oxide -> larger Cox; tox and Cox are inversely related, and at
    // 1 % spreads the first-order reciprocal is adequate.
    r.global.cox_scale = 1.0 / (1.0 + draw(g.sigma_tox_rel));

    const auto& mm = spec.mismatch;
    for (const auto& dev : devices) {
        if (dev.w <= 0.0 || dev.l <= 0.0)
            throw InvalidInputError("ProcessSampler: non-positive geometry for '" +
                                    dev.name + "'");
        const double inv_sqrt_area = 1.0 / std::sqrt(dev.w * dev.l);
        const double a_vt = dev.is_pmos ? mm.a_vt_p : mm.a_vt_n;
        const double a_beta = dev.is_pmos ? mm.a_beta_p : mm.a_beta_n;
        MosDelta d;
        d.dvth = draw(a_vt * inv_sqrt_area);
        d.kp_scale = 1.0 + draw(a_beta * inv_sqrt_area);
        r.local[dev.name] = d;
    }
}

} // namespace

void ProcessSampler::sample_impl(Rng& rng, const std::vector<MosGeometry>& devices,
                                 const SampleShift* shift, ShiftedDraw& out,
                                 bool record_u) const {
    const std::size_t dim = SampleShift::dimension(devices.size());
    const double* mu = nullptr;
    double scale = 1.0;
    if (shift != nullptr) {
        if (!(shift->scale > 0.0))
            throw InvalidInputError("ProcessSampler: proposal scale must be > 0");
        if (!shift->mu.empty()) {
            if (shift->mu.size() != dim)
                throw InvalidInputError(
                    "ProcessSampler: shift dimension mismatch (got " +
                    std::to_string(shift->mu.size()) + ", expected " +
                    std::to_string(dim) + ")");
            mu = shift->mu.data();
        }
        scale = shift->scale;
    }
    if (record_u) out.u.assign(dim, 0.0);
    out.log_weight = 0.0;
    const double log_scale = std::log(scale);

    // One underlying standard-normal draw per dimension, in the fixed
    // dimension order documented on SampleShift. With m == 0 and scale == 1
    // the value computes as 0.0 + sigma * z, bit-identical to the historic
    // rng.gauss(0.0, sigma) call, and the log weight is exactly 0. The
    // per-dimension incremental accumulation is valid because a single
    // Gaussian proposal is product-form across dimensions (a mixture is
    // not - see sample_mixture).
    std::size_t next_dim = 0;
    auto draw = [&](double sigma) {
        const std::size_t i = next_dim++;
        const double m = mu != nullptr ? mu[i] : 0.0;
        const double z = rng.gauss();
        const double value = m * sigma + (scale * sigma) * z;
        if (sigma > 0.0) {
            // u is the standardized coordinate under the nominal density;
            // the proposal density of u is phi((u - m)/scale)/scale with
            // (u - m)/scale = z, so
            //   log w = log phi(u) - log(phi(z)/scale)
            //         = log(scale) + z^2/2 - u^2/2.
            const double u = m + scale * z;
            out.log_weight += log_scale + 0.5 * z * z - 0.5 * u * u;
            if (record_u) out.u[i] = u;
        }
        return value;
    };
    fill_realization(spec_, devices, draw, out.realization);
}

ShiftedDraw ProcessSampler::sample_mixture(Rng& rng,
                                           const std::vector<MosGeometry>& devices,
                                           const ProposalMixture& mixture,
                                           bool record_u) const {
    const std::size_t dim = SampleShift::dimension(devices.size());
    mixture.validate(dim);

    // Zero or one isotropic component: the single-shift path, bit-identical
    // RNG consumption to sample() (no component-selection draw), and with
    // an inactive component bit-identical realisations with log_weight
    // exactly 0. A single component with *per-dimension* sigma cannot ride
    // SampleShift (scalar scale only) and falls through to the generic
    // path below, which also skips the component-selection draw for it.
    if (mixture.components.size() <= 1 &&
        (mixture.components.empty() || mixture.components.front().sigma.empty())) {
        SampleShift shift;
        if (!mixture.components.empty()) {
            shift.mu = mixture.components.front().mu;
            shift.scale = mixture.components.front().scale;
        }
        ShiftedDraw draw = sample_shifted(rng, devices, shift, record_u);
        draw.component = 0;
        return draw;
    }

    // Defensive mixture: one uniform picks the component (skipped for a
    // single diagonal-covariance component - there is nothing to pick),
    // then the per-dimension Gaussians are drawn from it in the standard
    // order. The mixture density is not product-form across dimensions, so
    // the log weight cannot be accumulated per dimension under one formula;
    // instead every component's log density of the *whole* standardized
    // vector u is accumulated and combined once at the end:
    //   log w = log phi(u) - logsumexp_k(log p_k + log q_k(u)).
    // Zero-sigma dimensions are deterministic under every component and
    // drop out of both densities.
    const std::size_t chosen = mixture.components.size() > 1
                                   ? mixture.pick_component(rng.uniform01())
                                   : 0;
    const ProposalComponent& comp = mixture.components[chosen];

    ShiftedDraw out;
    out.component = chosen;
    if (record_u) out.u.assign(dim, 0.0);
    double log_p = 0.0; // log phi(u) over active dims, constants dropped
    std::vector<double> log_q(mixture.components.size(), 0.0);
    std::size_t next_dim = 0;
    auto draw = [&](double sigma) {
        const std::size_t i = next_dim++;
        const double m = comp.mu.empty() ? 0.0 : comp.mu[i];
        const double s = comp.scale_at(i);
        const double z = rng.gauss();
        const double value = m * sigma + (s * sigma) * z;
        if (sigma > 0.0) {
            const double u = m + s * z;
            log_p += -0.5 * u * u;
            for (std::size_t k = 0; k < mixture.components.size(); ++k) {
                const ProposalComponent& c = mixture.components[k];
                const double mk = c.mu.empty() ? 0.0 : c.mu[i];
                const double sk = c.scale_at(i);
                const double t = (u - mk) / sk;
                log_q[k] += -0.5 * t * t - std::log(sk);
            }
            if (record_u) out.u[i] = u;
        }
        return value;
    };
    fill_realization(spec_, devices, draw, out.realization);
    out.log_weight = log_p - log_mixture_density(mixture.components, log_q);
    return out;
}

Realization ProcessSampler::corner(Corner c) const {
    Realization r;
    const CornerShift shift = corner_shift(c);
    const auto& g = spec_.global;
    // "Fast" = lower threshold magnitude and higher transconductance.
    r.global.dvth_n = -shift.nmos_speed * g.sigma_vth_n;
    r.global.dvth_p = -shift.pmos_speed * g.sigma_vth_p;
    r.global.kp_scale_n = 1.0 + shift.nmos_speed * g.sigma_kp_rel_n;
    r.global.kp_scale_p = 1.0 + shift.pmos_speed * g.sigma_kp_rel_p;
    r.global.cox_scale = 1.0;
    return r;
}

} // namespace ypm::process
