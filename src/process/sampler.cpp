#include "process/sampler.hpp"

#include <cmath>
#include <string>

#include "util/error.hpp"

namespace ypm::process {

MosDelta Realization::global_for(bool is_pmos) const {
    MosDelta d;
    d.dvth = is_pmos ? global.dvth_p : global.dvth_n;
    d.kp_scale = is_pmos ? global.kp_scale_p : global.kp_scale_n;
    d.cox_scale = global.cox_scale;
    return d;
}

MosDelta Realization::delta_for(const std::string& name, bool is_pmos) const {
    MosDelta d = global_for(is_pmos);
    const auto it = local.find(name);
    if (it != local.end()) {
        d.dvth += it->second.dvth;
        d.kp_scale *= it->second.kp_scale;
    }
    return d;
}

double SampleShift::norm() const {
    double sum = 0.0;
    for (double m : mu) sum += m * m;
    return std::sqrt(sum);
}

bool SampleShift::active() const {
    if (scale != 1.0) return true;
    for (double m : mu)
        if (m != 0.0) return true;
    return false;
}

ProcessSampler::ProcessSampler(ProcessCard card, VariationSpec spec)
    : card_(std::move(card)), spec_(spec) {}

Realization ProcessSampler::sample(Rng& rng,
                                   const std::vector<MosGeometry>& devices) const {
    ShiftedDraw draw;
    sample_impl(rng, devices, nullptr, draw, false);
    return std::move(draw.realization);
}

ShiftedDraw ProcessSampler::sample_shifted(Rng& rng,
                                           const std::vector<MosGeometry>& devices,
                                           const SampleShift& shift,
                                           bool record_u) const {
    ShiftedDraw draw;
    sample_impl(rng, devices, &shift, draw, record_u);
    return draw;
}

void ProcessSampler::sample_impl(Rng& rng, const std::vector<MosGeometry>& devices,
                                 const SampleShift* shift, ShiftedDraw& out,
                                 bool record_u) const {
    const std::size_t dim = SampleShift::dimension(devices.size());
    const double* mu = nullptr;
    double scale = 1.0;
    if (shift != nullptr) {
        if (!(shift->scale > 0.0))
            throw InvalidInputError("ProcessSampler: proposal scale must be > 0");
        if (!shift->mu.empty()) {
            if (shift->mu.size() != dim)
                throw InvalidInputError(
                    "ProcessSampler: shift dimension mismatch (got " +
                    std::to_string(shift->mu.size()) + ", expected " +
                    std::to_string(dim) + ")");
            mu = shift->mu.data();
        }
        scale = shift->scale;
    }
    if (record_u) out.u.assign(dim, 0.0);
    out.log_weight = 0.0;
    const double log_scale = std::log(scale);

    // One underlying standard-normal draw per dimension, in the fixed
    // dimension order documented on SampleShift. With m == 0 and scale == 1
    // the value computes as 0.0 + sigma * z, bit-identical to the historic
    // rng.gauss(0.0, sigma) call, and the log weight is exactly 0.
    std::size_t next_dim = 0;
    auto draw = [&](double sigma) {
        const std::size_t i = next_dim++;
        const double m = mu != nullptr ? mu[i] : 0.0;
        const double z = rng.gauss();
        const double value = m * sigma + (scale * sigma) * z;
        if (sigma > 0.0) {
            // u is the standardized coordinate under the nominal density;
            // the proposal density of u is phi((u - m)/scale)/scale with
            // (u - m)/scale = z, so
            //   log w = log phi(u) - log(phi(z)/scale)
            //         = log(scale) + z^2/2 - u^2/2.
            const double u = m + scale * z;
            out.log_weight += log_scale + 0.5 * z * z - 0.5 * u * u;
            if (record_u) out.u[i] = u;
        }
        return value;
    };

    Realization& r = out.realization;
    const auto& g = spec_.global;
    r.global.dvth_n = draw(g.sigma_vth_n);
    r.global.dvth_p = draw(g.sigma_vth_p);
    r.global.kp_scale_n = 1.0 + draw(g.sigma_kp_rel_n);
    r.global.kp_scale_p = 1.0 + draw(g.sigma_kp_rel_p);
    // Thinner oxide -> larger Cox; tox and Cox are inversely related, and at
    // 1 % spreads the first-order reciprocal is adequate.
    r.global.cox_scale = 1.0 / (1.0 + draw(g.sigma_tox_rel));

    const auto& mm = spec_.mismatch;
    for (const auto& dev : devices) {
        if (dev.w <= 0.0 || dev.l <= 0.0)
            throw InvalidInputError("ProcessSampler: non-positive geometry for '" +
                                    dev.name + "'");
        const double inv_sqrt_area = 1.0 / std::sqrt(dev.w * dev.l);
        const double a_vt = dev.is_pmos ? mm.a_vt_p : mm.a_vt_n;
        const double a_beta = dev.is_pmos ? mm.a_beta_p : mm.a_beta_n;
        MosDelta d;
        d.dvth = draw(a_vt * inv_sqrt_area);
        d.kp_scale = 1.0 + draw(a_beta * inv_sqrt_area);
        r.local[dev.name] = d;
    }
}

Realization ProcessSampler::corner(Corner c) const {
    Realization r;
    const CornerShift shift = corner_shift(c);
    const auto& g = spec_.global;
    // "Fast" = lower threshold magnitude and higher transconductance.
    r.global.dvth_n = -shift.nmos_speed * g.sigma_vth_n;
    r.global.dvth_p = -shift.pmos_speed * g.sigma_vth_p;
    r.global.kp_scale_n = 1.0 + shift.nmos_speed * g.sigma_kp_rel_n;
    r.global.kp_scale_p = 1.0 + shift.pmos_speed * g.sigma_kp_rel_p;
    r.global.cox_scale = 1.0;
    return r;
}

} // namespace ypm::process
