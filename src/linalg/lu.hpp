#pragma once
/// \file lu.hpp
/// \brief Partial-pivot LU factorisation and linear solves for the MNA
///        kernel (real for DC Newton iterations, complex for AC sweeps).

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace ypm::linalg {

/// LU factorisation with row partial pivoting: P*A = L*U.
/// Factor once, solve for many right-hand sides (the AC sweep re-factors per
/// frequency, the DC Newton loop per iteration).
template <typename T>
class Lu {
public:
    /// Factor a square matrix. \throws ypm::NumericalError if singular to
    /// working precision.
    explicit Lu(Matrix<T> a);

    /// Solve A x = b.
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const;

    /// Solve in place (b becomes x).
    void solve_in_place(std::vector<T>& b) const;

    /// Determinant (product of pivots with sign of permutation).
    [[nodiscard]] T determinant() const;

    /// Reciprocal of the pivot-growth conditioning heuristic:
    /// min |pivot| / max |pivot|. Near zero indicates ill-conditioning.
    [[nodiscard]] double pivot_ratio() const { return pivot_ratio_; }

    [[nodiscard]] std::size_t size() const { return lu_.rows(); }

private:
    Matrix<T> lu_;
    std::vector<std::size_t> perm_;
    int sign_ = 1;
    double pivot_ratio_ = 0.0;
};

/// One-shot convenience: solve A x = b.
/// \throws ypm::NumericalError if A is singular.
template <typename T>
[[nodiscard]] std::vector<T> solve(Matrix<T> a, std::vector<T> b) {
    const Lu<T> lu(std::move(a));
    lu.solve_in_place(b);
    return b;
}

extern template class Lu<double>;
extern template class Lu<std::complex<double>>;

} // namespace ypm::linalg
