#pragma once
/// \file lu.hpp
/// \brief Partial-pivot LU factorisation and linear solves for the MNA
///        kernel (real for DC Newton iterations, complex for AC sweeps).

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace ypm::linalg {

/// LU factorisation with row partial pivoting: P*A = L*U.
/// Factor once, solve for many right-hand sides (the AC sweep re-factors per
/// frequency, the DC Newton loop per iteration).
template <typename T>
class Lu {
public:
    /// Factor a square matrix. \throws ypm::NumericalError if singular to
    /// working precision.
    explicit Lu(Matrix<T> a);

    /// Solve A x = b.
    [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const;

    /// Solve in place (b becomes x).
    void solve_in_place(std::vector<T>& b) const;

    /// Determinant (product of pivots with sign of permutation).
    [[nodiscard]] T determinant() const;

    /// Reciprocal of the pivot-growth conditioning heuristic:
    /// min |pivot| / max |pivot|. Near zero indicates ill-conditioning.
    [[nodiscard]] double pivot_ratio() const { return pivot_ratio_; }

    [[nodiscard]] std::size_t size() const { return lu_.rows(); }

private:
    Matrix<T> lu_;
    std::vector<std::size_t> perm_;
    int sign_ = 1;
    double pivot_ratio_ = 0.0;
};

/// One-shot convenience: solve A x = b.
/// \throws ypm::NumericalError if A is singular.
template <typename T>
[[nodiscard]] std::vector<T> solve(Matrix<T> a, std::vector<T> b) {
    const Lu<T> lu(std::move(a));
    lu.solve_in_place(b);
    return b;
}

/// Allocation-free factorisation workspace for repeated solves at a fixed
/// system size (the batch kernels factor thousands of same-shape MNA
/// matrices). factor() overwrites the caller's matrix with the packed LU -
/// no copy - and solve() reuses internal scratch, so the steady state
/// performs zero allocations per point.
///
/// Equivalence to Lu: the elimination arithmetic (division by the pivot,
/// the rank-1 update, the substitution sweeps) is operation-for-operation
/// identical, so for the same pivot sequence the results are bit-identical.
/// Pivot selection is also equivalent: real magnitudes compare with fabs
/// (exact, as in Lu); complex magnitudes compare *squared* (strictly
/// monotone in |.|, so the argmax matches Lu's std::abs comparisons unless
/// two magnitudes coincide below one ulp), falling back to std::abs for any
/// column whose squared maximum leaves the normal double range (underflow /
/// overflow / non-finite), which also reproduces Lu's singularity test.
template <typename T>
class InplaceLu {
public:
    /// Factor `a` in place (it becomes the packed LU).
    /// \throws ypm::NumericalError under exactly the condition, and with
    /// the same message, as Lu's constructor (singular / non-finite).
    void factor(Matrix<T>& a);

    /// Solve LU x = b with the matrix last passed to factor(). `b` is left
    /// untouched; the substitution runs directly in `x` (resized, reused).
    /// Identical arithmetic to Lu::solve_in_place, minus its copies.
    void solve(const Matrix<T>& lu, const std::vector<T>& b,
               std::vector<T>& x) const;

private:
    std::vector<std::size_t> perm_;
};

extern template class Lu<double>;
extern template class Lu<std::complex<double>>;
extern template class InplaceLu<double>;
extern template class InplaceLu<std::complex<double>>;

} // namespace ypm::linalg
