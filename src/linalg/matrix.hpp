#pragma once
/// \file matrix.hpp
/// \brief Dense row-major matrix used by the MNA kernel.
///
/// MNA systems in this project are small (tens of unknowns), so a dense
/// matrix with partial-pivot LU is both simpler and faster than a sparse
/// package at this scale. The template is instantiated for double (DC) and
/// std::complex<double> (AC).

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

namespace ypm::linalg {

template <typename T>
class Matrix {
public:
    Matrix() = default;

    /// rows x cols matrix, zero-initialised.
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

    /// Square n x n matrix, zero-initialised.
    explicit Matrix(std::size_t n) : Matrix(n, n) {}

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }
    [[nodiscard]] bool square() const { return rows_ == cols_; }

    [[nodiscard]] T& operator()(std::size_t i, std::size_t j) {
        assert(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }
    [[nodiscard]] const T& operator()(std::size_t i, std::size_t j) const {
        assert(i < rows_ && j < cols_);
        return data_[i * cols_ + j];
    }

    /// Reset every entry to zero, keeping the shape (reused across Newton
    /// iterations to avoid reallocation).
    void set_zero() { std::fill(data_.begin(), data_.end(), T{}); }

    /// Raw storage (row major).
    [[nodiscard]] const std::vector<T>& data() const { return data_; }
    [[nodiscard]] std::vector<T>& data() { return data_; }

    /// Identity matrix of size n.
    [[nodiscard]] static Matrix identity(std::size_t n) {
        Matrix m(n);
        for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
        return m;
    }

    /// Matrix-vector product y = A * x.
    [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const {
        assert(x.size() == cols_);
        std::vector<T> y(rows_, T{});
        for (std::size_t i = 0; i < rows_; ++i) {
            T acc{};
            const T* row = &data_[i * cols_];
            for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * x[j];
            y[i] = acc;
        }
        return y;
    }

    /// Infinity norm (max absolute row sum).
    [[nodiscard]] double norm_inf() const {
        double best = 0.0;
        for (std::size_t i = 0; i < rows_; ++i) {
            double s = 0.0;
            for (std::size_t j = 0; j < cols_; ++j) s += std::abs(data_[i * cols_ + j]);
            if (s > best) best = s;
        }
        return best;
    }

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;

} // namespace ypm::linalg
