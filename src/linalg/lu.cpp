#include "linalg/lu.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace ypm::linalg {

template <typename T>
Lu<T>::Lu(Matrix<T> a) : lu_(std::move(a)) {
    if (!lu_.square()) throw NumericalError("Lu: matrix must be square");
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});

    double min_pivot = std::numeric_limits<double>::infinity();
    double max_pivot = 0.0;

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude in column k.
        std::size_t piv = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t i = k + 1; i < n; ++i) {
            const double mag = std::abs(lu_(i, k));
            if (mag > best) {
                best = mag;
                piv = i;
            }
        }
        if (best == 0.0 || !std::isfinite(best))
            throw NumericalError("Lu: singular or non-finite matrix at column " +
                                 std::to_string(k));
        if (piv != k) {
            for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
            std::swap(perm_[k], perm_[piv]);
            sign_ = -sign_;
        }
        min_pivot = std::min(min_pivot, best);
        max_pivot = std::max(max_pivot, best);

        const T pivot = lu_(k, k);
        for (std::size_t i = k + 1; i < n; ++i) {
            const T factor = lu_(i, k) / pivot;
            lu_(i, k) = factor;
            if (factor == T{}) continue;
            for (std::size_t j = k + 1; j < n; ++j)
                lu_(i, j) -= factor * lu_(k, j);
        }
    }
    pivot_ratio_ = max_pivot > 0.0 ? min_pivot / max_pivot : 0.0;
}

template <typename T>
void Lu<T>::solve_in_place(std::vector<T>& b) const {
    const std::size_t n = lu_.rows();
    if (b.size() != n) throw NumericalError("Lu::solve: rhs size mismatch");

    // Apply permutation: y = P b.
    std::vector<T> y(n);
    for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];

    // Forward substitution L z = y (unit diagonal).
    for (std::size_t i = 1; i < n; ++i) {
        T acc = y[i];
        for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
        y[i] = acc;
    }
    // Back substitution U x = z.
    for (std::size_t ii = n; ii-- > 0;) {
        T acc = y[ii];
        for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * y[j];
        y[ii] = acc / lu_(ii, ii);
    }
    b = std::move(y);
}

template <typename T>
std::vector<T> Lu<T>::solve(const std::vector<T>& b) const {
    std::vector<T> x = b;
    solve_in_place(x);
    return x;
}

template <typename T>
T Lu<T>::determinant() const {
    T det = static_cast<T>(sign_);
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
    return det;
}

template class Lu<double>;
template class Lu<std::complex<double>>;

namespace {

/// Cheap pivot weight: strictly monotone in |v| within normal double range.
inline double pivot_weight(double v) { return std::fabs(v); }
inline double pivot_weight(const std::complex<double>& v) {
    return v.real() * v.real() + v.imag() * v.imag();
}

/// Is a squared-magnitude column maximum trustworthy as an ordering? Only
/// while it stays a normal double (no underflow, overflow or NaN).
inline bool weight_reliable(double best) {
    return std::isfinite(best) && best >= std::numeric_limits<double>::min();
}

} // namespace

template <typename T>
void InplaceLu<T>::factor(Matrix<T>& a) {
    const std::size_t n = a.rows();
    if (!a.square()) throw NumericalError("Lu: matrix must be square");
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});
    T* data = a.data().data();

    for (std::size_t k = 0; k < n; ++k) {
        // Fast pivot search on the cheap weight.
        std::size_t piv = k;
        double best = pivot_weight(data[k * n + k]);
        for (std::size_t i = k + 1; i < n; ++i) {
            const double mag = pivot_weight(data[i * n + k]);
            if (mag > best) {
                best = mag;
                piv = i;
            }
        }
        if constexpr (!std::is_same_v<T, double>) {
            if (!weight_reliable(best)) {
                // Degenerate weights (underflow, overflow, NaN): redo the
                // column with Lu's exact std::abs comparisons so selection
                // and the singularity test match Lu bit-for-bit.
                piv = k;
                double best_abs = std::abs(data[k * n + k]);
                for (std::size_t i = k + 1; i < n; ++i) {
                    const double mag = std::abs(data[i * n + k]);
                    if (mag > best_abs) {
                        best_abs = mag;
                        piv = i;
                    }
                }
                if (best_abs == 0.0 || !std::isfinite(best_abs))
                    throw NumericalError(
                        "Lu: singular or non-finite matrix at column " +
                        std::to_string(k));
            }
        } else {
            if (best == 0.0 || !std::isfinite(best))
                throw NumericalError(
                    "Lu: singular or non-finite matrix at column " +
                    std::to_string(k));
        }
        if (piv != k) {
            for (std::size_t j = 0; j < n; ++j)
                std::swap(data[k * n + j], data[piv * n + j]);
            std::swap(perm_[k], perm_[piv]);
        }

        const T pivot = data[k * n + k];
        const T* row_k = data + k * n;
        for (std::size_t i = k + 1; i < n; ++i) {
            T* row_i = data + i * n;
            const T factor = row_i[k] / pivot;
            row_i[k] = factor;
            if (factor == T{}) continue;
            for (std::size_t j = k + 1; j < n; ++j) row_i[j] -= factor * row_k[j];
        }
    }
}

template <typename T>
void InplaceLu<T>::solve(const Matrix<T>& lu, const std::vector<T>& b,
                         std::vector<T>& x) const {
    const std::size_t n = lu.rows();
    if (b.size() != n || perm_.size() != n)
        throw NumericalError("InplaceLu::solve: size mismatch");
    const T* data = lu.data().data();

    x.resize(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
    for (std::size_t i = 1; i < n; ++i) {
        T acc = x[i];
        const T* row = data + i * n;
        for (std::size_t j = 0; j < i; ++j) acc -= row[j] * x[j];
        x[i] = acc;
    }
    for (std::size_t ii = n; ii-- > 0;) {
        T acc = x[ii];
        const T* row = data + ii * n;
        for (std::size_t j = ii + 1; j < n; ++j) acc -= row[j] * x[j];
        x[ii] = acc / row[ii];
    }
}

template class InplaceLu<double>;
template class InplaceLu<std::complex<double>>;

} // namespace ypm::linalg
