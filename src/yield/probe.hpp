#pragma once
/// \file probe.hpp
/// \brief Tiered yield probes: cheap, hard-budgeted yield estimates for the
///        optimiser's inner loop (the moo::RobustnessFn side of the
///        MOO <-> yield boundary).
///
/// A probe is the *lower tier* of the two-tier recipe core::YieldFlow runs:
/// during the GA, every probed individual gets a low-budget, coarse-CI
/// estimate from the same estimator zoo and the same SequentialYieldRunner
/// the certification tier uses - only the configuration differs (a hard
/// per-point sample budget, a loose half-width target, and warm-started
/// proposals instead of a fresh pilot per point). Near the front, the full
/// sequential certification run (run_adaptive_yield) remains the authority;
/// the probe's job is steering selection, not certifying yield.
///
/// Determinism contract (matches the rest of the yield stack):
///  * point i of a probe call derives its RNG as rng.child(i + 1) - from
///    the submission position, never from thread timing - so a probe batch
///    is bit-identical across engine scheduling and inflight windows;
///  * every per-point estimate inherits the runner's inflight-window
///    invariance (overshoot is drained, never folded);
///  * warm-start state advances only on folded results, in point order, so
///    the generation-to-generation proposal hand-off is deterministic too.
///
/// Warm start: the first cold probe whose pilot actually located failures
/// donates its fitted mixture; later probe calls (higher generations) skip
/// the pilot and spend the whole budget on main-stage chunks drawn from the
/// carried proposal. Importance weights stay exact under any proposal, so a
/// stale warm proposal costs variance, never bias.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "yield/estimator.hpp"
#include "yield/sequential.hpp"

namespace ypm::yield {

/// Builds the per-design-point chunk-kernel factory: given one individual's
/// physical parameters, return the KernelFactory the runner draws chunks
/// from. Copied into each runner; anything captured by reference must
/// outlive the probe call.
using PointKernelFactory =
    std::function<KernelFactory(const std::vector<double>& params)>;

struct ProbeConfig {
    /// Problem-level base knobs (chunk size, shift-fit clamps, ...); the
    /// probe overrides the budget-tier knobs below. The base's own
    /// max/min/target are ignored - the probe budget is the authority.
    SequentialConfig sequential;
    /// Estimator-zoo member the probe runs (empty selects plain_mc). Must
    /// be probe-compatible: its configured pilot has to leave at least one
    /// main-stage sample inside `budget` (see configure_probe_estimator).
    std::string estimator;
    /// Hard per-point sample budget, pilot included. The probe never spends
    /// more than this on one individual.
    std::size_t budget = 128;
    /// Coarse early-stop CI half-width (0 spends the full budget). Probes
    /// steer selection, so ~0.08 is plenty; certification tightens later.
    double target_half_width = 0.08;
    /// Carry fitted proposals across probe calls (generations): once a cold
    /// pilot has located failures, later points skip their pilots and spend
    /// the whole budget on main-stage chunks.
    bool warm_start = true;
    /// A pilot fit backed by fewer failing samples than this is too noisy
    /// to carry forward; keep probing cold until one qualifies.
    std::size_t min_warm_failures = 4;
};

/// One probed individual.
struct ProbeResult {
    WeightedYieldEstimate estimate;
    std::size_t samples_used = 0; ///< pilot + folded main-stage samples
    bool warm_started = false;    ///< ran from a carried proposal (no pilot)
    bool reached_target = false;
};

/// Specialize `name` (empty = plain_mc) onto `base` for probe duty: resolve
/// it from the EstimatorRegistry, apply its family knobs, then clamp the
/// sample caps to the probe `budget` and set the coarse `target_half_width`.
/// \throws ypm::InvalidInputError on an unknown name (the registry's
/// listing error), and on a *valid but probe-incompatible* estimator - one
/// whose configured pilot leaves no main-stage sample inside the budget -
/// with the probe-compatible subset of the zoo listed, so the caller can
/// pick a substitute instead of silently degrading.
[[nodiscard]] SequentialConfig
configure_probe_estimator(const std::string& name, SequentialConfig base,
                          std::size_t budget, double target_half_width);

/// Batched low-budget yield estimation for one cohort of design points,
/// streamed through a shared engine (pilots together, then main chunks
/// round-robin with each runner's configured inflight window) so probe
/// chunks overlap on the engine's pool exactly like certification chunks.
/// Stateful across calls: warm-start proposals carry from one generation's
/// probe call to the next.
class YieldProbe {
public:
    /// \throws ypm::InvalidInputError on empty specs, a null factory, a
    ///         zero budget, or a probe-incompatible estimator selection
    ///         (see configure_probe_estimator).
    YieldProbe(ProbeConfig config, std::vector<mc::Spec> specs,
               PointKernelFactory factory, std::size_t dimension);

    /// Probe every point (point i uses rng.child(i + 1)); `generation` is
    /// observational (trace instants). Deterministic in (points, rng).
    [[nodiscard]] std::vector<ProbeResult>
    probe(eval::Engine& engine, const std::vector<std::vector<double>>& points,
          Rng rng, std::size_t generation);

    /// Samples spent across all probe calls so far (pilot + folded main).
    [[nodiscard]] std::size_t total_samples() const { return total_samples_; }

    /// The carried warm-start proposal (empty components until a cold pilot
    /// qualifies).
    [[nodiscard]] const process::ProposalMixture& warm_proposal() const {
        return warm_;
    }

    [[nodiscard]] const SequentialConfig& cold_config() const {
        return cold_config_;
    }

private:
    [[nodiscard]] SequentialConfig warm_config() const;

    ProbeConfig config_;
    std::vector<mc::Spec> specs_;
    PointKernelFactory factory_;
    std::size_t dimension_ = 0;
    SequentialConfig cold_config_;
    process::ProposalMixture warm_;
    std::size_t total_samples_ = 0;
};

} // namespace ypm::yield
