#include "yield/probe.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::yield {

namespace {

/// Probe instruments, resolved once (same discipline as YieldMetrics in
/// sequential.cpp: a few relaxed atomic adds per probe call).
struct ProbeMetrics {
    obs::Counter& points;
    obs::Counter& samples;
    obs::Counter& warm_starts;

    static ProbeMetrics& get() {
        auto& registry = obs::MetricsRegistry::global();
        static ProbeMetrics metrics{registry.counter("probe.points"),
                                    registry.counter("probe.samples"),
                                    registry.counter("probe.warm_starts")};
        return metrics;
    }
};

/// Clamp the per-point caps of an already-specialized config to the probe
/// budget left after its pilot.
SequentialConfig clamp_to_budget(SequentialConfig cfg, std::size_t budget,
                                 double target_half_width) {
    cfg.max_samples = budget - std::min(cfg.pilot_samples, budget);
    cfg.chunk_samples = std::max<std::size_t>(
        1, std::min(cfg.chunk_samples, cfg.max_samples));
    cfg.min_samples = std::min(cfg.min_samples, cfg.max_samples);
    cfg.target_half_width = target_half_width;
    return cfg;
}

} // namespace

SequentialConfig configure_probe_estimator(const std::string& name,
                                           SequentialConfig base,
                                           std::size_t budget,
                                           double target_half_width) {
    if (budget == 0)
        throw InvalidInputError("yield probe: budget must be >= 1 sample");
    const EstimatorRegistry& registry = EstimatorRegistry::instance();
    const std::string resolved = name.empty() ? "plain_mc" : name;
    // Unknown names throw the registry's own listing error here.
    const SequentialConfig cfg = registry.create(resolved)->configure(base);
    if (cfg.pilot_samples + 1 > budget) {
        // Valid estimator, invalid tier: its pilot leaves no main-stage
        // sample inside the probe budget. List the compatible subset of the
        // zoo so the caller can substitute instead of silently degrading.
        std::vector<std::string> compatible;
        for (const std::string& candidate : registry.names()) {
            const SequentialConfig trial =
                registry.create(candidate)->configure(base);
            if (trial.pilot_samples + 1 <= budget) compatible.push_back(candidate);
        }
        throw InvalidInputError(
            "yield probe: estimator '" + resolved + "' needs " +
            std::to_string(cfg.pilot_samples) +
            " pilot samples plus >= 1 main-stage sample, which does not fit "
            "the probe budget of " +
            std::to_string(budget) +
            "; raise the budget or pick a probe-compatible estimator: " +
            (compatible.empty() ? std::string("(none at this budget)")
                                : str::join(compatible, ", ")));
    }
    return clamp_to_budget(cfg, budget, target_half_width);
}

YieldProbe::YieldProbe(ProbeConfig config, std::vector<mc::Spec> specs,
                       PointKernelFactory factory, std::size_t dimension)
    : config_(std::move(config)), specs_(std::move(specs)),
      factory_(std::move(factory)), dimension_(dimension) {
    if (specs_.empty())
        throw InvalidInputError("YieldProbe: need >= 1 spec");
    if (!factory_)
        throw InvalidInputError("YieldProbe: null point kernel factory");
    cold_config_ = configure_probe_estimator(
        config_.estimator, config_.sequential, config_.budget,
        config_.target_half_width);
}

SequentialConfig YieldProbe::warm_config() const {
    SequentialConfig cfg = cold_config_;
    cfg.pilot_samples = 0;
    cfg.initial_proposal = warm_;
    return clamp_to_budget(cfg, config_.budget, config_.target_half_width);
}

std::vector<ProbeResult>
YieldProbe::probe(eval::Engine& engine,
                  const std::vector<std::vector<double>>& points, Rng rng,
                  std::size_t generation) {
    const std::size_t n = points.size();
    std::vector<ProbeResult> results(n);
    if (n == 0) return results;

    const bool warm = config_.warm_start && !warm_.components.empty();
    const SequentialConfig cfg = warm ? warm_config() : cold_config_;

    // Point i derives its RNG from its submission position (child(i + 1),
    // matching run_adaptive_yield), so the batch is invariant to scheduling.
    std::vector<std::unique_ptr<SequentialYieldRunner>> runners;
    runners.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        runners.push_back(std::make_unique<SequentialYieldRunner>(
            engine, cfg, specs_, factory_(points[i]), dimension_,
            rng.child(i + 1)));

    // Pilots streamed together: every pilot is in flight before the first
    // is waited on, so they overlap on the engine's pool.
    for (auto& r : runners) r->submit_pilot();
    for (auto& r : runners) r->finish_pilot();

    // Main stage, round-robin: keep each unfinished runner's window full,
    // retire one chunk per runner per sweep. Each runner's folded estimate
    // is window-invariant (overshoot drains, never folds), so the sweep
    // order affects only overlap, never results.
    const std::size_t window = std::max<std::size_t>(cfg.inflight, 1);
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto& r : runners) {
            if (r->done()) continue;
            while (r->in_flight() < window && r->submit_chunk() > 0) {
            }
        }
        for (auto& r : runners) {
            if (r->done()) continue;
            if (r->retire_chunk()) progressed = true;
            if (r->done()) (void)r->drain_overshoot();
        }
    }

    std::size_t call_samples = 0;
    for (std::size_t i = 0; i < n; ++i) {
        SequentialYieldResult res = runners[i]->finish();
        results[i].estimate = res.estimate;
        results[i].samples_used = res.samples_used + res.pilot_samples;
        results[i].warm_started = warm;
        results[i].reached_target = res.reached_target;
        call_samples += results[i].samples_used;

        // Warm-start hand-off: the last cold point this call whose pilot
        // located enough failures donates its fitted proposal. Advances in
        // point order on folded results only - deterministic.
        if (config_.warm_start && !warm &&
            res.shift_pilot_failures >= config_.min_warm_failures &&
            res.proposal.active())
            warm_ = res.proposal;
    }
    total_samples_ += call_samples;

    ProbeMetrics& metrics = ProbeMetrics::get();
    metrics.points.add(n);
    metrics.samples.add(call_samples);
    if (warm) metrics.warm_starts.add(n);
    if (obs::Tracer::enabled())
        obs::Tracer::instant("yield.probe", "yield",
                             {{"generation", static_cast<double>(generation)},
                              {"points", static_cast<double>(n)},
                              {"samples", static_cast<double>(call_samples)},
                              {"warm", warm ? 1.0 : 0.0}});
    return results;
}

} // namespace ypm::yield
