#pragma once
/// \file estimator.hpp
/// \brief The estimator zoo: a named YieldEstimator policy interface plus a
///        name -> factory registry.
///
/// Every yield estimator in this repo is a *policy over the one sequential
/// driver* (yield::SequentialYieldRunner), not a separate sampling loop: an
/// estimator takes a scenario-level base configuration (pilot size, chunk
/// size, sample caps, CI target - the knobs that belong to the problem) and
/// specializes the family-defining knobs (proposal form, CE refinement,
/// scale adaptation, component merging, control variates - the knobs that
/// belong to the method). This keeps the determinism and inflight-window
/// invariance guarantees of the driver uniform across the whole zoo, and it
/// is what lets one conformance suite and one benchmark matrix iterate over
/// every registered estimator by name.
///
/// Built-in zoo (registered lazily on first registry access):
///   plain_mc         - no pilot, nominal proposal: plain Monte Carlo.
///   single_shift     - pilot + single combined mean shift (ISLE).
///   mixture_ce       - defensive mixture + one cross-entropy mean refit.
///   mixture_ce_scale - mixture_ce whose CE refit also learns per-component
///                      diagonal variances (ShiftFitConfig::adapt_scale).
///   mixture_merge    - mixture_ce with Mahalanobis component merging
///                      (ShiftFitConfig::merge_distance).
///   control_variate  - single-stage mixture proposal with the regression
///                      estimator on the exact likelihood ratios
///                      (ControlVariateOptions, auto beta).
///
/// Adding an estimator: implement YieldEstimator (usually just configure()),
/// register a factory under a new name, and give it a column floor in
/// scripts/check_matrix.py - the bench-matrix CI job then gates it on every
/// scenario automatically.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "yield/sequential.hpp"

namespace ypm::yield {

/// One named estimation policy. Stateless: estimate() may be called
/// concurrently on distinct engines.
class YieldEstimator {
public:
    virtual ~YieldEstimator() = default;

    /// Registry name (stable identifier used by FlowConfig, the benchmark
    /// matrix and the conformance suite).
    [[nodiscard]] virtual std::string_view name() const = 0;

    /// Specialize a scenario-level base configuration for this estimator.
    /// Implementations override only their family-defining knobs and leave
    /// the problem-level knobs (chunk size, caps, CI target) alone, so one
    /// scenario definition drives every estimator comparably.
    [[nodiscard]] virtual SequentialConfig
    configure(SequentialConfig base) const = 0;

    /// Run one design point to completion under this policy: construct a
    /// SequentialYieldRunner on configure(base) and run() it. \throws
    /// whatever the runner constructor throws on an invalid configuration.
    [[nodiscard]] SequentialYieldResult
    estimate(eval::Engine& engine, const SequentialConfig& base,
             const std::vector<mc::Spec>& specs, const KernelFactory& factory,
             std::size_t dimension, Rng rng) const;
};

using EstimatorFactory = std::function<std::unique_ptr<YieldEstimator>()>;

/// Process-wide name -> factory registry. Built-ins are registered lazily
/// on first access (instance() construction), so a static-library link
/// cannot drop them; user estimators register on top at any time.
class EstimatorRegistry {
public:
    [[nodiscard]] static EstimatorRegistry& instance();

    /// \throws ypm::InvalidInputError on an empty name, a null factory, or
    ///         a duplicate registration (a silent overwrite would let two
    ///         translation units fight over a name).
    void add(std::string name, EstimatorFactory factory);

    [[nodiscard]] bool contains(std::string_view name) const;

    /// \throws ypm::InvalidInputError on an unknown name; the message lists
    ///         the registered names (the FlowConfig selection error).
    [[nodiscard]] std::unique_ptr<YieldEstimator>
    create(std::string_view name) const;

    /// All registered names, sorted - the iteration order of the
    /// conformance suite and the benchmark matrix.
    [[nodiscard]] std::vector<std::string> names() const;

private:
    EstimatorRegistry();
    std::vector<std::pair<std::string, EstimatorFactory>> entries_;
};

} // namespace ypm::yield
