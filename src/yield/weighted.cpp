#include "yield/weighted.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ypm::yield {

namespace {

/// The unweighted estimate from pooled counts: identical numbers to
/// mc::yield_from_flags over a population with these counts. Shared by the
/// flag-level reduction and combine_stage_estimates' all-unweighted branch.
WeightedYieldEstimate unweighted_from_counts(std::size_t samples,
                                             std::size_t passes) {
    WeightedYieldEstimate e;
    e.samples = samples;
    e.passes = passes;
    e.yield = samples > 0 ? static_cast<double>(passes) /
                                static_cast<double>(samples)
                          : 0.0;
    const auto [lo, hi] = mc::wilson_interval(passes, samples);
    e.ci_low = lo;
    e.ci_high = hi;
    e.ess = static_cast<double>(samples);
    const std::size_t fails = samples - passes;
    e.max_weight_share = fails > 0 ? 1.0 / static_cast<double>(fails) : 0.0;
    e.weighted = false;
    e.fail_weight_sum = static_cast<double>(fails);
    e.fail_weight_sq_sum = static_cast<double>(fails);
    e.fail_weight_max = fails > 0 ? 1.0 : 0.0;
    return e;
}

/// The unweighted reduction: identical numbers to mc::yield_from_flags.
WeightedYieldEstimate unweighted_estimate(const std::vector<bool>& pass) {
    const mc::YieldEstimate base = mc::yield_from_flags(pass);
    return unweighted_from_counts(base.samples, base.passes);
}

/// The weighted estimator from pooled fail-side moments - shared by the
/// single-run path (weighted_yield_from_flags) and the per-stage
/// combination (combine_stage_estimates), so their CI and fallback
/// behaviour can never drift apart.
WeightedYieldEstimate weighted_from_moments(std::size_t n, std::size_t passes,
                                            double x_sum, double x2_sum,
                                            double w_max) {
    WeightedYieldEstimate e;
    e.samples = n;
    e.passes = passes;
    e.weighted = true;
    e.fail_weight_sum = x_sum;
    e.fail_weight_sq_sum = x2_sum;
    e.fail_weight_max = w_max;
    const double nd = static_cast<double>(n);
    const double p_fail = x_sum / nd;
    e.yield = std::clamp(1.0 - p_fail, 0.0, 1.0);
    e.ess = x2_sum > 0.0 ? x_sum * x_sum / x2_sum : 0.0;
    e.max_weight_share = x_sum > 0.0 ? w_max / x_sum : 0.0;

    // No observed failures: the sample variance is 0 and the delta-method
    // CI would collapse to the point [1, 1] - certifying exactly 100 %
    // yield on *absence* of evidence, which even plain MC's Wilson bound
    // refuses to do. Report the clean-sweep Wilson interval instead: n
    // draws from a failure-directed proposal with no failures are at least
    // as strong evidence as n nominal draws, so the nominal n/n bound is
    // conservative. The zero ESS still flags the estimate as untrustworthy.
    if (x_sum == 0.0) {
        const auto [lo, hi] = mc::wilson_interval(n, n);
        e.ci_low = lo;
        e.ci_high = hi;
        return e;
    }

    if (n <= 1) {
        e.ci_low = 0.0;
        e.ci_high = 1.0;
        return e;
    }

    // Standard error of the sample mean of x_i = w_i * fail_i. The pass
    // samples contribute x_i = 0, so the moments above are complete.
    const double var =
        std::max(0.0, (x2_sum - x_sum * x_sum / nd) / (nd - 1.0));
    const double hw = mc::kZ95 * std::sqrt(var / nd);

    // Exactly one observed failure: the sample variance rests on a single
    // nonzero term and the delta-method half-width can be spuriously tight
    // (a lucky small-weight failure would certify a bound the sampling
    // never supported). Mirror the zero-failure fallback: widen to at
    // least the one-failure Wilson half-width and keep the upper edge at 1
    // until a second fail-side sample is seen.
    const std::size_t fails = n - passes;
    if (fails == 1) {
        const auto [lo, hi] = mc::wilson_interval(n - 1, n);
        const double wide = std::max(hw, 0.5 * (hi - lo));
        e.ci_low = std::clamp(e.yield - wide, 0.0, 1.0);
        e.ci_high = 1.0;
        return e;
    }

    e.ci_low = std::clamp(e.yield - hw, 0.0, 1.0);
    e.ci_high = std::clamp(e.yield + hw, 0.0, 1.0);
    return e;
}

} // namespace

WeightedYieldEstimate
weighted_yield_from_flags(const std::vector<bool>& pass,
                          const std::vector<double>& log_weights) {
    if (!log_weights.empty() && log_weights.size() != pass.size())
        throw InvalidInputError(
            "weighted_yield_from_flags: flag/weight size mismatch");

    bool any_weighted = false;
    for (double lw : log_weights) {
        if (!std::isfinite(lw))
            throw InvalidInputError(
                "weighted_yield_from_flags: non-finite log weight");
        if (lw != 0.0) any_weighted = true;
    }
    if (!any_weighted) return unweighted_estimate(pass);

    // Unnormalized fail-side estimator (see header): the likelihood ratio
    // is exact, so E_q[w * fail] is the true failure probability and only
    // the failing samples' (bounded) weights enter the estimate. The
    // pass-side weights - unbounded under a failure-directed shift - never
    // touch the sums.
    const std::size_t n = pass.size();
    double x_sum = 0.0;  // sum of w_i * fail_i
    double x2_sum = 0.0; // sum of (w_i * fail_i)^2
    double w_max = 0.0;  // largest fail-side weight
    std::size_t passes = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (pass[i]) {
            ++passes;
            continue;
        }
        const double w = std::exp(log_weights[i]);
        x_sum += w;
        x2_sum += w * w;
        w_max = std::max(w_max, w);
    }
    if (!std::isfinite(x_sum))
        throw NumericalError(
            "weighted_yield_from_flags: fail-side weight overflow (shift "
            "points away from the failure region?)");

    return weighted_from_moments(n, passes, x_sum, x2_sum, w_max);
}

WeightedYieldEstimate
control_variate_yield(const std::vector<bool>& pass,
                      const std::vector<double>& log_weights,
                      const ControlVariateOptions& options) {
    // Inert control: delegate verbatim so the reduction is bit-identical
    // (same code path, not a reimplementation that happens to agree).
    if (!options.enabled || (!options.auto_beta && options.beta == 0.0))
        return weighted_yield_from_flags(pass, log_weights);

    WeightedYieldEstimate base = weighted_yield_from_flags(pass, log_weights);
    // Plain MC (w constant at 1): Var(w) = 0, no control variate exists.
    if (!base.weighted) return base;
    // Fewer than two observed failures: the fail-side path's Wilson
    // fallbacks are the honest report; a regression CI from this little
    // evidence would be spuriously tight.
    if (base.samples - base.passes < 2) return base;

    const std::size_t n = pass.size();
    const double nd = static_cast<double>(n);
    std::vector<double> w(n);
    double w_sum = 0.0, w2_sum = 0.0, xw_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        w[i] = std::exp(log_weights[i]);
        w_sum += w[i];
        w2_sum += w[i] * w[i];
        if (!pass[i]) xw_sum += w[i] * w[i]; // x_i = w_i on failures
    }
    if (!std::isfinite(w_sum) || !std::isfinite(w2_sum))
        throw NumericalError(
            "control_variate_yield: likelihood-ratio moment overflow");

    double beta = options.beta;
    if (options.auto_beta) {
        const double var_w = w2_sum - w_sum * w_sum / nd;
        if (!(var_w > 0.0)) return base; // degenerate control
        const double cov_xw = xw_sum - base.fail_weight_sum * w_sum / nd;
        beta = cov_xw / var_w;
    }
    if (options.max_beta > 0.0)
        beta = std::clamp(beta, -options.max_beta, options.max_beta);
    if (beta == 0.0) return base;

    // phat_cv = mean(y) with residuals y_i = x_i - beta * (w_i - 1); the
    // CI is the delta-method interval on the residual sample variance.
    double y_sum = 0.0, y2_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double x = pass[i] ? 0.0 : w[i];
        const double y = x - beta * (w[i] - 1.0);
        y_sum += y;
        y2_sum += y * y;
    }
    base.control_beta = beta;
    base.yield = std::clamp(1.0 - y_sum / nd, 0.0, 1.0);
    const double var =
        std::max(0.0, (y2_sum - y_sum * y_sum / nd) / (nd - 1.0));
    const double hw = mc::kZ95 * std::sqrt(var / nd);
    base.ci_low = std::clamp(base.yield - hw, 0.0, 1.0);
    base.ci_high = std::clamp(base.yield + hw, 0.0, 1.0);
    return base;
}

WeightedYieldEstimate
combine_stage_estimates(const std::vector<WeightedYieldEstimate>& stages) {
    std::vector<const WeightedYieldEstimate*> live;
    live.reserve(stages.size());
    for (const WeightedYieldEstimate& s : stages)
        if (s.samples > 0) live.push_back(&s);
    if (live.empty()) return weighted_yield_from_flags({}, {});
    if (live.size() == 1) return *live.front();

    std::size_t n = 0, passes = 0;
    double x_sum = 0.0, x2_sum = 0.0, w_max = 0.0;
    bool any_weighted = false;
    for (const WeightedYieldEstimate* s : live) {
        n += s->samples;
        passes += s->passes;
        x_sum += s->fail_weight_sum;
        x2_sum += s->fail_weight_sq_sum;
        w_max = std::max(w_max, s->fail_weight_max);
        any_weighted = any_weighted || s->weighted;
    }

    // Every stage unweighted: the pooled data is one plain MC population,
    // so report the pooled Wilson numbers (identical to concatenating the
    // flags) instead of pretending a weighted estimate.
    if (!any_weighted) return unweighted_from_counts(n, passes);

    return weighted_from_moments(n, passes, x_sum, x2_sum, w_max);
}

void append_flags_and_weights(const std::vector<std::vector<double>>& rows,
                              const std::vector<mc::Spec>& specs,
                              std::size_t arity, std::vector<bool>& flags,
                              std::vector<double>& log_weights) {
    flags.reserve(flags.size() + rows.size());
    log_weights.reserve(log_weights.size() + rows.size());
    for (const auto& row : rows) {
        if (row.size() != arity)
            throw InvalidInputError(
                "yield kernel row arity mismatch (expected the spec "
                "performances followed by the log-weight column)");
        bool all = true;
        for (std::size_t c = 0; c < specs.size(); ++c)
            if (!specs[c].pass(row[c])) {
                all = false;
                break;
            }
        flags.push_back(all);
        log_weights.push_back(row[specs.size()]);
    }
}

WeightedYieldEstimate
estimate_weighted_yield(const std::vector<std::vector<double>>& rows,
                        const std::vector<mc::Spec>& specs) {
    std::vector<bool> flags;
    std::vector<double> log_weights;
    append_flags_and_weights(rows, specs, specs.size() + 1, flags, log_weights);
    return weighted_yield_from_flags(flags, log_weights);
}

} // namespace ypm::yield
