#pragma once
/// \file scenarios.hpp
/// \brief Shared scenario registry for the yield estimator zoo: the named
///        benchmark/test problems that bench_yield_is, bench_yield_matrix
///        and the unit/conformance suites all build from one definition -
///        the spec thresholds, calibration seeds and kernel constants live
///        here exactly once, so a CI gate and a unit test can never drift
///        apart on "the bimodal scenario".
///
/// Scenarios come in two families:
///  - OTA scenarios (rare_ota, bimodal_ota): the paper's OTA testbench
///    under c35 process variation, with specs *calibrated* from a small
///    fixed-seed MC population (Rng(71), 512 samples - the exact
///    calibration the yield benches have always used, so the historical
///    gate numbers are preserved bit-for-bit);
///  - synthetic scenarios (synthetic_bimodal, highdim_synthetic,
///    clean_sweep): closed-form kernels over standardized coordinates,
///    cheap enough for unit tests and high-dimensional stress.
///
/// Layering note: this module lives in src/yield/ because it *is* yield
/// test/bench infrastructure, but the OTA scenarios reach up into
/// circuits/ + core/ for the testbench kernel. Nothing else in src/yield/
/// may include core headers.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "eval/engine.hpp"
#include "mc/yield.hpp"
#include "process/sampler.hpp"
#include "util/rng.hpp"
#include "yield/sequential.hpp"
#include "yield/weighted.hpp"

namespace ypm::yield {

/// One named yield-estimation problem: specs, kernel, and the
/// *problem-level* driver knobs (pilot/chunk sizes, caps, CI target) every
/// estimator starts from. Estimators specialize the method knobs on top
/// (see yield/estimator.hpp).
struct Scenario {
    std::string name;
    std::string description; ///< one line for the matrix CSV / logs
    std::vector<mc::Spec> specs;
    KernelFactory factory;
    std::size_t dimension = 0; ///< standardized process-space dimension
    /// Scenario-level base configuration (problem knobs populated; method
    /// knobs at their defaults for estimators to overwrite).
    SequentialConfig config;
    /// Default brute-force reference population for scenario_reference().
    std::size_t reference_samples = 0;
    /// Keeps alive whatever the factory captures by reference (the OTA
    /// evaluator/sampler); empty for self-contained synthetic kernels.
    std::shared_ptr<const void> backing;
};

/// Construction-time overrides. Defaults reproduce the historical bench
/// constants; the benches map their env knobs (YPM_BENCH_YIELD_TARGET,
/// YPM_BENCH_YIELD_SIGMA, ...) onto these fields.
struct ScenarioOptions {
    /// CI half-width target for the OTA scenarios (synthetic scenarios own
    /// tighter targets; see scenarios.cpp). <= 0 keeps the default 0.0035.
    double target_half_width = 0.0;
    /// OTA spec depth in calibrated sigmas. <= 0 keeps the default 2.4.
    double spec_depth = 0.0;
    /// Override the default brute-force reference population; 0 keeps the
    /// scenario default.
    std::size_t reference_samples = 0;
};

/// All registered scenario names, in registry order:
/// {rare_ota, bimodal_ota, synthetic_bimodal, highdim_synthetic,
///  clean_sweep}.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Build one scenario by name. OTA scenarios run their fixed-seed spec
/// calibration here (a 512-sample MC population on a private engine), so
/// construction is not free - build once and reuse. \throws
/// ypm::InvalidInputError on an unknown name (the message lists the
/// registry).
[[nodiscard]] Scenario make_scenario(std::string_view name,
                                     const ScenarioOptions& options = {});

/// Brute-force plain-MC reference estimate for a scenario: `samples` draws
/// of the scenario kernel at the nominal proposal (log weights exactly 0,
/// so the estimate reduces to the unweighted Wilson numbers) on the given
/// engine. Pass Rng(72) and the scenario's reference_samples to reproduce
/// the historical bench references.
[[nodiscard]] WeightedYieldEstimate
scenario_reference(eval::Engine& engine, const Scenario& scenario,
                   std::size_t samples, Rng rng);

/// Draw one standardized coordinate vector from a mixture proposal the way
/// the synthetic scenario kernels do - the reference implementation the
/// unit tests also exercise directly. Zero/one component replays the
/// single-shift incremental formula (bit-identical to plain gauss() draws
/// at the nominal proposal, log weight exactly 0); >= 2 components consume
/// one uniform for the component pick and compute the log weight against
/// the brute-force mixture density. Honours per-dimension sigma
/// (ProposalComponent::scale_at) in both paths.
[[nodiscard]] std::vector<double>
draw_mixture_u(Rng& rng, const process::ProposalMixture& mix, std::size_t dim,
               double& log_w);

/// Synthetic 1-D yield kernel: value = mean + sigma * u with u drawn from
/// the mixture proposal via draw_mixture_u. Rows {value, log_w[, u]}.
[[nodiscard]] KernelFactory synthetic_factory(double mean, double sigma);

/// Synthetic bimodal two-spec kernel over two standardized dimensions:
/// rows {u0, u1, log_w[, u0, u1]}, so at_most(3) specs fail in the
/// disjoint regions u0 > 3 and u1 > 3 - the textbook case a single
/// mean-shift proposal cannot cover.
[[nodiscard]] KernelFactory synthetic_bimodal_factory();

} // namespace ypm::yield
