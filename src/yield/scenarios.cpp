#include "yield/scenarios.hpp"

#include <cmath>
#include <span>
#include <utility>

#include "circuits/ota.hpp"
#include "core/ota_mc.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/stats.hpp"
#include "process/process_card.hpp"
#include "process/variation.hpp"
#include "util/error.hpp"

namespace ypm::yield {

std::vector<double> draw_mixture_u(Rng& rng,
                                   const process::ProposalMixture& mix,
                                   std::size_t dim, double& log_w) {
    std::vector<double> u(dim, 0.0);
    if (mix.components.size() <= 1) {
        const process::ProposalComponent* c =
            mix.components.empty() ? nullptr : &mix.components.front();
        log_w = 0.0;
        for (std::size_t i = 0; i < dim; ++i) {
            const double m = (c != nullptr && !c->mu.empty()) ? c->mu[i] : 0.0;
            const double s = c != nullptr ? c->scale_at(i) : 1.0;
            const double z = rng.gauss();
            u[i] = m + s * z;
            log_w += std::log(s) + 0.5 * z * z - 0.5 * u[i] * u[i];
        }
        return u;
    }
    const std::size_t k = mix.pick_component(rng.uniform01());
    const process::ProposalComponent& c = mix.components[k];
    for (std::size_t i = 0; i < dim; ++i) {
        const double m = c.mu.empty() ? 0.0 : c.mu[i];
        u[i] = m + c.scale_at(i) * rng.gauss();
    }
    log_w = mix.log_weight_of(u);
    return u;
}

KernelFactory synthetic_factory(double mean, double sigma) {
    return [=](const process::ProposalMixture& mix,
               bool record_u) -> mc::ChunkSampleFn {
        return [=](std::span<const std::size_t>, std::span<Rng> rngs) {
            std::vector<std::vector<double>> rows;
            rows.reserve(rngs.size());
            for (Rng& rng : rngs) {
                double log_w = 0.0;
                const std::vector<double> u = draw_mixture_u(rng, mix, 1, log_w);
                const double value = mean + sigma * u[0];
                if (record_u)
                    rows.push_back({value, log_w, u[0]});
                else
                    rows.push_back({value, log_w});
            }
            return rows;
        };
    };
}

KernelFactory synthetic_bimodal_factory() {
    return [](const process::ProposalMixture& mix,
              bool record_u) -> mc::ChunkSampleFn {
        return [=](std::span<const std::size_t>, std::span<Rng> rngs) {
            std::vector<std::vector<double>> rows;
            rows.reserve(rngs.size());
            for (Rng& rng : rngs) {
                double log_w = 0.0;
                const std::vector<double> u = draw_mixture_u(rng, mix, 2, log_w);
                if (record_u)
                    rows.push_back({u[0], u[1], log_w, u[0], u[1]});
                else
                    rows.push_back({u[0], u[1], log_w});
            }
            return rows;
        };
    };
}

namespace {

/// High-dimensional synthetic kernel: the single performance is the
/// normalized coordinate sum m = sum(u_d) / sqrt(dim) ~ N(0, 1) at
/// nominal, so a deep at_least spec on m makes a rare failure whose
/// optimal mean shift spreads evenly over *all* dimensions - the
/// weight-degeneracy stress case for importance sampling.
KernelFactory highdim_factory(std::size_t dim) {
    return [dim](const process::ProposalMixture& mix,
                 bool record_u) -> mc::ChunkSampleFn {
        return [=](std::span<const std::size_t>, std::span<Rng> rngs) {
            const double inv_norm = 1.0 / std::sqrt(static_cast<double>(dim));
            std::vector<std::vector<double>> rows;
            rows.reserve(rngs.size());
            for (Rng& rng : rngs) {
                double log_w = 0.0;
                const std::vector<double> u =
                    draw_mixture_u(rng, mix, dim, log_w);
                double sum = 0.0;
                for (double v : u) sum += v;
                std::vector<double> row{sum * inv_norm, log_w};
                if (record_u) row.insert(row.end(), u.begin(), u.end());
                rows.push_back(std::move(row));
            }
            return rows;
        };
    };
}

/// The OTA testbench state every OTA scenario's kernel captures by
/// reference; owned by Scenario::backing.
struct OtaBacking {
    circuits::OtaEvaluator evaluator;
    circuits::OtaSizing sizing; // nominal mid-range point
    process::ProcessSampler sampler{process::ProcessCard::c35(),
                                    process::VariationSpec::c35()};
};

/// Gain/PM population summaries from the fixed-seed calibration run the
/// yield benches have always used: Rng(71), 512 samples, cache off. The
/// spec thresholds of both OTA scenarios derive from these numbers.
std::pair<mc::Summary, mc::Summary> calibrate_ota(const OtaBacking& b) {
    eval::EngineConfig engine_config;
    engine_config.cache_capacity = 0;
    eval::Engine engine(engine_config);
    Rng rng(71);
    const mc::McResult cal = core::run_ota_monte_carlo(
        engine, b.evaluator, b.sizing, b.sampler, 512, rng);
    return {cal.column_summary(0), cal.column_summary(1)};
}

/// Problem-level driver knobs shared by every scenario; per-scenario caps
/// and targets are set on top.
SequentialConfig base_config(double target) {
    SequentialConfig c;
    c.pilot_samples = 256;
    c.pilot_scale = 2.0;
    c.chunk_samples = 128;
    c.min_samples = 256;
    c.target_half_width = target;
    return c;
}

Scenario make_ota_scenario(bool bimodal, const ScenarioOptions& options) {
    auto backing = std::make_shared<OtaBacking>();
    const auto [gain, pm] = calibrate_ota(*backing);
    const double depth = options.spec_depth > 0.0 ? options.spec_depth : 2.4;
    const double target =
        options.target_half_width > 0.0 ? options.target_half_width : 0.0035;

    Scenario sc;
    sc.factory = core::ota_yield_kernel_factory(
        backing->evaluator, backing->sizing, backing->sampler);
    sc.dimension =
        core::ota_yield_dimension(backing->evaluator, backing->sizing);
    sc.backing = std::move(backing);
    sc.config = base_config(target);
    if (bimodal) {
        sc.name = "bimodal_ota";
        sc.description = "OTA low-gain + high-PM tails (two failure modes)";
        // Gain and PM move together under c35 variation (corr ~ +0.4), so
        // the low-gain and *high*-PM tails are two well-separated failure
        // modes in the standardized space - the case a single mean shift
        // cannot cover.
        sc.specs = {
            mc::Spec::at_least("gain_db", gain.mean - depth * gain.stddev),
            mc::Spec::at_most("pm_deg", pm.mean + depth * pm.stddev)};
        sc.config.max_samples = 12000;
        sc.reference_samples = 30000;
    } else {
        sc.name = "rare_ota";
        sc.description = "OTA rare low-gain tail (single failure mode)";
        sc.specs = {
            mc::Spec::at_least("gain_db", gain.mean - depth * gain.stddev),
            mc::Spec::at_least("pm_deg", 0.0)};
        sc.config.max_samples = 60000;
        sc.reference_samples = 50000;
    }
    return sc;
}

Scenario make_synthetic_bimodal(const ScenarioOptions& options) {
    Scenario sc;
    sc.name = "synthetic_bimodal";
    sc.description = "two disjoint tail modes u0 > 3 and u1 > 3";
    sc.specs = {mc::Spec::at_most("u0", 3.0), mc::Spec::at_most("u1", 3.0)};
    sc.factory = synthetic_bimodal_factory();
    sc.dimension = 2;
    // Tighter target than the OTA scenarios: each mode has p ~ 1.35e-3, so
    // 0.0035 would let plain MC stop on a few hundred samples and the
    // estimator comparison would measure nothing.
    sc.config = base_config(
        options.target_half_width > 0.0 ? options.target_half_width : 0.0015);
    sc.config.max_samples = 20000;
    sc.reference_samples = 100000;
    return sc;
}

Scenario make_highdim(const ScenarioOptions& options) {
    constexpr std::size_t kDim = 64;
    Scenario sc;
    sc.name = "highdim_synthetic";
    sc.description = "64-dim normalized-sum metric with a rare lower tail";
    sc.specs = {mc::Spec::at_least("m_norm", -2.33)}; // p ~ 1e-2 at nominal
    sc.factory = highdim_factory(kDim);
    sc.dimension = kDim;
    sc.config = base_config(
        options.target_half_width > 0.0 ? options.target_half_width : 0.0035);
    // 64 dimensions need more pilot evidence per fitted coordinate.
    sc.config.pilot_samples = 512;
    sc.config.max_samples = 20000;
    sc.reference_samples = 100000;
    return sc;
}

Scenario make_clean_sweep(const ScenarioOptions& options) {
    Scenario sc;
    sc.name = "clean_sweep";
    sc.description = "spec 6 sigma below the mean: certifying ~100% yield";
    sc.specs = {mc::Spec::at_least("value", 38.0)}; // mean 50, sigma 2
    sc.factory = synthetic_factory(50.0, 2.0);
    sc.dimension = 1;
    sc.config = base_config(
        options.target_half_width > 0.0 ? options.target_half_width : 0.0035);
    sc.config.max_samples = 4096;
    sc.reference_samples = 20000;
    return sc;
}

} // namespace

std::vector<std::string> scenario_names() {
    return {"rare_ota", "bimodal_ota", "synthetic_bimodal",
            "highdim_synthetic", "clean_sweep"};
}

Scenario make_scenario(std::string_view name, const ScenarioOptions& options) {
    Scenario sc;
    if (name == "rare_ota")
        sc = make_ota_scenario(false, options);
    else if (name == "bimodal_ota")
        sc = make_ota_scenario(true, options);
    else if (name == "synthetic_bimodal")
        sc = make_synthetic_bimodal(options);
    else if (name == "highdim_synthetic")
        sc = make_highdim(options);
    else if (name == "clean_sweep")
        sc = make_clean_sweep(options);
    else {
        std::string known;
        for (const std::string& n : scenario_names()) {
            if (!known.empty()) known += ", ";
            known += n;
        }
        throw InvalidInputError("make_scenario: unknown scenario '" +
                                std::string(name) + "' (registered: " + known +
                                ")");
    }
    if (options.reference_samples > 0)
        sc.reference_samples = options.reference_samples;
    return sc;
}

WeightedYieldEstimate scenario_reference(eval::Engine& engine,
                                         const Scenario& scenario,
                                         std::size_t samples, Rng rng) {
    mc::McConfig cfg;
    cfg.samples = samples;
    const mc::McResult result = mc::run_monte_carlo(
        engine, cfg, rng,
        scenario.factory(process::ProposalMixture::nominal(), false));
    return estimate_weighted_yield(result.rows, scenario.specs);
}

} // namespace ypm::yield
