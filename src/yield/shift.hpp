#pragma once
/// \file shift.hpp
/// \brief Two-stage adaptive shift fitting (ISLE-style): a pilot Monte Carlo
///        chunk locates the failure region and the mean shift of the
///        importance-sampling proposal is placed at the center of gravity of
///        the failing realisations, fitted per spec and combined.

#include <cstddef>
#include <vector>

#include "mc/yield.hpp"
#include "process/sampler.hpp"

namespace ypm::yield {

struct ShiftFitConfig {
    /// Clamp on the Euclidean norm of the fitted mean shift (in sigma
    /// units). Pilot chunks drawn from a widened proposal find failures
    /// farther out than the dominant failure boundary; the clamp keeps the
    /// main-stage proposal from overshooting into weight collapse.
    double max_norm = 4.0;
};

/// Fitted proposal for the main importance-sampling stage.
struct ShiftFit {
    /// Combined shift: failure-count-weighted average of the per-spec
    /// centers of gravity, norm-clamped. Empty mu when the pilot saw no
    /// failures (the main stage then degenerates to plain MC).
    process::SampleShift shift;
    /// Center of gravity of the samples failing spec s (empty mu when spec
    /// s never failed in the pilot). Unclamped.
    std::vector<process::SampleShift> per_spec;
    /// Pilot samples failing spec s.
    std::vector<std::size_t> spec_failures;
    /// Pilot samples failing any spec.
    std::size_t pilot_failures = 0;
};

/// Fit from pilot rows of the form {perf_0..perf_{k-1}, log_weight,
/// u_0..u_{dim-1}} where k = specs.size() (the layout produced by a yield
/// kernel with u recording on). NaN performances count as failures - a
/// non-converging realisation is a failing die. \throws
/// ypm::InvalidInputError on arity mismatch.
[[nodiscard]] ShiftFit fit_shift(const std::vector<std::vector<double>>& pilot_rows,
                                 const std::vector<mc::Spec>& specs,
                                 std::size_t dimension,
                                 const ShiftFitConfig& config = {});

} // namespace ypm::yield
