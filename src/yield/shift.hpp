#pragma once
/// \file shift.hpp
/// \brief Adaptive proposal fitting for importance-sampled yield.
///
/// Two fitting stages share one machinery:
///  - fit_shift: the ISLE-style pilot fit - a Monte Carlo chunk drawn from
///    a widened proposal locates the failure region(s) and each spec's
///    center of gravity of failing realisations becomes one component of a
///    *defensive mixture* (nominal + per-spec shifted components), the
///    standard cure for multi-spec problems whose failure regions are
///    disjoint and which a single mean shift cannot cover;
///  - refit_shift: the cross-entropy refinement - the same per-spec fit
///    over accumulated *main-stage* failing records, importance-weighted by
///    each record's exact likelihood ratio so the re-fitted means estimate
///    the nominal-density centers of gravity of the failure regions (the
///    CE-optimal mean for a Gaussian family with fixed covariance).

#include <cstddef>
#include <vector>

#include "mc/yield.hpp"
#include "process/sampler.hpp"

namespace ypm::yield {

struct ShiftFitConfig {
    /// Clamp on the Euclidean norm of every fitted mean shift (in sigma
    /// units) - each per-spec component *and* the combined single shift.
    /// Pilot chunks drawn from a widened proposal find failures farther out
    /// than the dominant failure boundary; the clamp keeps the main-stage
    /// proposal from overshooting into weight collapse. 0 disables.
    double max_norm = 4.0;
    /// Mixture weight of the nominal (zero-shift) defensive component, in
    /// [0, 1); the remaining mass is split over the per-spec components in
    /// proportion to their (weighted) failure mass. The nominal component
    /// bounds the likelihood ratios near the bulk of the distribution, the
    /// defensive-IS guarantee. 0 drops the nominal component entirely.
    /// \throws ypm::InvalidInputError from the fit when outside [0, 1).
    double defensive_weight = 0.1;
    /// Scale adaptation (CE refit only): when true, refit_shift also learns
    /// each component's *diagonal* variance from the importance-weighted
    /// failing records - sigma_d^2 = sum(w (u_d - mu_d)^2) / sum(w) around
    /// the fitted mean - the CE-optimal diagonal covariance for a Gaussian
    /// family. Per-dimension sigmas are clamped to [min_scale, max_scale]
    /// (a single dominant record would otherwise collapse a sigma to ~0 and
    /// spike the weights); specs with fewer than two failing records keep
    /// the unit scale. The pilot fit (fit_shift) never adapts scales: its
    /// few unweighted failures carry no usable spread information.
    bool adapt_scale = false;
    /// Lower sigma clamp for adapted scales. Kept close to the unit scale:
    /// the weighted spread of a handful of failing records systematically
    /// *underestimates* the conditional variance, and an over-shrunk
    /// component spikes the fail-side weights of records landing in the
    /// other components' territory (measured on the bimodal OTA scenario:
    /// min_scale 0.5 costs ~20 % more samples-to-target than mean-only CE;
    /// 0.9 beats it). Values below 1 still allow a genuine, evidence-backed
    /// shrink.
    double min_scale = 0.9;
    double max_scale = 3.0; ///< upper sigma clamp for adapted scales
    /// Mixture-component merging: when > 0, per-spec components whose
    /// Mahalanobis distance (under the average of their diagonal variances)
    /// falls below this threshold are merged - mass-weighted mean and
    /// variance, summed weight - so specs sharing one failure mode do not
    /// split the proposal budget into near-duplicate components. 0 disables.
    double merge_distance = 0.0;
};

/// Fitted proposal for the main importance-sampling stage.
struct ShiftFit {
    /// Combined single shift: failure-mass-weighted average of the
    /// (clamped) per-spec centers of gravity, norm-clamped again. Empty mu
    /// when the fit saw no failures (the main stage then degenerates to
    /// plain MC). Kept for the legacy single-shift proposal mode and for
    /// reporting.
    process::SampleShift shift;
    /// Defensive mixture proposal: a nominal component (weight
    /// defensive_weight) plus one component per failing spec at that spec's
    /// clamped center of gravity. A single nominal component when the fit
    /// saw no failures.
    process::ProposalMixture mixture;
    /// Center of gravity of the samples failing spec s, norm-clamped.
    /// Every entry has a well-defined mu of size `dimension` (all zero for
    /// specs that never failed), so callers can index unconditionally.
    std::vector<process::SampleShift> per_spec;
    /// Samples failing spec s (raw counts, unweighted).
    std::vector<std::size_t> spec_failures;
    /// Samples failing any spec (raw count, unweighted).
    std::size_t pilot_failures = 0;
    /// Components absorbed by Mahalanobis merging (0 when merging is off or
    /// nothing overlapped): per-spec centers in, mixture.components out.
    std::size_t merged_components = 0;
};

/// Pilot fit from rows of the form {perf_0..perf_{k-1}, log_weight,
/// u_0..u_{dim-1}} where k = specs.size() (the layout produced by a yield
/// kernel with u recording on). NaN performances count as failures - a
/// non-converging realisation is a failing die. The centers of gravity are
/// unweighted (ISLE): the widened pilot proposal is failure-agnostic, and
/// weighting its few failures by likelihood ratios would let one
/// near-nominal failure dominate the fit. \throws ypm::InvalidInputError
/// on arity mismatch or a bad config.
[[nodiscard]] ShiftFit fit_shift(const std::vector<std::vector<double>>& pilot_rows,
                                 const std::vector<mc::Spec>& specs,
                                 std::size_t dimension,
                                 const ShiftFitConfig& config = {});

/// Cross-entropy refinement from accumulated main-stage records (same row
/// layout). Each failing row enters its spec's center of gravity with
/// weight exp(log_weight) - the exact likelihood ratio under the proposal
/// the row was drawn from - so records accumulated across *different*
/// proposals (earlier CE stages) combine into one unbiased estimate of the
/// nominal-density failure centers. Passing rows are ignored, so callers
/// may feed either the failing subset or everything. \throws
/// ypm::InvalidInputError on arity mismatch, a non-finite log weight or a
/// bad config.
[[nodiscard]] ShiftFit refit_shift(const std::vector<std::vector<double>>& rows,
                                   const std::vector<mc::Spec>& specs,
                                   std::size_t dimension,
                                   const ShiftFitConfig& config = {});

} // namespace ypm::yield
