#pragma once
/// \file sequential.hpp
/// \brief Sequential importance-sampled yield estimation over the streaming
///        dispatch seam.
///
/// The driver runs an adaptive multi-stage recipe per design point:
///
///  1. pilot: a Monte Carlo chunk drawn from a *widened* proposal (scale > 1)
///     locates the failure region(s); yield::fit_shift turns the failing
///     realisations into a defensive mixture proposal (nominal + one
///     component per failing spec) or, in the legacy mode, a single
///     combined mean shift;
///  2. main: fixed-size chunks drawn from the fitted proposal stream
///     through eval::Engine::submit()/wait() - reusing the stochastic chunk
///     kernels and the warm PrototypePool - and the run stops early once the
///     95 % confidence half-width of the weighted estimate (the unnormalized
///     fail-side form, see yield/weighted.hpp) reaches the target;
///  3. optional cross-entropy refinement: every `refine_after_chunks`
///     retired chunks the proposal is re-fitted from the accumulated
///     main-stage failing records (yield::refit_shift) and a new stage
///     begins. Stages drawn from different proposals are combined
///     *per-stage* (yield::combine_stage_estimates pools their exact
///     fail-side moments); samples are never re-weighted under one
///     proposal's formula.
///
/// Determinism: every chunk's RNG streams derive from the runner's own Rng
/// in submission order, exactly as mc::submit_monte_carlo derives them, so
/// the retired estimate and samples_used are bit-identical for any inflight
/// window. Chunks submitted past a stop or refit decision are drained and
/// discarded, never folded; at a refit the runner additionally rewinds its
/// RNG and submission count to the retired prefix, so the post-refit stream
/// too depends only on folded chunks and never on the window. With a zero
/// shift and one chunk the sampled rows are bit-identical to
/// mc::run_monte_carlo.
///
/// run_adaptive_yield() drives many design points at once, allocating the
/// remaining sample budget to whichever point currently has the widest
/// confidence interval - the Pareto-front yield stage of core::YieldFlow.

#include <cstddef>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "eval/engine.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/yield.hpp"
#include "process/sampler.hpp"
#include "yield/shift.hpp"
#include "yield/weighted.hpp"

namespace ypm::yield {

/// Builds the chunk kernel for one proposal distribution (a defensive
/// mixture; the pilot and the legacy single-shift mode pass one-component
/// mixtures, whose draw path must be bit-identical to the plain
/// single-shift sampler). Rows must be {perf_0..perf_{k-1}, log_weight}
/// for k specs, plus the `dimension` standardized coordinates
/// u_0..u_{dim-1} appended when record_u is true (shift fitting and CE
/// refinement need them). Kernels are copied into the engine; anything
/// captured by reference must outlive the run.
using KernelFactory = std::function<mc::ChunkSampleFn(
    const process::ProposalMixture&, bool record_u)>;

struct SequentialConfig {
    std::size_t pilot_samples = 128; ///< 0 disables the pilot (zero shift)
    double pilot_scale = 2.0;        ///< widened pilot proposal (sigma units)
    std::size_t chunk_samples = 64;  ///< main-stage chunk size
    std::size_t max_samples = 4096;  ///< main-stage cap (excludes the pilot)
    std::size_t min_samples = 128;   ///< floor before early stop is allowed;
                                     ///< must be <= max_samples
    /// Stop once the 95 % CI half-width of the estimate is <= this target;
    /// 0 runs to max_samples unconditionally.
    double target_half_width = 0.0;
    /// Chunks submitted ahead of retirement (>= 1). 1 is the blocking path;
    /// larger windows overlap chunk evaluation with the stop decision. In a
    /// single-point run the window never changes the estimate (see file
    /// comment), only the overshoot; in run_adaptive_yield it is also the
    /// per-pick allocation granularity (see its contract).
    std::size_t inflight = 2;
    /// Main-stage proposal family: the defensive mixture fitted by the
    /// pilot (default - covers disjoint multi-spec failure regions) or the
    /// legacy single combined mean shift (ISLE).
    bool mixture_proposal = true;
    /// Cross-entropy refinement period, in retired main-stage chunks; 0
    /// disables refinement. When enabled the main kernels record u (the
    /// rows grow by `dimension` columns) and every failing record is
    /// accumulated for refit_shift.
    std::size_t refine_after_chunks = 0;
    std::size_t max_refits = 1; ///< refinement rounds allowed per run
    /// A refit without evidence would aim the proposal at noise: skip the
    /// refinement until at least this many failing records accumulated.
    std::size_t refit_min_failures = 8;
    ShiftFitConfig shift_fit; ///< clamp + defensive weight for the fits
    /// Control-variate refinement of the main-stage estimate (see
    /// yield/weighted.hpp): regress on the full likelihood ratio, whose
    /// mean under the proposal is exactly 1. Incompatible with CE
    /// refinement (refine_after_chunks > 0 with max_refits > 0): stages are
    /// combined by pooling fail-side moments, which have no representation
    /// of the pass-side control term - the runner ctor throws on the
    /// combination rather than silently dropping the control.
    ControlVariateOptions control;
    /// Warm-start seam: a pre-fitted main-stage proposal (e.g. carried over
    /// from an earlier generation's probe at a nearby design point). Empty
    /// components - the default - leave the seam unset. When set, the run
    /// must not also configure a pilot (pilot_samples > 0): the runner ctor
    /// throws on the ambiguous combination rather than letting one silently
    /// override the other. With pilot_samples == 0 the proposal is bound
    /// directly as the main-stage proposal (exact importance weights come
    /// from the kernel as usual, so a stale warm proposal costs variance,
    /// never bias).
    process::ProposalMixture initial_proposal;
};

/// Result of one sequential run.
struct SequentialYieldResult {
    WeightedYieldEstimate estimate; ///< main-stage estimate (per-stage
                                    ///< combination when CE refinement ran)
    WeightedYieldEstimate pilot;    ///< pilot diagnostic (weighted: the pilot
                                    ///< proposal is widened, not nominal)
    process::SampleShift shift;     ///< combined single shift of the last fit
    process::ProposalMixture proposal; ///< final main-stage proposal
    /// One estimate per proposal stage (a single entry when no refinement
    /// ran; empty for a budget-starved point that never got a chunk). The
    /// `estimate` above is their combination.
    std::vector<WeightedYieldEstimate> stage_estimates;
    std::size_t refinements = 0;    ///< CE refits actually applied
    /// Components absorbed by Mahalanobis merging in the *last* fit (0 when
    /// merging is off - see ShiftFitConfig::merge_distance).
    std::size_t merged_components = 0;
    std::size_t shift_pilot_failures = 0; ///< failing pilot samples behind the fit
    std::size_t samples_used = 0;   ///< main-stage samples in the estimate
    std::size_t pilot_samples = 0;
    std::size_t discarded_samples = 0; ///< drained overshoot past stop/refit
    bool reached_target = false;
    /// True when the allocator skipped this point's pilot because the
    /// cross-point budget could not cover it: the point ran (if at all) on
    /// plain MC with no failure-directed proposal. Size the budget above
    /// points * (pilot + min_samples) to avoid it.
    bool pilot_skipped = false;
    /// (cumulative samples, CI half-width) after each retired chunk - the
    /// convergence trajectory the bench artifact plots.
    std::vector<std::pair<std::size_t, double>> trajectory;
};

/// Streams one design point's yield estimation through a shared engine.
/// Single-threaded driver (the engine parallelises the chunks underneath);
/// the incremental submit/retire API exists so a multi-point allocator can
/// interleave several runners on one engine.
class SequentialYieldRunner {
public:
    /// \param dimension standardized process-space dimension of the kernel's
    ///        u record (process::SampleShift::dimension of the device count).
    /// \throws ypm::InvalidInputError on an empty spec list, a null factory,
    ///         zero chunk/max samples, or min_samples > max_samples (which
    ///         would silently make the early stop unreachable and burn the
    ///         full cap on every run).
    SequentialYieldRunner(eval::Engine& engine, SequentialConfig config,
                          std::vector<mc::Spec> specs, KernelFactory factory,
                          std::size_t dimension, Rng rng);

    /// Pilot stage. submit_pilot() enqueues the pilot chunk (no-op when
    /// pilot_samples == 0); finish_pilot() blocks on it and fits the
    /// proposal. Both must be called (in order) before any main-stage call.
    void submit_pilot();
    void finish_pilot();

    /// Record that the allocator skipped this point's pilot for budget
    /// reasons (surfaced as SequentialYieldResult::pilot_skipped).
    void mark_pilot_skipped() { pilot_skipped_ = true; }

    /// True once the run should stop: early-stop criterion met (target > 0,
    /// >= min_samples retired, half-width <= target) or max_samples retired.
    [[nodiscard]] bool done() const;

    /// True once max_samples has been submitted (nothing left to enqueue).
    [[nodiscard]] bool exhausted() const {
        return submitted_samples_ >= config_.max_samples;
    }

    /// Enqueue the next main-stage chunk, at most `limit` samples (budget
    /// caps of a multi-point campaign). Returns the number of samples
    /// submitted; 0 when max_samples is already in flight or limit is 0.
    std::size_t submit_chunk(std::size_t limit = static_cast<std::size_t>(-1));

    /// Block on the oldest in-flight chunk and fold it into the estimate;
    /// false when nothing is in flight. May trigger a CE refit (see
    /// SequentialConfig::refine_after_chunks), which drains the remaining
    /// in-flight chunks as discarded overshoot.
    bool retire_chunk();

    /// Block on every in-flight chunk *without* folding it (counted as
    /// discarded overshoot); returns the number of samples drained. Used
    /// once the stop decision is made, so the folded prefix - and with it
    /// the estimate - is invariant to the inflight window.
    std::size_t drain_overshoot();

    /// Discarded samples since the last call - the overshoot drained by
    /// stop decisions *and* mid-run refits. A budgeted allocator refunds
    /// these (they are wasted compute, not useful samples).
    [[nodiscard]] std::size_t take_refund();

    [[nodiscard]] const WeightedYieldEstimate& estimate() const { return estimate_; }
    [[nodiscard]] std::size_t samples_used() const { return retired_samples_; }
    [[nodiscard]] std::size_t in_flight() const { return tickets_.size(); }

    /// Drain any in-flight overshoot (discarding it) and build the result.
    [[nodiscard]] SequentialYieldResult finish();

    /// The one-call blocking driver: pilot, then submit/retire chunks with
    /// config.inflight chunks in the air, then finish().
    [[nodiscard]] SequentialYieldResult run();

private:
    struct InflightChunk {
        mc::McTicket ticket;
        std::size_t samples = 0;
        Rng rng_before; ///< runner RNG state before this submission - a
                        ///< refit rewinds to the oldest drained chunk's
                        ///< state so the post-refit stream is
                        ///< window-invariant
    };

    void bind_main_kernel(const ShiftFit& fit);
    void fold_rows(const mc::McResult& result);
    /// CE refinement trigger, checked after each fold.
    void maybe_refit();
    /// Drain all in-flight chunks and rewind rng/submission state to the
    /// retired prefix (refit path - the run continues afterwards).
    void rewind_inflight();
    void update_estimate();
    /// The single early-stop criterion, shared by done() and the
    /// reached_target report so the two can never drift apart.
    [[nodiscard]] bool target_met() const;

    eval::Engine& engine_;
    SequentialConfig config_;
    std::vector<mc::Spec> specs_;
    KernelFactory factory_;
    std::size_t dimension_;
    Rng rng_;

    bool pilot_submitted_ = false;
    bool pilot_finished_ = false;
    bool pilot_skipped_ = false;
    mc::McTicket pilot_ticket_;
    WeightedYieldEstimate pilot_estimate_;
    ShiftFit fit_;
    std::size_t pilot_failures_ = 0;

    mc::ChunkSampleFn main_kernel_;
    process::ProposalMixture main_proposal_;
    bool record_main_u_ = false;
    std::size_t main_arity_ = 0;
    std::deque<InflightChunk> tickets_; ///< in-flight
    std::size_t submitted_samples_ = 0;
    std::size_t retired_samples_ = 0;
    std::size_t discarded_samples_ = 0;
    std::size_t refunded_samples_ = 0;
    std::vector<bool> flags_;            ///< current stage accumulators
    std::vector<double> log_weights_;
    std::size_t stage_chunks_ = 0;
    std::vector<WeightedYieldEstimate> stages_; ///< closed CE stages
    std::vector<std::vector<double>> fail_rows_; ///< failing u records (CE)
    std::size_t refits_done_ = 0;
    WeightedYieldEstimate estimate_;
    std::vector<std::pair<std::size_t, double>> trajectory_;
};

/// One design point of a multi-point yield campaign.
struct YieldPoint {
    std::vector<mc::Spec> specs;
    KernelFactory factory;
    std::size_t dimension = 0;
};

struct AdaptiveYieldConfig {
    SequentialConfig sequential;
    /// Cross-point budget of *useful* samples: pilots plus main-stage
    /// samples folded into an estimate. Overshoot drained past a point's
    /// stop or refit decision is wasted compute but refunded, so the
    /// allocation (and every estimate) stays invariant to the inflight
    /// window. 0 = only the per-point caps apply. Points whose budget runs
    /// out before their pilot run on plain MC and are flagged
    /// (SequentialYieldResult::pilot_skipped); points that never get a
    /// chunk report a 0-sample estimate - size the budget above
    /// points * (pilot + min_samples).
    std::size_t total_samples = 0;
};

/// Estimate every point's yield on one engine, streaming pilots and chunks
/// together and allocating the remaining budget adaptively: each round
/// gives the next window of chunks (up to sequential.inflight, the
/// allocation granularity) to the unfinished point with the widest
/// confidence interval, ties broken by point index. Fully deterministic
/// for a fixed configuration; across *different* inflight settings the
/// per-point sample split may differ by up to a window (each runner's
/// folded prefix is still chunk-ordered, and drained overshoot is
/// refunded to the budget). Point i derives its RNG as rng.child(i + 1).
[[nodiscard]] std::vector<SequentialYieldResult>
run_adaptive_yield(eval::Engine& engine, const AdaptiveYieldConfig& config,
                   const std::vector<YieldPoint>& points, Rng rng);

} // namespace ypm::yield
