#pragma once
/// \file weighted.hpp
/// \brief Importance-sampling yield estimator (unnormalized fail-side
///        form) with weighted CI and effective-sample-size diagnostics.
///
/// Plain Monte Carlo yield (mc::estimate_yield) is weakest exactly where the
/// paper needs it most: certifying "a yield of 100 %" - a 500/500 pass run
/// only proves yield >= 99.3 % at 95 % confidence. Importance sampling draws
/// the process realisations from a shifted proposal concentrated on the
/// failure region and re-weights each sample by the likelihood ratio
/// w_i = p_nominal(u_i) / p_proposal(u_i), cutting the variance of the
/// failure-probability estimate by orders of magnitude for rare specs.
///
/// This file owns the estimator. Because both densities are known exactly
/// (the likelihood ratio needs no unknown normalization constant), the
/// estimator is the *unnormalized fail-side* form:
///   phat_fail = (1/n) * sum(w_i * fail_i),    yhat = 1 - phat_fail.
/// This matters: a failure-directed mean shift makes the *passing* tail's
/// weights unbounded (w = exp(m^2/2 - m u) explodes as u -> -inf), so the
/// textbook self-normalized ratio sum(w f)/sum(w) is dominated by a few
/// huge pass-side weights and can be *worse* than plain MC. The fail-side
/// weights are the bounded ones by construction - exactly the samples the
/// rare-event estimate lives on - which is where the orders-of-magnitude
/// variance reduction comes from (ISLE does the same).
///
/// Diagnostics follow the estimator: the Kish effective sample size and the
/// max-weight share are computed over the fail-side weights (the effective
/// number of independent failure observations). When every log weight is
/// exactly zero (the zero-shift proposal) the estimate *and* the interval
/// reduce bit-identically to the unweighted mc::yield_from_flags / Wilson
/// path.
///
/// Caveat: a *simulation* failure (NaN performances) counts as a die
/// failure, per the repo-wide convention that convergence failures degrade
/// yield. A sim failure deep on the pass side of a shifted proposal
/// therefore injects its (large) pass-side weight into the fail-side sum -
/// conservative, never optimistic, and it shows up immediately as a
/// max_weight_share spike / ESS collapse. Capping such weights would bias
/// the estimator, so they are surfaced, not truncated.

#include <cstddef>
#include <vector>

#include "mc/yield.hpp"

namespace ypm::yield {

/// Result of a (possibly weighted) yield estimation.
struct WeightedYieldEstimate {
    std::size_t samples = 0;
    std::size_t passes = 0; ///< raw (unweighted) pass count
    double yield = 0.0;     ///< 1 - weighted failure probability, in [0, 1]
    double ci_low = 0.0;    ///< 95 % interval: Wilson when unweighted,
    double ci_high = 0.0;   ///< asymptotic weighted-mean CI when weighted
    /// Effective number of independent failure observations: Kish
    /// (sum w)^2 / sum w^2 over the *failing* samples' weights. Equals the
    /// raw failure count under unit weights (and `samples` in the
    /// unweighted reduction, where every sample informs the Wilson
    /// interval directly); a collapse toward 0-1 flags an overdone shift.
    double ess = 0.0;
    /// Largest failing sample's share of the total fail-side weight, in
    /// [0, 1]; near 1 means one failure dominates the estimate.
    double max_weight_share = 0.0;
    /// False when every log weight was exactly 0 (plain MC reduction).
    bool weighted = false;
    /// Control coefficient actually applied (0 when the control-variate
    /// path was off or degenerated to the plain fail-side estimator).
    double control_beta = 0.0;
    /// Raw fail-side moments behind the estimate: sum of w_i*fail_i, sum of
    /// (w_i*fail_i)^2 and the largest single fail-side weight (the failure
    /// count, the failure count and 1/0 under unit weights). These are what
    /// combine_stage_estimates pools - per-stage estimates from different
    /// proposals are each exact under their own density, so their moments
    /// add, while re-weighting all samples under one proposal's formula
    /// would be wrong.
    double fail_weight_sum = 0.0;
    double fail_weight_sq_sum = 0.0;
    double fail_weight_max = 0.0;

    [[nodiscard]] double half_width() const {
        return 0.5 * (ci_high - ci_low);
    }
};

/// Estimate from per-sample pass flags and log likelihood ratios
/// (log_weights[i] = log of nominal density over proposal density at sample
/// i). Sizes must match; an empty log_weights vector means all-zero.
///
/// Degenerate-evidence fallbacks (weighted path): with zero observed
/// failures the delta-method CI would collapse to the point [1, 1], so the
/// clean-sweep Wilson interval is reported instead; with exactly *one*
/// observed failure the sample variance is estimated from a single nonzero
/// term and the delta-method CI can be spuriously tight, so the interval is
/// widened to [clamp(yield - hw), 1] with hw at least the one-failure
/// Wilson half-width - the CI only trusts the delta method once >= 2
/// fail-side samples are seen.
/// \throws ypm::InvalidInputError on size mismatch or non-finite log weight.
[[nodiscard]] WeightedYieldEstimate
weighted_yield_from_flags(const std::vector<bool>& pass,
                          const std::vector<double>& log_weights);

/// Control-variate (regression) refinement of the fail-side estimator.
/// The full likelihood ratio w_i = exp(log_weights[i]) has known mean 1
/// under the proposal (E_q[p/q] = 1), so it is a free control variate for
/// x_i = w_i * fail_i:
///   phat_cv = mean(x) - beta * (mean(w) - 1),
/// unbiased for every fixed beta, with variance minimized at
/// beta* = Cov(x, w) / Var(w). The correction recycles the *pass-side*
/// weights - the information the unnormalized fail-side estimator throws
/// away - without inheriting the self-normalized ratio's instability,
/// because beta scales the correction instead of dividing by it.
struct ControlVariateOptions {
    /// Off = delegate verbatim to weighted_yield_from_flags.
    bool enabled = false;
    /// Fixed control coefficient; ignored when auto_beta is set. beta == 0
    /// (with auto_beta off) reduces *bit-identically* to the plain
    /// fail-side estimator - the conformance anchor for the CV estimator.
    double beta = 0.0;
    /// Estimate beta = Cov(x, w) / Var(w) from the sample itself (the
    /// regression estimator). The plug-in beta introduces O(1/n) bias,
    /// standard for regression sampling; the CI uses the residual variance.
    bool auto_beta = true;
    /// Clamp on |beta| (applied to fixed and estimated coefficients): a
    /// near-singular Var(w) would otherwise let the correction term dwarf
    /// the estimate. <= 0 disables the clamp.
    double max_beta = 4.0;
};

/// Control-variate estimate from pass flags and log likelihood ratios.
/// Delegates *bit-identically* to weighted_yield_from_flags whenever the
/// control is inert: options.enabled false, all log weights exactly zero
/// (plain MC - w is constant, Var(w) = 0, no control exists), a fixed
/// beta of 0, a degenerate Var(w) under auto_beta, or fewer than two
/// observed failures (the delta-method CI fallbacks of the fail-side path
/// are the safer report there). Otherwise the estimate is phat_cv above
/// with a CI from the sample variance of the residuals
/// y_i = x_i - beta * (w_i - 1); ESS/max-weight-share diagnostics and the
/// pooled fail-side moments are unchanged (the control shifts the
/// estimate, not the fail-side evidence). \throws like
/// weighted_yield_from_flags.
[[nodiscard]] WeightedYieldEstimate
control_variate_yield(const std::vector<bool>& pass,
                      const std::vector<double>& log_weights,
                      const ControlVariateOptions& options);

/// Combine per-stage estimates of the *same* failure probability drawn
/// from different proposal distributions (the cross-entropy refinement
/// loop closes a stage every time it re-fits the proposal). Each stage's
/// weights are exact under its own proposal, so the pooled fail-side
/// moments give an unbiased sample-count-weighted estimate; stages are
/// never re-pooled under one weight formula. Zero-sample stages are
/// skipped; a single surviving stage is returned unchanged (bit-identical
/// to no refinement), no stage at all returns the vacuous [0, 1] estimate.
/// The pooled CI carries the same degenerate-evidence fallbacks as
/// weighted_yield_from_flags; with adaptively-chosen stage lengths it is
/// approximate (the stage boundaries are data-dependent), which the
/// sequential driver accepts the same way it accepts adaptive stopping.
[[nodiscard]] WeightedYieldEstimate
combine_stage_estimates(const std::vector<WeightedYieldEstimate>& stages);

/// Estimate from a performance matrix whose rows carry the log weight as the
/// trailing column: row arity must be specs.size() + 1. A sample passes only
/// if every spec passes (NaN performances fail, preserving the convention
/// that convergence failures degrade yield).
[[nodiscard]] WeightedYieldEstimate
estimate_weighted_yield(const std::vector<std::vector<double>>& rows,
                        const std::vector<mc::Spec>& specs);

/// The shared row convention of every yield kernel: columns are the spec
/// performances, then the log weight, then optional extra columns (a
/// pilot's u record). Appends one pass flag (all specs pass; NaN fails)
/// and one log weight per row. \throws ypm::InvalidInputError when a row's
/// size differs from `arity` (pass specs.size() + 1 + extra columns).
void append_flags_and_weights(const std::vector<std::vector<double>>& rows,
                              const std::vector<mc::Spec>& specs,
                              std::size_t arity, std::vector<bool>& flags,
                              std::vector<double>& log_weights);

} // namespace ypm::yield
