#include "yield/sequential.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/error.hpp"

namespace ypm::yield {

SequentialYieldRunner::SequentialYieldRunner(eval::Engine& engine,
                                             SequentialConfig config,
                                             std::vector<mc::Spec> specs,
                                             KernelFactory factory,
                                             std::size_t dimension, Rng rng)
    : engine_(engine), config_(config), specs_(std::move(specs)),
      factory_(std::move(factory)), dimension_(dimension), rng_(rng) {
    if (specs_.empty())
        throw InvalidInputError("SequentialYieldRunner: need >= 1 spec");
    if (!factory_)
        throw InvalidInputError("SequentialYieldRunner: null kernel factory");
    if (config_.chunk_samples == 0)
        throw InvalidInputError("SequentialYieldRunner: chunk_samples must be >= 1");
    if (config_.max_samples == 0)
        throw InvalidInputError("SequentialYieldRunner: max_samples must be >= 1");
    if (config_.inflight == 0) config_.inflight = 1;
    // Zero retired samples must report the vacuous interval [0, 1], not a
    // default-constructed point interval [0, 0] pretending certainty (a
    // budget-starved point in a multi-point campaign hits this).
    estimate_ = weighted_yield_from_flags({}, {});
    pilot_estimate_ = estimate_;
}

void SequentialYieldRunner::submit_pilot() {
    if (pilot_submitted_ || config_.pilot_samples == 0) return;
    process::SampleShift pilot_shift;
    pilot_shift.scale = config_.pilot_scale;
    mc::McConfig cfg;
    cfg.samples = config_.pilot_samples;
    pilot_ticket_ =
        mc::submit_monte_carlo(engine_, cfg, rng_, factory_(pilot_shift, true));
    pilot_submitted_ = true;
}

void SequentialYieldRunner::finish_pilot() {
    if (pilot_finished_) return;
    if (pilot_submitted_) {
        const mc::McResult pilot = mc::wait_monte_carlo(engine_, pilot_ticket_);
        // Pilot estimate: the pilot proposal is widened, so it is itself a
        // (low-accuracy) importance-sampled estimate - a useful sanity
        // diagnostic next to the main stage.
        std::vector<bool> flags;
        std::vector<double> log_weights;
        append_flags_and_weights(pilot.rows, specs_,
                                 specs_.size() + 1 + dimension_, flags,
                                 log_weights);
        pilot_estimate_ = weighted_yield_from_flags(flags, log_weights);
        fit_ = fit_shift(pilot.rows, specs_, dimension_, config_.shift_fit);
    }
    // No pilot (or no pilot failures): fit_.shift stays the zero shift and
    // the main stage is plain Monte Carlo with unit weights.
    main_kernel_ = factory_(fit_.shift, false);
    pilot_finished_ = true;
}

bool SequentialYieldRunner::done() const {
    if (retired_samples_ == 0) return false;
    if (retired_samples_ >= config_.max_samples) return true;
    return target_met();
}

bool SequentialYieldRunner::target_met() const {
    // A weighted run with zero observed failures reports the clean-sweep
    // Wilson fallback CI, whose "conservative" argument assumes the shift
    // actually points at the failure region - a misaimed proposal that
    // undersamples failures must not early-certify on it. Keep sampling
    // until failure evidence (ess > 0) or the cap.
    return config_.target_half_width > 0.0 && retired_samples_ > 0 &&
           retired_samples_ >= config_.min_samples &&
           estimate_.half_width() <= config_.target_half_width &&
           (!estimate_.weighted || estimate_.ess > 0.0);
}

std::size_t SequentialYieldRunner::submit_chunk(std::size_t limit) {
    if (!pilot_finished_)
        throw InvalidInputError(
            "SequentialYieldRunner: finish_pilot() must run before chunks");
    const std::size_t left = config_.max_samples - std::min(submitted_samples_,
                                                            config_.max_samples);
    const std::size_t size = std::min({config_.chunk_samples, left, limit});
    if (size == 0) return 0;
    mc::McConfig cfg;
    cfg.samples = size;
    tickets_.emplace_back(mc::submit_monte_carlo(engine_, cfg, rng_, main_kernel_),
                          size);
    submitted_samples_ += size;
    return size;
}

bool SequentialYieldRunner::retire_chunk() {
    if (tickets_.empty()) return false;
    auto [ticket, size] = std::move(tickets_.front());
    tickets_.pop_front();
    fold_rows(mc::wait_monte_carlo(engine_, std::move(ticket)));
    (void)size;
    return true;
}

void SequentialYieldRunner::fold_rows(const mc::McResult& result) {
    append_flags_and_weights(result.rows, specs_, specs_.size() + 1, flags_,
                             log_weights_);
    retired_samples_ += result.rows.size();
    estimate_ = weighted_yield_from_flags(flags_, log_weights_);
    trajectory_.emplace_back(retired_samples_, estimate_.half_width());
}

std::size_t SequentialYieldRunner::drain_overshoot() {
    std::size_t drained = 0;
    while (!tickets_.empty()) {
        auto [ticket, size] = std::move(tickets_.front());
        tickets_.pop_front();
        (void)mc::wait_monte_carlo(engine_, std::move(ticket));
        drained += size;
    }
    discarded_samples_ += drained;
    return drained;
}

SequentialYieldResult SequentialYieldRunner::finish() {
    // Drain the overshoot: chunks submitted past the stop decision stay out
    // of the estimate so the result is identical for any inflight window.
    (void)drain_overshoot();
    SequentialYieldResult result;
    result.estimate = estimate_;
    result.pilot = pilot_estimate_;
    result.shift = fit_.shift;
    result.shift_pilot_failures = fit_.pilot_failures;
    result.samples_used = retired_samples_;
    result.pilot_samples = pilot_submitted_ ? config_.pilot_samples : 0;
    result.discarded_samples = discarded_samples_;
    result.reached_target = target_met();
    result.trajectory = std::move(trajectory_);
    return result;
}

SequentialYieldResult SequentialYieldRunner::run() {
    submit_pilot();
    finish_pilot();
    while (!done()) {
        while (tickets_.size() < config_.inflight && submit_chunk() > 0) {
        }
        if (!retire_chunk()) break;
    }
    return finish();
}

std::vector<SequentialYieldResult>
run_adaptive_yield(eval::Engine& engine, const AdaptiveYieldConfig& config,
                   const std::vector<YieldPoint>& points, Rng rng) {
    std::vector<std::unique_ptr<SequentialYieldRunner>> runners;
    runners.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        runners.push_back(std::make_unique<SequentialYieldRunner>(
            engine, config.sequential, points[i].specs, points[i].factory,
            points[i].dimension, rng.child(i + 1)));

    std::size_t used = 0;
    const auto remaining = [&]() -> std::size_t {
        if (config.total_samples == 0) return static_cast<std::size_t>(-1);
        return config.total_samples > used ? config.total_samples - used : 0;
    };

    // Pilots first, streamed together: every pilot chunk is in flight before
    // the first is retired, so they overlap on the engine's pool.
    for (auto& r : runners) {
        if (config.sequential.pilot_samples > 0 &&
            remaining() >= config.sequential.pilot_samples) {
            r->submit_pilot();
            used += config.sequential.pilot_samples;
        }
    }
    for (auto& r : runners) r->finish_pilot();

    // One initial chunk each (streamed the same way), so every point has an
    // estimate for the adaptive ranking.
    for (auto& r : runners) used += r->submit_chunk(remaining());
    for (auto& r : runners) (void)r->retire_chunk();

    // Adaptive rounds: each round the single unfinished point with the
    // widest confidence interval gets the next `inflight` chunks (streamed,
    // then retired, then re-ranked) - giving one chunk each to the top-K
    // would degenerate to round-robin whenever K covers the candidates.
    // Deterministic: ties break toward the lower point index.
    while (true) {
        std::size_t widest = runners.size();
        for (std::size_t i = 0; i < runners.size(); ++i) {
            if (runners[i]->done() || runners[i]->exhausted() || remaining() == 0)
                continue;
            if (widest == runners.size() ||
                runners[i]->estimate().half_width() >
                    runners[widest]->estimate().half_width())
                widest = i;
        }
        if (widest == runners.size()) break;
        SequentialYieldRunner& runner = *runners[widest];
        const std::size_t window =
            std::max<std::size_t>(config.sequential.inflight, 1);
        for (std::size_t k = 0; k < window && !runner.exhausted(); ++k) {
            const std::size_t submitted = runner.submit_chunk(remaining());
            if (submitted == 0) break;
            used += submitted;
        }
        // Stop folding the moment the runner is done, and refund the
        // drained overshoot to the budget (total_samples caps useful
        // samples; overshoot is wasted compute, not budget). Note the
        // window is also the allocation granularity: a pick folds up to
        // `inflight` chunks before the next re-ranking, so unlike the
        // single-point runner the *allocation* is only deterministic per
        // configuration, not invariant across window sizes.
        while (!runner.done() && runner.retire_chunk()) {
        }
        if (runner.done()) used -= std::min(used, runner.drain_overshoot());
    }

    std::vector<SequentialYieldResult> results;
    results.reserve(runners.size());
    for (auto& r : runners) results.push_back(r->finish());
    return results;
}

} // namespace ypm::yield
