#include "yield/sequential.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ypm::yield {

namespace {

/// Yield-runner instruments, resolved once; always-on (a few relaxed
/// atomic adds per retired *chunk*).
struct YieldMetrics {
    obs::Counter& chunks;
    obs::Counter& samples;
    obs::Counter& refits;

    static YieldMetrics& get() {
        auto& registry = obs::MetricsRegistry::global();
        static YieldMetrics metrics{registry.counter("yield.chunks"),
                                    registry.counter("yield.samples"),
                                    registry.counter("yield.refits")};
        return metrics;
    }
};

} // namespace

SequentialYieldRunner::SequentialYieldRunner(eval::Engine& engine,
                                             SequentialConfig config,
                                             std::vector<mc::Spec> specs,
                                             KernelFactory factory,
                                             std::size_t dimension, Rng rng)
    : engine_(engine), config_(config), specs_(std::move(specs)),
      factory_(std::move(factory)), dimension_(dimension), rng_(rng) {
    if (specs_.empty())
        throw InvalidInputError("SequentialYieldRunner: need >= 1 spec");
    if (!factory_)
        throw InvalidInputError("SequentialYieldRunner: null kernel factory");
    if (config_.chunk_samples == 0)
        throw InvalidInputError("SequentialYieldRunner: chunk_samples must be >= 1");
    if (config_.max_samples == 0)
        throw InvalidInputError("SequentialYieldRunner: max_samples must be >= 1");
    if (config_.min_samples > config_.max_samples)
        throw InvalidInputError(
            "SequentialYieldRunner: min_samples exceeds max_samples - the "
            "early stop would be silently unreachable and every run would "
            "burn the full sample cap");
    if (!(config_.shift_fit.defensive_weight >= 0.0 &&
          config_.shift_fit.defensive_weight < 1.0))
        throw InvalidInputError(
            "SequentialYieldRunner: shift_fit.defensive_weight must be in "
            "[0, 1)");
    if (config_.inflight == 0) config_.inflight = 1;
    // CE refinement needs u records on the main stage and at least one
    // failing record per refit.
    record_main_u_ = config_.refine_after_chunks > 0 && config_.max_refits > 0;
    if (config_.control.enabled && record_main_u_)
        throw InvalidInputError(
            "SequentialYieldRunner: control-variate estimation is "
            "incompatible with CE refinement - per-stage moment pooling "
            "cannot carry the pass-side control term");
    if (!config_.initial_proposal.components.empty()) {
        if (config_.pilot_samples > 0)
            throw InvalidInputError(
                "SequentialYieldRunner: initial_proposal (warm start) and a "
                "pilot stage are mutually exclusive - set pilot_samples to 0 "
                "to run from the warm proposal, or clear the proposal to "
                "refit from a pilot");
        config_.initial_proposal.validate(dimension_);
    }
    if (config_.refit_min_failures == 0) config_.refit_min_failures = 1;
    // Zero retired samples must report the vacuous interval [0, 1], not a
    // default-constructed point interval [0, 0] pretending certainty (a
    // budget-starved point in a multi-point campaign hits this).
    estimate_ = weighted_yield_from_flags({}, {});
    pilot_estimate_ = estimate_;
}

void SequentialYieldRunner::submit_pilot() {
    if (pilot_submitted_ || config_.pilot_samples == 0) return;
    process::SampleShift pilot_shift;
    pilot_shift.scale = config_.pilot_scale;
    mc::McConfig cfg;
    cfg.samples = config_.pilot_samples;
    pilot_ticket_ = mc::submit_monte_carlo(
        engine_, cfg, rng_,
        factory_(process::ProposalMixture::single(pilot_shift), true));
    pilot_submitted_ = true;
}

void SequentialYieldRunner::finish_pilot() {
    if (pilot_finished_) return;
    if (pilot_submitted_) {
        obs::Span span("yield.pilot", "yield");
        span.arg("samples", static_cast<double>(config_.pilot_samples));
        const mc::McResult pilot = mc::wait_monte_carlo(engine_, pilot_ticket_);
        // Pilot estimate: the pilot proposal is widened, so it is itself a
        // (low-accuracy) importance-sampled estimate - a useful sanity
        // diagnostic next to the main stage.
        std::vector<bool> flags;
        std::vector<double> log_weights;
        append_flags_and_weights(pilot.rows, specs_,
                                 specs_.size() + 1 + dimension_, flags,
                                 log_weights);
        pilot_estimate_ = weighted_yield_from_flags(flags, log_weights);
        fit_ = fit_shift(pilot.rows, specs_, dimension_, config_.shift_fit);
        pilot_failures_ = fit_.pilot_failures;
        span.arg("failures", static_cast<double>(pilot_failures_));
    }
    if (!pilot_submitted_ && !config_.initial_proposal.components.empty()) {
        // Warm start: bind the carried-over proposal directly (the ctor
        // guarantees no pilot was configured alongside it).
        main_proposal_ = config_.initial_proposal;
        main_arity_ = specs_.size() + 1 + (record_main_u_ ? dimension_ : 0);
        main_kernel_ = factory_(main_proposal_, record_main_u_);
    } else {
        // No pilot (or no pilot failures): the fitted proposal stays nominal
        // and the main stage is plain Monte Carlo with unit weights.
        bind_main_kernel(fit_);
    }
    pilot_finished_ = true;
}

void SequentialYieldRunner::bind_main_kernel(const ShiftFit& fit) {
    main_proposal_ = config_.mixture_proposal
                         ? fit.mixture
                         : process::ProposalMixture::single(fit.shift);
    main_arity_ = specs_.size() + 1 + (record_main_u_ ? dimension_ : 0);
    main_kernel_ = factory_(main_proposal_, record_main_u_);
}

bool SequentialYieldRunner::done() const {
    if (retired_samples_ == 0) return false;
    if (retired_samples_ >= config_.max_samples) return true;
    return target_met();
}

bool SequentialYieldRunner::target_met() const {
    // A weighted run with zero observed failures reports the clean-sweep
    // Wilson fallback CI, whose "conservative" argument assumes the shift
    // actually points at the failure region - a misaimed proposal that
    // undersamples failures must not early-certify on it. Keep sampling
    // until failure evidence (ess > 0) or the cap.
    return config_.target_half_width > 0.0 && retired_samples_ > 0 &&
           retired_samples_ >= config_.min_samples &&
           estimate_.half_width() <= config_.target_half_width &&
           (!estimate_.weighted || estimate_.ess > 0.0);
}

std::size_t SequentialYieldRunner::submit_chunk(std::size_t limit) {
    if (!pilot_finished_)
        throw InvalidInputError(
            "SequentialYieldRunner: finish_pilot() must run before chunks");
    const std::size_t left = config_.max_samples - std::min(submitted_samples_,
                                                            config_.max_samples);
    const std::size_t size = std::min({config_.chunk_samples, left, limit});
    if (size == 0) return 0;
    InflightChunk chunk{mc::McTicket{}, size, rng_};
    mc::McConfig cfg;
    cfg.samples = size;
    chunk.ticket = mc::submit_monte_carlo(engine_, cfg, rng_, main_kernel_);
    tickets_.push_back(std::move(chunk));
    submitted_samples_ += size;
    return size;
}

bool SequentialYieldRunner::retire_chunk() {
    if (tickets_.empty()) return false;
    InflightChunk chunk = std::move(tickets_.front());
    tickets_.pop_front();
    fold_rows(mc::wait_monte_carlo(engine_, std::move(chunk.ticket)));
    maybe_refit();
    return true;
}

void SequentialYieldRunner::fold_rows(const mc::McResult& result) {
    const std::size_t first = flags_.size();
    append_flags_and_weights(result.rows, specs_, main_arity_, flags_,
                             log_weights_);
    if (record_main_u_) {
        // Accumulate the failing records (with their exact per-proposal log
        // weights) for the cross-entropy refit.
        for (std::size_t k = 0; k < result.rows.size(); ++k)
            if (!flags_[first + k]) fail_rows_.push_back(result.rows[k]);
    }
    retired_samples_ += result.rows.size();
    ++stage_chunks_;
    update_estimate();
    trajectory_.emplace_back(retired_samples_, estimate_.half_width());

    // Observational only: the ISLE-style per-chunk diagnostic stream -
    // sample count, fail-side ESS, weight concentration, CI half-width -
    // as trace events, plus the always-on chunk/sample counters.
    YieldMetrics& metrics = YieldMetrics::get();
    metrics.chunks.add();
    metrics.samples.add(result.rows.size());
    if (obs::Tracer::enabled())
        obs::Tracer::instant(
            "yield.chunk", "yield",
            {{"samples", static_cast<double>(retired_samples_)},
             {"ess", estimate_.ess},
             {"max_weight_share", estimate_.max_weight_share},
             {"half_width", estimate_.half_width()}});
}

void SequentialYieldRunner::update_estimate() {
    if (stages_.empty()) {
        // control_variate_yield delegates verbatim to the fail-side
        // estimator when the control is inert, so this is the one estimate
        // path for every single-stage configuration.
        estimate_ = control_variate_yield(flags_, log_weights_, config_.control);
        return;
    }
    std::vector<WeightedYieldEstimate> all = stages_;
    all.push_back(weighted_yield_from_flags(flags_, log_weights_));
    estimate_ = combine_stage_estimates(all);
}

void SequentialYieldRunner::maybe_refit() {
    if (!record_main_u_ || refits_done_ >= config_.max_refits) return;
    if (stage_chunks_ < config_.refine_after_chunks) return;
    if (done()) return; // the stop decision wins over a refit
    if (fail_rows_.size() < config_.refit_min_failures) return;

    // Chunks in flight were drawn from the proposal being replaced: drain
    // them as discarded overshoot and rewind the RNG/submission state to
    // the retired prefix, so the post-refit stream - and with it the whole
    // run - depends only on folded chunks, never on the inflight window.
    rewind_inflight();

    fit_ = refit_shift(fail_rows_, specs_, dimension_, config_.shift_fit);
    bind_main_kernel(fit_);

    // Close the current stage: its samples were drawn from the old
    // proposal, so its estimate is combined per-stage with the stages to
    // come (never re-pooled under the new proposal's weights).
    stages_.push_back(weighted_yield_from_flags(flags_, log_weights_));
    flags_.clear();
    log_weights_.clear();
    stage_chunks_ = 0;
    ++refits_done_;
    YieldMetrics::get().refits.add();
    if (obs::Tracer::enabled())
        obs::Tracer::instant(
            "yield.refit", "yield",
            {{"refit", static_cast<double>(refits_done_)},
             {"fail_rows", static_cast<double>(fail_rows_.size())},
             {"retired_samples", static_cast<double>(retired_samples_)}});
}

void SequentialYieldRunner::rewind_inflight() {
    if (tickets_.empty()) return;
    rng_ = tickets_.front().rng_before;
    const std::size_t drained = drain_overshoot();
    submitted_samples_ -= std::min(drained, submitted_samples_);
}

std::size_t SequentialYieldRunner::drain_overshoot() {
    std::size_t drained = 0;
    while (!tickets_.empty()) {
        InflightChunk chunk = std::move(tickets_.front());
        tickets_.pop_front();
        (void)mc::wait_monte_carlo(engine_, std::move(chunk.ticket));
        drained += chunk.samples;
    }
    discarded_samples_ += drained;
    return drained;
}

std::size_t SequentialYieldRunner::take_refund() {
    const std::size_t refund = discarded_samples_ - refunded_samples_;
    refunded_samples_ = discarded_samples_;
    return refund;
}

SequentialYieldResult SequentialYieldRunner::finish() {
    // Drain the overshoot: chunks submitted past the stop decision stay out
    // of the estimate so the result is identical for any inflight window.
    (void)drain_overshoot();
    SequentialYieldResult result;
    result.estimate = estimate_;
    result.pilot = pilot_estimate_;
    result.shift = fit_.shift;
    result.proposal = main_proposal_;
    result.stage_estimates = stages_;
    if (!flags_.empty())
        result.stage_estimates.push_back(
            control_variate_yield(flags_, log_weights_, config_.control));
    result.refinements = refits_done_;
    result.merged_components = fit_.merged_components;
    result.shift_pilot_failures = pilot_failures_;
    result.samples_used = retired_samples_;
    result.pilot_samples = pilot_submitted_ ? config_.pilot_samples : 0;
    result.discarded_samples = discarded_samples_;
    result.reached_target = target_met();
    result.pilot_skipped = pilot_skipped_;
    result.trajectory = std::move(trajectory_);
    return result;
}

SequentialYieldResult SequentialYieldRunner::run() {
    submit_pilot();
    finish_pilot();
    while (!done()) {
        while (tickets_.size() < config_.inflight && submit_chunk() > 0) {
        }
        if (!retire_chunk()) break;
    }
    return finish();
}

std::vector<SequentialYieldResult>
run_adaptive_yield(eval::Engine& engine, const AdaptiveYieldConfig& config,
                   const std::vector<YieldPoint>& points, Rng rng) {
    std::vector<std::unique_ptr<SequentialYieldRunner>> runners;
    runners.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        runners.push_back(std::make_unique<SequentialYieldRunner>(
            engine, config.sequential, points[i].specs, points[i].factory,
            points[i].dimension, rng.child(i + 1)));

    std::size_t used = 0;
    const auto remaining = [&]() -> std::size_t {
        if (config.total_samples == 0) return static_cast<std::size_t>(-1);
        return config.total_samples > used ? config.total_samples - used : 0;
    };

    // Pilots first, streamed together: every pilot chunk is in flight before
    // the first is retired, so they overlap on the engine's pool. A point
    // whose pilot no longer fits the budget is flagged, not silently
    // degraded to plain MC.
    for (std::size_t i = 0; i < runners.size(); ++i) {
        if (config.sequential.pilot_samples == 0) continue;
        if (remaining() >= config.sequential.pilot_samples) {
            runners[i]->submit_pilot();
            used += config.sequential.pilot_samples;
        } else {
            runners[i]->mark_pilot_skipped();
            log::warn("adaptive yield: budget cannot cover the pilot of "
                      "point ", i, " - it runs on plain MC (pilot_skipped)");
        }
    }
    for (auto& r : runners) r->finish_pilot();

    // One initial chunk each (streamed the same way), so every point has an
    // estimate for the adaptive ranking.
    for (auto& r : runners) used += r->submit_chunk(remaining());
    for (auto& r : runners) {
        (void)r->retire_chunk();
        used -= std::min(used, r->take_refund());
    }

    // Adaptive rounds: each round the single unfinished point with the
    // widest confidence interval gets the next `inflight` chunks (streamed,
    // then retired, then re-ranked) - giving one chunk each to the top-K
    // would degenerate to round-robin whenever K covers the candidates.
    // Deterministic: ties break toward the lower point index.
    while (true) {
        std::size_t widest = runners.size();
        for (std::size_t i = 0; i < runners.size(); ++i) {
            if (runners[i]->done() || runners[i]->exhausted() || remaining() == 0)
                continue;
            if (widest == runners.size() ||
                runners[i]->estimate().half_width() >
                    runners[widest]->estimate().half_width())
                widest = i;
        }
        if (widest == runners.size()) break;
        SequentialYieldRunner& runner = *runners[widest];
        const std::size_t window =
            std::max<std::size_t>(config.sequential.inflight, 1);
        for (std::size_t k = 0; k < window && !runner.exhausted(); ++k) {
            const std::size_t submitted = runner.submit_chunk(remaining());
            if (submitted == 0) break;
            used += submitted;
        }
        // Stop folding the moment the runner is done, and refund the
        // drained overshoot to the budget (total_samples caps useful
        // samples; overshoot - from stop decisions and mid-run CE refits
        // alike - is wasted compute, not budget). Note the window is also
        // the allocation granularity: a pick folds up to `inflight` chunks
        // before the next re-ranking, so unlike the single-point runner the
        // *allocation* is only deterministic per configuration, not
        // invariant across window sizes.
        while (!runner.done() && runner.retire_chunk()) {
        }
        if (runner.done()) (void)runner.drain_overshoot();
        used -= std::min(used, runner.take_refund());
    }

    std::vector<SequentialYieldResult> results;
    results.reserve(runners.size());
    for (auto& r : runners) results.push_back(r->finish());
    return results;
}

} // namespace ypm::yield
