#include "yield/shift.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ypm::yield {

namespace {

/// Clamp a mean vector to the configured norm in place.
void clamp_norm(std::vector<double>& mu, double max_norm) {
    if (max_norm <= 0.0) return;
    double sum = 0.0;
    for (double m : mu) sum += m * m;
    const double norm = std::sqrt(sum);
    if (norm <= max_norm) return;
    const double k = max_norm / norm;
    for (double& m : mu) m *= k;
}

/// One surviving per-spec component on its way into the mixture: clamped
/// mean, (weighted) failure mass, and the diagonal variance (empty = unit).
struct FitComponent {
    std::vector<double> mu;
    double mass = 0.0;
    std::vector<double> var; ///< empty = isotropic unit variance
    [[nodiscard]] double var_at(std::size_t d) const {
        return var.empty() ? 1.0 : var[d];
    }
};

/// Mahalanobis distance between two component means under the average of
/// their diagonal variances (Euclidean in the standardized space when both
/// are unit): the overlap metric that decides a merge.
double component_distance(const FitComponent& a, const FitComponent& b) {
    double sum = 0.0;
    for (std::size_t d = 0; d < a.mu.size(); ++d) {
        const double dm = a.mu[d] - b.mu[d];
        const double s2 = 0.5 * (a.var_at(d) + b.var_at(d));
        sum += dm * dm / s2;
    }
    return std::sqrt(sum);
}

/// Greedy Mahalanobis merging of overlapping components: later components
/// are absorbed into the first one within `merge_distance` (mass-weighted
/// moment match: merged mean, merged variance = within + between-mean
/// spread when variances are carried). Deterministic: components are
/// visited in spec order. Returns the number of components absorbed.
std::size_t merge_components(std::vector<FitComponent>& comps,
                             double merge_distance) {
    if (merge_distance <= 0.0) return 0;
    std::size_t merged = 0;
    for (std::size_t i = 0; i < comps.size(); ++i) {
        for (std::size_t j = i + 1; j < comps.size();) {
            if (component_distance(comps[i], comps[j]) >= merge_distance) {
                ++j;
                continue;
            }
            FitComponent& a = comps[i];
            const FitComponent& b = comps[j];
            const double mass = a.mass + b.mass;
            const double wa = a.mass / mass, wb = b.mass / mass;
            const bool carry_var = !a.var.empty() || !b.var.empty();
            std::vector<double> mu(a.mu.size(), 0.0);
            std::vector<double> var;
            if (carry_var) var.assign(a.mu.size(), 0.0);
            for (std::size_t d = 0; d < a.mu.size(); ++d) {
                mu[d] = wa * a.mu[d] + wb * b.mu[d];
                if (carry_var) {
                    // Moment match: E[u^2] pooled minus the merged mean
                    // squared - the within-component variances plus the
                    // between-mean spread.
                    const double m2 = wa * (a.var_at(d) + a.mu[d] * a.mu[d]) +
                                      wb * (b.var_at(d) + b.mu[d] * b.mu[d]);
                    var[d] = std::max(m2 - mu[d] * mu[d], 0.0);
                }
            }
            a.mu = std::move(mu);
            a.var = std::move(var);
            a.mass = mass;
            comps.erase(comps.begin() + static_cast<std::ptrdiff_t>(j));
            ++merged;
        }
    }
    return merged;
}

/// Shared fitting machinery: per-spec (optionally importance-weighted)
/// centers of gravity of the failing rows, each norm-clamped; a combined
/// single shift; and the defensive mixture (scale-adapted and/or merged
/// when the config asks for it).
ShiftFit fit_impl(const std::vector<std::vector<double>>& rows,
                  const std::vector<mc::Spec>& specs, std::size_t dimension,
                  const ShiftFitConfig& config, bool importance_weighted) {
    if (!(config.defensive_weight >= 0.0 && config.defensive_weight < 1.0))
        throw InvalidInputError(
            "fit_shift: defensive_weight must be in [0, 1)");
    if (!(config.min_scale > 0.0) || !(config.max_scale >= config.min_scale))
        throw InvalidInputError(
            "fit_shift: scale clamps must satisfy 0 < min_scale <= max_scale");
    const std::size_t arity = specs.size() + 1 + dimension;
    // Scale adaptation needs importance weights: the pilot's few unweighted
    // failures carry no usable spread information (see ShiftFitConfig).
    const bool adapt_scale = config.adapt_scale && importance_weighted;

    ShiftFit fit;
    fit.per_spec.resize(specs.size());
    for (process::SampleShift& s : fit.per_spec) s.mu.assign(dimension, 0.0);
    fit.spec_failures.assign(specs.size(), 0);

    // Per-spec center of gravity over the standardized coordinates of the
    // samples failing that spec; `mass` is the (weighted) failure mass the
    // center averages over and the mixture weights split by. `cog2` holds
    // the weighted second moments for the diagonal variance fit.
    std::vector<std::vector<double>> cog(specs.size(),
                                         std::vector<double>(dimension, 0.0));
    std::vector<std::vector<double>> cog2;
    if (adapt_scale)
        cog2.assign(specs.size(), std::vector<double>(dimension, 0.0));
    std::vector<double> mass(specs.size(), 0.0);
    for (const auto& row : rows) {
        if (row.size() != arity)
            throw InvalidInputError(
                "fit_shift: row arity mismatch (expected specs + 1 + "
                "dimension columns)");
        double w = 1.0;
        if (importance_weighted) {
            const double lw = row[specs.size()];
            if (!std::isfinite(lw))
                throw InvalidInputError("refit_shift: non-finite log weight");
            w = std::exp(lw);
        }
        const double* u = row.data() + specs.size() + 1;
        bool any_fail = false;
        for (std::size_t s = 0; s < specs.size(); ++s) {
            if (specs[s].pass(row[s])) continue;
            any_fail = true;
            ++fit.spec_failures[s];
            mass[s] += w;
            for (std::size_t d = 0; d < dimension; ++d) {
                cog[s][d] += w * u[d];
                if (adapt_scale) cog2[s][d] += w * u[d] * u[d];
            }
        }
        if (any_fail) ++fit.pilot_failures;
    }

    // Per-spec diagonal sigma (empty = unit): the CE-optimal variance of
    // the importance-weighted failing records *around the clamped
    // component center actually used as the proposal mean* - when the norm
    // clamp displaced the fitted mean, the displacement enters the spread,
    // widening the component exactly where the clamp cut it short. Sigmas
    // are clamped to [min_scale, max_scale]. Specs with < 2 failing
    // records keep the unit scale - a variance from one record is zero.
    std::vector<std::vector<double>> spec_sigma(specs.size());
    double total_mass = 0.0;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (!(mass[s] > 0.0)) continue;
        total_mass += mass[s];
        const double inv = 1.0 / mass[s];
        for (double& c : cog[s]) c *= inv;
        fit.per_spec[s].mu = cog[s];
        // Each component is a proposal mean in its own right: clamp it, not
        // just the combined shift (an unclamped per-spec center from a
        // widened pilot overshoots into weight collapse exactly like the
        // combined one would).
        clamp_norm(fit.per_spec[s].mu, config.max_norm);
        if (adapt_scale && fit.spec_failures[s] >= 2) {
            std::vector<double> sigma(dimension, 1.0);
            bool any_adapted = false;
            for (std::size_t d = 0; d < dimension; ++d) {
                // E_w[(u - mu_clamped)^2] from the raw moments: the second
                // moment minus the cross term against the clamped center.
                const double mu_c = fit.per_spec[s].mu[d];
                const double var = std::max(
                    cog2[s][d] * inv - 2.0 * mu_c * cog[s][d] + mu_c * mu_c,
                    0.0);
                const double sd = std::clamp(std::sqrt(var), config.min_scale,
                                             config.max_scale);
                sigma[d] = sd;
                if (sd != 1.0) any_adapted = true;
            }
            if (any_adapted) spec_sigma[s] = std::move(sigma);
        }
    }
    if (total_mass == 0.0) {
        // No failures: zero shift, single-nominal mixture - the main stage
        // degenerates to plain MC.
        fit.mixture = process::ProposalMixture::nominal();
        return fit;
    }

    // Combined single shift (legacy proposal mode and reporting): the
    // failure-mass-weighted average of the clamped per-spec centers. With
    // one failing spec this is exactly its center of gravity; with several
    // it points between the modes - a single mean-shift proposal cannot
    // cover disjoint regions, which is what the mixture below is for.
    std::vector<double> combined(dimension, 0.0);
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (!(mass[s] > 0.0)) continue;
        const double w = mass[s] / total_mass;
        for (std::size_t d = 0; d < dimension; ++d)
            combined[d] += w * fit.per_spec[s].mu[d];
    }
    clamp_norm(combined, config.max_norm);
    fit.shift.mu = std::move(combined);

    // Defensive mixture: nominal component + one component per failing
    // spec, the shifted mass split in proportion to the spec failure mass.
    // Per-spec components first pass through the (optional) Mahalanobis
    // merging so overlapping failure modes share one component.
    std::vector<FitComponent> comps;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (!(mass[s] > 0.0)) continue;
        FitComponent c;
        c.mu = fit.per_spec[s].mu;
        c.mass = mass[s];
        if (!spec_sigma[s].empty()) {
            c.var.resize(dimension);
            for (std::size_t d = 0; d < dimension; ++d)
                c.var[d] = spec_sigma[s][d] * spec_sigma[s][d];
        }
        comps.push_back(std::move(c));
    }
    fit.merged_components = merge_components(comps, config.merge_distance);

    if (config.defensive_weight > 0.0) {
        process::ProposalComponent nominal;
        nominal.weight = config.defensive_weight;
        fit.mixture.components.push_back(std::move(nominal));
    }
    const double shifted_mass = 1.0 - config.defensive_weight;
    for (FitComponent& c : comps) {
        process::ProposalComponent comp;
        comp.mu = std::move(c.mu);
        comp.weight = shifted_mass * c.mass / total_mass;
        if (!c.var.empty()) {
            comp.sigma.resize(dimension);
            for (std::size_t d = 0; d < dimension; ++d)
                comp.sigma[d] = std::clamp(std::sqrt(c.var[d]),
                                           config.min_scale, config.max_scale);
        }
        fit.mixture.components.push_back(std::move(comp));
    }
    return fit;
}

} // namespace

ShiftFit fit_shift(const std::vector<std::vector<double>>& pilot_rows,
                   const std::vector<mc::Spec>& specs, std::size_t dimension,
                   const ShiftFitConfig& config) {
    return fit_impl(pilot_rows, specs, dimension, config, false);
}

ShiftFit refit_shift(const std::vector<std::vector<double>>& rows,
                     const std::vector<mc::Spec>& specs, std::size_t dimension,
                     const ShiftFitConfig& config) {
    return fit_impl(rows, specs, dimension, config, true);
}

} // namespace ypm::yield
