#include "yield/shift.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ypm::yield {

ShiftFit fit_shift(const std::vector<std::vector<double>>& pilot_rows,
                   const std::vector<mc::Spec>& specs, std::size_t dimension,
                   const ShiftFitConfig& config) {
    const std::size_t arity = specs.size() + 1 + dimension;

    ShiftFit fit;
    fit.per_spec.resize(specs.size());
    fit.spec_failures.assign(specs.size(), 0);

    // Per-spec center of gravity over the standardized coordinates of the
    // samples failing that spec.
    std::vector<std::vector<double>> cog(specs.size(),
                                         std::vector<double>(dimension, 0.0));
    for (const auto& row : pilot_rows) {
        if (row.size() != arity)
            throw InvalidInputError(
                "fit_shift: pilot row arity mismatch (expected specs + 1 + "
                "dimension columns)");
        const double* u = row.data() + specs.size() + 1;
        bool any_fail = false;
        for (std::size_t s = 0; s < specs.size(); ++s) {
            if (specs[s].pass(row[s])) continue;
            any_fail = true;
            ++fit.spec_failures[s];
            for (std::size_t d = 0; d < dimension; ++d) cog[s][d] += u[d];
        }
        if (any_fail) ++fit.pilot_failures;
    }

    std::size_t total_failures = 0;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (fit.spec_failures[s] == 0) continue;
        total_failures += fit.spec_failures[s];
        const double inv = 1.0 / static_cast<double>(fit.spec_failures[s]);
        for (double& c : cog[s]) c *= inv;
        fit.per_spec[s].mu = cog[s];
    }
    if (total_failures == 0) return fit; // no failures: keep the zero shift

    // Combined proposal: failure-count-weighted average of the per-spec
    // centers. With one failing spec this is exactly its center of gravity;
    // with several it points at the dominant failure mode (a single
    // mean-shift proposal cannot cover disjoint regions - the weighted
    // estimator stays unbiased either way, only its variance suffers).
    std::vector<double> combined(dimension, 0.0);
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (fit.spec_failures[s] == 0) continue;
        const double w = static_cast<double>(fit.spec_failures[s]) /
                         static_cast<double>(total_failures);
        for (std::size_t d = 0; d < dimension; ++d)
            combined[d] += w * fit.per_spec[s].mu[d];
    }

    fit.shift.mu = std::move(combined);
    const double norm = fit.shift.norm();
    if (config.max_norm > 0.0 && norm > config.max_norm) {
        const double k = config.max_norm / norm;
        for (double& c : fit.shift.mu) c *= k;
    }
    return fit;
}

} // namespace ypm::yield
