#include "yield/shift.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ypm::yield {

namespace {

/// Clamp a mean vector to the configured norm in place.
void clamp_norm(std::vector<double>& mu, double max_norm) {
    if (max_norm <= 0.0) return;
    double sum = 0.0;
    for (double m : mu) sum += m * m;
    const double norm = std::sqrt(sum);
    if (norm <= max_norm) return;
    const double k = max_norm / norm;
    for (double& m : mu) m *= k;
}

/// Shared fitting machinery: per-spec (optionally importance-weighted)
/// centers of gravity of the failing rows, each norm-clamped; a combined
/// single shift; and the defensive mixture.
ShiftFit fit_impl(const std::vector<std::vector<double>>& rows,
                  const std::vector<mc::Spec>& specs, std::size_t dimension,
                  const ShiftFitConfig& config, bool importance_weighted) {
    if (!(config.defensive_weight >= 0.0 && config.defensive_weight < 1.0))
        throw InvalidInputError(
            "fit_shift: defensive_weight must be in [0, 1)");
    const std::size_t arity = specs.size() + 1 + dimension;

    ShiftFit fit;
    fit.per_spec.resize(specs.size());
    for (process::SampleShift& s : fit.per_spec) s.mu.assign(dimension, 0.0);
    fit.spec_failures.assign(specs.size(), 0);

    // Per-spec center of gravity over the standardized coordinates of the
    // samples failing that spec; `mass` is the (weighted) failure mass the
    // center averages over and the mixture weights split by.
    std::vector<std::vector<double>> cog(specs.size(),
                                         std::vector<double>(dimension, 0.0));
    std::vector<double> mass(specs.size(), 0.0);
    for (const auto& row : rows) {
        if (row.size() != arity)
            throw InvalidInputError(
                "fit_shift: row arity mismatch (expected specs + 1 + "
                "dimension columns)");
        double w = 1.0;
        if (importance_weighted) {
            const double lw = row[specs.size()];
            if (!std::isfinite(lw))
                throw InvalidInputError("refit_shift: non-finite log weight");
            w = std::exp(lw);
        }
        const double* u = row.data() + specs.size() + 1;
        bool any_fail = false;
        for (std::size_t s = 0; s < specs.size(); ++s) {
            if (specs[s].pass(row[s])) continue;
            any_fail = true;
            ++fit.spec_failures[s];
            mass[s] += w;
            for (std::size_t d = 0; d < dimension; ++d) cog[s][d] += w * u[d];
        }
        if (any_fail) ++fit.pilot_failures;
    }

    double total_mass = 0.0;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (!(mass[s] > 0.0)) continue;
        total_mass += mass[s];
        const double inv = 1.0 / mass[s];
        for (double& c : cog[s]) c *= inv;
        fit.per_spec[s].mu = cog[s];
        // Each component is a proposal mean in its own right: clamp it, not
        // just the combined shift (an unclamped per-spec center from a
        // widened pilot overshoots into weight collapse exactly like the
        // combined one would).
        clamp_norm(fit.per_spec[s].mu, config.max_norm);
    }
    if (total_mass == 0.0) {
        // No failures: zero shift, single-nominal mixture - the main stage
        // degenerates to plain MC.
        fit.mixture = process::ProposalMixture::nominal();
        return fit;
    }

    // Combined single shift (legacy proposal mode and reporting): the
    // failure-mass-weighted average of the clamped per-spec centers. With
    // one failing spec this is exactly its center of gravity; with several
    // it points between the modes - a single mean-shift proposal cannot
    // cover disjoint regions, which is what the mixture below is for.
    std::vector<double> combined(dimension, 0.0);
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (!(mass[s] > 0.0)) continue;
        const double w = mass[s] / total_mass;
        for (std::size_t d = 0; d < dimension; ++d)
            combined[d] += w * fit.per_spec[s].mu[d];
    }
    clamp_norm(combined, config.max_norm);
    fit.shift.mu = std::move(combined);

    // Defensive mixture: nominal component + one component per failing
    // spec, the shifted mass split in proportion to the spec failure mass.
    if (config.defensive_weight > 0.0) {
        process::ProposalComponent nominal;
        nominal.weight = config.defensive_weight;
        fit.mixture.components.push_back(std::move(nominal));
    }
    const double shifted_mass = 1.0 - config.defensive_weight;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (!(mass[s] > 0.0)) continue;
        process::ProposalComponent comp;
        comp.mu = fit.per_spec[s].mu;
        comp.weight = shifted_mass * mass[s] / total_mass;
        fit.mixture.components.push_back(std::move(comp));
    }
    return fit;
}

} // namespace

ShiftFit fit_shift(const std::vector<std::vector<double>>& pilot_rows,
                   const std::vector<mc::Spec>& specs, std::size_t dimension,
                   const ShiftFitConfig& config) {
    return fit_impl(pilot_rows, specs, dimension, config, false);
}

ShiftFit refit_shift(const std::vector<std::vector<double>>& rows,
                     const std::vector<mc::Spec>& specs, std::size_t dimension,
                     const ShiftFitConfig& config) {
    return fit_impl(rows, specs, dimension, config, true);
}

} // namespace ypm::yield
