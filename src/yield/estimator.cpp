#include "yield/estimator.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace ypm::yield {

SequentialYieldResult
YieldEstimator::estimate(eval::Engine& engine, const SequentialConfig& base,
                         const std::vector<mc::Spec>& specs,
                         const KernelFactory& factory, std::size_t dimension,
                         Rng rng) const {
    SequentialYieldRunner runner(engine, configure(base), specs, factory,
                                 dimension, rng);
    return runner.run();
}

namespace {

/// The whole built-in zoo shares one implementation: a name plus a config
/// transform. Estimators needing real state can subclass YieldEstimator
/// directly; none of the built-ins do.
class PolicyEstimator final : public YieldEstimator {
public:
    using Transform = SequentialConfig (*)(SequentialConfig);
    PolicyEstimator(std::string_view name, Transform transform)
        : name_(name), transform_(transform) {}

    [[nodiscard]] std::string_view name() const override { return name_; }
    [[nodiscard]] SequentialConfig
    configure(SequentialConfig base) const override {
        return transform_(std::move(base));
    }

private:
    std::string_view name_;
    Transform transform_;
};

/// Every estimator starts from a clean method slate: the scenario-level
/// base keeps its problem knobs, the family knobs are reset here and then
/// re-enabled per estimator. Without the reset, a base config carrying
/// (say) refine_after_chunks would silently turn plain_mc into a CE run.
SequentialConfig reset_method_knobs(SequentialConfig c) {
    c.mixture_proposal = true;
    c.refine_after_chunks = 0;
    c.shift_fit.adapt_scale = false;
    c.shift_fit.merge_distance = 0.0;
    c.control = {};
    return c;
}

SequentialConfig plain_mc(SequentialConfig c) {
    c = reset_method_knobs(std::move(c));
    c.pilot_samples = 0; // zero shift: the driver degenerates to plain MC
    return c;
}

SequentialConfig single_shift(SequentialConfig c) {
    c = reset_method_knobs(std::move(c));
    c.mixture_proposal = false; // legacy ISLE combined mean shift
    return c;
}

/// Shared base of the mixture family: defensive mixture proposal with one
/// cross-entropy refinement (period 2 retired chunks unless the scenario
/// asked for another period/round count).
SequentialConfig mixture_ce(SequentialConfig base) {
    const std::size_t period = base.refine_after_chunks;
    const std::size_t refits = base.max_refits;
    SequentialConfig c = reset_method_knobs(std::move(base));
    c.refine_after_chunks = period > 0 ? period : 2;
    c.max_refits = refits > 0 ? refits : 1;
    return c;
}

SequentialConfig mixture_ce_scale(SequentialConfig c) {
    c = mixture_ce(std::move(c));
    c.shift_fit.adapt_scale = true;
    return c;
}

SequentialConfig mixture_merge(SequentialConfig base) {
    const double distance = base.shift_fit.merge_distance;
    SequentialConfig c = mixture_ce(std::move(base));
    c.shift_fit.merge_distance = distance > 0.0 ? distance : 1.0;
    return c;
}

SequentialConfig control_variate(SequentialConfig c) {
    c = reset_method_knobs(std::move(c));
    c.control.enabled = true;
    c.control.auto_beta = true;
    return c;
}

} // namespace

EstimatorRegistry& EstimatorRegistry::instance() {
    static EstimatorRegistry registry;
    return registry;
}

EstimatorRegistry::EstimatorRegistry() {
    const auto builtin = [this](std::string_view name,
                                PolicyEstimator::Transform transform) {
        add(std::string(name), [name, transform] {
            return std::make_unique<PolicyEstimator>(name, transform);
        });
    };
    builtin("plain_mc", plain_mc);
    builtin("single_shift", single_shift);
    builtin("mixture_ce", mixture_ce);
    builtin("mixture_ce_scale", mixture_ce_scale);
    builtin("mixture_merge", mixture_merge);
    builtin("control_variate", control_variate);
}

void EstimatorRegistry::add(std::string name, EstimatorFactory factory) {
    if (name.empty())
        throw InvalidInputError("EstimatorRegistry: empty estimator name");
    if (!factory)
        throw InvalidInputError("EstimatorRegistry: null factory for '" +
                                name + "'");
    if (contains(name))
        throw InvalidInputError("EstimatorRegistry: duplicate estimator '" +
                                name + "'");
    entries_.emplace_back(std::move(name), std::move(factory));
}

bool EstimatorRegistry::contains(std::string_view name) const {
    for (const auto& [n, f] : entries_)
        if (n == name) return true;
    return false;
}

std::unique_ptr<YieldEstimator>
EstimatorRegistry::create(std::string_view name) const {
    for (const auto& [n, factory] : entries_)
        if (n == name) return factory();
    std::string known;
    for (const std::string& n : names()) {
        if (!known.empty()) known += ", ";
        known += n;
    }
    throw InvalidInputError("EstimatorRegistry: unknown estimator '" +
                            std::string(name) + "' (registered: " + known +
                            ")");
}

std::vector<std::string> EstimatorRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [n, f] : entries_) out.push_back(n);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace ypm::yield
