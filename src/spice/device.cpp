#include "spice/device.hpp"

// Device is header-only apart from the vtable anchor below; keeping the key
// function here gives every translation unit a single vtable instance.

namespace ypm::spice {} // namespace ypm::spice
