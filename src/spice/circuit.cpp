#include "spice/circuit.hpp"

#include "spice/devices/mosfet.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::spice {

Circuit::Circuit() = default;

namespace {
bool is_ground_name(const std::string& lower) {
    return lower == "0" || lower == "gnd" || lower == "gnd!" || lower == "vss!";
}
} // namespace

NodeId Circuit::node(const std::string& name) {
    const std::string key = str::to_lower(str::trim(name));
    if (key.empty()) throw InvalidInputError("Circuit: empty node name");
    if (is_ground_name(key)) return ground;
    const auto it = by_name_.find(key);
    if (it != by_name_.end()) return it->second;
    names_.push_back(key);
    const NodeId id = static_cast<NodeId>(names_.size());
    by_name_.emplace(key, id);
    return id;
}

std::optional<NodeId> Circuit::find_node(const std::string& name) const {
    const std::string key = str::to_lower(str::trim(name));
    if (is_ground_name(key)) return ground;
    const auto it = by_name_.find(key);
    if (it == by_name_.end()) return std::nullopt;
    return it->second;
}

const std::string& Circuit::node_name(NodeId id) const {
    static const std::string ground_name = "0";
    if (id == ground) return ground_name;
    const auto idx = static_cast<std::size_t>(id) - 1;
    if (idx >= names_.size())
        throw InvalidInputError("Circuit: node id out of range");
    return names_[idx];
}

void Circuit::add_device(std::unique_ptr<Device> device) {
    if (!device) throw InvalidInputError("Circuit: null device");
    const std::string key = str::to_lower(device->name());
    if (device_index_.count(key))
        throw InvalidInputError("Circuit: duplicate device name '" + device->name() +
                                "'");
    device_index_.emplace(key, devices_.size());
    devices_.push_back(std::move(device));
    finalized_ = false;
}

Device* Circuit::find_device(const std::string& name) {
    const auto it = device_index_.find(str::to_lower(name));
    return it == device_index_.end() ? nullptr : devices_[it->second].get();
}

const Device* Circuit::find_device(const std::string& name) const {
    const auto it = device_index_.find(str::to_lower(name));
    return it == device_index_.end() ? nullptr : devices_[it->second].get();
}

void Circuit::finalize() {
    if (finalized_) return;
    // Allocate private internal nodes first, then branch indices, in device
    // order so layouts are reproducible.
    for (auto& dev : devices_) {
        const std::size_t internals = dev->internal_node_count();
        if (internals > 0) {
            dev->assign_internal_base(static_cast<NodeId>(names_.size() + 1));
            for (std::size_t i = 0; i < internals; ++i) {
                const std::string internal_name =
                    str::to_lower(dev->name()) + "#int" + std::to_string(i);
                // Internal names are namespaced by device name and device
                // names are unique, so collisions cannot occur.
                names_.push_back(internal_name);
                by_name_.emplace(internal_name, static_cast<NodeId>(names_.size()));
            }
        }
    }
    std::size_t branch = 0;
    for (auto& dev : devices_) {
        if (dev->branch_count() > 0) {
            dev->assign_branch_base(branch);
            branch += dev->branch_count();
        }
    }
    n_branches_ = branch;
    std::size_t state = 0;
    for (auto& dev : devices_) {
        if (dev->tran_state_count() > 0) {
            dev->assign_tran_state_base(state);
            state += dev->tran_state_count();
        }
    }
    n_tran_states_ = state;
    finalized_ = true;
}

std::vector<process::MosGeometry> Circuit::mos_geometries() const {
    std::vector<process::MosGeometry> out;
    for (const auto& dev : devices_) {
        const auto* mos = dynamic_cast<const Mosfet*>(dev.get());
        if (mos == nullptr) continue;
        process::MosGeometry g;
        g.name = str::to_lower(mos->name());
        g.is_pmos = mos->is_pmos();
        g.w = mos->width();
        g.l = mos->length();
        out.push_back(std::move(g));
    }
    return out;
}

void Circuit::apply_process(const process::Realization& realization) {
    for (auto& dev : devices_) {
        auto* mos = dynamic_cast<Mosfet*>(dev.get());
        if (mos == nullptr) continue;
        mos->apply_delta(
            realization.delta_for(str::to_lower(mos->name()), mos->is_pmos()));
    }
}

} // namespace ypm::spice
