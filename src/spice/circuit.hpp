#pragma once
/// \file circuit.hpp
/// \brief Circuit container: named nodes plus an ordered device list.

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "process/sampler.hpp"
#include "spice/device.hpp"
#include "spice/solution.hpp"

namespace ypm::spice {

class Mosfet; // devices/mosfet.hpp

class Circuit {
public:
    Circuit();

    /// Get-or-create a named node. "0", "gnd" and "gnd!" map to ground.
    NodeId node(const std::string& name);

    /// Look up an existing node by name.
    [[nodiscard]] std::optional<NodeId> find_node(const std::string& name) const;

    /// Name of a node id (internal nodes get synthesised names).
    [[nodiscard]] const std::string& node_name(NodeId id) const;

    /// Non-ground node count (including device-internal nodes after
    /// finalize()).
    [[nodiscard]] std::size_t node_count() const { return names_.size(); }

    /// Construct and register a device.
    /// Example: circuit.add<Resistor>("r1", n1, n2, 10e3);
    template <typename D, typename... Args>
    D& add(Args&&... args) {
        auto dev = std::make_unique<D>(std::forward<Args>(args)...);
        D& ref = *dev;
        add_device(std::move(dev));
        return ref;
    }

    /// Register an already-built device.
    void add_device(std::unique_ptr<Device> device);

    /// Find a device by name (nullptr if absent).
    [[nodiscard]] Device* find_device(const std::string& name);
    [[nodiscard]] const Device* find_device(const std::string& name) const;

    [[nodiscard]] const std::vector<std::unique_ptr<Device>>& devices() const {
        return devices_;
    }

    /// Allocate internal nodes and branch indices. Idempotent; called by
    /// analyses. Adding a device invalidates the previous finalisation.
    void finalize();
    [[nodiscard]] bool finalized() const { return finalized_; }

    /// Total branch unknowns (valid after finalize()).
    [[nodiscard]] std::size_t branch_count() const { return n_branches_; }

    /// Total transient state slots (valid after finalize()).
    [[nodiscard]] std::size_t tran_state_count() const { return n_tran_states_; }

    /// Total MNA unknowns = nodes + branches (valid after finalize()).
    [[nodiscard]] std::size_t unknowns() const {
        return node_count() + branch_count();
    }

    /// Geometry of every MOSFET, for process mismatch sampling.
    [[nodiscard]] std::vector<process::MosGeometry> mos_geometries() const;

    /// Apply a process realisation to every MOSFET instance.
    void apply_process(const process::Realization& realization);

private:
    std::vector<std::string> names_; ///< index = NodeId - 1
    std::unordered_map<std::string, NodeId> by_name_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::unordered_map<std::string, std::size_t> device_index_;
    std::size_t n_branches_ = 0;
    std::size_t n_tran_states_ = 0;
    bool finalized_ = false;
};

} // namespace ypm::spice
