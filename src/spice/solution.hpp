#pragma once
/// \file solution.hpp
/// \brief MNA solution vector: node voltages followed by branch currents.

#include <complex>
#include <cstddef>
#include <vector>

namespace ypm::spice {

/// Node identifier. 0 is always ground; real unknowns start at 1.
using NodeId = int;
inline constexpr NodeId ground = 0;

/// Real-valued solution (DC operating point / one DC sweep step).
class Solution {
public:
    Solution() = default;
    Solution(std::size_t n_nodes, std::size_t n_branches)
        : n_nodes_(n_nodes), x_(n_nodes + n_branches, 0.0) {}

    /// Voltage at a node; ground reads 0 V.
    [[nodiscard]] double voltage(NodeId n) const {
        return n == ground ? 0.0 : x_[static_cast<std::size_t>(n) - 1];
    }

    /// Current through branch-equipped devices (V sources, inductors).
    [[nodiscard]] double branch_current(std::size_t branch) const {
        return x_[n_nodes_ + branch];
    }

    [[nodiscard]] std::size_t node_count() const { return n_nodes_; }
    [[nodiscard]] std::size_t branch_count() const { return x_.size() - n_nodes_; }
    [[nodiscard]] std::size_t size() const { return x_.size(); }

    [[nodiscard]] std::vector<double>& raw() { return x_; }
    [[nodiscard]] const std::vector<double>& raw() const { return x_; }

private:
    std::size_t n_nodes_ = 0;
    std::vector<double> x_;
};

/// Complex-valued solution (one AC frequency point).
class AcSolution {
public:
    AcSolution() = default;
    AcSolution(std::size_t n_nodes, std::vector<std::complex<double>> x)
        : n_nodes_(n_nodes), x_(std::move(x)) {}

    [[nodiscard]] std::complex<double> voltage(NodeId n) const {
        return n == ground ? std::complex<double>{} : x_[static_cast<std::size_t>(n) - 1];
    }
    [[nodiscard]] std::complex<double> branch_current(std::size_t branch) const {
        return x_[n_nodes_ + branch];
    }
    [[nodiscard]] std::size_t size() const { return x_.size(); }

private:
    std::size_t n_nodes_ = 0;
    std::vector<std::complex<double>> x_;
};

} // namespace ypm::spice
