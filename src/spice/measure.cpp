#include "spice/measure.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::spice {

namespace {

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

void check_sweep(const std::vector<double>& freqs,
                 const std::vector<std::complex<double>>& h) {
    if (freqs.size() != h.size() || freqs.size() < 2)
        throw InvalidInputError("measure: need >= 2 matched sweep points");
    for (std::size_t i = 0; i + 1 < freqs.size(); ++i)
        if (!(freqs[i] < freqs[i + 1]))
            throw InvalidInputError("measure: frequencies must be ascending");
}

/// Interpolate x (log f) where series crosses `target`, scanning upward.
/// Returns NaN when no crossing exists.
double crossing_logf(const std::vector<double>& freqs,
                     const std::vector<double>& series, double target) {
    for (std::size_t i = 0; i + 1 < series.size(); ++i) {
        const double a = series[i] - target;
        const double b = series[i + 1] - target;
        if (a == 0.0) return freqs[i];
        if ((a > 0.0 && b <= 0.0) || (a < 0.0 && b >= 0.0)) {
            const double t = a / (a - b);
            const double lf =
                mathx::lerp(std::log10(freqs[i]), std::log10(freqs[i + 1]), t);
            return std::pow(10.0, lf);
        }
    }
    return nan_v;
}

/// Interpolate series value at frequency f (linear in log f).
double value_at_logf(const std::vector<double>& freqs,
                     const std::vector<double>& series, double f) {
    if (f <= freqs.front()) return series.front();
    if (f >= freqs.back()) return series.back();
    const std::size_t i = mathx::bracket(freqs, f);
    const double t = (std::log10(f) - std::log10(freqs[i])) /
                     (std::log10(freqs[i + 1]) - std::log10(freqs[i]));
    return mathx::lerp(series[i], series[i + 1], t);
}

} // namespace

std::vector<double> magnitude_db(const std::vector<std::complex<double>>& h) {
    std::vector<double> out;
    out.reserve(h.size());
    for (const auto& v : h) {
        const double mag = std::abs(v);
        out.push_back(mag > 0.0 ? 20.0 * std::log10(mag) : -400.0);
    }
    return out;
}

std::vector<double> phase_deg_unwrapped(const std::vector<std::complex<double>>& h) {
    std::vector<double> out;
    out.reserve(h.size());
    double prev = 0.0;
    double offset = 0.0;
    for (std::size_t i = 0; i < h.size(); ++i) {
        const double raw = mathx::deg_from_rad(std::arg(h[i]));
        if (i > 0) {
            double diff = raw + offset - prev;
            while (diff > 180.0) {
                offset -= 360.0;
                diff -= 360.0;
            }
            while (diff < -180.0) {
                offset += 360.0;
                diff += 360.0;
            }
        }
        const double unwrapped = raw + offset;
        out.push_back(unwrapped);
        prev = unwrapped;
    }
    return out;
}

double gain_db_at(const std::vector<double>& freqs,
                  const std::vector<std::complex<double>>& h, double f) {
    check_sweep(freqs, h);
    return value_at_logf(freqs, magnitude_db(h), f);
}

BodeMetrics bode_metrics(const std::vector<double>& freqs,
                         const std::vector<std::complex<double>>& h) {
    check_sweep(freqs, h);
    const auto mag_db = magnitude_db(h);
    const auto phase = phase_deg_unwrapped(h);

    BodeMetrics m;
    m.dc_gain_db = mag_db.front();

    m.unity_freq = crossing_logf(freqs, mag_db, 0.0);
    if (std::isnan(m.unity_freq)) {
        m.phase_margin_deg = nan_v;
    } else {
        const double phase_at_unity = value_at_logf(freqs, phase, m.unity_freq);
        m.phase_margin_deg = 180.0 + phase_at_unity;
    }

    const double f180 = crossing_logf(freqs, phase, -180.0);
    m.gain_margin_db =
        std::isnan(f180) ? nan_v : -value_at_logf(freqs, mag_db, f180);

    m.f3db = crossing_logf(freqs, mag_db, m.dc_gain_db - 3.0103);
    m.gbw = std::isnan(m.f3db) ? nan_v : mathx::undb20(m.dc_gain_db) * m.f3db;
    return m;
}

LowpassMetrics lowpass_metrics(const std::vector<double>& freqs,
                               const std::vector<std::complex<double>>& h,
                               double f_stop) {
    check_sweep(freqs, h);
    const auto mag_db = magnitude_db(h);
    LowpassMetrics m;
    m.passband_gain_db = mag_db.front();
    m.fc = crossing_logf(freqs, mag_db, m.passband_gain_db - 3.0103);
    m.stopband_atten_db = m.passband_gain_db - value_at_logf(freqs, mag_db, f_stop);
    return m;
}

} // namespace ypm::spice
