#include "spice/netlist.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "spice/devices/capacitor.hpp"
#include "spice/devices/controlled.hpp"
#include "spice/devices/diode.hpp"
#include "spice/devices/inductor.hpp"
#include "spice/devices/mosfet.hpp"
#include "spice/devices/resistor.hpp"
#include "spice/devices/sources.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ypm::spice {

namespace {

struct ModelDef {
    Mosfet::Type type = Mosfet::Type::nmos;
    process::MosModelParams params;
};

struct SubcktDef {
    std::vector<std::string> pins;
    std::vector<std::vector<std::string>> cards; ///< tokenised body lines
};

struct ParserState {
    ParsedNetlist out;
    std::unordered_map<std::string, ModelDef> models;
    std::unordered_map<std::string, SubcktDef> subckts;
    const process::ProcessCard* card = nullptr;
};

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
    throw InvalidInputError("netlist line " + std::to_string(line) + ": " + msg);
}

double value_of(const std::string& tok, std::size_t line) {
    const auto v = units::try_parse_value(tok);
    if (!v) fail(line, "bad number '" + tok + "'");
    return *v;
}

/// Split "key=value" (returns false if no '=').
bool split_kv(const std::string& tok, std::string& key, std::string& val) {
    const auto pos = tok.find('=');
    if (pos == std::string::npos) return false;
    key = str::to_lower(str::trim(tok.substr(0, pos)));
    val = str::trim(tok.substr(pos + 1));
    return true;
}

void apply_model_param(process::MosModelParams& p, const std::string& key,
                       double v, std::size_t line) {
    if (key == "vth0") p.vth0 = v;
    else if (key == "kp") p.kp = v;
    else if (key == "lambda_l") p.lambda_l = v;
    else if (key == "gamma") p.gamma = v;
    else if (key == "phi") p.phi = v;
    else if (key == "n" || key == "nfac") p.nfac = v;
    else if (key == "tox") p.tox = v;
    else if (key == "cgso") p.cgso = v;
    else if (key == "cgdo") p.cgdo = v;
    else if (key == "cj") p.cj = v;
    else if (key == "cjsw") p.cjsw = v;
    else if (key == "ldiff") p.ldiff = v;
    else fail(line, "unknown .model parameter '" + key + "'");
}

/// Source card tail: [DC] value [AC mag [phase]].
void parse_source_tail(const std::vector<std::string>& tok, std::size_t first,
                       std::size_t line, double& dc, double& ac_mag,
                       double& ac_phase) {
    dc = 0.0;
    ac_mag = 0.0;
    ac_phase = 0.0;
    std::size_t i = first;
    if (i < tok.size() && str::iequals(tok[i], "dc")) ++i;
    if (i < tok.size() && !str::iequals(tok[i], "ac")) {
        dc = value_of(tok[i], line);
        ++i;
    }
    if (i < tok.size() && str::iequals(tok[i], "ac")) {
        ++i;
        if (i >= tok.size()) fail(line, "AC keyword needs a magnitude");
        ac_mag = value_of(tok[i], line);
        ++i;
        if (i < tok.size()) {
            ac_phase = value_of(tok[i], line);
            ++i;
        }
    }
    if (i != tok.size()) fail(line, "unexpected trailing fields");
}

class Expander {
public:
    ParserState& st;
    std::size_t depth = 0;

    void element(const std::vector<std::string>& tok, std::size_t line,
                 const std::string& prefix,
                 const std::unordered_map<std::string, std::string>& node_map) {
        Circuit& ckt = st.out.circuit;
        const std::string raw_name = str::to_lower(tok[0]);
        const std::string name = prefix + raw_name;
        const char kind = raw_name[0];

        auto node = [&](const std::string& n) {
            const std::string key = str::to_lower(str::trim(n));
            const auto it = node_map.find(key);
            if (it != node_map.end()) return ckt.node(it->second);
            // Ground is global; other unmapped names are subckt-local.
            if (key == "0" || key == "gnd" || key == "gnd!" || key == "vss!")
                return ckt.node(key);
            return ckt.node(prefix + key);
        };

        switch (kind) {
        case 'r': {
            if (tok.size() != 4) fail(line, "R card: Rname n1 n2 value");
            ckt.add<Resistor>(name, node(tok[1]), node(tok[2]),
                              value_of(tok[3], line));
            break;
        }
        case 'c': {
            if (tok.size() != 4) fail(line, "C card: Cname n1 n2 value");
            ckt.add<Capacitor>(name, node(tok[1]), node(tok[2]),
                               value_of(tok[3], line));
            break;
        }
        case 'l': {
            if (tok.size() != 4) fail(line, "L card: Lname n1 n2 value");
            ckt.add<Inductor>(name, node(tok[1]), node(tok[2]),
                              value_of(tok[3], line));
            break;
        }
        case 'v': {
            if (tok.size() < 4) fail(line, "V card: Vname n+ n- [DC] value [AC mag]");
            double dc, mag, ph;
            parse_source_tail(tok, 3, line, dc, mag, ph);
            ckt.add<VoltageSource>(name, node(tok[1]), node(tok[2]), dc, mag, ph);
            break;
        }
        case 'i': {
            if (tok.size() < 4) fail(line, "I card: Iname n+ n- [DC] value [AC mag]");
            double dc, mag, ph;
            parse_source_tail(tok, 3, line, dc, mag, ph);
            ckt.add<CurrentSource>(name, node(tok[1]), node(tok[2]), dc, mag, ph);
            break;
        }
        case 'd': {
            if (tok.size() < 3) fail(line, "D card: Dname a k [is= n= rs= cj0=]");
            DiodeParams dp;
            for (std::size_t i = 3; i < tok.size(); ++i) {
                std::string key, val;
                if (!split_kv(tok[i], key, val))
                    fail(line, "expected key=value, got '" + tok[i] + "'");
                if (key == "is") dp.is = value_of(val, line);
                else if (key == "n") dp.n = value_of(val, line);
                else if (key == "rs") dp.rs = value_of(val, line);
                else if (key == "cj0") dp.cj0 = value_of(val, line);
                else if (key == "vj") dp.vj = value_of(val, line);
                else if (key == "m") dp.m = value_of(val, line);
                else fail(line, "unknown diode parameter '" + key + "'");
            }
            ckt.add<Diode>(name, node(tok[1]), node(tok[2]), dp);
            break;
        }
        case 'e': {
            if (tok.size() != 6) fail(line, "E card: Ename o+ o- c+ c- gain");
            ckt.add<Vcvs>(name, node(tok[1]), node(tok[2]), node(tok[3]),
                          node(tok[4]), value_of(tok[5], line));
            break;
        }
        case 'g': {
            if (tok.size() != 6) fail(line, "G card: Gname o+ o- c+ c- gm");
            ckt.add<Vccs>(name, node(tok[1]), node(tok[2]), node(tok[3]),
                          node(tok[4]), value_of(tok[5], line));
            break;
        }
        case 'm': {
            if (tok.size() < 6) fail(line, "M card: Mname d g s b model [W=] [L=]");
            const std::string model_name = str::to_lower(tok[5]);
            const auto it = st.models.find(model_name);
            if (it == st.models.end())
                fail(line, "unknown MOSFET model '" + model_name + "'");
            double w = 10e-6, l = 1e-6;
            for (std::size_t i = 6; i < tok.size(); ++i) {
                std::string key, val;
                if (!split_kv(tok[i], key, val))
                    fail(line, "expected key=value, got '" + tok[i] + "'");
                if (key == "w") w = value_of(val, line);
                else if (key == "l") l = value_of(val, line);
                else fail(line, "unknown MOSFET parameter '" + key + "'");
            }
            ckt.add<Mosfet>(name, node(tok[1]), node(tok[2]), node(tok[3]),
                            node(tok[4]), it->second.type, it->second.params, w, l);
            break;
        }
        case 'x': {
            if (tok.size() < 2) fail(line, "X card: Xname nodes... subckt");
            const std::string sub_name = str::to_lower(tok.back());
            const auto it = st.subckts.find(sub_name);
            if (it == st.subckts.end())
                fail(line, "unknown subcircuit '" + sub_name + "'");
            const SubcktDef& def = it->second;
            if (tok.size() - 2 != def.pins.size())
                fail(line, "subcircuit '" + sub_name + "' expects " +
                               std::to_string(def.pins.size()) + " pins, got " +
                               std::to_string(tok.size() - 2));
            if (depth > 20) fail(line, "subcircuit nesting too deep");

            // Map formal pins to actual (already-resolved) outer node names.
            std::unordered_map<std::string, std::string> inner_map;
            for (std::size_t p = 0; p < def.pins.size(); ++p) {
                const NodeId outer = node(tok[1 + p]);
                inner_map[def.pins[p]] = st.out.circuit.node_name(outer);
            }
            Expander inner{st, depth + 1};
            const std::string inner_prefix = name + ".";
            for (const auto& card : def.cards)
                inner.element(card, line, inner_prefix, inner_map);
            break;
        }
        default:
            fail(line, "unsupported element '" + tok[0] + "'");
        }
    }
};

} // namespace

ParsedNetlist parse_netlist(const std::string& text,
                            const process::ProcessCard& default_card) {
    ParserState st;
    st.card = &default_card;
    st.models["nmos"] = {Mosfet::Type::nmos, default_card.nmos};
    st.models["pmos"] = {Mosfet::Type::pmos, default_card.pmos};

    // Pass 1: join continuations, strip comments, tokenise.
    struct Card {
        std::vector<std::string> tok;
        std::size_t line;
    };
    std::vector<Card> cards;
    {
        std::istringstream is(text);
        std::string line;
        std::size_t line_no = 0;
        while (std::getline(is, line)) {
            ++line_no;
            std::string s = str::trim(line);
            if (s.empty() || s[0] == '*' || s[0] == ';' || str::starts_with(s, "//"))
                continue;
            if (s[0] == '+') {
                if (cards.empty()) fail(line_no, "continuation with no previous card");
                auto extra = str::split_ws(s.substr(1));
                for (auto& t : extra) cards.back().tok.push_back(std::move(t));
                continue;
            }
            cards.push_back({str::split_ws(s), line_no});
        }
    }

    // Pass 2: directives (.model/.subckt/.title) and element collection.
    std::vector<Card> top_level;
    for (std::size_t c = 0; c < cards.size(); ++c) {
        auto& card = cards[c];
        const std::string head = str::to_lower(card.tok[0]);
        if (head == ".title") {
            std::vector<std::string> rest(card.tok.begin() + 1, card.tok.end());
            st.out.title = str::join(rest, " ");
        } else if (head == ".end") {
            break;
        } else if (head == ".model") {
            if (card.tok.size() < 3) fail(card.line, ".model name nmos|pmos [k=v...]");
            ModelDef def;
            const std::string type = str::to_lower(card.tok[2]);
            if (type == "nmos") {
                def.type = Mosfet::Type::nmos;
                def.params = st.card->nmos;
            } else if (type == "pmos") {
                def.type = Mosfet::Type::pmos;
                def.params = st.card->pmos;
            } else {
                fail(card.line, "model type must be nmos or pmos");
            }
            for (std::size_t i = 3; i < card.tok.size(); ++i) {
                std::string key, val;
                if (!split_kv(card.tok[i], key, val))
                    fail(card.line, "expected key=value, got '" + card.tok[i] + "'");
                apply_model_param(def.params, key, value_of(val, card.line),
                                  card.line);
            }
            st.models[str::to_lower(card.tok[1])] = def;
        } else if (head == ".subckt") {
            if (card.tok.size() < 3) fail(card.line, ".subckt name pin1 [pin2...]");
            SubcktDef def;
            for (std::size_t i = 2; i < card.tok.size(); ++i)
                def.pins.push_back(str::to_lower(card.tok[i]));
            const std::string sub_name = str::to_lower(card.tok[1]);
            ++c;
            bool closed = false;
            for (; c < cards.size(); ++c) {
                const std::string inner_head = str::to_lower(cards[c].tok[0]);
                if (inner_head == ".ends") {
                    closed = true;
                    break;
                }
                if (inner_head == ".subckt")
                    fail(cards[c].line, "nested .subckt definitions not supported");
                def.cards.push_back(cards[c].tok);
            }
            if (!closed) fail(card.line, ".subckt without matching .ends");
            st.subckts[sub_name] = std::move(def);
        } else if (head[0] == '.') {
            fail(card.line, "unsupported directive '" + head + "'");
        } else {
            top_level.push_back(card);
        }
    }

    // Pass 3: build the circuit.
    Expander expander{st, 0};
    const std::unordered_map<std::string, std::string> no_map;
    for (const auto& card : top_level)
        expander.element(card.tok, card.line, "", no_map);

    return std::move(st.out);
}

ParsedNetlist read_netlist_file(const std::string& path,
                                const process::ProcessCard& default_card) {
    std::ifstream f(path);
    if (!f) throw IoError("netlist: cannot open '" + path + "'");
    std::ostringstream ss;
    ss << f.rdbuf();
    return parse_netlist(ss.str(), default_card);
}

} // namespace ypm::spice
