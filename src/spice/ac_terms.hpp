#pragma once
/// \file ac_terms.hpp
/// \brief Recorded frequency-affine AC stamp terms.
///
/// Most devices' small-signal stamps are affine in the angular frequency:
/// every matrix/rhs contribution has the form  entry += k + j*omega*c  with
/// k (complex) and c (real) fixed by the operating point. Such devices can
/// record their stamp once per operating point through AcTermRecorder; an
/// AC sweep then *replays* the term list at each frequency instead of
/// re-running the device models (for a MOSFET that re-evaluation is the
/// full EKV model - the single hottest call in a sweep).
///
/// Bit-identity contract: replay must reproduce the exact additions the
/// device's stamp_ac would perform. Each recorder call therefore maps to
/// exactly one += of the value C(k.re, k.im + omega*c) (the same product
/// and sum the device computes), and terms are replayed in recording order,
/// which is stamping order. The recorder mirrors Stamper's index math
/// (ground rows/columns dropped, branch unknowns after the node block).

#include <complex>
#include <cstdint>
#include <limits>
#include <vector>

#include "spice/solution.hpp"
#include "util/error.hpp"

namespace ypm::spice {

/// One recorded contribution: storage[index] += base + j*omega*sus.
struct AcTerm {
    std::uint32_t index = 0;
    std::complex<double> base;
    double sus = 0.0;
};

class AcTermRecorder {
public:
    /// \param n_nodes number of non-ground nodes
    /// \param n_unknowns nodes + branches (matrix dimension)
    AcTermRecorder(std::size_t n_nodes, std::size_t n_unknowns) {
        reset(n_nodes, n_unknowns);
    }

    /// Re-target the recorder and drop recorded terms, keeping the term
    /// vectors' capacity (the sweep workspace re-records per operating
    /// point).
    void reset(std::size_t n_nodes, std::size_t n_unknowns) {
        // Matrix indices pack into 32 bits; fail loudly, don't wrap.
        if (n_unknowns * n_unknowns >
            std::numeric_limits<std::uint32_t>::max())
            throw InvalidInputError(
                "AcTermRecorder: system too large for 32-bit term indices");
        n_nodes_ = n_nodes;
        n_ = n_unknowns;
        terms_.clear();
        rhs_terms_.clear();
    }

    void clear() {
        terms_.clear();
        rhs_terms_.clear();
    }
    [[nodiscard]] const std::vector<AcTerm>& terms() const { return terms_; }
    [[nodiscard]] const std::vector<AcTerm>& rhs_terms() const {
        return rhs_terms_;
    }

    /// A(row, col) += base + j*omega*sus for node/node entries.
    void mat(NodeId row, NodeId col, std::complex<double> base, double sus = 0.0) {
        if (row == ground || col == ground) return;
        push(idx(row) * n_ + idx(col), base, sus);
    }

    /// rhs(row) += base (AC excitations are frequency-independent phasors,
    /// so rhs terms replay once per operating point, not per frequency).
    void rhs(NodeId row, std::complex<double> base) {
        if (row == ground) return;
        rhs_terms_.push_back(
            {static_cast<std::uint32_t>(idx(row)), base, 0.0});
    }

    /// Two-terminal admittance stamp; expands to the same four mat() calls,
    /// in the same order, as Stamper::conductance.
    void conductance(NodeId a, NodeId b, std::complex<double> base,
                     double sus = 0.0) {
        mat(a, a, base, sus);
        mat(b, b, base, sus);
        mat(a, b, -base, -sus);
        mat(b, a, -base, -sus);
    }

    void mat_branch_row(std::size_t branch, NodeId col, std::complex<double> base,
                        double sus = 0.0) {
        if (col == ground) return;
        push(brow(branch) * n_ + idx(col), base, sus);
    }
    void mat_branch_col(NodeId row, std::size_t branch, std::complex<double> base,
                        double sus = 0.0) {
        if (row == ground) return;
        push(idx(row) * n_ + brow(branch), base, sus);
    }
    void mat_branch_branch(std::size_t br_row, std::size_t br_col,
                           std::complex<double> base, double sus = 0.0) {
        push(brow(br_row) * n_ + brow(br_col), base, sus);
    }
    void rhs_branch(std::size_t branch, std::complex<double> base) {
        rhs_terms_.push_back(
            {static_cast<std::uint32_t>(brow(branch)), base, 0.0});
    }

    /// Replay every matrix term at angular frequency omega into the dense
    /// row-major storage `a` (n*n). The caller zeroes it first, as an AC
    /// solve zeroes its system before stamping.
    void replay_matrix(double omega, std::complex<double>* a) const {
        for (const AcTerm& t : terms_) {
            // sus == 0 covers -0.0 too: base alone is the exact stamp value.
            const std::complex<double> v =
                t.sus == 0.0
                    ? t.base
                    : std::complex<double>(t.base.real(),
                                           t.base.imag() + omega * t.sus);
            a[t.index] += v;
        }
    }

    /// Replay the rhs terms into `b` (n entries, zeroed by the caller).
    void replay_rhs(std::complex<double>* b) const {
        for (const AcTerm& t : rhs_terms_) b[t.index] += t.base;
    }

private:
    [[nodiscard]] std::size_t idx(NodeId n) const {
        return static_cast<std::size_t>(n) - 1;
    }
    [[nodiscard]] std::size_t brow(std::size_t branch) const {
        return n_nodes_ + branch;
    }
    void push(std::size_t index, std::complex<double> base, double sus) {
        terms_.push_back({static_cast<std::uint32_t>(index), base, sus});
    }

    std::size_t n_nodes_ = 0;
    std::size_t n_ = 0;
    std::vector<AcTerm> terms_;     ///< matrix contributions
    std::vector<AcTerm> rhs_terms_; ///< frequency-constant rhs contributions
};

} // namespace ypm::spice
