#include "spice/devices/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ypm::spice {

namespace {

constexpr double k_boltzmann_t_over_q = 0.02585; // thermal voltage at ~300 K

/// Numerically-safe softplus ln(1 + e^u) and its sigmoid derivative.
struct SoftPlus {
    double value;
    double sigmoid;
};
SoftPlus softplus(double u) {
    if (u > 40.0) return {u, 1.0};
    if (u < -40.0) {
        const double e = std::exp(u);
        return {e, e};
    }
    const double e = std::exp(u);
    return {std::log1p(e), e / (1.0 + e)};
}

} // namespace

const char* to_string(Mosfet::Region region) {
    switch (region) {
    case Mosfet::Region::cutoff: return "cutoff";
    case Mosfet::Region::triode: return "triode";
    case Mosfet::Region::saturation: return "saturation";
    }
    return "?";
}

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b, Type type,
               process::MosModelParams model, double w, double l)
    : Device(std::move(name)), d_(d), g_(g), s_(s), b_(b), type_(type),
      model_(model), w_(w), l_(l) {
    set_geometry(w, l);
}

void Mosfet::set_geometry(double w, double l) {
    if (!(w > 0.0) || !(l > 0.0))
        throw InvalidInputError("Mosfet " + name() + ": W and L must be > 0");
    w_ = w;
    l_ = l;
}

Mosfet::CoreOp Mosfet::core(double vgs, double vds, double vsb) const {
    const double vt = k_boltzmann_t_over_q;
    const double n = model_.nfac;

    // Body effect (vsb clamped so the sqrt stays real under forward bias).
    // Inside the clamp the threshold no longer responds to vsb, so the
    // analytic sensitivity must be zero there or Newton's Jacobian lies.
    const double vsb_clamp = -model_.phi * 0.5 + 1e-6;
    const bool clamped = vsb < vsb_clamp;
    const double vsb_eff = clamped ? vsb_clamp : vsb;
    const double sqrt_term = std::sqrt(model_.phi + vsb_eff);
    const double vth =
        model_.vth0 + delta_.dvth +
        model_.gamma * (sqrt_term - std::sqrt(model_.phi));
    const double dvth_dvsb = clamped ? 0.0 : model_.gamma / (2.0 * sqrt_term);

    const double kp_eff = model_.kp * delta_.kp_scale * delta_.cox_scale;
    const double beta = kp_eff * w_ / l_;
    const double i_spec = 2.0 * n * beta * vt * vt;

    const double u1 = (vgs - vth) / (2.0 * n * vt);
    const double u2 = (vgs - vth - n * vds) / (2.0 * n * vt);
    const auto [l1, s1] = softplus(u1);
    const auto [l2, s2] = softplus(u2);

    const double id0 = i_spec * (l1 * l1 - l2 * l2);

    // Channel-length modulation, scaled with 1/L.
    const double lambda = model_.lambda_l / l_;
    const double clm = 1.0 + lambda * vds;

    CoreOp op{};
    op.vth = vth;
    op.id = id0 * clm;

    // Partials of id0.
    const double did0_dvgs = i_spec * (l1 * s1 - l2 * s2) / (n * vt);
    const double did0_dvds = i_spec * (l2 * s2) / vt;
    op.gm = did0_dvgs * clm;
    op.gds = did0_dvds * clm + id0 * lambda;
    // gmb via dvth/dvsb: raising vsb raises vth, lowering id.
    op.gmb = did0_dvgs * clm * dvth_dvsb;

    // Saturation voltage estimate: in strong inversion 2*vt*l1 -> (vgs-vth)/n.
    op.vdsat = std::max(2.0 * vt * l1, 4.0 * vt);
    // Region reporting follows the classic convention: below threshold is
    // cutoff (weak inversion), then triode/saturation split at vdsat. The
    // current itself stays smooth across these labels.
    if (vgs - vth < 0.0)
        op.region = Region::cutoff;
    else if (vds < op.vdsat)
        op.region = Region::triode;
    else
        op.region = Region::saturation;
    return op;
}

Mosfet::OpInfo Mosfet::evaluate(double vd, double vg, double vs, double vb) const {
    const double p = is_pmos() ? -1.0 : 1.0;

    // Polarity-normalised terminal voltages.
    double vgs = p * (vg - vs);
    double vds = p * (vd - vs);
    double vsb = p * (vs - vb);

    OpInfo info{};
    const bool swapped = vds < 0.0;
    if (!swapped) {
        const CoreOp op = core(vgs, vds, vsb);
        info.id = p * op.id;
        // Terminal partials: d(id)/dV_t for t in {g, d, s, b}. With
        // id = p*op.id and normalised voltages scaled by p, the p factors
        // cancel, giving the classic stamps.
        info.g_dg = op.gm;
        info.g_dd = op.gds;
        info.g_db = op.gmb;
        info.g_ds = -(op.gm + op.gds + op.gmb);
        info.vgs = vgs;
        info.vds = vds;
        info.vsb = vsb;
        info.vth = op.vth;
        info.vdsat = op.vdsat;
        info.region = op.region;
    } else {
        // Source and drain exchange roles; evaluate with the actual drain
        // acting as source and map partials back via the chain rule.
        const double vgs_sw = p * (vg - vd);
        const double vds_sw = p * (vs - vd);
        const double vsb_sw = p * (vd - vb);
        const CoreOp op = core(vgs_sw, vds_sw, vsb_sw);
        // Current into the actual drain is the *reverse* of the swapped
        // transistor's drain current.
        info.id = -p * op.id;
        // Chain rule with id = -p*id_sw and the swapped voltages all
        // referenced to the actual drain:
        //   d(id)/dVg = -p * gm  * d(vgs_sw)/dVg = -gm
        //   d(id)/dVs = -p * gds * d(vds_sw)/dVs = -gds
        //   d(id)/dVb = -p * (-gmb) * d(vsb_sw)/dVb = -gmb
        // (core's gmb is d(id)/d(vbs), i.e. -d(id)/d(vsb))
        info.g_dg = -op.gm;
        info.g_ds = -op.gds;
        info.g_db = -op.gmb;
        // The actual drain plays the internal source role; KCL shift
        // invariance fixes its partial: sum of all four must be zero.
        info.g_dd = -(info.g_dg + info.g_ds + info.g_db);
        info.vgs = vgs_sw;
        info.vds = vds_sw;
        info.vsb = vsb_sw;
        info.vth = op.vth;
        info.vdsat = op.vdsat;
        info.region = op.region;
    }

    // Meyer gate capacitance partition + overlaps + junctions. Region uses
    // the (possibly swapped) orientation; cgs/cgd swap back accordingly.
    const double cox_area = model_.cox() * delta_.cox_scale * w_ * l_;
    const double c_ov_s = model_.cgso * w_;
    const double c_ov_d = model_.cgdo * w_;
    double cgs_i = 0.0, cgd_i = 0.0, cgb_i = 0.0;
    switch (info.region) {
    case Region::cutoff:
        cgb_i = cox_area;
        break;
    case Region::triode:
        cgs_i = 0.5 * cox_area;
        cgd_i = 0.5 * cox_area;
        break;
    case Region::saturation:
        cgs_i = (2.0 / 3.0) * cox_area;
        break;
    }
    const double cj_bottom = model_.cj * w_ * model_.ldiff;
    const double cj_side = model_.cjsw * (2.0 * (w_ + model_.ldiff));
    const double cjunc = cj_bottom + cj_side;
    if (!swapped) {
        info.cgs = cgs_i + c_ov_s;
        info.cgd = cgd_i + c_ov_d;
    } else {
        info.cgs = cgd_i + c_ov_s;
        info.cgd = cgs_i + c_ov_d;
    }
    info.cgb = cgb_i;
    info.cdb = cjunc;
    info.csb = cjunc;
    return info;
}

Mosfet::OpInfo Mosfet::op_info(const Solution& x) const {
    return evaluate(x.voltage(d_), x.voltage(g_), x.voltage(s_), x.voltage(b_));
}

void Mosfet::stamp_dc(RealStamper& s, const Solution& x) const {
    const OpInfo op = op_info(x);

    // Linearised drain current: id ~ id0 + g_dg dVg + g_dd dVd + g_ds dVs
    // + g_db dVb. KCL: +id into drain row, -id into source row.
    s.mat(d_, g_, op.g_dg);
    s.mat(d_, d_, op.g_dd);
    s.mat(d_, s_, op.g_ds);
    s.mat(d_, b_, op.g_db);
    s.mat(s_, g_, -op.g_dg);
    s.mat(s_, d_, -op.g_dd);
    s.mat(s_, s_, -op.g_ds);
    s.mat(s_, b_, -op.g_db);

    const double vg = x.voltage(g_), vd = x.voltage(d_), vs = x.voltage(s_),
                 vb = x.voltage(b_);
    const double ieq =
        op.id - op.g_dg * vg - op.g_dd * vd - op.g_ds * vs - op.g_db * vb;
    s.rhs(d_, -ieq);
    s.rhs(s_, ieq);
}

void Mosfet::stamp_tran(RealStamper& s, const Solution& x,
                        const TranContext& ctx) const {
    // Resistive large-signal part: identical to the DC stamp at x.
    stamp_dc(s, x);

    // Charge-storage part: the five capacitances at the previous converged
    // point, each as a backward-Euler companion (g = C/dt with a history
    // current from the previous voltage across the pair).
    const OpInfo prev_op = op_info(*ctx.prev);
    auto stamp_cap = [&](NodeId p, NodeId q, double c) {
        if (c <= 0.0) return;
        const double g = c / ctx.dt;
        const double v_prev = ctx.prev->voltage(p) - ctx.prev->voltage(q);
        s.conductance(p, q, g);
        s.rhs(p, g * v_prev);
        s.rhs(q, -g * v_prev);
    };
    stamp_cap(g_, s_, prev_op.cgs);
    stamp_cap(g_, d_, prev_op.cgd);
    stamp_cap(g_, b_, prev_op.cgb);
    stamp_cap(d_, b_, prev_op.cdb);
    stamp_cap(s_, b_, prev_op.csb);
}

void Mosfet::stamp_ac(ComplexStamper& s, double omega, const Solution& op_sol) const {
    const OpInfo op = op_info(op_sol);

    // Resistive small-signal part (same terminal partial structure).
    s.mat(d_, g_, {op.g_dg, 0.0});
    s.mat(d_, d_, {op.g_dd, 0.0});
    s.mat(d_, s_, {op.g_ds, 0.0});
    s.mat(d_, b_, {op.g_db, 0.0});
    s.mat(s_, g_, {-op.g_dg, 0.0});
    s.mat(s_, d_, {-op.g_dd, 0.0});
    s.mat(s_, s_, {-op.g_ds, 0.0});
    s.mat(s_, b_, {-op.g_db, 0.0});

    // Reactive part: two-terminal capacitors.
    s.conductance(g_, s_, {0.0, omega * op.cgs});
    s.conductance(g_, d_, {0.0, omega * op.cgd});
    s.conductance(g_, b_, {0.0, omega * op.cgb});
    s.conductance(d_, b_, {0.0, omega * op.cdb});
    s.conductance(s_, b_, {0.0, omega * op.csb});
}

bool Mosfet::stamp_ac_affine(AcTermRecorder& rec, const Solution& op_sol) const {
    // The payoff term: the EKV model evaluates once per operating point
    // here, instead of once per frequency in stamp_ac.
    const OpInfo op = op_info(op_sol);

    rec.mat(d_, g_, {op.g_dg, 0.0});
    rec.mat(d_, d_, {op.g_dd, 0.0});
    rec.mat(d_, s_, {op.g_ds, 0.0});
    rec.mat(d_, b_, {op.g_db, 0.0});
    rec.mat(s_, g_, {-op.g_dg, 0.0});
    rec.mat(s_, d_, {-op.g_dd, 0.0});
    rec.mat(s_, s_, {-op.g_ds, 0.0});
    rec.mat(s_, b_, {-op.g_db, 0.0});

    rec.conductance(g_, s_, {0.0, 0.0}, op.cgs);
    rec.conductance(g_, d_, {0.0, 0.0}, op.cgd);
    rec.conductance(g_, b_, {0.0, 0.0}, op.cgb);
    rec.conductance(d_, b_, {0.0, 0.0}, op.cdb);
    rec.conductance(s_, b_, {0.0, 0.0}, op.csb);
    return true;
}

} // namespace ypm::spice
