#pragma once
/// \file diode.hpp
/// \brief Junction diode: Shockley exponential with series resistance and
///        junction capacitance, Newton-limited for convergence.

#include "spice/device.hpp"

namespace ypm::spice {

/// Diode model parameters.
struct DiodeParams {
    double is = 1e-14;  ///< saturation current (A)
    double n = 1.0;     ///< emission coefficient
    double rs = 0.0;    ///< series resistance (ohm); 0 = none
    double cj0 = 0.0;   ///< zero-bias junction capacitance (F)
    double vj = 0.7;    ///< junction potential (V)
    double m = 0.5;     ///< grading coefficient
};

class Diode final : public Device {
public:
    /// Anode a, cathode k.
    Diode(std::string name, NodeId a, NodeId k, DiodeParams params = {});

    [[nodiscard]] bool nonlinear() const override { return true; }
    /// One private node when rs > 0 (the internal junction node).
    [[nodiscard]] std::size_t internal_node_count() const override {
        return params_.rs > 0.0 ? 1 : 0;
    }

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;

    /// Junction current and small-signal conductance at a junction voltage.
    struct OpInfo {
        double id = 0.0; ///< anode -> cathode current
        double gd = 0.0; ///< d(id)/d(vd)
        double cj = 0.0; ///< junction capacitance at this bias
        double vd = 0.0; ///< junction voltage (internal node when rs > 0)
    };
    [[nodiscard]] OpInfo op_info(const Solution& x) const;

    [[nodiscard]] const DiodeParams& params() const { return params_; }

private:
    /// Junction node (internal when rs > 0, else the anode).
    [[nodiscard]] NodeId junction() const {
        return params_.rs > 0.0 ? internal_node() : a_;
    }
    [[nodiscard]] OpInfo evaluate(double vd) const;

    NodeId a_, k_;
    DiodeParams params_;
};

} // namespace ypm::spice
