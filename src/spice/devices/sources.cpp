#include "spice/devices/sources.hpp"

#include <cmath>

#include "util/mathx.hpp"

namespace ypm::spice {

double pulse_value(const PulseWave& w, double t) {
    double tau = t - w.delay;
    if (tau < 0.0) return w.v1;
    if (w.period > 0.0) tau = std::fmod(tau, w.period);
    if (tau < w.rise)
        return w.v1 + (w.v2 - w.v1) * (w.rise > 0.0 ? tau / w.rise : 1.0);
    tau -= w.rise;
    if (tau < w.width) return w.v2;
    tau -= w.width;
    if (tau < w.fall)
        return w.v2 + (w.v1 - w.v2) * (w.fall > 0.0 ? tau / w.fall : 1.0);
    return w.v1;
}

// --------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(std::string name, NodeId a, NodeId b, double dc,
                             double ac_magnitude, double ac_phase_deg)
    : Device(std::move(name)), a_(a), b_(b), dc_(dc), ac_mag_(ac_magnitude),
      ac_phase_deg_(ac_phase_deg) {}

void VoltageSource::set_ac(double magnitude, double phase_deg) {
    ac_mag_ = magnitude;
    ac_phase_deg_ = phase_deg;
}

std::complex<double> VoltageSource::ac_phasor() const {
    const double ph = mathx::rad_from_deg(ac_phase_deg_);
    return {ac_mag_ * std::cos(ph), ac_mag_ * std::sin(ph)};
}

void VoltageSource::stamp_dc(RealStamper& s, const Solution&) const {
    s.mat_branch_col(a_, branch(), 1.0);
    s.mat_branch_col(b_, branch(), -1.0);
    s.mat_branch_row(branch(), a_, 1.0);
    s.mat_branch_row(branch(), b_, -1.0);
    s.rhs_branch(branch(), dc_ * s.source_scale());
}

double VoltageSource::tran_value(double t) const {
    if (sine_)
        return sine_->offset +
               sine_->amplitude *
                   std::sin(2.0 * mathx::pi * sine_->freq_hz * (t - sine_->delay));
    if (pulse_) return pulse_value(*pulse_, t);
    return dc_;
}

void VoltageSource::stamp_tran(RealStamper& s, const Solution&,
                               const TranContext& ctx) const {
    s.mat_branch_col(a_, branch(), 1.0);
    s.mat_branch_col(b_, branch(), -1.0);
    s.mat_branch_row(branch(), a_, 1.0);
    s.mat_branch_row(branch(), b_, -1.0);
    s.rhs_branch(branch(), tran_value(ctx.time));
}

void VoltageSource::stamp_ac(ComplexStamper& s, double, const Solution&) const {
    s.mat_branch_col(a_, branch(), {1.0, 0.0});
    s.mat_branch_col(b_, branch(), {-1.0, 0.0});
    s.mat_branch_row(branch(), a_, {1.0, 0.0});
    s.mat_branch_row(branch(), b_, {-1.0, 0.0});
    s.rhs_branch(branch(), ac_phasor());
}

bool VoltageSource::stamp_ac_affine(AcTermRecorder& rec, const Solution&) const {
    rec.mat_branch_col(a_, branch(), {1.0, 0.0});
    rec.mat_branch_col(b_, branch(), {-1.0, 0.0});
    rec.mat_branch_row(branch(), a_, {1.0, 0.0});
    rec.mat_branch_row(branch(), b_, {-1.0, 0.0});
    rec.rhs_branch(branch(), ac_phasor());
    return true;
}

// --------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, NodeId a, NodeId b, double dc,
                             double ac_magnitude, double ac_phase_deg)
    : Device(std::move(name)), a_(a), b_(b), dc_(dc), ac_mag_(ac_magnitude),
      ac_phase_deg_(ac_phase_deg) {}

void CurrentSource::stamp_dc(RealStamper& s, const Solution&) const {
    const double i = dc_ * s.source_scale();
    s.rhs(a_, -i);
    s.rhs(b_, i);
}

void CurrentSource::stamp_ac(ComplexStamper& s, double, const Solution&) const {
    const double ph = mathx::rad_from_deg(ac_phase_deg_);
    const std::complex<double> i{ac_mag_ * std::cos(ph), ac_mag_ * std::sin(ph)};
    s.rhs(a_, -i);
    s.rhs(b_, i);
}

bool CurrentSource::stamp_ac_affine(AcTermRecorder& rec, const Solution&) const {
    const double ph = mathx::rad_from_deg(ac_phase_deg_);
    const std::complex<double> i{ac_mag_ * std::cos(ph), ac_mag_ * std::sin(ph)};
    rec.rhs(a_, -i);
    rec.rhs(b_, i);
    return true;
}

} // namespace ypm::spice
