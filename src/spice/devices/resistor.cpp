#include "spice/devices/resistor.hpp"

#include "util/error.hpp"

namespace ypm::spice {

Resistor::Resistor(std::string name, NodeId a, NodeId b, double r)
    : Device(std::move(name)), a_(a), b_(b), r_(r) {
    if (!(r > 0.0))
        throw InvalidInputError("Resistor " + this->name() + ": resistance must be > 0");
}

void Resistor::set_resistance(double r) {
    if (!(r > 0.0))
        throw InvalidInputError("Resistor " + name() + ": resistance must be > 0");
    r_ = r;
}

void Resistor::stamp_dc(RealStamper& s, const Solution&) const {
    s.conductance(a_, b_, 1.0 / r_);
}

void Resistor::stamp_ac(ComplexStamper& s, double, const Solution&) const {
    s.conductance(a_, b_, {1.0 / r_, 0.0});
}

bool Resistor::stamp_ac_affine(AcTermRecorder& rec, const Solution&) const {
    rec.conductance(a_, b_, {1.0 / r_, 0.0});
    return true;
}

} // namespace ypm::spice
