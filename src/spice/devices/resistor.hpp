#pragma once
/// \file resistor.hpp
/// \brief Linear resistor.

#include "spice/device.hpp"

namespace ypm::spice {

class Resistor final : public Device {
public:
    /// \param r resistance in ohms, must be > 0
    Resistor(std::string name, NodeId a, NodeId b, double r);

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;

    [[nodiscard]] double resistance() const { return r_; }
    void set_resistance(double r);

    [[nodiscard]] NodeId node_a() const { return a_; }
    [[nodiscard]] NodeId node_b() const { return b_; }

private:
    NodeId a_, b_;
    double r_;
};

} // namespace ypm::spice
