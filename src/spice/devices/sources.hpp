#pragma once
/// \file sources.hpp
/// \brief Independent voltage and current sources with DC and AC values.

#include <complex>
#include <optional>

#include "spice/device.hpp"

namespace ypm::spice {

/// SPICE SIN() style waveform: offset + amplitude*sin(2 pi f (t - delay)).
struct SineWave {
    double offset = 0.0;
    double amplitude = 1.0;
    double freq_hz = 1e3;
    double delay = 0.0;
};

/// SPICE PULSE() style waveform.
struct PulseWave {
    double v1 = 0.0;     ///< initial level
    double v2 = 1.0;     ///< pulsed level
    double delay = 0.0;  ///< time before the first edge
    double rise = 1e-9;
    double fall = 1e-9;
    double width = 1e-6; ///< time at v2
    double period = 0.0; ///< 0 = single pulse
};

/// Evaluate a pulse waveform at time t.
[[nodiscard]] double pulse_value(const PulseWave& w, double t);

/// Independent voltage source. Positive terminal a, negative b; the branch
/// current flows a -> b through the source (SPICE convention: a positive
/// branch current means current is drawn *out of* node a).
class VoltageSource final : public Device {
public:
    VoltageSource(std::string name, NodeId a, NodeId b, double dc,
                  double ac_magnitude = 0.0, double ac_phase_deg = 0.0);

    [[nodiscard]] std::size_t branch_count() const override { return 1; }

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;
    void stamp_tran(RealStamper& s, const Solution& x,
                    const TranContext& ctx) const override;

    [[nodiscard]] double dc() const { return dc_; }
    void set_dc(double dc) { dc_ = dc; }
    [[nodiscard]] double ac_magnitude() const { return ac_mag_; }
    void set_ac(double magnitude, double phase_deg = 0.0);

    /// Attach a transient waveform (transient value; DC keeps dc()).
    void set_sine(const SineWave& w) { sine_ = w; pulse_.reset(); }
    void set_pulse(const PulseWave& w) { pulse_ = w; sine_.reset(); }

    /// Value driven during transient analysis at time t (dc() if no
    /// waveform is attached).
    [[nodiscard]] double tran_value(double t) const;

    /// Branch index carrying the source current (after finalize()).
    [[nodiscard]] std::size_t current_branch() const { return branch(0); }

private:
    [[nodiscard]] std::complex<double> ac_phasor() const;

    NodeId a_, b_;
    double dc_;
    double ac_mag_;
    double ac_phase_deg_;
    std::optional<SineWave> sine_;
    std::optional<PulseWave> pulse_;
};

/// Independent current source. Positive current flows from node a through
/// the source to node b (pulls from a, pushes into b).
class CurrentSource final : public Device {
public:
    CurrentSource(std::string name, NodeId a, NodeId b, double dc,
                  double ac_magnitude = 0.0, double ac_phase_deg = 0.0);

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;

    [[nodiscard]] double dc() const { return dc_; }
    void set_dc(double dc) { dc_ = dc; }

private:
    NodeId a_, b_;
    double dc_;
    double ac_mag_;
    double ac_phase_deg_;
};

} // namespace ypm::spice
