#pragma once
/// \file controlled.hpp
/// \brief Linear controlled sources: VCVS (E element) and VCCS (G element).

#include "spice/device.hpp"

namespace ypm::spice {

/// Voltage-controlled voltage source:
/// V(out_p) - V(out_n) = gain * (V(ctrl_p) - V(ctrl_n)).
class Vcvs final : public Device {
public:
    Vcvs(std::string name, NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n,
         double gain);

    [[nodiscard]] std::size_t branch_count() const override { return 1; }

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;

    [[nodiscard]] double gain() const { return gain_; }
    void set_gain(double gain) { gain_ = gain; }

private:
    NodeId out_p_, out_n_, ctrl_p_, ctrl_n_;
    double gain_;
};

/// Voltage-controlled current source:
/// I(out_p -> out_n) = gm * (V(ctrl_p) - V(ctrl_n)).
class Vccs final : public Device {
public:
    Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n,
         double gm);

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;

    [[nodiscard]] double gm() const { return gm_; }
    void set_gm(double gm) { gm_ = gm; }

private:
    NodeId out_p_, out_n_, ctrl_p_, ctrl_n_;
    double gm_;
};

} // namespace ypm::spice
