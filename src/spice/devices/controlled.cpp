#include "spice/devices/controlled.hpp"

namespace ypm::spice {

// ------------------------------------------------------------------ VCVS

Vcvs::Vcvs(std::string name, NodeId out_p, NodeId out_n, NodeId ctrl_p,
           NodeId ctrl_n, double gain)
    : Device(std::move(name)), out_p_(out_p), out_n_(out_n), ctrl_p_(ctrl_p),
      ctrl_n_(ctrl_n), gain_(gain) {}

void Vcvs::stamp_dc(RealStamper& s, const Solution&) const {
    s.mat_branch_col(out_p_, branch(), 1.0);
    s.mat_branch_col(out_n_, branch(), -1.0);
    // Branch equation: V(out_p) - V(out_n) - gain*(V(cp) - V(cn)) = 0.
    s.mat_branch_row(branch(), out_p_, 1.0);
    s.mat_branch_row(branch(), out_n_, -1.0);
    s.mat_branch_row(branch(), ctrl_p_, -gain_);
    s.mat_branch_row(branch(), ctrl_n_, gain_);
}

void Vcvs::stamp_ac(ComplexStamper& s, double, const Solution&) const {
    s.mat_branch_col(out_p_, branch(), {1.0, 0.0});
    s.mat_branch_col(out_n_, branch(), {-1.0, 0.0});
    s.mat_branch_row(branch(), out_p_, {1.0, 0.0});
    s.mat_branch_row(branch(), out_n_, {-1.0, 0.0});
    s.mat_branch_row(branch(), ctrl_p_, {-gain_, 0.0});
    s.mat_branch_row(branch(), ctrl_n_, {gain_, 0.0});
}

bool Vcvs::stamp_ac_affine(AcTermRecorder& rec, const Solution&) const {
    rec.mat_branch_col(out_p_, branch(), {1.0, 0.0});
    rec.mat_branch_col(out_n_, branch(), {-1.0, 0.0});
    rec.mat_branch_row(branch(), out_p_, {1.0, 0.0});
    rec.mat_branch_row(branch(), out_n_, {-1.0, 0.0});
    rec.mat_branch_row(branch(), ctrl_p_, {-gain_, 0.0});
    rec.mat_branch_row(branch(), ctrl_n_, {gain_, 0.0});
    return true;
}

// ------------------------------------------------------------------ VCCS

Vccs::Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId ctrl_p,
           NodeId ctrl_n, double gm)
    : Device(std::move(name)), out_p_(out_p), out_n_(out_n), ctrl_p_(ctrl_p),
      ctrl_n_(ctrl_n), gm_(gm) {}

void Vccs::stamp_dc(RealStamper& s, const Solution&) const {
    s.mat(out_p_, ctrl_p_, gm_);
    s.mat(out_p_, ctrl_n_, -gm_);
    s.mat(out_n_, ctrl_p_, -gm_);
    s.mat(out_n_, ctrl_n_, gm_);
}

void Vccs::stamp_ac(ComplexStamper& s, double, const Solution&) const {
    s.mat(out_p_, ctrl_p_, {gm_, 0.0});
    s.mat(out_p_, ctrl_n_, {-gm_, 0.0});
    s.mat(out_n_, ctrl_p_, {-gm_, 0.0});
    s.mat(out_n_, ctrl_n_, {gm_, 0.0});
}

bool Vccs::stamp_ac_affine(AcTermRecorder& rec, const Solution&) const {
    rec.mat(out_p_, ctrl_p_, {gm_, 0.0});
    rec.mat(out_p_, ctrl_n_, {-gm_, 0.0});
    rec.mat(out_n_, ctrl_p_, {-gm_, 0.0});
    rec.mat(out_n_, ctrl_n_, {gm_, 0.0});
    return true;
}

} // namespace ypm::spice
