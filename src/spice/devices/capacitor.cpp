#include "spice/devices/capacitor.hpp"

#include "util/error.hpp"

namespace ypm::spice {

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double c)
    : Device(std::move(name)), a_(a), b_(b), c_(c) {
    if (c < 0.0)
        throw InvalidInputError("Capacitor " + this->name() +
                                ": capacitance must be >= 0");
}

void Capacitor::set_capacitance(double c) {
    if (c < 0.0)
        throw InvalidInputError("Capacitor " + name() + ": capacitance must be >= 0");
    c_ = c;
}

void Capacitor::stamp_dc(RealStamper&, const Solution&) const {
    // Open circuit at DC.
}

void Capacitor::stamp_ac(ComplexStamper& s, double omega, const Solution&) const {
    s.conductance(a_, b_, {0.0, omega * c_});
}

bool Capacitor::stamp_ac_affine(AcTermRecorder& rec, const Solution&) const {
    rec.conductance(a_, b_, {0.0, 0.0}, c_);
    return true;
}

void Capacitor::stamp_tran(RealStamper& s, const Solution&,
                           const TranContext& ctx) const {
    if (c_ == 0.0) return;
    const double v_prev = ctx.prev->voltage(a_) - ctx.prev->voltage(b_);
    double g, ieq;
    if (ctx.method == TranMethod::trapezoidal) {
        // i_n = g*v_n - (g*v_{n-1} + i_{n-1}) with g = 2C/dt.
        g = 2.0 * c_ / ctx.dt;
        const double i_prev = (*ctx.state_prev)[tran_state()];
        ieq = g * v_prev + i_prev;
    } else {
        // Backward Euler: i_n = g*(v_n - v_{n-1}) with g = C/dt.
        g = c_ / ctx.dt;
        ieq = g * v_prev;
    }
    s.conductance(a_, b_, g);
    // ieq is injected *into* node a (it models the stored charge pushing
    // current through the branch).
    s.rhs(a_, ieq);
    s.rhs(b_, -ieq);
}

void Capacitor::update_tran_state(const Solution& x, const TranContext& ctx,
                                  std::vector<double>& state_now) const {
    if (c_ == 0.0) {
        state_now[tran_state()] = 0.0;
        return;
    }
    const double v_now = x.voltage(a_) - x.voltage(b_);
    const double v_prev = ctx.prev->voltage(a_) - ctx.prev->voltage(b_);
    if (ctx.method == TranMethod::trapezoidal) {
        const double g = 2.0 * c_ / ctx.dt;
        const double i_prev = (*ctx.state_prev)[tran_state()];
        state_now[tran_state()] = g * (v_now - v_prev) - i_prev;
    } else {
        state_now[tran_state()] = c_ / ctx.dt * (v_now - v_prev);
    }
}

} // namespace ypm::spice
