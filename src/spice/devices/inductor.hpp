#pragma once
/// \file inductor.hpp
/// \brief Linear inductor: DC short (branch equation V = 0), AC impedance
///        j*omega*L. Used by the open-loop OTA testbench as the classic
///        DC-feedback / AC-open biasing element.

#include "spice/device.hpp"

namespace ypm::spice {

class Inductor final : public Device {
public:
    /// \param l inductance in henries, must be > 0
    Inductor(std::string name, NodeId a, NodeId b, double l);

    [[nodiscard]] std::size_t branch_count() const override { return 1; }

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;
    void stamp_tran(RealStamper& s, const Solution& x,
                    const TranContext& ctx) const override;

    [[nodiscard]] double inductance() const { return l_; }

    /// Branch index carrying the inductor current (after finalize()).
    [[nodiscard]] std::size_t current_branch() const { return branch(0); }

private:
    NodeId a_, b_;
    double l_;
};

} // namespace ypm::spice
