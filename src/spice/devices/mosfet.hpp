#pragma once
/// \file mosfet.hpp
/// \brief EKV-style MOSFET large/small-signal model.
///
/// Substitute for the BSim3v3 foundry models the paper simulates with (see
/// DESIGN.md section 2). The drain current uses the single-expression EKV
/// interpolation
///
///   Id = 2 n beta Vt^2 [ ln^2(1+e^{(vgs-vth)/(2 n Vt)})
///                       - ln^2(1+e^{(vgs-vth-n vds)/(2 n Vt)}) ] (1 + lambda vds)
///
/// which is smooth from weak to strong inversion and from triode to
/// saturation - exactly what a Newton loop driven by a genetic optimiser
/// needs (10,000 sizings must all converge). Body effect shifts vth with
/// the standard sqrt law; channel-length modulation scales with 1/L.
/// Small-signal capacitances use Meyer's region-wise gate partitioning plus
/// constant junction terms.

#include "process/process_card.hpp"
#include "process/sampler.hpp"
#include "spice/device.hpp"

namespace ypm::spice {

class Mosfet final : public Device {
public:
    enum class Type { nmos, pmos };

    /// Operating regions reported for diagnostics and testbench assertions.
    enum class Region { cutoff, triode, saturation };

    /// Large- and small-signal data at one bias point, in *terminal* space:
    /// id flows into the drain terminal; g_dX = d(id)/d(V_X).
    struct OpInfo {
        double id = 0.0;
        double g_dg = 0.0, g_dd = 0.0, g_ds = 0.0, g_db = 0.0;
        double vgs = 0.0, vds = 0.0, vsb = 0.0; ///< polarity-normalised
        double vth = 0.0;   ///< effective threshold (magnitude space)
        double vdsat = 0.0; ///< saturation voltage estimate
        Region region = Region::cutoff;
        /// Meyer + junction small-signal capacitances (F).
        double cgs = 0.0, cgd = 0.0, cgb = 0.0, cdb = 0.0, csb = 0.0;

        /// Conventional named small-signal parameters (normal orientation):
        /// gm = g_dg, gds = g_dd, gmb = g_db.
        [[nodiscard]] double gm() const { return g_dg; }
        [[nodiscard]] double gds() const { return g_dd; }
        [[nodiscard]] double gmb() const { return g_db; }
    };

    Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b, Type type,
           process::MosModelParams model, double w, double l);

    [[nodiscard]] bool nonlinear() const override { return true; }

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;

    /// Transient: resistive part as in DC plus the five Meyer/junction
    /// capacitances as backward-Euler companions, evaluated at the previous
    /// converged point (linearised per step).
    void stamp_tran(RealStamper& s, const Solution& x,
                    const TranContext& ctx) const override;

    /// Evaluate the model at the given solution (used by testbenches and
    /// unit tests to inspect gm/gds/regions).
    [[nodiscard]] OpInfo op_info(const Solution& x) const;

    /// Evaluate at explicit terminal voltages.
    [[nodiscard]] OpInfo evaluate(double vd, double vg, double vs, double vb) const;

    /// Apply a process/mismatch delta (threshold shift, KP and Cox scale).
    void apply_delta(const process::MosDelta& delta) { delta_ = delta; }
    [[nodiscard]] const process::MosDelta& delta() const { return delta_; }

    [[nodiscard]] bool is_pmos() const { return type_ == Type::pmos; }
    [[nodiscard]] double width() const { return w_; }
    [[nodiscard]] double length() const { return l_; }
    void set_geometry(double w, double l);
    [[nodiscard]] const process::MosModelParams& model() const { return model_; }

    [[nodiscard]] NodeId drain() const { return d_; }
    [[nodiscard]] NodeId gate() const { return g_; }
    [[nodiscard]] NodeId source() const { return s_; }
    [[nodiscard]] NodeId bulk() const { return b_; }

private:
    /// Core polarity-normalised evaluation with vds >= 0 guaranteed by the
    /// caller (source/drain swap handled in evaluate()).
    struct CoreOp {
        double id, gm, gds, gmb;
        double vth, vdsat;
        Region region;
    };
    [[nodiscard]] CoreOp core(double vgs, double vds, double vsb) const;

    NodeId d_, g_, s_, b_;
    Type type_;
    process::MosModelParams model_;
    double w_, l_;
    process::MosDelta delta_;
};

[[nodiscard]] const char* to_string(Mosfet::Region region);

} // namespace ypm::spice
