#include "spice/devices/inductor.hpp"

#include "util/error.hpp"

namespace ypm::spice {

Inductor::Inductor(std::string name, NodeId a, NodeId b, double l)
    : Device(std::move(name)), a_(a), b_(b), l_(l) {
    if (!(l > 0.0))
        throw InvalidInputError("Inductor " + this->name() +
                                ": inductance must be > 0");
}

void Inductor::stamp_dc(RealStamper& s, const Solution&) const {
    // Branch current i flows a -> b; KCL contributions:
    s.mat_branch_col(a_, branch(), 1.0);
    s.mat_branch_col(b_, branch(), -1.0);
    // Branch equation: V(a) - V(b) = 0 (DC short).
    s.mat_branch_row(branch(), a_, 1.0);
    s.mat_branch_row(branch(), b_, -1.0);
}

void Inductor::stamp_ac(ComplexStamper& s, double omega, const Solution&) const {
    s.mat_branch_col(a_, branch(), {1.0, 0.0});
    s.mat_branch_col(b_, branch(), {-1.0, 0.0});
    // V(a) - V(b) - j*omega*L * i = 0.
    s.mat_branch_row(branch(), a_, {1.0, 0.0});
    s.mat_branch_row(branch(), b_, {-1.0, 0.0});
    s.mat_branch_branch(branch(), branch(), {0.0, -omega * l_});
}

bool Inductor::stamp_ac_affine(AcTermRecorder& rec, const Solution&) const {
    rec.mat_branch_col(a_, branch(), {1.0, 0.0});
    rec.mat_branch_col(b_, branch(), {-1.0, 0.0});
    rec.mat_branch_row(branch(), a_, {1.0, 0.0});
    rec.mat_branch_row(branch(), b_, {-1.0, 0.0});
    rec.mat_branch_branch(branch(), branch(), {0.0, 0.0}, -l_);
    return true;
}

void Inductor::stamp_tran(RealStamper& s, const Solution&,
                          const TranContext& ctx) const {
    // The branch current is already an unknown, so the companion model
    // needs no extra state - the previous voltage and current suffice.
    const double i_prev = ctx.prev->branch_current(branch());
    const double v_prev = ctx.prev->voltage(a_) - ctx.prev->voltage(b_);

    s.mat_branch_col(a_, branch(), 1.0);
    s.mat_branch_col(b_, branch(), -1.0);
    s.mat_branch_row(branch(), a_, 1.0);
    s.mat_branch_row(branch(), b_, -1.0);
    if (ctx.method == TranMethod::trapezoidal) {
        // (v_n + v_{n-1})/2 = (L/dt)(i_n - i_{n-1})
        //   => v_n - (2L/dt) i_n = -v_{n-1} - (2L/dt) i_{n-1}
        const double r = 2.0 * l_ / ctx.dt;
        s.mat_branch_branch(branch(), branch(), -r);
        s.rhs_branch(branch(), -v_prev - r * i_prev);
    } else {
        // v_n = (L/dt)(i_n - i_{n-1})
        const double r = l_ / ctx.dt;
        s.mat_branch_branch(branch(), branch(), -r);
        s.rhs_branch(branch(), -r * i_prev);
    }
}

} // namespace ypm::spice
