#include "spice/devices/diode.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ypm::spice {

namespace {
constexpr double vt = 0.02585; // thermal voltage at ~300 K
/// Junction voltage beyond which the exponential is linearised - the
/// classic SPICE limiting that keeps Newton from overflowing.
double limit_voltage(const DiodeParams& p) {
    return p.n * vt * std::log(p.n * vt / (p.is * std::sqrt(2.0)));
}
} // namespace

Diode::Diode(std::string name, NodeId a, NodeId k, DiodeParams params)
    : Device(std::move(name)), a_(a), k_(k), params_(params) {
    if (!(params_.is > 0.0))
        throw InvalidInputError("Diode " + this->name() + ": is must be > 0");
    if (!(params_.n > 0.0))
        throw InvalidInputError("Diode " + this->name() + ": n must be > 0");
    if (params_.rs < 0.0)
        throw InvalidInputError("Diode " + this->name() + ": rs must be >= 0");
}

Diode::OpInfo Diode::evaluate(double vd) const {
    OpInfo op;
    op.vd = vd;
    const double nvt = params_.n * vt;
    const double vcrit = limit_voltage(params_);
    if (vd <= vcrit) {
        const double e = std::exp(vd / nvt);
        op.id = params_.is * (e - 1.0);
        op.gd = params_.is * e / nvt;
    } else {
        // Linear continuation above vcrit: same value and slope at vcrit.
        const double e = std::exp(vcrit / nvt);
        const double i_crit = params_.is * (e - 1.0);
        const double g_crit = params_.is * e / nvt;
        op.id = i_crit + g_crit * (vd - vcrit);
        op.gd = g_crit;
    }
    // Junction capacitance: depletion formula below vj/2, linearised above.
    if (params_.cj0 > 0.0) {
        const double half = params_.vj * 0.5;
        if (vd < half) {
            op.cj = params_.cj0 /
                    std::pow(1.0 - vd / params_.vj, params_.m);
        } else {
            const double c_half =
                params_.cj0 / std::pow(0.5, params_.m);
            const double dc = params_.m * c_half / (params_.vj * 0.5);
            op.cj = c_half + dc * (vd - half);
        }
    }
    return op;
}

Diode::OpInfo Diode::op_info(const Solution& x) const {
    return evaluate(x.voltage(junction()) - x.voltage(k_));
}

void Diode::stamp_dc(RealStamper& s, const Solution& x) const {
    const NodeId j = junction();
    const OpInfo op = op_info(x);
    // Linearised junction between j and k.
    s.conductance(j, k_, op.gd);
    const double ieq = op.id - op.gd * op.vd;
    s.rhs(j, -ieq);
    s.rhs(k_, ieq);
    // Series resistance between anode and the internal junction node.
    if (params_.rs > 0.0) s.conductance(a_, j, 1.0 / params_.rs);
}

bool Diode::stamp_ac_affine(AcTermRecorder& rec, const Solution& x) const {
    const NodeId j = junction();
    const OpInfo op = op_info(x);
    rec.conductance(j, k_, {op.gd, 0.0}, op.cj);
    if (params_.rs > 0.0) rec.conductance(a_, j, {1.0 / params_.rs, 0.0});
    return true;
}

void Diode::stamp_ac(ComplexStamper& s, double omega, const Solution& x) const {
    const NodeId j = junction();
    const OpInfo op = op_info(x);
    s.conductance(j, k_, {op.gd, omega * op.cj});
    if (params_.rs > 0.0) s.conductance(a_, j, {1.0 / params_.rs, 0.0});
}

} // namespace ypm::spice
