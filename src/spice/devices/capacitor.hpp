#pragma once
/// \file capacitor.hpp
/// \brief Linear capacitor: open at DC, admittance j*omega*C in AC.

#include "spice/device.hpp"

namespace ypm::spice {

class Capacitor final : public Device {
public:
    /// \param c capacitance in farads, must be >= 0
    Capacitor(std::string name, NodeId a, NodeId b, double c);

    void stamp_dc(RealStamper& s, const Solution& x) const override;
    void stamp_ac(ComplexStamper& s, double omega, const Solution& op) const override;
    [[nodiscard]] bool stamp_ac_affine(AcTermRecorder& rec,
                                       const Solution& op) const override;

    /// One history slot: the companion-model branch current (trapezoidal).
    [[nodiscard]] std::size_t tran_state_count() const override { return 1; }
    void stamp_tran(RealStamper& s, const Solution& x,
                    const TranContext& ctx) const override;
    void update_tran_state(const Solution& x, const TranContext& ctx,
                           std::vector<double>& state_now) const override;

    [[nodiscard]] double capacitance() const { return c_; }
    void set_capacitance(double c);

    [[nodiscard]] NodeId node_a() const { return a_; }
    [[nodiscard]] NodeId node_b() const { return b_; }

private:
    NodeId a_, b_;
    double c_;
};

} // namespace ypm::spice
