#pragma once
/// \file netlist.hpp
/// \brief SPICE-format netlist parser (paper section 3.1 starts from "a
///        transistor level netlist").
///
/// Supported grammar (case-insensitive, engineering suffixes everywhere):
///   * comment            ; comment lines also start with ';' or '//'
///   + continued fields   ; continuation of the previous card
///   Rname n1 n2 value
///   Cname n1 n2 value
///   Lname n1 n2 value
///   Vname n+ n- [DC] value [AC mag [phase]]
///   Iname n+ n- [DC] value [AC mag [phase]]
///   Dname a k [is=val] [n=val] [rs=val] [cj0=val] [vj=val] [m=val]
///   Ename out+ out- ctrl+ ctrl- gain          ; VCVS
///   Gname out+ out- ctrl+ ctrl- gm            ; VCCS
///   Mname d g s b model [W=val] [L=val]
///   Xname n1 n2 ... subcktname                ; flattened inline
///   .model name nmos|pmos [param=value ...]
///   .subckt name pin1 pin2 ...  /  .ends
///   .title any text       /  .end
///
/// MOSFET .model parameters: vth0 kp lambda_l gamma phi n tox cgso cgdo cj
/// cjsw ldiff (missing ones inherit the default process card).

#include <string>

#include "process/process_card.hpp"
#include "spice/circuit.hpp"

namespace ypm::spice {

struct ParsedNetlist {
    std::string title;
    Circuit circuit;
};

/// Parse netlist text into a circuit.
/// \param default_card supplies the built-in "nmos"/"pmos" model cards and
///        the defaults for user .model statements.
/// \throws ypm::InvalidInputError with a line-numbered message on errors.
[[nodiscard]] ParsedNetlist
parse_netlist(const std::string& text,
              const process::ProcessCard& default_card = process::ProcessCard::c35());

/// Read and parse a netlist file. \throws ypm::IoError if unreadable.
[[nodiscard]] ParsedNetlist
read_netlist_file(const std::string& path,
                  const process::ProcessCard& default_card = process::ProcessCard::c35());

} // namespace ypm::spice
