#include "spice/analysis/transient.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "spice/analysis/dc.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::spice {

std::vector<double> TranResult::node_waveform(NodeId node) const {
    std::vector<double> out;
    out.reserve(points.size());
    for (const auto& p : points) out.push_back(p.voltage(node));
    return out;
}

namespace {

/// One Newton solve of the companion system at a fixed time.
/// Returns false when not converged.
/// \param damp clamp per-iteration node-voltage deltas (needed for MOSFET
///        stability; a purely linear circuit solves exactly in one step and
///        must not be clamped - high-gain behavioural blocks swing their
///        internal nodes by tens of volts at waveform edges).
bool solve_step(Circuit& circuit, const TranOptions& opt, const TranContext& ctx,
                Solution& x, bool damp) {
    const std::size_t n_nodes = circuit.node_count();
    const std::size_t n = circuit.unknowns();
    linalg::MatrixD a(n);
    std::vector<double> b(n, 0.0);

    for (std::size_t iter = 0; iter < opt.max_newton_iterations; ++iter) {
        a.set_zero();
        std::fill(b.begin(), b.end(), 0.0);
        RealStamper stamper(a, b, n_nodes);
        for (const auto& dev : circuit.devices()) dev->stamp_tran(stamper, x, ctx);
        for (std::size_t i = 0; i < n_nodes; ++i) a(i, i) += 1e-12;

        std::vector<double> x_new;
        try {
            x_new = linalg::solve(a, b);
        } catch (const NumericalError&) {
            return false;
        }

        bool converged = true;
        for (std::size_t i = 0; i < n; ++i) {
            double delta = x_new[i] - x.raw()[i];
            if (!std::isfinite(delta)) return false;
            if (damp && i < n_nodes) delta = mathx::clamp(delta, -0.6, 0.6);
            x.raw()[i] += delta;
            const double scale =
                std::max(std::fabs(x.raw()[i]), std::fabs(x_new[i]));
            const double tol = (i < n_nodes ? opt.vtol : 1e-9) + opt.reltol * scale;
            if (std::fabs(delta) > tol) converged = false;
        }
        if (converged && iter > 0) return true;
    }
    return false;
}

} // namespace

TranResult run_transient(Circuit& circuit, const TranOptions& opt) {
    if (!(opt.dt > 0.0) || !(opt.tstop > 0.0))
        throw InvalidInputError("run_transient: dt and tstop must be > 0");
    circuit.finalize();

    TranResult result;

    // t = 0: DC operating point (capacitors open, inductors short).
    const DcSolver dc;
    const DcResult op = dc.solve(circuit);
    if (!op.converged)
        throw NumericalError("run_transient: initial operating point failed");
    result.times.push_back(0.0);
    result.points.push_back(op.solution);

    std::vector<double> state_prev(circuit.tran_state_count(), 0.0);
    std::vector<double> state_now(circuit.tran_state_count(), 0.0);

    bool has_nonlinear = false;
    for (const auto& dev : circuit.devices())
        if (dev->nonlinear()) has_nonlinear = true;

    const auto steps = static_cast<std::size_t>(std::ceil(opt.tstop / opt.dt));
    Solution x = op.solution; // warm start
    for (std::size_t k = 1; k <= steps; ++k) {
        const double t = std::min(static_cast<double>(k) * opt.dt, opt.tstop);
        TranContext ctx;
        ctx.time = t;
        ctx.dt = opt.dt;
        ctx.method = opt.method;
        ctx.prev = &result.points.back();
        ctx.state_prev = &state_prev;

        if (!solve_step(circuit, opt, ctx, x, has_nonlinear)) {
            // One retry with the more robust integrator before giving up.
            if (opt.method == TranMethod::trapezoidal) {
                TranContext be = ctx;
                be.method = TranMethod::backward_euler;
                x = result.points.back();
                if (!solve_step(circuit, opt, be, x, has_nonlinear))
                    throw NumericalError("run_transient: step " +
                                         std::to_string(k) + " did not converge");
                ctx = be;
            } else {
                throw NumericalError("run_transient: step " + std::to_string(k) +
                                     " did not converge");
            }
        }

        for (const auto& dev : circuit.devices())
            dev->update_tran_state(x, ctx, state_now);
        state_prev = state_now;

        result.times.push_back(t);
        result.points.push_back(x);
    }
    return result;
}

} // namespace ypm::spice
