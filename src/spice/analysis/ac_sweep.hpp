#pragma once
/// \file ac_sweep.hpp
/// \brief Batch AC sweep: the prototype-reuse counterpart of run_ac.
///
/// run_ac (ac.hpp) is the reference implementation: per frequency it
/// re-runs every device's stamp_ac - which for a MOSFET re-evaluates the
/// whole EKV model - and pays a fresh factorisation allocation. This
/// module is the fast path used by the chunk kernels:
///
///  * device stamps are recorded once per operating point as
///    frequency-affine terms (ac_terms.hpp) and replayed per frequency;
///  * the factorisation runs in place in a caller-held workspace
///    (linalg::InplaceLu), so the steady state allocates nothing;
///  * the transfer function is extracted point-by-point instead of
///    materialising an AcResult.
///
/// Results are bit-identical to run_ac followed by AcResult::transfer: the
/// replay reproduces stamp_ac's additions value-for-value in the same
/// order, and InplaceLu matches Lu's pivoting and elimination arithmetic
/// (see the class notes for the one sub-ulp caveat on complex pivot ties).
/// Devices whose stamps are not affine in omega (the behavioural OTA's
/// single-pole gain) fall back to per-frequency stamp_ac; if such a device
/// precedes an affine one in device order the plan is abandoned entirely
/// and every device stamps per frequency, preserving accumulation order.

#include <complex>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "spice/ac_terms.hpp"
#include "spice/circuit.hpp"
#include "spice/solution.hpp"

namespace ypm::spice {

/// Reusable storage for ac_sweep_transfer: MNA matrix, rhs, solution,
/// factorisation scratch and the recorded stamp plan. One workspace per
/// thread; reuse it across points of a chunk.
class AcSweepWorkspace {
public:
    friend std::vector<std::complex<double>>
    ac_sweep_transfer(Circuit&, const Solution&, const std::vector<double>&,
                      NodeId, NodeId, AcSweepWorkspace&);

private:
    linalg::MatrixC a_;
    std::vector<std::complex<double>> b_;
    std::vector<std::complex<double>> x_;
    linalg::InplaceLu<std::complex<double>> lu_;
    AcTermRecorder recorder_{0, 0};
    std::vector<const Device*> fallback_;
};

/// Sweep the circuit over `freqs` about the operating point `op` and return
/// h[i] = V(out)/V(in) at freqs[i] - bit-identical to
/// run_ac(circuit, op, freqs).transfer(out, in), but reusing `ws`.
/// \throws ypm::NumericalError on a singular frequency point or a zero
/// input response (as the reference path does).
[[nodiscard]] std::vector<std::complex<double>>
ac_sweep_transfer(Circuit& circuit, const Solution& op,
                  const std::vector<double>& freqs, NodeId out, NodeId in,
                  AcSweepWorkspace& ws);

} // namespace ypm::spice
