#include "spice/analysis/dc_sweep.hpp"

#include <cmath>
#include <limits>

#include "spice/devices/sources.hpp"
#include "util/error.hpp"

namespace ypm::spice {

std::vector<double> DcSweepResult::node_voltage(NodeId node) const {
    std::vector<double> out;
    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i)
        out.push_back(converged[i] ? points[i].voltage(node)
                                   : std::numeric_limits<double>::quiet_NaN());
    return out;
}

DcSweepResult run_dc_sweep(Circuit& circuit, const std::string& source_name,
                           const std::vector<double>& values,
                           const DcOptions& options) {
    auto* source = dynamic_cast<VoltageSource*>(circuit.find_device(source_name));
    if (source == nullptr)
        throw InvalidInputError("run_dc_sweep: no voltage source named '" +
                                source_name + "'");

    const double original = source->dc();
    const DcSolver solver(options);

    DcSweepResult result;
    result.values = values;
    result.points.reserve(values.size());
    result.converged.reserve(values.size());

    Solution warm;
    bool have_warm = false;
    for (double v : values) {
        source->set_dc(v);
        const DcResult r =
            have_warm ? solver.solve(circuit, warm) : solver.solve(circuit);
        result.points.push_back(r.solution);
        result.converged.push_back(r.converged);
        if (r.converged) {
            warm = r.solution;
            have_warm = true;
        }
    }
    source->set_dc(original);
    return result;
}

} // namespace ypm::spice
