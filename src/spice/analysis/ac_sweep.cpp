#include "spice/analysis/ac_sweep.hpp"

#include <algorithm>

#include "spice/stamper.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::spice {

std::vector<std::complex<double>>
ac_sweep_transfer(Circuit& circuit, const Solution& op,
                  const std::vector<double>& freqs, NodeId out, NodeId in,
                  AcSweepWorkspace& ws) {
    using C = std::complex<double>;
    circuit.finalize();
    if (op.size() != circuit.unknowns())
        throw InvalidInputError(
            "ac_sweep_transfer: operating point does not match circuit");
    if (out == ground || in == ground)
        throw InvalidInputError("ac_sweep_transfer: probe nodes must not be ground");

    const std::size_t n_nodes = circuit.node_count();
    const std::size_t n = circuit.unknowns();

    if (ws.a_.rows() != n) ws.a_ = linalg::MatrixC(n);
    ws.b_.resize(n);

    // Record the frequency-affine stamp plan at this operating point. The
    // replay-then-fallback split preserves per-entry accumulation order only
    // if every fallback device follows every affine device in device order;
    // otherwise abandon the plan and stamp everything per frequency.
    ws.recorder_.reset(n_nodes, n);
    ws.fallback_.clear();
    bool plan_ok = true;
    for (const auto& dev : circuit.devices()) {
        if (dev->stamp_ac_affine(ws.recorder_, op)) {
            if (!ws.fallback_.empty()) {
                plan_ok = false;
                break;
            }
        } else {
            ws.fallback_.push_back(dev.get());
        }
    }

    std::vector<C> h;
    h.reserve(freqs.size());
    const std::size_t out_idx = static_cast<std::size_t>(out) - 1;
    const std::size_t in_idx = static_cast<std::size_t>(in) - 1;

    // Recorded rhs terms are frequency-constant, so when no fallback device
    // can write the rhs the excitation vector builds once per sweep.
    const bool rhs_static = plan_ok && ws.fallback_.empty();
    if (rhs_static) {
        std::fill(ws.b_.begin(), ws.b_.end(), C{});
        ws.recorder_.replay_rhs(ws.b_.data());
    }

    for (double f : freqs) {
        if (!(f > 0.0))
            throw InvalidInputError("ac_sweep_transfer: frequencies must be > 0");
        const double omega = 2.0 * mathx::pi * f;
        ws.a_.set_zero();
        if (!rhs_static) std::fill(ws.b_.begin(), ws.b_.end(), C{});
        if (plan_ok) {
            ws.recorder_.replay_matrix(omega, ws.a_.data().data());
            if (!ws.fallback_.empty()) {
                ws.recorder_.replay_rhs(ws.b_.data());
                ComplexStamper stamper(ws.a_, ws.b_, n_nodes);
                for (const Device* dev : ws.fallback_)
                    dev->stamp_ac(stamper, omega, op);
            }
        } else {
            ComplexStamper stamper(ws.a_, ws.b_, n_nodes);
            for (const auto& dev : circuit.devices())
                dev->stamp_ac(stamper, omega, op);
        }
        // Same conductance floor as run_ac.
        for (std::size_t i = 0; i < n_nodes; ++i) ws.a_(i, i) += 1e-15;

        ws.lu_.factor(ws.a_);
        ws.lu_.solve(ws.a_, ws.b_, ws.x_);

        const C vin = ws.x_[in_idx];
        if (std::abs(vin) == 0.0)
            throw NumericalError("AcResult::transfer: zero input response");
        h.push_back(ws.x_[out_idx] / vin);
    }
    return h;
}

} // namespace ypm::spice
