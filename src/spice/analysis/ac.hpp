#pragma once
/// \file ac.hpp
/// \brief Small-signal AC analysis: complex MNA solve per frequency point,
///        linearised about a DC operating point.

#include <complex>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/solution.hpp"

namespace ypm::spice {

struct AcResult {
    std::vector<double> freqs;      ///< Hz
    std::vector<AcSolution> points; ///< one complex solution per frequency

    /// Complex response of one node across the sweep.
    [[nodiscard]] std::vector<std::complex<double>> node_response(NodeId node) const;

    /// Transfer function out/in (in typically the AC-driven input node).
    [[nodiscard]] std::vector<std::complex<double>>
    transfer(NodeId out, NodeId in) const;
};

/// Run an AC sweep. \param op converged DC operating point of `circuit`.
/// \throws ypm::NumericalError if any frequency point is singular.
[[nodiscard]] AcResult run_ac(Circuit& circuit, const Solution& op,
                              const std::vector<double>& freqs);

/// Standard logarithmic sweep helper: points_per_decade log-spaced points
/// covering [f_start, f_stop].
[[nodiscard]] std::vector<double> log_sweep(double f_start, double f_stop,
                                            std::size_t points_per_decade);

} // namespace ypm::spice
