#pragma once
/// \file dc.hpp
/// \brief DC operating-point solver: damped Newton-Raphson with gmin
///        stepping and source stepping fallbacks.
///
/// Robustness matters more than raw speed here: the WBGA evaluates 10,000
/// sizings (paper Table 5) and every one must either converge or fail
/// loudly so the optimiser can penalise it.

#include <string>
#include <vector>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "spice/circuit.hpp"
#include "spice/solution.hpp"

namespace ypm::spice {

/// Reusable DC solve storage: the MNA matrix, rhs and factorisation scratch
/// survive across Newton iterations and across points of a batch, so the
/// steady state allocates nothing per solve. Results are bit-identical to
/// the workspace-free overloads (which route through a local workspace).
struct DcWorkspace {
    linalg::MatrixD a;
    std::vector<double> b;
    std::vector<double> x_new;
    linalg::InplaceLu<double> lu;
};

struct DcOptions {
    std::size_t max_iterations = 150; ///< per Newton attempt
    double vtol = 1e-6;               ///< absolute node-voltage tolerance (V)
    double reltol = 1e-6;             ///< relative tolerance
    double max_step = 0.6;            ///< Newton damping: max |dV| per iter (V)
    double gmin = 1e-12;              ///< node-to-ground conductance floor
    bool gmin_stepping = true;        ///< homotopy 1: relax gmin 1e-3 -> gmin
    bool source_stepping = true;      ///< homotopy 2: ramp sources 0 -> 1
};

struct DcResult {
    bool converged = false;
    Solution solution;
    std::size_t iterations = 0; ///< total Newton iterations spent
    std::string method;         ///< "newton", "gmin-stepping", "source-stepping"
};

class DcSolver {
public:
    explicit DcSolver(DcOptions options = {});

    /// Solve from a cold start (all unknowns zero).
    [[nodiscard]] DcResult solve(Circuit& circuit) const;

    /// Solve from a warm start (e.g. the nominal OP during Monte Carlo).
    [[nodiscard]] DcResult solve(Circuit& circuit, const Solution& initial) const;

    /// Cold-start solve reusing a caller-held workspace (batch kernels call
    /// this once per point of a chunk). Bit-identical to solve(circuit).
    [[nodiscard]] DcResult solve(Circuit& circuit, DcWorkspace& ws) const;

    /// Warm-start solve reusing a caller-held workspace.
    [[nodiscard]] DcResult solve(Circuit& circuit, const Solution& initial,
                                 DcWorkspace& ws) const;

    [[nodiscard]] const DcOptions& options() const { return options_; }

private:
    /// One Newton attempt; returns true on convergence, updating x.
    [[nodiscard]] bool newton(Circuit& circuit, Solution& x, double gmin,
                              double source_scale, std::size_t& iterations,
                              DcWorkspace& ws) const;

    DcOptions options_;
};

/// Convenience: solve and throw ypm::NumericalError on failure.
[[nodiscard]] Solution solve_op(Circuit& circuit, const DcOptions& options = {});

} // namespace ypm::spice
