#pragma once
/// \file dc.hpp
/// \brief DC operating-point solver: damped Newton-Raphson with gmin
///        stepping and source stepping fallbacks.
///
/// Robustness matters more than raw speed here: the WBGA evaluates 10,000
/// sizings (paper Table 5) and every one must either converge or fail
/// loudly so the optimiser can penalise it.

#include <string>

#include "spice/circuit.hpp"
#include "spice/solution.hpp"

namespace ypm::spice {

struct DcOptions {
    std::size_t max_iterations = 150; ///< per Newton attempt
    double vtol = 1e-6;               ///< absolute node-voltage tolerance (V)
    double reltol = 1e-6;             ///< relative tolerance
    double max_step = 0.6;            ///< Newton damping: max |dV| per iter (V)
    double gmin = 1e-12;              ///< node-to-ground conductance floor
    bool gmin_stepping = true;        ///< homotopy 1: relax gmin 1e-3 -> gmin
    bool source_stepping = true;      ///< homotopy 2: ramp sources 0 -> 1
};

struct DcResult {
    bool converged = false;
    Solution solution;
    std::size_t iterations = 0; ///< total Newton iterations spent
    std::string method;         ///< "newton", "gmin-stepping", "source-stepping"
};

class DcSolver {
public:
    explicit DcSolver(DcOptions options = {});

    /// Solve from a cold start (all unknowns zero).
    [[nodiscard]] DcResult solve(Circuit& circuit) const;

    /// Solve from a warm start (e.g. the nominal OP during Monte Carlo).
    [[nodiscard]] DcResult solve(Circuit& circuit, const Solution& initial) const;

    [[nodiscard]] const DcOptions& options() const { return options_; }

private:
    /// One Newton attempt; returns true on convergence, updating x.
    [[nodiscard]] bool newton(Circuit& circuit, Solution& x, double gmin,
                              double source_scale, std::size_t& iterations) const;

    DcOptions options_;
};

/// Convenience: solve and throw ypm::NumericalError on failure.
[[nodiscard]] Solution solve_op(Circuit& circuit, const DcOptions& options = {});

} // namespace ypm::spice
