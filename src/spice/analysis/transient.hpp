#pragma once
/// \file transient.hpp
/// \brief Fixed-step transient analysis.
///
/// Each timestep solves the nonlinear companion-model system with Newton
/// iterations warm-started from the previous point. Integration method is
/// trapezoidal (2nd order, SPICE default) or backward Euler (L-stable).
/// The initial condition is the DC operating point (sources at their DC
/// values); waveform sources then take over from t > 0.

#include <vector>

#include "spice/circuit.hpp"
#include "spice/solution.hpp"

namespace ypm::spice {

struct TranOptions {
    double tstop = 1e-3;  ///< end time (s)
    double dt = 1e-6;     ///< fixed step size (s)
    TranMethod method = TranMethod::trapezoidal;
    std::size_t max_newton_iterations = 80;
    double vtol = 1e-6;
    double reltol = 1e-6;
};

struct TranResult {
    std::vector<double> times;    ///< t = 0 (DC OP) then dt, 2dt, ...
    std::vector<Solution> points; ///< solution at each time

    /// Waveform of one node across the run.
    [[nodiscard]] std::vector<double> node_waveform(NodeId node) const;
};

/// Run the analysis. \throws ypm::NumericalError if the initial OP or any
/// timestep fails to converge.
[[nodiscard]] TranResult run_transient(Circuit& circuit, const TranOptions& options);

} // namespace ypm::spice
