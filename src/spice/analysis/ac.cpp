#include "spice/analysis/ac.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::spice {

std::vector<std::complex<double>> AcResult::node_response(NodeId node) const {
    std::vector<std::complex<double>> out;
    out.reserve(points.size());
    for (const auto& p : points) out.push_back(p.voltage(node));
    return out;
}

std::vector<std::complex<double>> AcResult::transfer(NodeId out, NodeId in) const {
    std::vector<std::complex<double>> h;
    h.reserve(points.size());
    for (const auto& p : points) {
        const std::complex<double> vin = p.voltage(in);
        const std::complex<double> vout = p.voltage(out);
        if (std::abs(vin) == 0.0)
            throw NumericalError("AcResult::transfer: zero input response");
        h.push_back(vout / vin);
    }
    return h;
}

AcResult run_ac(Circuit& circuit, const Solution& op,
                const std::vector<double>& freqs) {
    circuit.finalize();
    if (op.size() != circuit.unknowns())
        throw InvalidInputError("run_ac: operating point does not match circuit");

    const std::size_t n_nodes = circuit.node_count();
    const std::size_t n = circuit.unknowns();

    AcResult result;
    result.freqs = freqs;
    result.points.reserve(freqs.size());

    linalg::MatrixC a(n);
    std::vector<std::complex<double>> b(n);

    for (double f : freqs) {
        if (!(f > 0.0)) throw InvalidInputError("run_ac: frequencies must be > 0");
        const double omega = 2.0 * mathx::pi * f;
        a.set_zero();
        std::fill(b.begin(), b.end(), std::complex<double>{});
        ComplexStamper stamper(a, b, n_nodes);
        for (const auto& dev : circuit.devices()) dev->stamp_ac(stamper, omega, op);
        // Tiny conductance floor mirrors the DC gmin and keeps isolated
        // nodes (e.g. behind DC-blocked paths) non-singular.
        for (std::size_t i = 0; i < n_nodes; ++i) a(i, i) += 1e-15;

        auto x = linalg::solve(a, b);
        result.points.emplace_back(n_nodes, std::move(x));
    }
    return result;
}

std::vector<double> log_sweep(double f_start, double f_stop,
                              std::size_t points_per_decade) {
    if (!(f_start > 0.0) || !(f_stop > f_start))
        throw InvalidInputError("log_sweep: need 0 < f_start < f_stop");
    if (points_per_decade == 0)
        throw InvalidInputError("log_sweep: points_per_decade must be > 0");
    const double decades = std::log10(f_stop / f_start);
    const auto n = static_cast<std::size_t>(
                       std::ceil(decades * static_cast<double>(points_per_decade))) +
                   1;
    return mathx::logspace(f_start, f_stop, std::max<std::size_t>(n, 2));
}

} // namespace ypm::spice
