#pragma once
/// \file dc_sweep.hpp
/// \brief DC transfer sweep: step one independent voltage source and
///        re-solve the operating point with warm starts.

#include <string>
#include <vector>

#include "spice/analysis/dc.hpp"
#include "spice/circuit.hpp"

namespace ypm::spice {

struct DcSweepResult {
    std::vector<double> values;     ///< swept source values
    std::vector<Solution> points;   ///< OP at each value
    std::vector<bool> converged;    ///< per-point convergence

    /// Voltage of `node` across the sweep (NaN where unconverged).
    [[nodiscard]] std::vector<double> node_voltage(NodeId node) const;
};

/// Sweep the DC value of the named VoltageSource across `values`.
/// The source is restored to its original value afterwards.
/// \throws ypm::InvalidInputError if the device is missing or not a
///         voltage source.
[[nodiscard]] DcSweepResult run_dc_sweep(Circuit& circuit,
                                         const std::string& source_name,
                                         const std::vector<double>& values,
                                         const DcOptions& options = {});

} // namespace ypm::spice
