#include "spice/analysis/dc.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/mathx.hpp"

namespace ypm::spice {

DcSolver::DcSolver(DcOptions options) : options_(options) {}

bool DcSolver::newton(Circuit& circuit, Solution& x, double gmin,
                      double source_scale, std::size_t& iterations,
                      DcWorkspace& ws) const {
    const std::size_t n_nodes = circuit.node_count();
    const std::size_t n = circuit.unknowns();
    if (n == 0) return true;

    if (ws.a.rows() != n) ws.a = linalg::MatrixD(n);
    ws.b.resize(n);

    for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
        ++iterations;
        ws.a.set_zero();
        std::fill(ws.b.begin(), ws.b.end(), 0.0);
        RealStamper stamper(ws.a, ws.b, n_nodes, source_scale);
        for (const auto& dev : circuit.devices()) dev->stamp_dc(stamper, x);
        // gmin from every node to ground keeps the Jacobian non-singular
        // while devices are cut off.
        for (std::size_t i = 0; i < n_nodes; ++i) ws.a(i, i) += gmin;

        std::vector<double>& x_new = ws.x_new;
        try {
            // In-place factor (ws.a becomes the packed LU and is re-stamped
            // next iteration); identical arithmetic to linalg::solve.
            ws.lu.factor(ws.a);
            ws.lu.solve(ws.a, ws.b, x_new);
        } catch (const NumericalError&) {
            return false; // singular system: let the caller escalate
        }

        // Damped update with per-unknown step limiting on node voltages.
        bool converged = true;
        double max_delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double delta = x_new[i] - x.raw()[i];
            if (!std::isfinite(delta)) return false;
            if (i < n_nodes)
                delta = mathx::clamp(delta, -options_.max_step, options_.max_step);
            x.raw()[i] += delta;
            const double scale =
                std::max(std::fabs(x.raw()[i]), std::fabs(x_new[i]));
            const double tol = options_.vtol + options_.reltol * scale;
            if (i < n_nodes) {
                max_delta = std::max(max_delta, std::fabs(delta));
                if (std::fabs(delta) > tol) converged = false;
            } else {
                // Branch currents: relative check with a loose floor.
                if (std::fabs(delta) > 1e-9 + options_.reltol * scale)
                    converged = false;
            }
        }
        if (converged && iter > 0) return true;
        (void)max_delta;
    }
    return false;
}

DcResult DcSolver::solve(Circuit& circuit) const {
    DcWorkspace ws;
    return solve(circuit, ws);
}

DcResult DcSolver::solve(Circuit& circuit, const Solution& initial) const {
    DcWorkspace ws;
    return solve(circuit, initial, ws);
}

DcResult DcSolver::solve(Circuit& circuit, DcWorkspace& ws) const {
    circuit.finalize();
    const Solution cold(circuit.node_count(), circuit.branch_count());
    return solve(circuit, cold, ws);
}

DcResult DcSolver::solve(Circuit& circuit, const Solution& initial,
                         DcWorkspace& ws) const {
    circuit.finalize();
    DcResult result;
    result.solution = initial;
    if (result.solution.size() != circuit.unknowns())
        result.solution = Solution(circuit.node_count(), circuit.branch_count());

    // Strategy 1: plain Newton from the initial point.
    if (newton(circuit, result.solution, options_.gmin, 1.0, result.iterations,
               ws)) {
        result.converged = true;
        result.method = "newton";
        return result;
    }

    // Strategy 2: gmin stepping - solve with a heavily damped circuit and
    // progressively remove the damping.
    if (options_.gmin_stepping) {
        Solution x(circuit.node_count(), circuit.branch_count());
        bool ok = true;
        for (double gmin = 1e-3; gmin >= options_.gmin * 0.99; gmin *= 0.01) {
            if (!newton(circuit, x, gmin, 1.0, result.iterations, ws)) {
                ok = false;
                break;
            }
        }
        if (ok && newton(circuit, x, options_.gmin, 1.0, result.iterations, ws)) {
            result.converged = true;
            result.method = "gmin-stepping";
            result.solution = x;
            return result;
        }
    }

    // Strategy 3: source stepping - ramp the supplies from zero.
    if (options_.source_stepping) {
        Solution x(circuit.node_count(), circuit.branch_count());
        bool ok = true;
        for (double scale = 0.1; scale <= 1.0001; scale += 0.1) {
            if (!newton(circuit, x, options_.gmin, std::min(scale, 1.0),
                        result.iterations, ws)) {
                ok = false;
                break;
            }
        }
        if (ok) {
            result.converged = true;
            result.method = "source-stepping";
            result.solution = x;
            return result;
        }
    }

    log::debug("DcSolver: no convergence after ", result.iterations, " iterations");
    result.converged = false;
    return result;
}

Solution solve_op(Circuit& circuit, const DcOptions& options) {
    const DcSolver solver(options);
    DcResult result = solver.solve(circuit);
    if (!result.converged)
        throw NumericalError("solve_op: DC operating point did not converge");
    return std::move(result.solution);
}

} // namespace ypm::spice
