#pragma once
/// \file measure.hpp
/// \brief Frequency-response measurements: the open-loop gain / phase-margin
///        extraction the paper's objective functions are built on, plus
///        filter-oriented metrics (cutoff, stopband attenuation).

#include <complex>
#include <vector>

namespace ypm::spice {

/// Metrics extracted from a transfer function H(f).
/// Quantities that do not exist for the given response (e.g. no unity
/// crossing) are reported as NaN.
struct BodeMetrics {
    double dc_gain_db = 0.0;        ///< |H| at the lowest swept frequency
    double unity_freq = 0.0;        ///< f where |H| crosses 1 (Hz)
    double phase_margin_deg = 0.0;  ///< 180 + phase(H) at unity_freq
    double gain_margin_db = 0.0;    ///< -|H|dB where phase crosses -180
    double f3db = 0.0;              ///< -3 dB frequency (Hz)
    double gbw = 0.0;               ///< dc gain (linear) * f3db
};

/// Extract Bode metrics. freqs must be ascending; phase is unwrapped across
/// the sweep before the margin is read.
[[nodiscard]] BodeMetrics bode_metrics(const std::vector<double>& freqs,
                                       const std::vector<std::complex<double>>& h);

/// Magnitude in dB per point.
[[nodiscard]] std::vector<double>
magnitude_db(const std::vector<std::complex<double>>& h);

/// Unwrapped phase in degrees per point (continuous across the sweep).
[[nodiscard]] std::vector<double>
phase_deg_unwrapped(const std::vector<std::complex<double>>& h);

/// |H| in dB interpolated at frequency f (log-frequency interpolation).
[[nodiscard]] double gain_db_at(const std::vector<double>& freqs,
                                const std::vector<std::complex<double>>& h,
                                double f);

/// Filter-style measurements on a lowpass response.
struct LowpassMetrics {
    double passband_gain_db = 0.0; ///< gain at the lowest swept frequency
    double fc = 0.0;               ///< -3 dB cutoff (Hz), NaN if absent
    double stopband_atten_db = 0.0;///< passband gain - gain at f_stop (dB)
};

/// \param f_stop frequency at which stopband attenuation is evaluated.
[[nodiscard]] LowpassMetrics lowpass_metrics(
    const std::vector<double>& freqs, const std::vector<std::complex<double>>& h,
    double f_stop);

} // namespace ypm::spice
