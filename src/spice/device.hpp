#pragma once
/// \file device.hpp
/// \brief Abstract circuit element.
///
/// A device contributes stamps to the real DC system (re-evaluated every
/// Newton iteration at the candidate solution) and to the complex AC system
/// (linearised about the converged operating point). Devices that carry a
/// branch-current unknown (voltage sources, inductors, VCVS) or private
/// internal nodes (behavioural blocks) declare them and receive their global
/// indices from Circuit::finalize().

#include <string>
#include <vector>

#include "spice/ac_terms.hpp"
#include "spice/stamper.hpp"

namespace ypm::spice {

/// Numerical integration method for transient analysis.
enum class TranMethod {
    backward_euler, ///< first order, L-stable
    trapezoidal,    ///< second order (SPICE default)
};

/// Per-timestep context passed to transient stamps.
struct TranContext {
    double time = 0.0; ///< absolute time of the step being solved (t_n)
    double dt = 0.0;   ///< step size (t_n - t_{n-1})
    TranMethod method = TranMethod::trapezoidal;
    const Solution* prev = nullptr;             ///< converged x(t_{n-1})
    const std::vector<double>* state_prev = nullptr; ///< device state at t_{n-1}
};

class Device {
public:
    explicit Device(std::string name) : name_(std::move(name)) {}
    virtual ~Device() = default;

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    [[nodiscard]] const std::string& name() const { return name_; }

    /// Number of branch-current unknowns this device owns.
    [[nodiscard]] virtual std::size_t branch_count() const { return 0; }

    /// Number of private internal nodes this device owns.
    [[nodiscard]] virtual std::size_t internal_node_count() const { return 0; }

    /// True if the device's DC stamp depends on the candidate solution.
    [[nodiscard]] virtual bool nonlinear() const { return false; }

    /// Large-signal / DC stamp at candidate solution x. Linear devices may
    /// ignore x. Independent sources must scale their values by
    /// s.source_scale().
    virtual void stamp_dc(RealStamper& s, const Solution& x) const = 0;

    /// Small-signal AC stamp at angular frequency omega, linearised about
    /// the DC operating point op.
    virtual void stamp_ac(ComplexStamper& s, double omega,
                          const Solution& op) const = 0;

    /// Frequency-affine AC stamp: record this device's stamp_ac as
    /// entry += k + j*omega*c terms, evaluated once per operating point and
    /// replayed per frequency by batch sweeps (see ac_terms.hpp for the
    /// bit-identity contract). Returns false (the default) when the stamp
    /// is not affine in omega; the sweep then falls back to per-frequency
    /// stamp_ac for this device.
    [[nodiscard]] virtual bool stamp_ac_affine(AcTermRecorder& rec,
                                               const Solution& op) const {
        (void)rec;
        (void)op;
        return false;
    }

    /// Number of transient history slots (e.g. a capacitor stores its
    /// branch current for the trapezoidal companion model).
    [[nodiscard]] virtual std::size_t tran_state_count() const { return 0; }

    /// Large-signal transient stamp at candidate solution x for the step
    /// described by ctx. The default treats the device as in DC (correct
    /// for resistors and controlled sources; independent sources override
    /// to evaluate their waveform at ctx.time).
    virtual void stamp_tran(RealStamper& s, const Solution& x,
                            const TranContext& ctx) const {
        (void)ctx;
        stamp_dc(s, x);
    }

    /// Called once per converged timestep so the device can write its
    /// history (ctx.state_prev holds the previous step's values).
    virtual void update_tran_state(const Solution& x, const TranContext& ctx,
                                   std::vector<double>& state_now) const {
        (void)x;
        (void)ctx;
        (void)state_now;
    }

    /// Called by Circuit::finalize().
    void assign_branch_base(std::size_t base) { branch_base_ = base; }
    void assign_internal_base(NodeId base) { internal_base_ = base; }
    void assign_tran_state_base(std::size_t base) { tran_state_base_ = base; }

protected:
    /// Global index of this device's i-th branch unknown.
    [[nodiscard]] std::size_t branch(std::size_t i = 0) const {
        return branch_base_ + i;
    }
    /// Global node id of this device's i-th internal node.
    [[nodiscard]] NodeId internal_node(std::size_t i = 0) const {
        return internal_base_ + static_cast<NodeId>(i);
    }
    /// Global index of this device's i-th transient state slot.
    [[nodiscard]] std::size_t tran_state(std::size_t i = 0) const {
        return tran_state_base_ + i;
    }

private:
    std::string name_;
    std::size_t branch_base_ = 0;
    NodeId internal_base_ = 0;
    std::size_t tran_state_base_ = 0;
};

} // namespace ypm::spice
