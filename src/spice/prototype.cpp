#include "spice/prototype.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::spice {

CircuitPrototype::CircuitPrototype(Circuit circuit)
    : circuit_(std::move(circuit)) {
    circuit_.finalize();
    // The device list is fixed for the prototype's lifetime, so the typed
    // slots stay valid.
    for (const auto& dev : circuit_.devices())
        if (auto* mos = dynamic_cast<Mosfet*>(dev.get())) mosfets_.push_back(mos);
}

NodeId CircuitPrototype::node(const std::string& name) const {
    const auto id = circuit_.find_node(name);
    if (!id)
        throw InvalidInputError("CircuitPrototype: no node '" + name + "'");
    return *id;
}

void CircuitPrototype::bind_process(const process::Realization* realization) {
    if (realization == nullptr) {
        for (Mosfet* mos : mosfets_) mos->apply_delta(process::MosDelta{});
        return;
    }
    // Same per-device lookups as Circuit::apply_process, minus the
    // dynamic_cast scan.
    for (Mosfet* mos : mosfets_)
        mos->apply_delta(
            realization->delta_for(str::to_lower(mos->name()), mos->is_pmos()));
}

} // namespace ypm::spice
