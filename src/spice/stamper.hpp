#pragma once
/// \file stamper.hpp
/// \brief MNA stamping interface handed to devices.
///
/// Ground (node 0) rows/columns are silently dropped, so devices stamp with
/// plain node ids and never special-case ground. Branch unknowns (voltage
/// sources, inductors) occupy rows/columns after the node block.

#include <complex>
#include <cstddef>

#include "linalg/matrix.hpp"
#include "spice/solution.hpp"

namespace ypm::spice {

template <typename T>
class Stamper {
public:
    /// \param n_nodes number of non-ground nodes
    /// \param source_scale multiplier applied by independent sources to
    ///        their values (used by source-stepping homotopy; 1.0 normally)
    Stamper(linalg::Matrix<T>& a, std::vector<T>& rhs, std::size_t n_nodes,
            double source_scale = 1.0)
        : a_(a), rhs_(rhs), n_nodes_(n_nodes), source_scale_(source_scale) {}

    [[nodiscard]] double source_scale() const { return source_scale_; }
    [[nodiscard]] std::size_t n_nodes() const { return n_nodes_; }

    /// A(row, col) += v for node/node entries.
    void mat(NodeId row, NodeId col, T v) {
        if (row == ground || col == ground) return;
        a_(idx(row), idx(col)) += v;
    }

    /// rhs(row) += v for a node row.
    void rhs(NodeId row, T v) {
        if (row == ground) return;
        rhs_[idx(row)] += v;
    }

    /// Two-terminal conductance stamp between nodes a and b.
    void conductance(NodeId a, NodeId b, T g) {
        mat(a, a, g);
        mat(b, b, g);
        mat(a, b, -g);
        mat(b, a, -g);
    }

    /// Branch-row entries (equation owned by a branch device).
    void mat_branch_row(std::size_t branch, NodeId col, T v) {
        if (col == ground) return;
        a_(brow(branch), idx(col)) += v;
    }
    void mat_branch_col(NodeId row, std::size_t branch, T v) {
        if (row == ground) return;
        a_(idx(row), brow(branch)) += v;
    }
    void mat_branch_branch(std::size_t br_row, std::size_t br_col, T v) {
        a_(brow(br_row), brow(br_col)) += v;
    }
    void rhs_branch(std::size_t branch, T v) { rhs_[brow(branch)] += v; }

private:
    [[nodiscard]] std::size_t idx(NodeId n) const {
        return static_cast<std::size_t>(n) - 1;
    }
    [[nodiscard]] std::size_t brow(std::size_t branch) const {
        return n_nodes_ + branch;
    }

    linalg::Matrix<T>& a_;
    std::vector<T>& rhs_;
    std::size_t n_nodes_;
    double source_scale_;
};

using RealStamper = Stamper<double>;
using ComplexStamper = Stamper<std::complex<double>>;

} // namespace ypm::spice
