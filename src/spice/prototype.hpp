#pragma once
/// \file prototype.hpp
/// \brief Reusable circuit prototype for batch evaluation.
///
/// The hot path of every batch workload (GA populations, Monte Carlo,
/// corners, sensitivity) evaluates the *same testbench topology* at many
/// parameter/process points. Rebuilding the Circuit per point - node name
/// maps, device allocations, finalisation - plus re-allocating the MNA
/// factorisation workspace per analysis is pure overhead: the structure
/// never changes within a chunk.
///
/// CircuitPrototype is built once per chunk from the testbench topology and
/// precomputes everything structural: the finalised node index map, the
/// typed device parameter slots (MOSFET list for process re-binding, named
/// device lookup for sizing re-binding), and - through its Instance view -
/// the MNA stamp pattern and factorisation workspaces of the DC and AC
/// analyses. Re-binding a new point mutates device parameters in place and
/// re-stamps numerics without reallocating structure; results are
/// bit-identical to building a fresh circuit at the same point (same device
/// order, same stamp values, same solver trajectory).
///
/// Instances are cheap but stateful: one Instance (and one prototype) per
/// thread. The engine's chunk kernels construct one per chunk.

#include <string>
#include <vector>

#include "process/sampler.hpp"
#include "spice/analysis/ac_sweep.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/circuit.hpp"
#include "spice/devices/mosfet.hpp"
#include "util/error.hpp"

namespace ypm::spice {

class CircuitPrototype {
public:
    /// Take ownership of a built testbench, finalise it and cache the
    /// structural slots (node ids, MOSFET list).
    explicit CircuitPrototype(Circuit circuit);

    [[nodiscard]] Circuit& circuit() { return circuit_; }
    [[nodiscard]] const Circuit& circuit() const { return circuit_; }

    /// Precomputed node lookup. \throws ypm::InvalidInputError if absent.
    [[nodiscard]] NodeId node(const std::string& name) const;

    /// Every MOSFET in device order (the process re-binding slots).
    [[nodiscard]] const std::vector<Mosfet*>& mosfets() const { return mosfets_; }

    /// Geometry inventory reflecting the *currently bound* sizing (mismatch
    /// sigmas scale with 1/sqrt(WL), so sample after binding the sizing).
    [[nodiscard]] std::vector<process::MosGeometry> mos_geometries() const {
        return circuit_.mos_geometries();
    }

    /// Typed device parameter slot. \throws ypm::InvalidInputError when the
    /// device is absent or of the wrong type.
    template <typename D>
    [[nodiscard]] D& device(const std::string& name) {
        auto* dev = dynamic_cast<D*>(circuit_.find_device(name));
        if (dev == nullptr)
            throw InvalidInputError("CircuitPrototype: no device '" + name +
                                    "' of the requested type");
        return *dev;
    }

    /// Re-bind a process realisation onto the cached MOSFET slots; nullptr
    /// restores the nominal process (all deltas zero), matching a freshly
    /// built circuit.
    void bind_process(const process::Realization* realization);

    /// A per-thread evaluation view over the prototype: re-binds points and
    /// runs the analyses through reused factorisation workspaces.
    class Instance {
    public:
        explicit Instance(CircuitPrototype& prototype) : proto_(&prototype) {}

        [[nodiscard]] CircuitPrototype& prototype() { return *proto_; }

        void bind_process(const process::Realization* realization) {
            proto_->bind_process(realization);
        }

        /// Cold-start DC operating point; bit-identical to
        /// DcSolver(options).solve(circuit) on a fresh build.
        [[nodiscard]] DcResult solve_op(const DcOptions& options = {}) {
            const DcSolver solver(options);
            return solver.solve(proto_->circuit(), dc_ws_);
        }

        /// AC transfer sweep h[i] = V(out)/V(in); bit-identical to
        /// run_ac + AcResult::transfer on a fresh build.
        [[nodiscard]] std::vector<std::complex<double>>
        ac_transfer(const Solution& op, const std::vector<double>& freqs,
                    NodeId out, NodeId in) {
            return ac_sweep_transfer(proto_->circuit(), op, freqs, out, in,
                                     ac_ws_);
        }

    private:
        CircuitPrototype* proto_;
        DcWorkspace dc_ws_;
        AcSweepWorkspace ac_ws_;
    };

    [[nodiscard]] Instance instance() { return Instance(*this); }

private:
    Circuit circuit_;
    std::vector<Mosfet*> mosfets_;
};

} // namespace ypm::spice
