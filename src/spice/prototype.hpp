#pragma once
/// \file prototype.hpp
/// \brief Reusable circuit prototype for batch evaluation.
///
/// The hot path of every batch workload (GA populations, Monte Carlo,
/// corners, sensitivity) evaluates the *same testbench topology* at many
/// parameter/process points. Rebuilding the Circuit per point - node name
/// maps, device allocations, finalisation - plus re-allocating the MNA
/// factorisation workspace per analysis is pure overhead: the structure
/// never changes within a chunk.
///
/// CircuitPrototype is built once per chunk from the testbench topology and
/// precomputes everything structural: the finalised node index map, the
/// typed device parameter slots (MOSFET list for process re-binding, named
/// device lookup for sizing re-binding), and - through its Instance view -
/// the MNA stamp pattern and factorisation workspaces of the DC and AC
/// analyses. Re-binding a new point mutates device parameters in place and
/// re-stamps numerics without reallocating structure; results are
/// bit-identical to building a fresh circuit at the same point (same device
/// order, same stamp values, same solver trajectory).
///
/// Instances are cheap but stateful: one Instance (and one prototype) per
/// thread. The engine's chunk kernels construct one per chunk.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

#include "process/sampler.hpp"
#include "spice/analysis/ac_sweep.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/circuit.hpp"
#include "spice/devices/mosfet.hpp"
#include "util/error.hpp"

namespace ypm::spice {

class CircuitPrototype {
public:
    /// Take ownership of a built testbench, finalise it and cache the
    /// structural slots (node ids, MOSFET list).
    explicit CircuitPrototype(Circuit circuit);

    [[nodiscard]] Circuit& circuit() { return circuit_; }
    [[nodiscard]] const Circuit& circuit() const { return circuit_; }

    /// Precomputed node lookup. \throws ypm::InvalidInputError if absent.
    [[nodiscard]] NodeId node(const std::string& name) const;

    /// Every MOSFET in device order (the process re-binding slots).
    [[nodiscard]] const std::vector<Mosfet*>& mosfets() const { return mosfets_; }

    /// Geometry inventory reflecting the *currently bound* sizing (mismatch
    /// sigmas scale with 1/sqrt(WL), so sample after binding the sizing).
    [[nodiscard]] std::vector<process::MosGeometry> mos_geometries() const {
        return circuit_.mos_geometries();
    }

    /// Typed device parameter slot. \throws ypm::InvalidInputError when the
    /// device is absent or of the wrong type.
    template <typename D>
    [[nodiscard]] D& device(const std::string& name) {
        auto* dev = dynamic_cast<D*>(circuit_.find_device(name));
        if (dev == nullptr)
            throw InvalidInputError("CircuitPrototype: no device '" + name +
                                    "' of the requested type");
        return *dev;
    }

    /// Re-bind a process realisation onto the cached MOSFET slots; nullptr
    /// restores the nominal process (all deltas zero), matching a freshly
    /// built circuit.
    void bind_process(const process::Realization* realization);

    /// A per-thread evaluation view over the prototype: re-binds points and
    /// runs the analyses through reused factorisation workspaces.
    class Instance {
    public:
        explicit Instance(CircuitPrototype& prototype) : proto_(&prototype) {}

        [[nodiscard]] CircuitPrototype& prototype() { return *proto_; }

        void bind_process(const process::Realization* realization) {
            proto_->bind_process(realization);
        }

        /// Cold-start DC operating point; bit-identical to
        /// DcSolver(options).solve(circuit) on a fresh build.
        [[nodiscard]] DcResult solve_op(const DcOptions& options = {}) {
            const DcSolver solver(options);
            return solver.solve(proto_->circuit(), dc_ws_);
        }

        /// AC transfer sweep h[i] = V(out)/V(in); bit-identical to
        /// run_ac + AcResult::transfer on a fresh build.
        [[nodiscard]] std::vector<std::complex<double>>
        ac_transfer(const Solution& op, const std::vector<double>& freqs,
                    NodeId out, NodeId in) {
            return ac_sweep_transfer(proto_->circuit(), op, freqs, out, in,
                                     ac_ws_);
        }

    private:
        CircuitPrototype* proto_;
        DcWorkspace dc_ws_;
        AcSweepWorkspace ac_ws_;
    };

    [[nodiscard]] Instance instance() { return Instance(*this); }

private:
    Circuit circuit_;
    std::vector<Mosfet*> mosfets_;
};

/// Persistent pool of warm prototype objects, keyed by testbench
/// configuration.
///
/// Chunk kernels used to build their prototype (a CircuitPrototype wrapper
/// such as circuits::OtaPrototype / FilterPrototype) from scratch on every
/// evaluate_batch call - node maps, device allocations, finalisation and
/// workspace growth repeated per chunk. The pool keeps instances alive
/// across calls instead: acquire() hands out a warm instance (or builds one
/// through the factory on first use), and the returned Lease gives it back
/// on destruction. Because prototypes fully re-bind sizing and process per
/// point, a warm instance is bit-identical to a cold one - asserted by
/// tests/test_prototype.cpp.
///
/// Thread-safe: chunk kernels running concurrently on the pool each lease
/// their own instance; the peak number of live instances equals the peak
/// kernel concurrency. The `key` discriminates testbench configurations
/// that need structurally different circuits behind one pool (e.g. the
/// filter's OtaModelKind); callers with a single configuration use the
/// default key.
/// PrototypePool instruments, shared across instantiations: warm leases vs
/// cold factory builds (steady-state chunk traffic should be all-warm).
inline obs::Counter& prototype_warm_leases() {
    static obs::Counter& counter =
        obs::MetricsRegistry::global().counter("proto_pool.warm_leases");
    return counter;
}
inline obs::Counter& prototype_cold_builds() {
    static obs::Counter& counter =
        obs::MetricsRegistry::global().counter("proto_pool.cold_builds");
    return counter;
}

template <typename P>
class PrototypePool {
    /// The poolable state, co-owned by the pool and every outstanding
    /// Lease: async chunk kernels may hold a lease past the lifetime of
    /// whatever owned the pool (an evaluator being destroyed or assigned a
    /// fresh pool), and returning the instance must then still be safe.
    struct Core {
        mutable util::Mutex mutex;
        std::size_t created YPM_GUARDED_BY(mutex) = 0;
        std::unordered_map<std::uint64_t, std::vector<std::unique_ptr<P>>> idle
            YPM_GUARDED_BY(mutex);
    };

public:
    /// Builds a cold prototype for a configuration key.
    using Factory = std::function<std::unique_ptr<P>(std::uint64_t key)>;

    explicit PrototypePool(Factory factory)
        : factory_(std::move(factory)), core_(std::make_shared<Core>()) {}

    PrototypePool(const PrototypePool&) = delete;
    PrototypePool& operator=(const PrototypePool&) = delete;

    /// Scoped ownership of one pooled prototype; returns it warm on
    /// destruction (into the core, which it keeps alive - a lease may
    /// safely outlive the pool object itself).
    class Lease {
    public:
        Lease(Lease&&) noexcept = default;
        Lease& operator=(Lease&&) = delete;
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;

        ~Lease() {
            if (core_ != nullptr && proto_ != nullptr) {
                // Destructors must not throw: if growing the idle bucket
                // fails (bad_alloc), drop the instance instead - the pool
                // rebuilds it cold on the next acquire().
                try {
                    const util::MutexLock lock(core_->mutex);
                    core_->idle[key_].push_back(std::move(proto_));
                } catch (...) {
                    // proto_ freed by unique_ptr; nothing else to unwind.
                }
            }
        }

        [[nodiscard]] P& operator*() const { return *proto_; }
        [[nodiscard]] P* operator->() const { return proto_.get(); }

    private:
        friend class PrototypePool;
        Lease(std::shared_ptr<Core> core, std::uint64_t key,
              std::unique_ptr<P> proto)
            : core_(std::move(core)), key_(key), proto_(std::move(proto)) {}

        std::shared_ptr<Core> core_;
        std::uint64_t key_;
        std::unique_ptr<P> proto_;
    };

    /// Lease a prototype for `key`: a warm instance when one is idle, a
    /// fresh factory build otherwise (built outside the pool lock, so slow
    /// cold builds do not serialise concurrent kernels).
    [[nodiscard]] Lease acquire(std::uint64_t key = 0) {
        {
            const util::MutexLock lock(core_->mutex);
            auto it = core_->idle.find(key);
            if (it != core_->idle.end() && !it->second.empty()) {
                std::unique_ptr<P> warm = std::move(it->second.back());
                it->second.pop_back();
                prototype_warm_leases().add();
                return Lease(core_, key, std::move(warm));
            }
            ++core_->created;
        }
        prototype_cold_builds().add();
        return Lease(core_, key, factory_(key));
    }

    /// Total cold builds so far (reuse diagnostics: steady-state chunk
    /// traffic should stop growing this).
    [[nodiscard]] std::size_t created() const {
        const util::MutexLock lock(core_->mutex);
        return core_->created;
    }

    /// Warm instances currently idle across all keys.
    [[nodiscard]] std::size_t idle() const {
        const util::MutexLock lock(core_->mutex);
        std::size_t n = 0;
        for (const auto& [key, bucket] : core_->idle) n += bucket.size();
        return n;
    }

private:
    Factory factory_;
    std::shared_ptr<Core> core_;
};

} // namespace ypm::spice
