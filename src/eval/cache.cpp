#include "eval/cache.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace ypm::eval {

namespace {

/// Cache instruments, resolved once; always-on (two relaxed atomic bumps
/// and one gauge store per lookup).
struct CacheMetrics {
    obs::Counter& lookups;
    obs::Counter& hits;
    obs::Gauge& hit_rate;

    static CacheMetrics& get() {
        auto& registry = obs::MetricsRegistry::global();
        static CacheMetrics metrics{registry.counter("cache.lookups"),
                                    registry.counter("cache.hits"),
                                    registry.gauge("cache.hit_rate")};
        return metrics;
    }
};

} // namespace

bool CacheKey::operator==(const CacheKey& other) const {
    if (process_key != other.process_key || salt != other.salt) return false;
    if (params.size() != other.params.size()) return false;
    // Bit-exact comparison: distinguishes -0.0 from 0.0 and never equates
    // NaNs away, which is what a memoisation key needs.
    return params.empty() ||
           std::memcmp(params.data(), other.params.data(),
                       params.size() * sizeof(double)) == 0;
}

std::size_t CacheKeyHash::operator()(const CacheKey& key) const {
    std::uint64_t h = 0xcbf29ce484222325ull; // FNV offset basis
    auto mix = [&h](std::uint64_t v) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (v >> (8 * byte)) & 0xffull;
            h *= 0x100000001b3ull; // FNV prime
        }
    };
    for (double p : key.params) {
        std::uint64_t bits;
        std::memcpy(&bits, &p, sizeof(bits));
        mix(bits);
    }
    mix(key.process_key);
    mix(key.salt);
    return static_cast<std::size_t>(h);
}

LruCache::LruCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<std::vector<double>> LruCache::find(const CacheKey& key) {
    CacheMetrics& metrics = CacheMetrics::get();
    metrics.lookups.add();
    const util::MutexLock lock(mutex_);
    const auto it = map_.find(key);
    const bool hit = it != map_.end();
    if (hit) metrics.hits.add();
    metrics.hit_rate.set(static_cast<double>(metrics.hits.value()) /
                         static_cast<double>(metrics.lookups.value()));
    if (!hit) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
}

void LruCache::insert(CacheKey key, std::vector<double> values) {
    if (capacity_ == 0) return;
    const util::MutexLock lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
        // Refresh: replace in place and promote to MRU; size() unchanged.
        it->second->second = std::move(values);
        order_.splice(order_.begin(), order_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        map_.erase(order_.back().first);
        order_.pop_back();
    }
    order_.emplace_front(std::move(key), std::move(values));
    map_.emplace(order_.front().first, order_.begin());
}

std::size_t LruCache::size() const {
    const util::MutexLock lock(mutex_);
    return map_.size();
}

void LruCache::clear() {
    const util::MutexLock lock(mutex_);
    map_.clear();
    order_.clear();
}

} // namespace ypm::eval
