#include "eval/engine.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace ypm::eval {

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
    std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

Engine::Engine(EngineConfig config)
    : config_(config),
      pool_(config.threads > 0 ? std::make_unique<ThreadPool>(config.threads)
                               : nullptr),
      cache_(config.cache_capacity) {}

ThreadPool& Engine::pool() { return pool_ ? *pool_ : ThreadPool::global(); }

void Engine::for_each_miss(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
    if (!config_.parallel || count <= 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    pool().parallel_for(count, fn);
}

std::vector<EvalResult> Engine::run(const EvalBatch& batch, const SaltFn& salt_of,
                                    const DispatchFn& dispatch) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t n = batch.size();
    counters_.requests += n;

    std::vector<EvalResult> results(n);
    std::vector<std::size_t> misses;
    misses.reserve(n);
    // Within-batch dedup: key -> batch index of the first occurrence.
    std::unordered_map<CacheKey, std::size_t, CacheKeyHash> pending;
    std::vector<std::pair<std::size_t, std::size_t>> aliases; // (dup, source)

    const bool use_cache = cache_.capacity() > 0;
    std::vector<CacheKey> keys(use_cache ? n : 0);
    for (std::size_t i = 0; i < n; ++i) {
        const EvalRequest& item = batch.items[i];
        if (!use_cache || !item.cacheable) {
            misses.push_back(i);
            continue;
        }
        keys[i] = CacheKey{item.params, item.process_key, salt_of(i)};
        if (const std::vector<double>* hit = cache_.find(keys[i])) {
            results[i].values = *hit;
            results[i].from_cache = true;
            ++counters_.cache_hits;
            continue;
        }
        const auto [it, inserted] = pending.emplace(keys[i], i);
        if (inserted)
            misses.push_back(i);
        else
            aliases.emplace_back(i, it->second);
    }

    dispatch(misses, results);

    counters_.evaluations += misses.size();
    for (std::size_t idx : misses) {
        if (results[idx].failed()) ++counters_.failures;
        if (use_cache && batch.items[idx].cacheable)
            cache_.insert(keys[idx], results[idx].values);
    }
    for (const auto& [dup, source] : aliases) {
        results[dup].values = results[source].values;
        results[dup].from_cache = true;
        ++counters_.cache_hits;
    }

    counters_.wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return results;
}

std::vector<EvalResult> Engine::evaluate(const EvalBatch& batch,
                                         const KernelFn& kernel) {
    const std::uint64_t salt = batch.tag;
    return run(
        batch, [salt](std::size_t) { return salt; },
        [&](const std::vector<std::size_t>& misses,
            std::vector<EvalResult>& results) {
            for_each_miss(misses.size(), [&](std::size_t k) {
                const std::size_t idx = misses[k];
                results[idx].values = kernel(batch.items[idx]);
            });
        });
}

void Engine::for_each_chunk(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn) {
    if (count == 0) return;
    // Worker-sized chunks keep chunk kernels busy without starving the
    // pool; boundaries never change the element-wise results.
    const std::size_t workers =
        config_.parallel ? std::max<std::size_t>(pool().size(), 1) : 1;
    const std::size_t chunk =
        std::max<std::size_t>(1, (count + workers * 4 - 1) / (workers * 4));
    const std::size_t n_chunks = (count + chunk - 1) / chunk;
    auto run_chunk = [&](std::size_t c) {
        const std::size_t lo = c * chunk;
        fn(lo, std::min(count, lo + chunk));
    };
    if (!config_.parallel || n_chunks <= 1)
        for (std::size_t c = 0; c < n_chunks; ++c) run_chunk(c);
    else
        pool().parallel_for(n_chunks, run_chunk);
}

void Engine::dispatch_chunks(const EvalBatch& batch,
                             const std::vector<std::size_t>& misses,
                             std::vector<EvalResult>& results,
                             const ChunkEvalFn& eval_chunk) {
    for_each_chunk(misses.size(), [&](std::size_t lo, std::size_t hi) {
        std::vector<const EvalRequest*> reqs;
        reqs.reserve(hi - lo);
        for (std::size_t k = lo; k < hi; ++k)
            reqs.push_back(&batch.items[misses[k]]);
        auto out = eval_chunk(
            reqs, std::span<const std::size_t>(misses.data() + lo, hi - lo));
        if (out.size() != reqs.size())
            throw InvalidInputError(
                "eval::Engine: chunk kernel returned wrong batch size");
        for (std::size_t k = lo; k < hi; ++k)
            results[misses[k]].values = std::move(out[k - lo]);
    });
}

std::vector<EvalResult> Engine::evaluate(const EvalBatch& batch,
                                         const BatchKernelFn& kernel) {
    const std::uint64_t salt = batch.tag;
    return run(
        batch, [salt](std::size_t) { return salt; },
        [&](const std::vector<std::size_t>& misses,
            std::vector<EvalResult>& results) {
            dispatch_chunks(batch, misses, results,
                            [&kernel](const std::vector<const EvalRequest*>& reqs,
                                      std::span<const std::size_t>) {
                                return kernel(reqs);
                            });
        });
}

std::vector<EvalResult> Engine::evaluate(const EvalBatch& batch,
                                         const StochasticKernelFn& kernel,
                                         Rng& rng) {
    // Same derivation as the original Monte Carlo runner: one child stream
    // per item from the caller's RNG (identical for any thread count), with
    // the parent advanced once so successive runs differ.
    const Rng base = rng.child(rng.engine()());
    const std::uint64_t base_seed = base.seed();
    const std::uint64_t tag = batch.tag;
    return run(
        batch,
        [base_seed, tag](std::size_t i) {
            return mix64(tag, mix64(base_seed, i));
        },
        [&](const std::vector<std::size_t>& misses,
            std::vector<EvalResult>& results) {
            for_each_miss(misses.size(), [&](std::size_t k) {
                const std::size_t idx = misses[k];
                Rng item_rng = base.child(idx);
                results[idx].values = kernel(batch.items[idx], item_rng);
            });
        });
}

std::vector<EvalResult> Engine::evaluate(const EvalBatch& batch,
                                         const StochasticBatchKernelFn& kernel,
                                         Rng& rng) {
    // Stream and salt derivation must match the scalar stochastic overload
    // exactly: item i (batch index) gets base.child(i), whichever chunk it
    // lands in.
    const Rng base = rng.child(rng.engine()());
    const std::uint64_t base_seed = base.seed();
    const std::uint64_t tag = batch.tag;
    return run(
        batch,
        [base_seed, tag](std::size_t i) {
            return mix64(tag, mix64(base_seed, i));
        },
        [&](const std::vector<std::size_t>& misses,
            std::vector<EvalResult>& results) {
            dispatch_chunks(
                batch, misses, results,
                [&kernel, &base](const std::vector<const EvalRequest*>& reqs,
                                 std::span<const std::size_t> batch_indices) {
                    std::vector<Rng> rngs;
                    rngs.reserve(batch_indices.size());
                    for (std::size_t idx : batch_indices)
                        rngs.push_back(base.child(idx));
                    return kernel(reqs, rngs);
                });
        });
}

} // namespace ypm::eval
