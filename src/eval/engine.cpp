#include "eval/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"

namespace ypm::eval {

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
    std::uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2));
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

namespace {

/// A fresh evaluation failed when its row carries a NaN (the moo::Problem
/// contract) or is empty (a kernel that signals failure by returning no
/// values - the NaN scan alone cannot see those).
bool row_failed(const std::vector<double>& values) {
    if (values.empty()) return true;
    for (double v : values)
        if (std::isnan(v)) return true;
    return false;
}

/// Engine instruments, resolved once. Unlike the per-instance ledger these
/// aggregate across every engine in the process; always-on (a handful of
/// relaxed atomic adds per *batch*, not per item).
struct EngineMetrics {
    obs::Counter& requests;
    obs::Counter& evaluations;
    obs::Counter& cache_hits;
    obs::Counter& dedup_aliases;
    obs::Counter& failures;

    static EngineMetrics& get() {
        auto& registry = obs::MetricsRegistry::global();
        static EngineMetrics metrics{registry.counter("engine.requests"),
                                     registry.counter("engine.evaluations"),
                                     registry.counter("engine.cache_hits"),
                                     registry.counter("engine.dedup_aliases"),
                                     registry.counter("engine.failures")};
        return metrics;
    }
};

/// Process-wide batch sequence: gives every submitted batch a unique id
/// that kernel spans carry, so a trace viewer can associate an engine.batch
/// span with the kernel chunks it fanned out (across engines, too).
std::atomic<std::uint64_t> g_batch_seq{0};

} // namespace

/// In-flight state of one submitted batch. Owned jointly by the ticket and
/// the engine's retirement queue; pool jobs reference it through a raw
/// pointer, which is safe because retirement always waits for the jobs
/// before the queue drops its reference.
struct Engine::Pending {
    const Engine* owner = nullptr;     ///< rejects tickets waited elsewhere
    EvalBatch batch;                   ///< owned copy; jobs read items from it
    std::vector<EvalResult> results;
    std::vector<std::size_t> misses;   ///< batch indices needing evaluation
    std::vector<CacheKey> keys;        ///< per-item keys (cache enabled only)
    std::vector<std::pair<std::size_t, std::size_t>> aliases; ///< (dup, source)
    ThreadPool::Job job;               ///< invalid when dispatched inline
    std::exception_ptr error;          ///< first kernel error, if any
    std::uint64_t seq = 0;             ///< process-wide batch id (tracing)
    util::TickNs submitted_at = 0;     ///< submit stamp (engine.batch span)
    bool use_cache = false;
    bool retired = false;
    bool taken = false;                ///< results consumed by a wait()
};

Engine::Engine(EngineConfig config)
    : config_(config),
      pool_(config.threads > 0 ? std::make_unique<ThreadPool>(config.threads)
                               : nullptr),
      cache_(config.cache_capacity) {}

Engine::~Engine() {
    // Drain in-flight batches: queued jobs write into their Pending blocks,
    // so those must stay alive until every job has finished.
    const util::MutexLock retire_lock(retire_mutex_);
    for (;;) {
        {
            const util::MutexLock lock(mutex_);
            if (queue_.empty()) break;
        }
        try {
            retire_head();
        } catch (...) {
            // Destructor drain: nobody is left to receive kernel errors.
        }
    }
}

ThreadPool& Engine::pool() { return pool_ ? *pool_ : ThreadPool::global(); }

std::size_t Engine::in_flight() const {
    const util::MutexLock lock(mutex_);
    return queue_.size();
}

EngineCounters Engine::counters() const {
    const util::MutexLock lock(mutex_);
    return counters_;
}

void Engine::reset_counters() {
    const util::MutexLock lock(mutex_);
    counters_ = EngineCounters{};
}

Engine::Ticket Engine::submit_impl(EvalBatch batch, const SaltFn& salt_of,
                                   const DispatchFn& dispatch) {
    const util::TickNs t0 = util::now_ns();
    auto pending = std::make_shared<Pending>();
    pending->owner = this;
    pending->batch = std::move(batch);
    pending->seq = g_batch_seq.fetch_add(1, std::memory_order_relaxed) + 1;
    pending->submitted_at = t0;
    const std::size_t n = pending->batch.size();
    pending->results.resize(n);
    pending->use_cache = cache_.capacity() > 0;

    // Front phase, on the submitting thread: ledger request count, cache
    // lookups and within-batch dedup. Happens in submission order, so the
    // cache sees exactly the state every previously *retired* batch left.
    std::size_t front_hits = 0;
    {
        const util::MutexLock lock(mutex_);
        counters_.requests += n;
        pending->misses.reserve(n);
        if (pending->use_cache) pending->keys.resize(n);
        // Within-batch dedup: key -> batch index of the first occurrence.
        std::unordered_map<CacheKey, std::size_t, CacheKeyHash> first_seen;
        for (std::size_t i = 0; i < n; ++i) {
            const EvalRequest& item = pending->batch.items[i];
            if (!pending->use_cache || !item.cacheable) {
                pending->misses.push_back(i);
                continue;
            }
            pending->keys[i] = CacheKey{item.params, item.process_key, salt_of(i)};
            if (auto hit = cache_.find(pending->keys[i])) {
                pending->results[i].values = std::move(*hit);
                pending->results[i].from_cache = true;
                // A hit on a cached failure (NaN row - empty failures are
                // never cached) is a request answered by a known-failed
                // evaluation: flag it and charge the ledger, exactly like a
                // within-batch dedup alias of a failed source.
                pending->results[i].failure = row_failed(pending->results[i].values);
                ++counters_.cache_hits;
                ++front_hits;
                if (pending->results[i].failure) ++counters_.failures;
                continue;
            }
            const auto [it, inserted] = first_seen.emplace(pending->keys[i], i);
            if (inserted)
                pending->misses.push_back(i);
            else
                pending->aliases.emplace_back(i, it->second);
        }
    }

    EngineMetrics& metrics = EngineMetrics::get();
    metrics.requests.add(n);
    metrics.cache_hits.add(front_hits);

    // Start the misses. Parallel engines enqueue pool jobs and return
    // immediately; serial engines evaluate inline here (still deferring
    // ledger/cache retirement to wait(), so both paths retire identically).
    dispatch(*pending);

    {
        const util::MutexLock lock(mutex_);
        queue_.push_back(pending);
        counters_.wall_seconds += util::seconds_since(t0);
    }
    if (obs::Tracer::enabled())
        obs::Tracer::record_complete(
            "engine.submit", "engine", t0, util::now_ns(),
            {{"batch", static_cast<double>(pending->seq)},
             {"items", static_cast<double>(n)},
             {"misses", static_cast<double>(pending->misses.size())},
             {"cache_hits", static_cast<double>(front_hits)}});
    return Ticket(std::move(pending));
}

void Engine::dispatch_items(Pending& pending, ItemEvalFn eval_item) {
    const std::size_t count = pending.misses.size();
    if (count == 0) return;
    Pending* p = &pending;
    // Shared so the closure stays copyable (std::function requirement).
    auto eval = std::make_shared<ItemEvalFn>(std::move(eval_item));
    auto run_item = [p, eval](std::size_t k) {
        const std::size_t idx = p->misses[k];
        obs::Span span("engine.kernel", "kernel");
        span.arg("batch", static_cast<double>(p->seq));
        span.arg("item", static_cast<double>(idx));
        p->results[idx].values = (*eval)(p->batch.items[idx], idx);
    };
    if (!config_.parallel) {
        try {
            for (std::size_t k = 0; k < count; ++k) run_item(k);
        } catch (...) {
            pending.error = std::current_exception();
        }
        return;
    }
    pending.job = pool().parallel_for_async(count, std::move(run_item));
}

void Engine::dispatch_chunks(Pending& pending, ChunkEvalFn eval_chunk) {
    const std::size_t count = pending.misses.size();
    if (count == 0) return;
    // Worker-sized chunks keep chunk kernels busy without starving the
    // pool; boundaries never change the element-wise results.
    const std::size_t workers =
        config_.parallel ? std::max<std::size_t>(pool().size(), 1) : 1;
    const std::size_t chunk =
        std::max<std::size_t>(1, (count + workers * 4 - 1) / (workers * 4));
    const std::size_t n_chunks = (count + chunk - 1) / chunk;

    Pending* p = &pending;
    auto eval = std::make_shared<ChunkEvalFn>(std::move(eval_chunk));
    auto run_chunk = [p, eval, chunk, count](std::size_t c) {
        const std::size_t lo = c * chunk;
        const std::size_t hi = std::min(count, lo + chunk);
        obs::Span span("engine.kernel", "kernel");
        span.arg("batch", static_cast<double>(p->seq));
        span.arg("chunk", static_cast<double>(c));
        span.arg("items", static_cast<double>(hi - lo));
        std::vector<const EvalRequest*> reqs;
        reqs.reserve(hi - lo);
        for (std::size_t k = lo; k < hi; ++k)
            reqs.push_back(&p->batch.items[p->misses[k]]);
        auto out = (*eval)(
            reqs, std::span<const std::size_t>(p->misses.data() + lo, hi - lo));
        if (out.size() != reqs.size())
            throw InvalidInputError(
                "eval::Engine: chunk kernel returned wrong batch size");
        for (std::size_t k = lo; k < hi; ++k)
            p->results[p->misses[k]].values = std::move(out[k - lo]);
    };
    if (!config_.parallel) {
        try {
            for (std::size_t c = 0; c < n_chunks; ++c) run_chunk(c);
        } catch (...) {
            pending.error = std::current_exception();
        }
        return;
    }
    pending.job = pool().parallel_for_async(n_chunks, std::move(run_chunk));
}

void Engine::retire_head() {
    std::shared_ptr<Pending> head;
    {
        const util::MutexLock lock(mutex_);
        head = queue_.front();
    }

    // Block (off the engine mutex) until the batch's jobs are done.
    std::exception_ptr error = head->error;
    if (!error) {
        try {
            head->job.wait();
        } catch (...) {
            error = std::current_exception();
        }
    }

    std::size_t batch_failures = 0;
    {
        const util::MutexLock lock(mutex_);
        head->retired = true;
        queue_.pop_front();
        if (error) {
            // Mirror the blocking path: a kernel error leaves only the
            // request count in the ledger and nothing in the cache; the
            // error surfaces from this ticket's wait().
            head->error = error;
            return;
        }

        counters_.evaluations += head->misses.size();
        for (std::size_t idx : head->misses) {
            EvalResult& r = head->results[idx];
            r.failure = row_failed(r.values);
            if (r.failure) ++counters_.failures;
            if (r.failure) ++batch_failures;
            // NaN rows self-describe their failure, so caching them still
            // spares the re-simulation of a known-failing point; empty rows
            // would come back looking successful, so they stay out.
            if (head->use_cache && head->batch.items[idx].cacheable &&
                !r.values.empty())
                cache_.insert(head->keys[idx], r.values);
        }
        for (const auto& [dup, source] : head->aliases) {
            const EvalResult& src = head->results[source];
            EvalResult& dst = head->results[dup];
            dst.values = src.values;
            dst.failure = src.failure;
            dst.from_cache = true;
            ++counters_.cache_hits;
            // A failed source fans its failure out to every alias: each was
            // a request that got a failed answer, and the ledger counts it
            // so.
            if (dst.failure) ++counters_.failures;
            if (dst.failure) ++batch_failures;
        }
    }

    // Observational only, outside the engine lock: process-wide counters
    // and the batch's submit-to-retire span.
    EngineMetrics& metrics = EngineMetrics::get();
    metrics.evaluations.add(head->misses.size());
    metrics.cache_hits.add(head->aliases.size());
    metrics.dedup_aliases.add(head->aliases.size());
    metrics.failures.add(batch_failures);
    if (obs::Tracer::enabled())
        obs::Tracer::record_complete(
            "engine.batch", "engine", head->submitted_at, util::now_ns(),
            {{"batch", static_cast<double>(head->seq)},
             {"items", static_cast<double>(head->results.size())},
             {"evaluations", static_cast<double>(head->misses.size())},
             {"aliases", static_cast<double>(head->aliases.size())},
             {"failures", static_cast<double>(batch_failures)}});
}

std::vector<EvalResult> Engine::wait(Ticket ticket) {
    const util::TickNs t0 = util::now_ns();
    const std::shared_ptr<Pending> pending = std::move(ticket.pending_);
    if (!pending)
        throw InvalidInputError("eval::Engine::wait: invalid ticket");
    // Reject foreign tickets before retiring anything: without this check
    // the loop below would drain this engine's whole queue (side effects
    // included) before noticing the ticket can never retire here.
    if (pending->owner != this)
        throw InvalidInputError(
            "eval::Engine::wait: ticket does not belong to this engine");

    const util::MutexLock retire_lock(retire_mutex_);
    for (;;) {
        {
            const util::MutexLock lock(mutex_);
            if (pending->retired) break;
        }
        retire_head();
    }

    const util::MutexLock lock(mutex_);
    if (pending->taken)
        throw InvalidInputError("eval::Engine::wait: ticket already consumed");
    pending->taken = true;
    // Calling-thread time only: overlapped batches retire while an earlier
    // wait() blocks, so summing per-thread time never double-counts (and
    // equals the old "time inside evaluate()" for the blocking pattern).
    counters_.wall_seconds += util::seconds_since(t0);
    if (obs::Tracer::enabled())
        obs::Tracer::record_complete(
            "engine.wait", "engine", t0, util::now_ns(),
            {{"batch", static_cast<double>(pending->seq)}});
    if (pending->error) std::rethrow_exception(pending->error);
    return std::move(pending->results);
}

Engine::Ticket Engine::submit(EvalBatch batch, KernelFn kernel) {
    const std::uint64_t salt = batch.tag;
    auto eval = std::make_shared<KernelFn>(std::move(kernel));
    return submit_impl(
        std::move(batch), [salt](std::size_t) { return salt; },
        [&](Pending& pending) {
            dispatch_items(pending,
                           [eval](const EvalRequest& request, std::size_t) {
                               return (*eval)(request);
                           });
        });
}

Engine::Ticket Engine::submit(EvalBatch batch, BatchKernelFn kernel) {
    const std::uint64_t salt = batch.tag;
    auto eval = std::make_shared<BatchKernelFn>(std::move(kernel));
    return submit_impl(
        std::move(batch), [salt](std::size_t) { return salt; },
        [&](Pending& pending) {
            dispatch_chunks(pending,
                            [eval](const std::vector<const EvalRequest*>& reqs,
                                   std::span<const std::size_t>) {
                                return (*eval)(reqs);
                            });
        });
}

Engine::Ticket Engine::submit(EvalBatch batch, StochasticKernelFn kernel,
                              Rng& rng) {
    // Same derivation as the original Monte Carlo runner: one child stream
    // per item from the caller's RNG (identical for any thread count), with
    // the parent advanced once at submission so successive batches differ.
    const Rng base = rng.child(rng.engine()());
    const std::uint64_t base_seed = base.seed();
    const std::uint64_t tag = batch.tag;
    auto eval = std::make_shared<StochasticKernelFn>(std::move(kernel));
    return submit_impl(
        std::move(batch),
        [base_seed, tag](std::size_t i) {
            return mix64(tag, mix64(base_seed, i));
        },
        [&](Pending& pending) {
            dispatch_items(pending,
                           [eval, base](const EvalRequest& request,
                                        std::size_t idx) {
                               Rng item_rng = base.child(idx);
                               return (*eval)(request, item_rng);
                           });
        });
}

Engine::Ticket Engine::submit(EvalBatch batch, StochasticBatchKernelFn kernel,
                              Rng& rng) {
    // Stream and salt derivation must match the scalar stochastic overload
    // exactly: item i (batch index) gets base.child(i), whichever chunk it
    // lands in.
    const Rng base = rng.child(rng.engine()());
    const std::uint64_t base_seed = base.seed();
    const std::uint64_t tag = batch.tag;
    auto eval = std::make_shared<StochasticBatchKernelFn>(std::move(kernel));
    return submit_impl(
        std::move(batch),
        [base_seed, tag](std::size_t i) {
            return mix64(tag, mix64(base_seed, i));
        },
        [&](Pending& pending) {
            dispatch_chunks(
                pending,
                [eval, base](const std::vector<const EvalRequest*>& reqs,
                             std::span<const std::size_t> batch_indices) {
                    std::vector<Rng> rngs;
                    rngs.reserve(batch_indices.size());
                    for (std::size_t idx : batch_indices)
                        rngs.push_back(base.child(idx));
                    return (*eval)(reqs, rngs);
                });
        });
}

std::vector<EvalResult> Engine::evaluate(EvalBatch batch,
                                         const KernelFn& kernel) {
    return wait(submit(std::move(batch), kernel));
}

std::vector<EvalResult> Engine::evaluate(EvalBatch batch,
                                         const BatchKernelFn& kernel) {
    return wait(submit(std::move(batch), kernel));
}

std::vector<EvalResult> Engine::evaluate(EvalBatch batch,
                                         const StochasticKernelFn& kernel,
                                         Rng& rng) {
    return wait(submit(std::move(batch), kernel, rng));
}

std::vector<EvalResult> Engine::evaluate(EvalBatch batch,
                                         const StochasticBatchKernelFn& kernel,
                                         Rng& rng) {
    return wait(submit(std::move(batch), kernel, rng));
}

} // namespace ypm::eval
