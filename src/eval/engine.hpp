#pragma once
/// \file engine.hpp
/// \brief Unified batched evaluation engine with async streaming dispatch.
///
/// All repeated-testbench workloads of the Fig. 3 flow - GA populations,
/// per-Pareto-point Monte Carlo, corner sweeps, sensitivity probes,
/// verification - submit EvalBatches here instead of hand-rolling their own
/// ThreadPool loops. The engine owns:
///
///  * scheduling: misses are dispatched on a thread pool (the process-wide
///    pool by default, or a private pool of `threads` workers). submit()
///    enqueues a batch and returns a Ticket immediately, so misses from
///    several batches stream onto the pool together (overlapped Monte Carlo
///    stages); wait() retires batches strictly in submission order.
///    evaluate() is submit() + wait() in one call;
///  * determinism: stochastic kernels receive per-item RNG child streams
///    derived exactly like the original Monte Carlo runner
///    (base = rng.child(rng.engine()()), item i gets base.child(i)) at
///    submission time, so results are bit-identical for any thread count
///    and identical between the blocking and async paths;
///  * memoisation: an LRU cache keyed bit-exactly on (params, process key,
///    batch tag / stream seed) serves repeated points - GA elites, repeated
///    corner sweeps, sensitivity probes on archived designs. Lookups happen
///    at submit(), insertions at retirement, both in submission order, so a
///    submit()+wait() sequence touches the cache exactly like evaluate();
///  * accounting: one ledger of requests, kernel evaluations, cache hits,
///    failures and wall time that feeds FlowTimings and the Table 5 bench.
///
/// Threading contract: submit()/evaluate() must be called from one thread
/// at a time (kernels themselves run on the pool and must be thread-safe
/// and must outlive the batch's retirement). wait() may be called from a
/// different thread than submit(), and concurrent waiters serialise on an
/// internal retirement lock; the cache is internally thread-safe so
/// submission-time lookups may overlap a concurrent retirement.
///
/// Lock order: retire_mutex_ strictly before mutex_ (wait() and the
/// destructor take the retirement lock, then retire_head() briefly takes
/// the engine mutex for queue/ledger updates). The contract is spelled out
/// with capability annotations - YPM_EXCLUDES on every public entry point
/// that acquires a lock internally, and a negative requirement (!mutex_)
/// on retire_head() - which the ci-analyze preset checks under Clang
/// -Wthread-safety / -Wthread-safety-beta.
///
/// Memoisation contract: one engine instance serves one design context.
/// Cache keys cover (params, process key, tag/stream) but not the kernel's
/// captured state, so batches submitted to a shared engine must evaluate
/// the same testbench / process deck per tag - use separate engines (or
/// clear_cache()) when switching contexts.

#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "eval/cache.hpp"
#include "eval/request.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace ypm::eval {

/// Deterministic kernel: same request, same values, every call.
using KernelFn = std::function<std::vector<double>(const EvalRequest&)>;

/// Stochastic kernel: consumes the per-item child stream (Monte Carlo).
using StochasticKernelFn =
    std::function<std::vector<double>(const EvalRequest&, Rng&)>;

/// Chunk kernel: evaluates a group of requests at once. Must return one
/// value vector per request, element-wise identical to evaluating each
/// request alone (chunk boundaries depend on the worker count).
using BatchKernelFn = std::function<std::vector<std::vector<double>>(
    const std::vector<const EvalRequest*>&)>;

/// Stochastic chunk kernel: a group of requests with one RNG child stream
/// per request (rngs[k] belongs to requests[k], derived exactly as the
/// scalar stochastic path derives item streams). Element-wise identical to
/// the scalar path for any chunking.
using StochasticBatchKernelFn = std::function<std::vector<std::vector<double>>(
    const std::vector<const EvalRequest*>&, std::span<Rng>)>;

struct EngineConfig {
    bool parallel = true;       ///< dispatch misses on the thread pool
    std::size_t threads = 0;    ///< 0 = shared global pool; else private pool
    std::size_t cache_capacity = 4096; ///< LRU entries; 0 disables memoisation
};

/// Evaluation ledger. `requests` counts submitted items; `evaluations`
/// counts actual kernel invocations (requests minus cache/dedup hits).
/// `failures` counts failed fresh evaluations plus every request they
/// answer second-hand - dedup aliases and LRU hits of a failed point each
/// add one, so a failing point is charged once per request consistently,
/// whether the duplicates land in one batch or across batches.
struct EngineCounters {
    std::size_t requests = 0;
    std::size_t evaluations = 0;
    std::size_t cache_hits = 0;
    std::size_t failures = 0;
    /// Calling-thread time spent inside submit()/wait() (equals the old
    /// "time inside evaluate()" for the blocking pattern; overlapped
    /// batches retiring during an earlier wait() are not double-counted).
    double wall_seconds = 0.0;
};

class Engine {
    struct Pending; ///< one submitted batch's in-flight state (engine.cpp)

public:
    explicit Engine(EngineConfig config = {});
    /// Retires every still-pending batch (discarding results and swallowing
    /// kernel errors) so no queued job outlives the engine's state.
    ~Engine() YPM_EXCLUDES(retire_mutex_, mutex_);

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Handle of one in-flight submitted batch. Cheap to copy; results are
    /// consumed by exactly one wait() call.
    class Ticket {
    public:
        Ticket() = default;
        [[nodiscard]] bool valid() const { return pending_ != nullptr; }

    private:
        friend class Engine;
        explicit Ticket(std::shared_ptr<Pending> pending)
            : pending_(std::move(pending)) {}
        std::shared_ptr<Pending> pending_;
    };

    /// Enqueue a batch through a deterministic kernel; misses start
    /// evaluating on the pool immediately, the call returns without
    /// blocking. The kernel is copied; anything it captures by reference
    /// must outlive the batch's retirement.
    [[nodiscard]] Ticket submit(EvalBatch batch, KernelFn kernel)
        YPM_EXCLUDES(mutex_);

    /// Enqueue a batch through a chunk kernel (moo::Problem::evaluate_batch
    /// adapters). Misses are split into worker-sized chunks.
    [[nodiscard]] Ticket submit(EvalBatch batch, BatchKernelFn kernel)
        YPM_EXCLUDES(mutex_);

    /// Enqueue a batch through a stochastic kernel. Advances `rng` once at
    /// submission (so successive submissions differ, in submission order)
    /// and hands item i the deterministic child stream base.child(i).
    [[nodiscard]] Ticket submit(EvalBatch batch, StochasticKernelFn kernel,
                                Rng& rng) YPM_EXCLUDES(mutex_);

    /// Enqueue a batch through a stochastic chunk kernel (the Monte Carlo
    /// prototype-reuse path). Streams and salts are derived exactly as the
    /// scalar stochastic overload.
    [[nodiscard]] Ticket submit(EvalBatch batch, StochasticBatchKernelFn kernel,
                                Rng& rng) YPM_EXCLUDES(mutex_);

    /// Block until `ticket`'s batch (and every batch submitted before it)
    /// has retired, then return its results. Retirement is strictly in
    /// submission order: ledger updates, cache insertions and alias fills
    /// happen in the same order as the blocking path, so evaluate() and
    /// submit()+wait() are bit-identical, counters included. Rethrows the
    /// batch's kernel exception, if any. Each ticket can be waited once.
    /// Entering with either engine lock held would self-deadlock; the
    /// EXCLUDES below makes that a compile error on the Clang CI leg.
    [[nodiscard]] std::vector<EvalResult> wait(Ticket ticket)
        YPM_EXCLUDES(retire_mutex_, mutex_);

    /// Evaluate a batch through a deterministic kernel (submit + wait).
    /// Taking the batch by value lets rvalue callers move it in for free;
    /// lvalue callers pay the same one copy the submit path needs anyway.
    [[nodiscard]] std::vector<EvalResult>
    evaluate(EvalBatch batch, const KernelFn& kernel)
        YPM_EXCLUDES(retire_mutex_, mutex_);

    /// Evaluate a batch through a chunk kernel (submit + wait).
    [[nodiscard]] std::vector<EvalResult>
    evaluate(EvalBatch batch, const BatchKernelFn& kernel)
        YPM_EXCLUDES(retire_mutex_, mutex_);

    /// Evaluate a batch through a stochastic kernel (submit + wait).
    [[nodiscard]] std::vector<EvalResult>
    evaluate(EvalBatch batch, const StochasticKernelFn& kernel, Rng& rng)
        YPM_EXCLUDES(retire_mutex_, mutex_);

    /// Evaluate a batch through a stochastic chunk kernel (submit + wait).
    [[nodiscard]] std::vector<EvalResult>
    evaluate(EvalBatch batch, const StochasticBatchKernelFn& kernel, Rng& rng)
        YPM_EXCLUDES(retire_mutex_, mutex_);

    /// Snapshot of the ledger (copied under the engine lock: retirement on
    /// a waiting thread mutates the counters, so a reference would race).
    [[nodiscard]] EngineCounters counters() const YPM_EXCLUDES(mutex_);
    void reset_counters() YPM_EXCLUDES(mutex_);

    /// Batches submitted but not yet retired.
    [[nodiscard]] std::size_t in_flight() const YPM_EXCLUDES(mutex_);

    [[nodiscard]] const EngineConfig& config() const { return config_; }
    [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
    void clear_cache() { cache_.clear(); }

private:
    using SaltFn = std::function<std::uint64_t(std::size_t)>;
    /// Starts the miss evaluation: either launches an async pool job on the
    /// pending block or (serial engines) runs inline, capturing any error.
    using DispatchFn = std::function<void(Pending&)>;
    /// Chunk-kernel adapter: gather each chunk's requests (plus their batch
    /// indices, for RNG provisioning), evaluate, arity-check and scatter.
    using ChunkEvalFn = std::function<std::vector<std::vector<double>>(
        const std::vector<const EvalRequest*>&, std::span<const std::size_t>)>;
    /// Scalar-kernel adapter: evaluate one request (idx = batch index).
    using ItemEvalFn =
        std::function<std::vector<double>(const EvalRequest&, std::size_t)>;

    [[nodiscard]] Ticket submit_impl(EvalBatch batch, const SaltFn& salt_of,
                                     const DispatchFn& dispatch)
        YPM_EXCLUDES(mutex_);
    void dispatch_items(Pending& pending, ItemEvalFn eval_item);
    void dispatch_chunks(Pending& pending, ChunkEvalFn eval_chunk);
    /// Retire the oldest pending batch: wait for its jobs, then apply its
    /// ledger/cache/alias updates. The "caller holds retire_mutex_ but NOT
    /// mutex_" lock-order contract is compiler-checked: the positive
    /// requirement under -Wthread-safety, the negative one (!mutex_, which
    /// this function acquires internally) under -Wthread-safety-beta.
    void retire_head() YPM_REQUIRES(retire_mutex_, !mutex_);

    [[nodiscard]] ThreadPool& pool();

    EngineConfig config_;
    std::unique_ptr<ThreadPool> pool_; ///< only when config_.threads > 0
    LruCache cache_;
    EngineCounters counters_ YPM_GUARDED_BY(mutex_);
    mutable util::Mutex mutex_;  ///< guards counters_ and queue_
    util::Mutex retire_mutex_;   ///< serialises retirement across waiters
    std::deque<std::shared_ptr<Pending>> queue_
        YPM_GUARDED_BY(mutex_); ///< submission order
};

/// Deterministic 64-bit mix (splitmix64 finaliser over a seed combine);
/// used for stochastic cache salts and exposed for tests.
[[nodiscard]] std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

} // namespace ypm::eval
