#pragma once
/// \file engine.hpp
/// \brief Unified batched evaluation engine.
///
/// All repeated-testbench workloads of the Fig. 3 flow - GA populations,
/// per-Pareto-point Monte Carlo, corner sweeps, sensitivity probes,
/// verification - submit EvalBatches here instead of hand-rolling their own
/// ThreadPool loops. The engine owns:
///
///  * scheduling: misses are dispatched on a thread pool (the process-wide
///    pool by default, or a private pool of `threads` workers);
///  * determinism: stochastic kernels receive per-item RNG child streams
///    derived exactly like the original Monte Carlo runner
///    (base = rng.child(rng.engine()()), item i gets base.child(i)), so
///    results are bit-identical for any thread count;
///  * memoisation: an LRU cache keyed bit-exactly on (params, process key,
///    batch tag / stream seed) serves repeated points - GA elites, repeated
///    corner sweeps, sensitivity probes on archived designs;
///  * accounting: one ledger of requests, kernel evaluations, cache hits,
///    failures and wall time that feeds FlowTimings and the Table 5 bench.
///
/// The engine is not re-entrant: evaluate() must be called from one thread
/// at a time (kernels themselves run on the pool and must be thread-safe).
///
/// Memoisation contract: one engine instance serves one design context.
/// Cache keys cover (params, process key, tag/stream) but not the kernel's
/// captured state, so batches submitted to a shared engine must evaluate
/// the same testbench / process deck per tag - use separate engines (or
/// clear_cache()) when switching contexts.

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "eval/cache.hpp"
#include "eval/request.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ypm::eval {

/// Deterministic kernel: same request, same values, every call.
using KernelFn = std::function<std::vector<double>(const EvalRequest&)>;

/// Stochastic kernel: consumes the per-item child stream (Monte Carlo).
using StochasticKernelFn =
    std::function<std::vector<double>(const EvalRequest&, Rng&)>;

/// Chunk kernel: evaluates a group of requests at once. Must return one
/// value vector per request, element-wise identical to evaluating each
/// request alone (chunk boundaries depend on the worker count).
using BatchKernelFn = std::function<std::vector<std::vector<double>>(
    const std::vector<const EvalRequest*>&)>;

/// Stochastic chunk kernel: a group of requests with one RNG child stream
/// per request (rngs[k] belongs to requests[k], derived exactly as the
/// scalar stochastic path derives item streams). Element-wise identical to
/// the scalar path for any chunking.
using StochasticBatchKernelFn = std::function<std::vector<std::vector<double>>(
    const std::vector<const EvalRequest*>&, std::span<Rng>)>;

struct EngineConfig {
    bool parallel = true;       ///< dispatch misses on the thread pool
    std::size_t threads = 0;    ///< 0 = shared global pool; else private pool
    std::size_t cache_capacity = 4096; ///< LRU entries; 0 disables memoisation
};

/// Evaluation ledger. `requests` counts submitted items; `evaluations`
/// counts actual kernel invocations (requests minus cache/dedup hits).
struct EngineCounters {
    std::size_t requests = 0;
    std::size_t evaluations = 0;
    std::size_t cache_hits = 0;
    std::size_t failures = 0;   ///< fresh evaluations containing NaN
    double wall_seconds = 0.0;  ///< time spent inside evaluate()
};

class Engine {
public:
    explicit Engine(EngineConfig config = {});

    /// Evaluate a batch through a deterministic kernel.
    [[nodiscard]] std::vector<EvalResult> evaluate(const EvalBatch& batch,
                                                   const KernelFn& kernel);

    /// Evaluate a batch through a chunk kernel (moo::Problem::evaluate_batch
    /// adapters). Misses are split into worker-sized chunks.
    [[nodiscard]] std::vector<EvalResult> evaluate(const EvalBatch& batch,
                                                   const BatchKernelFn& kernel);

    /// Evaluate a batch through a stochastic kernel. Advances `rng` once
    /// (so successive runs differ) and hands item i the deterministic child
    /// stream base.child(i) - bit-identical for any thread count.
    [[nodiscard]] std::vector<EvalResult> evaluate(const EvalBatch& batch,
                                                   const StochasticKernelFn& kernel,
                                                   Rng& rng);

    /// Evaluate a batch through a stochastic chunk kernel (the Monte Carlo
    /// prototype-reuse path). Streams and salts are derived exactly as the
    /// scalar stochastic overload, so results are bit-identical to it for
    /// any thread count or chunking.
    [[nodiscard]] std::vector<EvalResult>
    evaluate(const EvalBatch& batch, const StochasticBatchKernelFn& kernel,
             Rng& rng);

    [[nodiscard]] const EngineCounters& counters() const { return counters_; }
    void reset_counters() { counters_ = EngineCounters{}; }

    [[nodiscard]] const EngineConfig& config() const { return config_; }
    [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }
    void clear_cache() { cache_.clear(); }

private:
    using SaltFn = std::function<std::uint64_t(std::size_t)>;
    using DispatchFn = std::function<void(const std::vector<std::size_t>&,
                                          std::vector<EvalResult>&)>;

    [[nodiscard]] std::vector<EvalResult>
    run(const EvalBatch& batch, const SaltFn& salt_of, const DispatchFn& dispatch);

    [[nodiscard]] ThreadPool& pool();
    void for_each_miss(std::size_t count, const std::function<void(std::size_t)>& fn);
    /// Split `count` items into worker-sized [lo, hi) chunks, dispatching
    /// each through fn (in parallel when configured).
    void for_each_chunk(std::size_t count,
                        const std::function<void(std::size_t, std::size_t)>& fn);

    /// Shared miss dispatch of the chunk-kernel overloads: gather each
    /// chunk's requests (plus their batch indices, for RNG provisioning),
    /// evaluate, arity-check and scatter results.
    using ChunkEvalFn = std::function<std::vector<std::vector<double>>(
        const std::vector<const EvalRequest*>&, std::span<const std::size_t>)>;
    void dispatch_chunks(const EvalBatch& batch,
                         const std::vector<std::size_t>& misses,
                         std::vector<EvalResult>& results,
                         const ChunkEvalFn& eval_chunk);

    EngineConfig config_;
    std::unique_ptr<ThreadPool> pool_; ///< only when config_.threads > 0
    LruCache cache_;
    EngineCounters counters_;
};

/// Deterministic 64-bit mix (splitmix64 finaliser over a seed combine);
/// used for stochastic cache salts and exposed for tests.
[[nodiscard]] std::uint64_t mix64(std::uint64_t a, std::uint64_t b);

} // namespace ypm::eval
