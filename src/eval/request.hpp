#pragma once
/// \file request.hpp
/// \brief Value types of the unified evaluation engine.
///
/// Every repeated-testbench workload in the Fig. 3 flow (GA populations,
/// per-Pareto-point Monte Carlo, corner sweeps, sensitivity probes) is a
/// batch of point evaluations. These types describe one such batch in a
/// consumer-neutral way so a single engine can schedule, memoise and count
/// all of them.

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace ypm::eval {

/// Cache-key component marking "nominal process" (no corner, no MC sample).
inline constexpr std::uint64_t kNominalProcess = 0;

/// One evaluation point: a designable-parameter vector plus an opaque
/// process key. Results with equal (params, process_key, batch tag,
/// stochastic stream) are assumed interchangeable - the key must therefore
/// encode everything that selects the process point (corner id, sample id).
struct EvalRequest {
    std::vector<double> params;               ///< designable parameters
    std::uint64_t process_key = kNominalProcess; ///< corner / sample / nominal
    bool cacheable = true;                    ///< false for one-shot MC samples
};

/// A batch of requests evaluated through one kernel. `tag` namespaces the
/// cache: two kernels returning different quantities for the same parameter
/// point (e.g. {gain, pm} vs full Bode data) must use different tags.
struct EvalBatch {
    std::vector<EvalRequest> items;
    std::uint64_t tag = 0;

    EvalBatch() = default;
    explicit EvalBatch(std::uint64_t tag_) : tag(tag_) {}

    /// Nominal-process batch over a list of parameter points.
    [[nodiscard]] static EvalBatch
    nominal(const std::vector<std::vector<double>>& points) {
        EvalBatch batch;
        batch.items.reserve(points.size());
        for (const auto& p : points) batch.items.push_back({p, kNominalProcess, true});
        return batch;
    }

    void add(std::vector<double> params,
             std::uint64_t process_key = kNominalProcess, bool cacheable = true) {
        items.push_back({std::move(params), process_key, cacheable});
    }

    [[nodiscard]] std::size_t size() const { return items.size(); }
    [[nodiscard]] bool empty() const { return items.empty(); }
};

/// One evaluated point. NaN entries mark a failed evaluation (simulator
/// non-convergence), matching the moo::Problem contract.
struct EvalResult {
    std::vector<double> values;
    bool from_cache = false; ///< served from the LRU or within-batch dedup
    /// Explicit failure flag, set by the engine when the fresh evaluation
    /// failed and *propagated* to dedup aliases and cache hits of that
    /// point. Carrying the flag alongside the values means a failure stays
    /// a failure even for kernels whose failure rows are empty rather than
    /// NaN-filled (which the NaN scan alone cannot see).
    bool failure = false;

    [[nodiscard]] bool failed() const {
        if (failure) return true;
        for (double v : values)
            if (std::isnan(v)) return true;
        return false;
    }
};

} // namespace ypm::eval
