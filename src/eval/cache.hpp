#pragma once
/// \file cache.hpp
/// \brief LRU memoisation cache for point evaluations.
///
/// Keys are bit-exact: the parameter vector's double bit patterns, the
/// process key and a salt (batch tag, or the derived stream seed for
/// stochastic kernels) are hashed together, so a hit can only occur for a
/// request that is guaranteed to reproduce the cached values. Typical wins:
/// GA elites re-entering the population every generation, sensitivity
/// probes landing on already-optimised points, repeated corner sweeps.

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ypm::eval {

/// Composite cache key, compared bit-exactly.
struct CacheKey {
    std::vector<double> params;
    std::uint64_t process_key = 0;
    std::uint64_t salt = 0;

    [[nodiscard]] bool operator==(const CacheKey& other) const;
};

/// FNV-1a over the double bit patterns plus the integer components.
struct CacheKeyHash {
    [[nodiscard]] std::size_t operator()(const CacheKey& key) const;
};

/// Fixed-capacity least-recently-used map from CacheKey to a value vector.
///
/// Thread-safe: every operation takes an internal mutex. The engine
/// already serialises its own lookup/insert traffic under its state lock
/// (submission-order determinism needs that anyway); the cache's mutex
/// covers what that lock does not - clear() and size() calls from other
/// threads while batches are in flight - and keeps the class safe
/// standalone. find() returns a *copy* of the values rather than the old
/// interior pointer, which an insert could invalidate after the lookup.
class LruCache {
public:
    /// \param capacity maximum entry count; 0 disables the cache entirely.
    explicit LruCache(std::size_t capacity);

    /// Returns a copy of the cached values and marks the entry
    /// most-recently-used, or nullopt on a miss.
    [[nodiscard]] std::optional<std::vector<double>> find(const CacheKey& key);

    /// Insert (or refresh) an entry. A refresh replaces the stored values,
    /// moves the entry to the MRU front and never changes size(); a fresh
    /// insert at capacity evicts the least-recently-used entry first, so
    /// size() never exceeds capacity(). No-op when capacity is 0.
    void insert(CacheKey key, std::vector<double> values);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    void clear();

private:
    using Entry = std::pair<CacheKey, std::vector<double>>;

    const std::size_t capacity_;
    mutable util::Mutex mutex_;
    /// Most-recently-used at the front.
    std::list<Entry> order_ YPM_GUARDED_BY(mutex_);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_
        YPM_GUARDED_BY(mutex_);
};

} // namespace ypm::eval
