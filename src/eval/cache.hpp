#pragma once
/// \file cache.hpp
/// \brief LRU memoisation cache for point evaluations.
///
/// Keys are bit-exact: the parameter vector's double bit patterns, the
/// process key and a salt (batch tag, or the derived stream seed for
/// stochastic kernels) are hashed together, so a hit can only occur for a
/// request that is guaranteed to reproduce the cached values. Typical wins:
/// GA elites re-entering the population every generation, sensitivity
/// probes landing on already-optimised points, repeated corner sweeps.

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ypm::eval {

/// Composite cache key, compared bit-exactly.
struct CacheKey {
    std::vector<double> params;
    std::uint64_t process_key = 0;
    std::uint64_t salt = 0;

    [[nodiscard]] bool operator==(const CacheKey& other) const;
};

/// FNV-1a over the double bit patterns plus the integer components.
struct CacheKeyHash {
    [[nodiscard]] std::size_t operator()(const CacheKey& key) const;
};

/// Fixed-capacity least-recently-used map from CacheKey to a value vector.
/// Not thread-safe: the engine only touches it from the submitting thread.
class LruCache {
public:
    /// \param capacity maximum entry count; 0 disables the cache entirely.
    explicit LruCache(std::size_t capacity);

    /// Returns the cached values and marks the entry most-recently-used,
    /// or nullptr on a miss. The pointer is invalidated by insert().
    [[nodiscard]] const std::vector<double>* find(const CacheKey& key);

    /// Insert (or refresh) an entry, evicting the least-recently-used one
    /// when full. No-op when capacity is 0.
    void insert(CacheKey key, std::vector<double> values);

    [[nodiscard]] std::size_t size() const { return map_.size(); }
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    void clear();

private:
    using Entry = std::pair<CacheKey, std::vector<double>>;

    std::size_t capacity_;
    std::list<Entry> order_; ///< most-recently-used at the front
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> map_;
};

} // namespace ypm::eval
