#include "circuits/ota_problem.hpp"

namespace ypm::circuits {

eval::KernelFn ota_objectives_kernel(const OtaEvaluator& evaluator) {
    return [&evaluator](const eval::EvalRequest& request) {
        const OtaPerformance perf =
            evaluator.measure(OtaSizing::from_vector(request.params));
        if (!perf.valid) return moo::failed_evaluation(2);
        return std::vector<double>{perf.gain_db, perf.pm_deg};
    };
}

OtaProblem::OtaProblem(OtaConfig config)
    : evaluator_(config), params_(OtaSizing::parameter_specs()),
      objectives_{{"gain_db", moo::Direction::maximize},
                  {"pm_deg", moo::Direction::maximize}} {}

const std::vector<moo::ParameterSpec>& OtaProblem::parameters() const {
    return params_;
}

const std::vector<moo::ObjectiveSpec>& OtaProblem::objectives() const {
    return objectives_;
}

std::vector<double> OtaProblem::evaluate(const std::vector<double>& params) const {
    return ota_objectives_kernel(evaluator_)({params});
}

} // namespace ypm::circuits
