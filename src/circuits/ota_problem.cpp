#include "circuits/ota_problem.hpp"

namespace ypm::circuits {

namespace {

std::vector<double> perf_row(const OtaPerformance& perf) {
    if (!perf.valid) return moo::failed_evaluation(2);
    return {perf.gain_db, perf.pm_deg};
}

/// The one chunk implementation both the engine kernel and the problem's
/// evaluate_batch route through, so the two batch entry points cannot
/// diverge from each other (or from the scalar kernel's rows).
std::vector<std::vector<double>>
measure_rows(const OtaEvaluator& evaluator,
             const std::vector<OtaSizing>& sizings) {
    const auto perfs = evaluator.measure_chunk(sizings);
    std::vector<std::vector<double>> rows;
    rows.reserve(perfs.size());
    for (const OtaPerformance& p : perfs) rows.push_back(perf_row(p));
    return rows;
}

} // namespace

eval::KernelFn ota_objectives_kernel(const OtaEvaluator& evaluator) {
    return [&evaluator](const eval::EvalRequest& request) {
        return perf_row(evaluator.measure(OtaSizing::from_vector(request.params)));
    };
}

eval::BatchKernelFn ota_objectives_chunk_kernel(const OtaEvaluator& evaluator) {
    return [&evaluator](const std::vector<const eval::EvalRequest*>& requests) {
        std::vector<OtaSizing> sizings;
        sizings.reserve(requests.size());
        for (const eval::EvalRequest* r : requests)
            sizings.push_back(OtaSizing::from_vector(r->params));
        return measure_rows(evaluator, sizings);
    };
}

OtaProblem::OtaProblem(OtaConfig config)
    : evaluator_(config), kernel_(ota_objectives_kernel(evaluator_)),
      params_(OtaSizing::parameter_specs()),
      objectives_{{"gain_db", moo::Direction::maximize},
                  {"pm_deg", moo::Direction::maximize}} {}

const std::vector<moo::ParameterSpec>& OtaProblem::parameters() const {
    return params_;
}

const std::vector<moo::ObjectiveSpec>& OtaProblem::objectives() const {
    return objectives_;
}

std::vector<double> OtaProblem::evaluate(const std::vector<double>& params) const {
    return kernel_({params});
}

std::vector<std::vector<double>>
OtaProblem::evaluate_batch(const std::vector<std::vector<double>>& points) const {
    std::vector<OtaSizing> sizings;
    sizings.reserve(points.size());
    for (const auto& p : points) sizings.push_back(OtaSizing::from_vector(p));
    return measure_rows(evaluator_, sizings);
}

} // namespace ypm::circuits
