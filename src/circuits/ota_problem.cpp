#include "circuits/ota_problem.hpp"

#include <limits>

namespace ypm::circuits {

OtaProblem::OtaProblem(OtaConfig config)
    : evaluator_(config), params_(OtaSizing::parameter_specs()),
      objectives_{{"gain_db", moo::Direction::maximize},
                  {"pm_deg", moo::Direction::maximize}} {}

const std::vector<moo::ParameterSpec>& OtaProblem::parameters() const {
    return params_;
}

const std::vector<moo::ObjectiveSpec>& OtaProblem::objectives() const {
    return objectives_;
}

std::vector<double> OtaProblem::evaluate(const std::vector<double>& params) const {
    constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();
    const OtaSizing sizing = OtaSizing::from_vector(params);
    const OtaPerformance perf = evaluator_.measure(sizing);
    if (!perf.valid) return {nan_v, nan_v};
    return {perf.gain_db, perf.pm_deg};
}

} // namespace ypm::circuits
