#include "circuits/filter_problem.hpp"

#include <cmath>

namespace ypm::circuits {

namespace {

std::vector<double> perf_row(const FilterPerformance& perf,
                             const FilterSpecMask& mask) {
    if (!perf.valid || std::isnan(perf.fc)) return moo::failed_evaluation(2);
    const double fc_err = std::fabs(perf.fc - mask.fc_target) / mask.fc_target;
    return {fc_err, perf.worst_passband_dev_db};
}

/// Shared chunk implementation of both batch entry points (engine chunk
/// kernel and FilterProblem::evaluate_batch).
std::vector<std::vector<double>>
measure_rows(const FilterEvaluator& evaluator,
             const std::vector<FilterSizing>& sizings, OtaModelKind kind) {
    const auto perfs = evaluator.measure_chunk(sizings, kind);
    std::vector<std::vector<double>> rows;
    rows.reserve(perfs.size());
    for (const FilterPerformance& p : perfs)
        rows.push_back(perf_row(p, evaluator.mask()));
    return rows;
}

} // namespace

eval::KernelFn filter_objectives_kernel(const FilterEvaluator& evaluator,
                                        OtaModelKind kind) {
    return [&evaluator, kind](const eval::EvalRequest& request) {
        const FilterPerformance perf =
            evaluator.measure(FilterSizing::from_vector(request.params), kind);
        return perf_row(perf, evaluator.mask());
    };
}

eval::BatchKernelFn
filter_objectives_chunk_kernel(const FilterEvaluator& evaluator,
                               OtaModelKind kind) {
    return [&evaluator, kind](const std::vector<const eval::EvalRequest*>& requests) {
        std::vector<FilterSizing> sizings;
        sizings.reserve(requests.size());
        for (const eval::EvalRequest* r : requests)
            sizings.push_back(FilterSizing::from_vector(r->params));
        return measure_rows(evaluator, sizings, kind);
    };
}

FilterProblem::FilterProblem(FilterConfig config, FilterSpecMask mask,
                             OtaModelKind kind)
    : evaluator_(config, mask), kind_(kind),
      kernel_(filter_objectives_kernel(evaluator_, kind)),
      params_(FilterSizing::parameter_specs()),
      objectives_{{"fc_err_rel", moo::Direction::minimize},
                  {"passband_dev_db", moo::Direction::minimize}} {}

const std::vector<moo::ParameterSpec>& FilterProblem::parameters() const {
    return params_;
}

const std::vector<moo::ObjectiveSpec>& FilterProblem::objectives() const {
    return objectives_;
}

std::vector<double> FilterProblem::evaluate(const std::vector<double>& p) const {
    return kernel_({p});
}

std::vector<std::vector<double>>
FilterProblem::evaluate_batch(const std::vector<std::vector<double>>& points) const {
    std::vector<FilterSizing> sizings;
    sizings.reserve(points.size());
    for (const auto& p : points) sizings.push_back(FilterSizing::from_vector(p));
    return measure_rows(evaluator_, sizings, kind_);
}

} // namespace ypm::circuits
