#include "circuits/filter_problem.hpp"

#include <cmath>

namespace ypm::circuits {

FilterProblem::FilterProblem(FilterConfig config, FilterSpecMask mask,
                             OtaModelKind kind)
    : evaluator_(config, mask), kind_(kind),
      params_(FilterSizing::parameter_specs()),
      objectives_{{"fc_err_rel", moo::Direction::minimize},
                  {"passband_dev_db", moo::Direction::minimize}} {}

const std::vector<moo::ParameterSpec>& FilterProblem::parameters() const {
    return params_;
}

const std::vector<moo::ObjectiveSpec>& FilterProblem::objectives() const {
    return objectives_;
}

std::vector<double> FilterProblem::evaluate(const std::vector<double>& p) const {
    const FilterSizing sizing = FilterSizing::from_vector(p);
    const FilterPerformance perf = evaluator_.measure(sizing, kind_);
    if (!perf.valid || std::isnan(perf.fc)) return moo::failed_evaluation(2);
    const auto& mask = evaluator_.mask();
    const double fc_err = std::fabs(perf.fc - mask.fc_target) / mask.fc_target;
    return {fc_err, perf.worst_passband_dev_db};
}

} // namespace ypm::circuits
