#include "circuits/filter.hpp"

#include <cmath>

#include "mc/monte_carlo.hpp"
#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/devices/capacitor.hpp"
#include "spice/devices/resistor.hpp"
#include "spice/devices/sources.hpp"
#include "util/error.hpp"

namespace ypm::circuits {

using spice::Circuit;
using spice::NodeId;

FilterSizing FilterSizing::from_vector(const std::vector<double>& v) {
    if (v.size() != parameter_count)
        throw InvalidInputError("FilterSizing: expected 3 parameters");
    return {v[0], v[1], v[2]};
}

std::vector<double> FilterSizing::to_vector() const { return {c1, c2, c3}; }

std::vector<moo::ParameterSpec> FilterSizing::parameter_specs() {
    constexpr double lo = 2e-12, hi = 60e-12;
    return {{"c1", lo, hi}, {"c2", lo, hi}, {"c3", lo, hi}};
}

bool FilterPerformance::meets(const FilterSpecMask& mask) const {
    if (!valid) return false;
    if (std::isnan(fc)) return false;
    if (std::fabs(fc - mask.fc_target) > mask.fc_tolerance * mask.fc_target)
        return false;
    if (worst_passband_dev_db > mask.passband_ripple_db) return false;
    if (stopband_atten_db < mask.min_stop_atten_db) return false;
    return true;
}

Circuit build_filter(const FilterSizing& s, const FilterConfig& cfg,
                     OtaModelKind kind) {
    Circuit ckt;
    const NodeId vin = ckt.node("vin");
    const NodeId n1 = ckt.node("n1");
    const NodeId n2 = ckt.node("n2");
    const NodeId out1 = ckt.node("out1");
    const NodeId vout = ckt.node("vout");

    ckt.add<spice::VoltageSource>("vsrc", vin, spice::ground, cfg.vcm, 1.0);

    // Sallen-Key passive network.
    ckt.add<spice::Resistor>("r1", vin, n1, cfg.r1);
    ckt.add<spice::Resistor>("r2", n1, n2, cfg.r2);
    ckt.add<spice::Capacitor>("c1", n1, out1, s.c1);
    ckt.add<spice::Capacitor>("c2", n2, spice::ground, s.c2);
    // Output buffer load.
    ckt.add<spice::Capacitor>("c3", vout, spice::ground, s.c3);

    if (kind == OtaModelKind::behavioural) {
        ckt.add<va::BehaviouralOta>("ota1", n2, out1, out1, cfg.ota_spec);
        ckt.add<va::BehaviouralOta>("ota2", out1, vout, vout, cfg.ota_spec);
    } else {
        const NodeId vdd = ckt.node("vdd");
        ckt.add<spice::VoltageSource>("vsupply", vdd, spice::ground,
                                      cfg.ota_config.card.vdd);
        add_ota_core(ckt, "ota1.", cfg.ota_sizing, cfg.ota_config, n2, out1, out1,
                     vdd);
        add_ota_core(ckt, "ota2.", cfg.ota_sizing, cfg.ota_config, out1, vout, vout,
                     vdd);
    }
    return ckt;
}

FilterEvaluator::FilterEvaluator(FilterConfig config, FilterSpecMask mask)
    : config_(config), mask_(mask), pool_(make_pool()) {}

FilterEvaluator::FilterEvaluator(const FilterEvaluator& other)
    : config_(other.config_), mask_(other.mask_), pool_(make_pool()) {}

FilterEvaluator& FilterEvaluator::operator=(const FilterEvaluator& other) {
    if (this != &other) {
        config_ = other.config_;
        mask_ = other.mask_;
        pool_ = make_pool();
    }
    return *this;
}

std::shared_ptr<spice::PrototypePool<FilterPrototype>>
FilterEvaluator::make_pool() const {
    // Keyed by OtaModelKind: the behavioural and transistor testbenches are
    // structurally different circuits, so they pool separately.
    return std::make_shared<spice::PrototypePool<FilterPrototype>>(
        [this](std::uint64_t key) {
            return std::make_unique<FilterPrototype>(
                *this, static_cast<OtaModelKind>(key));
        });
}

FilterPerformance FilterEvaluator::metrics_from_transfer(
    const std::vector<double>& freqs,
    const std::vector<std::complex<double>>& h) const {
    FilterPerformance perf;
    const auto lp = spice::lowpass_metrics(freqs, h, mask_.f_stop);
    perf.passband_gain_db = lp.passband_gain_db;
    perf.fc = lp.fc;
    perf.stopband_atten_db = lp.stopband_atten_db;

    // Worst deviation from the passband gain below f_pass.
    const auto mag = spice::magnitude_db(h);
    double worst = 0.0;
    for (std::size_t i = 0; i < freqs.size() && freqs[i] <= mask_.f_pass; ++i)
        worst = std::max(worst, std::fabs(mag[i] - perf.passband_gain_db));
    perf.worst_passband_dev_db = worst;

    perf.valid = true;
    return perf;
}

FilterPerformance FilterEvaluator::measure_circuit(Circuit& ckt) const {
    FilterPerformance perf;

    const spice::DcSolver solver;
    const spice::DcResult op = solver.solve(ckt);
    if (!op.converged) {
        perf.failure = "dc operating point did not converge";
        return perf;
    }

    const auto freqs =
        spice::log_sweep(config_.f_start, config_.f_stop, config_.points_per_decade);
    spice::AcResult ac;
    try {
        ac = spice::run_ac(ckt, op.solution, freqs);
    } catch (const NumericalError& e) {
        perf.failure = std::string("ac analysis failed: ") + e.what();
        return perf;
    }

    const auto h = ac.transfer(*ckt.find_node("vout"), *ckt.find_node("vin"));
    return metrics_from_transfer(freqs, h);
}

FilterPrototype::FilterPrototype(const FilterEvaluator& evaluator,
                                 OtaModelKind kind)
    : evaluator_(&evaluator),
      proto_(build_filter(FilterSizing{}, evaluator.config(), kind)),
      inst_(proto_.instance()),
      c1_(&proto_.device<spice::Capacitor>("c1")),
      c2_(&proto_.device<spice::Capacitor>("c2")),
      c3_(&proto_.device<spice::Capacitor>("c3")),
      vout_(proto_.node("vout")), vin_(proto_.node("vin")),
      freqs_(spice::log_sweep(evaluator.config().f_start,
                              evaluator.config().f_stop,
                              evaluator.config().points_per_decade)) {}

FilterPerformance FilterPrototype::measure(const FilterSizing& sizing) {
    c1_->set_capacitance(sizing.c1);
    c2_->set_capacitance(sizing.c2);
    c3_->set_capacitance(sizing.c3);

    FilterPerformance perf;
    const spice::DcResult op = inst_.solve_op();
    if (!op.converged) {
        perf.failure = "dc operating point did not converge";
        return perf;
    }

    std::vector<std::complex<double>> h;
    try {
        h = inst_.ac_transfer(op.solution, freqs_, vout_, vin_);
    } catch (const NumericalError& e) {
        perf.failure = std::string("ac analysis failed: ") + e.what();
        return perf;
    }
    return evaluator_->metrics_from_transfer(freqs_, h);
}

std::vector<FilterPerformance>
FilterEvaluator::measure_chunk(std::span<const FilterSizing> sizings,
                               OtaModelKind kind) const {
    const auto proto = pool_->acquire(static_cast<std::uint64_t>(kind));
    std::vector<FilterPerformance> out;
    out.reserve(sizings.size());
    for (const FilterSizing& s : sizings) out.push_back(proto->measure(s));
    return out;
}

FilterPerformance FilterEvaluator::measure(const FilterSizing& sizing,
                                           OtaModelKind kind) const {
    Circuit ckt = build_filter(sizing, config_, kind);
    return measure_circuit(ckt);
}

FilterPerformance
FilterEvaluator::measure_behavioural(const FilterSizing& sizing,
                                     const va::BehaviouralOtaSpec& ota1,
                                     const va::BehaviouralOtaSpec& ota2) const {
    Circuit ckt = build_filter(sizing, config_, OtaModelKind::behavioural);
    dynamic_cast<va::BehaviouralOta*>(ckt.find_device("ota1"))->set_spec(ota1);
    dynamic_cast<va::BehaviouralOta*>(ckt.find_device("ota2"))->set_spec(ota2);
    return measure_circuit(ckt);
}

FilterPerformance
FilterEvaluator::measure_transistor(const FilterSizing& sizing,
                                    const process::Realization& realization) const {
    Circuit ckt = build_filter(sizing, config_, OtaModelKind::transistor);
    ckt.apply_process(realization);
    return measure_circuit(ckt);
}

FilterEvaluator::Response
FilterEvaluator::ac_response(const FilterSizing& sizing, OtaModelKind kind) const {
    Circuit ckt = build_filter(sizing, config_, kind);
    const spice::Solution op = spice::solve_op(ckt);
    const auto freqs =
        spice::log_sweep(config_.f_start, config_.f_stop, config_.points_per_decade);
    const spice::AcResult ac = spice::run_ac(ckt, op, freqs);
    Response r;
    r.freqs = freqs;
    r.h = ac.transfer(*ckt.find_node("vout"), *ckt.find_node("vin"));
    return r;
}

mc::YieldEstimate filter_yield_behavioural(const FilterEvaluator& evaluator,
                                           const FilterSizing& sizing,
                                           const FilterVariation& var,
                                           std::size_t samples, Rng& rng) {
    const va::BehaviouralOtaSpec nominal = evaluator.config().ota_spec;
    mc::McConfig mc_cfg;
    mc_cfg.samples = samples;

    const auto result = mc::run_monte_carlo(
        mc_cfg, rng, [&](std::size_t, Rng& sample_rng) -> std::vector<double> {
            auto draw_spec = [&]() {
                va::BehaviouralOtaSpec spec = nominal;
                // Delta values are 3-sigma percentages (paper Table 2).
                spec.gain_db *=
                    1.0 + sample_rng.gauss(0.0, var.gain_delta_pct / 300.0);
                spec.f3db *= 1.0 + sample_rng.gauss(0.0, var.pm_delta_pct / 300.0);
                return spec;
            };
            FilterSizing varied = sizing;
            varied.c1 *= 1.0 + sample_rng.gauss(0.0, var.cap_sigma_rel);
            varied.c2 *= 1.0 + sample_rng.gauss(0.0, var.cap_sigma_rel);
            varied.c3 *= 1.0 + sample_rng.gauss(0.0, var.cap_sigma_rel);
            const FilterPerformance perf =
                evaluator.measure_behavioural(varied, draw_spec(), draw_spec());
            return {perf.meets(evaluator.mask()) ? 1.0 : 0.0};
        });

    std::vector<bool> flags;
    flags.reserve(result.rows.size());
    for (const auto& row : result.rows)
        flags.push_back(!row.empty() && row[0] == 1.0);
    return mc::yield_from_flags(flags);
}

mc::YieldEstimate filter_yield_transistor(const FilterEvaluator& evaluator,
                                          const FilterSizing& sizing,
                                          const process::ProcessSampler& sampler,
                                          std::size_t samples, Rng& rng) {
    // Geometry inventory for mismatch scaling: build one throwaway circuit.
    Circuit proto =
        build_filter(sizing, evaluator.config(), OtaModelKind::transistor);
    const auto geometries = proto.mos_geometries();

    mc::McConfig mc_cfg;
    mc_cfg.samples = samples;
    const auto result = mc::run_monte_carlo(
        mc_cfg, rng, [&](std::size_t, Rng& sample_rng) -> std::vector<double> {
            const process::Realization real = sampler.sample(sample_rng, geometries);
            const FilterPerformance perf =
                evaluator.measure_transistor(sizing, real);
            return {perf.meets(evaluator.mask()) ? 1.0 : 0.0};
        });

    std::vector<bool> flags;
    flags.reserve(result.rows.size());
    for (const auto& row : result.rows)
        flags.push_back(!row.empty() && row[0] == 1.0);
    return mc::yield_from_flags(flags);
}

} // namespace ypm::circuits
