#include "circuits/ota.hpp"

#include <cmath>
#include <limits>

#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/devices/capacitor.hpp"
#include "spice/devices/inductor.hpp"
#include "spice/devices/sources.hpp"
#include "util/error.hpp"

namespace ypm::circuits {

using spice::Circuit;
using spice::Mosfet;
using spice::NodeId;

namespace {

/// Shared metric/validity tail of the scalar and prototype measurement
/// paths, so the two cannot diverge (the engine cache, tests and the CI
/// speedup gate all rely on their bit-identity).
OtaPerformance perf_from_transfer(const std::vector<double>& freqs,
                                  const std::vector<std::complex<double>>& h) {
    OtaPerformance perf;
    perf.bode = spice::bode_metrics(freqs, h);
    perf.gain_db = perf.bode.dc_gain_db;
    perf.pm_deg = perf.bode.phase_margin_deg;
    if (std::isnan(perf.pm_deg) || perf.gain_db <= 0.0) {
        perf.failure = "no unity-gain crossing (gain too low)";
        return perf;
    }
    perf.valid = true;
    return perf;
}

} // namespace

OtaSizing OtaSizing::from_vector(const std::vector<double>& v) {
    if (v.size() != parameter_count)
        throw InvalidInputError("OtaSizing: expected 8 parameters");
    OtaSizing s;
    s.w1 = v[0];
    s.l1 = v[1];
    s.w2 = v[2];
    s.l2 = v[3];
    s.w3 = v[4];
    s.l3 = v[5];
    s.w4 = v[6];
    s.l4 = v[7];
    return s;
}

std::vector<double> OtaSizing::to_vector() const {
    return {w1, l1, w2, l2, w3, l3, w4, l4};
}

std::vector<moo::ParameterSpec> OtaSizing::parameter_specs() {
    // Paper Table 1.
    constexpr double w_lo = 10e-6, w_hi = 60e-6;
    constexpr double l_lo = 0.35e-6, l_hi = 4e-6;
    return {
        {"w1", w_lo, w_hi}, {"l1", l_lo, l_hi}, {"w2", w_lo, w_hi},
        {"l2", l_lo, l_hi}, {"w3", w_lo, w_hi}, {"l3", l_lo, l_hi},
        {"w4", w_lo, w_hi}, {"l4", l_lo, l_hi},
    };
}

const std::vector<std::string>& OtaSizing::parameter_names() {
    static const std::vector<std::string> names = {"w1", "l1", "w2", "l2",
                                                   "w3", "l3", "w4", "l4"};
    return names;
}

void add_ota_core(Circuit& ckt, const std::string& prefix, const OtaSizing& s,
                  const OtaConfig& cfg, NodeId inp, NodeId inn, NodeId out,
                  NodeId vdd) {
    using Type = Mosfet::Type;
    const auto& nm = cfg.card.nmos;
    const auto& pm = cfg.card.pmos;

    const NodeId tail = ckt.node(prefix + "tail");
    const NodeId d1 = ckt.node(prefix + "d1");
    const NodeId d2 = ckt.node(prefix + "d2");
    const NodeId x = ckt.node(prefix + "x"); // cascode mirror input branch
    const NodeId w = ckt.node(prefix + "w"); // bottom diode gate node
    const NodeId z = ckt.node(prefix + "z"); // output cascode source node

    // Differential pair (fixed dimensions, paper section 4.1).
    ckt.add<Mosfet>(prefix + "m1", d1, inp, tail, spice::ground, Type::nmos, nm,
                    cfg.w_in, cfg.l_in);
    ckt.add<Mosfet>(prefix + "m2", d2, inn, tail, spice::ground, Type::nmos, nm,
                    cfg.w_in, cfg.l_in);
    ckt.add<spice::CurrentSource>(prefix + "itail", tail, spice::ground,
                                  cfg.i_tail);

    // Diode-connected PMOS loads (W4, L4).
    ckt.add<Mosfet>(prefix + "m3", d1, d1, vdd, vdd, Type::pmos, pm, s.w4, s.l4);
    ckt.add<Mosfet>(prefix + "m6", d2, d2, vdd, vdd, Type::pmos, pm, s.w4, s.l4);

    // PMOS mirror outputs (W1, L1): current gain B = (W1/L1)/(W4/L4).
    ckt.add<Mosfet>(prefix + "m5", out, d1, vdd, vdd, Type::pmos, pm, s.w1, s.l1);
    ckt.add<Mosfet>(prefix + "m4", x, d2, vdd, vdd, Type::pmos, pm, s.w1, s.l1);

    // NMOS cascode mirror: input branch M9 (top diode) over M7 (bottom
    // diode), output branch M10 (cascode) over M8.
    ckt.add<Mosfet>(prefix + "m9", x, x, w, spice::ground, Type::nmos, nm, s.w2,
                    s.l2);
    ckt.add<Mosfet>(prefix + "m7", w, w, spice::ground, spice::ground, Type::nmos,
                    nm, s.w2, s.l2);
    ckt.add<Mosfet>(prefix + "m10", out, x, z, spice::ground, Type::nmos, nm, s.w3,
                    s.l3);
    ckt.add<Mosfet>(prefix + "m8", z, w, spice::ground, spice::ground, Type::nmos,
                    nm, s.w3, s.l3);
}

Circuit build_ota_testbench(const OtaSizing& sizing, const OtaConfig& cfg) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId inp = ckt.node("inp");
    const NodeId inn = ckt.node("inn");
    const NodeId out = ckt.node("out");

    ckt.add<spice::VoltageSource>("vsupply", vdd, spice::ground, cfg.card.vdd);
    // AC-driven non-inverting input at the common-mode level.
    ckt.add<spice::VoltageSource>("vinp", inp, spice::ground, cfg.vcm, 1.0);

    add_ota_core(ckt, "", sizing, cfg, inp, inn, out, vdd);

    // DC unity feedback / AC open loop.
    ckt.add<spice::Inductor>("lfb", out, inn, cfg.fb_inductor);
    ckt.add<spice::Capacitor>("cfb", inn, spice::ground, cfg.fb_capacitor);

    // Load.
    ckt.add<spice::Capacitor>("cload", out, spice::ground, cfg.c_load);
    return ckt;
}

OtaPrototype::OtaPrototype(const OtaConfig& config)
    : proto_(build_ota_testbench(OtaSizing{}, config)), inst_(proto_.instance()),
      m3_(&proto_.device<Mosfet>("m3")), m6_(&proto_.device<Mosfet>("m6")),
      m5_(&proto_.device<Mosfet>("m5")), m4_(&proto_.device<Mosfet>("m4")),
      m9_(&proto_.device<Mosfet>("m9")), m7_(&proto_.device<Mosfet>("m7")),
      m10_(&proto_.device<Mosfet>("m10")), m8_(&proto_.device<Mosfet>("m8")),
      out_(proto_.node("out")), inp_(proto_.node("inp")),
      freqs_(spice::log_sweep(config.f_start, config.f_stop,
                              config.points_per_decade)) {}

void OtaPrototype::bind_sizing(const OtaSizing& s) {
    // Same designable-slot assignment as add_ota_core.
    m3_->set_geometry(s.w4, s.l4);
    m6_->set_geometry(s.w4, s.l4);
    m5_->set_geometry(s.w1, s.l1);
    m4_->set_geometry(s.w1, s.l1);
    m9_->set_geometry(s.w2, s.l2);
    m7_->set_geometry(s.w2, s.l2);
    m10_->set_geometry(s.w3, s.l3);
    m8_->set_geometry(s.w3, s.l3);
}

OtaPerformance OtaPrototype::measure(const OtaSizing& sizing,
                                     const process::Realization* real) {
    bind_sizing(sizing);
    inst_.bind_process(real);

    OtaPerformance perf;
    const spice::DcResult op = inst_.solve_op();
    if (!op.converged) {
        perf.failure = "dc operating point did not converge";
        return perf;
    }

    std::vector<std::complex<double>> h;
    try {
        h = inst_.ac_transfer(op.solution, freqs_, out_, inp_);
    } catch (const NumericalError& e) {
        perf.failure = std::string("ac analysis failed: ") + e.what();
        return perf;
    }

    return perf_from_transfer(freqs_, h);
}

OtaEvaluator::OtaEvaluator(OtaConfig config)
    : config_(config),
      pool_(std::make_shared<spice::PrototypePool<OtaPrototype>>(
          // The factory captures the config by value, so copies of the
          // evaluator can share the pool safely (leases co-own the pool
          // core and never reference this evaluator).
          [config](std::uint64_t) { return std::make_unique<OtaPrototype>(config); })) {}

OtaPerformance OtaEvaluator::measure_impl(const OtaSizing& sizing,
                                          const process::Realization* real) const {
    OtaPerformance perf;
    Circuit ckt = build_ota_testbench(sizing, config_);
    if (real != nullptr) ckt.apply_process(*real);

    const spice::DcSolver solver;
    const spice::DcResult op = solver.solve(ckt);
    if (!op.converged) {
        perf.failure = "dc operating point did not converge";
        return perf;
    }

    const auto freqs =
        spice::log_sweep(config_.f_start, config_.f_stop, config_.points_per_decade);
    spice::AcResult ac;
    try {
        ac = spice::run_ac(ckt, op.solution, freqs);
    } catch (const NumericalError& e) {
        perf.failure = std::string("ac analysis failed: ") + e.what();
        return perf;
    }

    const NodeId out = *ckt.find_node("out");
    const NodeId inp = *ckt.find_node("inp");
    const auto h = ac.transfer(out, inp);
    return perf_from_transfer(freqs, h);
}

OtaPerformance OtaEvaluator::measure(const OtaSizing& sizing) const {
    return measure_impl(sizing, nullptr);
}

OtaPerformance OtaEvaluator::measure(const OtaSizing& sizing,
                                     const process::Realization& real) const {
    return measure_impl(sizing, &real);
}

std::vector<OtaPerformance>
OtaEvaluator::measure_chunk(std::span<const OtaSizing> sizings) const {
    const auto proto = pool_->acquire();
    std::vector<OtaPerformance> out;
    out.reserve(sizings.size());
    for (const OtaSizing& s : sizings) out.push_back(proto->measure(s));
    return out;
}

std::vector<OtaPerformance>
OtaEvaluator::measure_chunk(std::span<const OtaSizing> sizings,
                            std::span<const process::Realization> reals) const {
    if (sizings.size() != reals.size())
        throw InvalidInputError(
            "OtaEvaluator::measure_chunk: sizing/realization count mismatch");
    const auto proto = pool_->acquire();
    std::vector<OtaPerformance> out;
    out.reserve(sizings.size());
    for (std::size_t i = 0; i < sizings.size(); ++i)
        out.push_back(proto->measure(sizings[i], &reals[i]));
    return out;
}

std::vector<OtaPerformance>
OtaEvaluator::measure_chunk(const OtaSizing& sizing,
                            std::span<const process::Realization> reals) const {
    const auto proto = pool_->acquire();
    std::vector<OtaPerformance> out;
    out.reserve(reals.size());
    for (const process::Realization& r : reals)
        out.push_back(proto->measure(sizing, &r));
    return out;
}

OtaEvaluator::Response
OtaEvaluator::ac_response(const OtaSizing& sizing,
                          const process::Realization* real) const {
    Circuit ckt = build_ota_testbench(sizing, config_);
    if (real != nullptr) ckt.apply_process(*real);
    const spice::Solution op = spice::solve_op(ckt);
    const auto freqs =
        spice::log_sweep(config_.f_start, config_.f_stop, config_.points_per_decade);
    const spice::AcResult ac = spice::run_ac(ckt, op, freqs);
    Response r;
    r.freqs = freqs;
    r.h = ac.transfer(*ckt.find_node("out"), *ckt.find_node("inp"));
    return r;
}

std::vector<std::pair<std::string, Mosfet::Region>>
OtaEvaluator::op_regions(const OtaSizing& sizing) const {
    Circuit ckt = build_ota_testbench(sizing, config_);
    const spice::Solution op = spice::solve_op(ckt);
    std::vector<std::pair<std::string, Mosfet::Region>> out;
    for (const auto& dev : ckt.devices()) {
        const auto* mos = dynamic_cast<const Mosfet*>(dev.get());
        if (mos == nullptr) continue;
        out.emplace_back(mos->name(), mos->op_info(op).region);
    }
    return out;
}

} // namespace ypm::circuits
