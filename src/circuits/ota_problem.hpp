#pragma once
/// \file ota_problem.hpp
/// \brief moo::Problem adapter for OTA sizing: the optimisation problem of
///        paper section 4.2 (maximise open-loop gain and phase margin over
///        the 8 designable parameters of Table 1).

#include "circuits/ota.hpp"
#include "eval/engine.hpp"
#include "moo/problem.hpp"

namespace ypm::circuits {

/// The canonical nominal-process objectives kernel: {gain_db, pm_deg} at a
/// parameter point, NaNs on simulation failure. Every consumer that shares
/// an engine's default cache tag (OtaProblem::evaluate, sensitivity probes,
/// transistor-level verification) MUST measure through this one function so
/// cached rows stay interchangeable. \param evaluator must outlive the
/// returned kernel.
[[nodiscard]] eval::KernelFn ota_objectives_kernel(const OtaEvaluator& evaluator);

/// Chunk twin of ota_objectives_kernel: measures a group of requests
/// through one shared testbench prototype (OtaEvaluator::measure_chunk).
/// Element-wise bit-identical to the scalar kernel, so rows cached under
/// either are interchangeable. \param evaluator must outlive the kernel.
[[nodiscard]] eval::BatchKernelFn
ota_objectives_chunk_kernel(const OtaEvaluator& evaluator);

class OtaProblem final : public moo::Problem {
public:
    explicit OtaProblem(OtaConfig config = {});

    // kernel_ captures evaluator_ by reference; a copy would dangle.
    OtaProblem(const OtaProblem&) = delete;
    OtaProblem& operator=(const OtaProblem&) = delete;

    [[nodiscard]] const std::vector<moo::ParameterSpec>& parameters() const override;
    [[nodiscard]] const std::vector<moo::ObjectiveSpec>& objectives() const override;

    /// Returns {gain_db, pm_deg}; NaNs when the sizing fails to simulate.
    [[nodiscard]] std::vector<double>
    evaluate(const std::vector<double>& params) const override;

    /// Prototype-reuse batch path: one shared testbench prototype per call,
    /// element-wise bit-identical to the scalar evaluate().
    [[nodiscard]] std::vector<std::vector<double>>
    evaluate_batch(const std::vector<std::vector<double>>& points) const override;

    [[nodiscard]] const OtaEvaluator& evaluator() const { return evaluator_; }

private:
    OtaEvaluator evaluator_;
    eval::KernelFn kernel_; ///< hoisted: built once, not per evaluate() call
    std::vector<moo::ParameterSpec> params_;
    std::vector<moo::ObjectiveSpec> objectives_;
};

} // namespace ypm::circuits
