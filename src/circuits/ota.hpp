#pragma once
/// \file ota.hpp
/// \brief The paper's benchmark circuit: a symmetrical OTA (Fig. 5).
///
/// Topology (NMOS-input symmetrical OTA, DESIGN.md section 3):
///   M1/M2   NMOS differential pair, fixed dimensions, ideal tail source
///   M3/M6   diode-connected PMOS loads            (W4, L4)
///   M4/M5   PMOS mirror outputs, current gain B = (W1/L1)/(W4/L4) (W1, L1)
///   M7/M9   NMOS cascode mirror, input (diode) side             (W2, L2)
///   M8/M10  NMOS cascode mirror, output side                    (W3, L3)
/// Designable parameters and ranges follow paper Table 1 exactly.
///
/// The open-loop testbench biases the amplifier with the classic L/C trick:
/// a very large inductor closes unity feedback at DC (well-defined operating
/// point) while leaving the loop open for AC, and a very large capacitor
/// grounds the inverting input for AC.

#include <complex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "moo/problem.hpp"
#include "process/process_card.hpp"
#include "process/sampler.hpp"
#include "spice/circuit.hpp"
#include "spice/devices/mosfet.hpp"
#include "spice/measure.hpp"
#include "spice/prototype.hpp"

namespace ypm::circuits {

/// Designable parameters (paper Table 1). All dimensions in metres.
struct OtaSizing {
    double w1 = 35e-6, l1 = 2e-6; ///< M5, M4
    double w2 = 35e-6, l2 = 2e-6; ///< M7, M9
    double w3 = 35e-6, l3 = 2e-6; ///< M10, M8
    double w4 = 35e-6, l4 = 2e-6; ///< M3, M6

    static constexpr std::size_t parameter_count = 8;

    /// Order: W1 L1 W2 L2 W3 L3 W4 L4 (matches parameter_specs()).
    [[nodiscard]] static OtaSizing from_vector(const std::vector<double>& v);
    [[nodiscard]] std::vector<double> to_vector() const;

    /// Paper Table 1: W in [10, 60] um, L in [0.35, 4] um.
    [[nodiscard]] static std::vector<moo::ParameterSpec> parameter_specs();
    [[nodiscard]] static const std::vector<std::string>& parameter_names();
};

/// Fixed testbench conditions.
struct OtaConfig {
    process::ProcessCard card = process::ProcessCard::c35();
    double i_tail = 20e-6;  ///< tail bias current (A)
    double c_load = 10e-12; ///< output load capacitance (F)
    double vcm = 1.65;      ///< input common mode (V)
    double w_in = 20e-6;    ///< fixed M1/M2 width
    double l_in = 1e-6;     ///< fixed M1/M2 length
    double fb_inductor = 1e6; ///< DC-feedback inductor (H)
    double fb_capacitor = 1.0;///< AC-ground capacitor at inn (F)
    double f_start = 10.0;
    double f_stop = 10e9;
    std::size_t points_per_decade = 12;
};

/// Build the complete open-loop AC testbench. Public nodes are named
/// "inp", "inn", "out"; transistor instance names are prefix + "m1".."m10".
[[nodiscard]] spice::Circuit build_ota_testbench(const OtaSizing& sizing,
                                                 const OtaConfig& config);

/// Add just the OTA core (10 transistors + tail source) to an existing
/// circuit. Used by the testbench and by the transistor-level filter.
/// \param prefix instance-name prefix, e.g. "ota1."
void add_ota_core(spice::Circuit& circuit, const std::string& prefix,
                  const OtaSizing& sizing, const OtaConfig& config,
                  spice::NodeId inp, spice::NodeId inn, spice::NodeId out,
                  spice::NodeId vdd);

/// Measured performance: the two objective functions of paper section 4.1.
struct OtaPerformance {
    bool valid = false;
    double gain_db = 0.0; ///< open-loop DC gain (dB)
    double pm_deg = 0.0;  ///< phase margin (deg)
    spice::BodeMetrics bode;
    std::string failure; ///< populated when !valid
};

/// Prototype-backed OTA measurement kernel: builds the testbench once and
/// re-binds sizing/process values per point, reusing the MNA factorisation
/// workspaces across the whole chunk. Results are bit-identical to
/// OtaEvaluator::measure on a fresh build. Stateful - one per thread; the
/// measure_chunk entry points construct one per chunk.
class OtaPrototype {
public:
    explicit OtaPrototype(const OtaConfig& config);

    OtaPrototype(const OtaPrototype&) = delete;
    OtaPrototype& operator=(const OtaPrototype&) = delete;

    /// Re-bind and measure one point (nullptr realization = nominal).
    [[nodiscard]] OtaPerformance
    measure(const OtaSizing& sizing,
            const process::Realization* realization = nullptr);

private:
    void bind_sizing(const OtaSizing& sizing);

    spice::CircuitPrototype proto_;
    spice::CircuitPrototype::Instance inst_;
    spice::Mosfet *m3_, *m6_, *m5_, *m4_, *m9_, *m7_, *m10_, *m8_;
    spice::NodeId out_, inp_;
    std::vector<double> freqs_;
};

/// Measurement harness around the testbench (thread-safe: scalar calls
/// build their own circuit; chunk entry points lease warm prototypes from a
/// persistent spice::PrototypePool keyed by this evaluator's config, so the
/// testbench structure is built once per concurrent kernel, not once per
/// evaluate_batch call). Copies share the pool - they measure the same
/// configuration, so warm instances are interchangeable.
class OtaEvaluator {
public:
    explicit OtaEvaluator(OtaConfig config = {});

    /// Nominal-process measurement.
    [[nodiscard]] OtaPerformance measure(const OtaSizing& sizing) const;

    /// Measurement under a sampled process realisation (Monte Carlo).
    [[nodiscard]] OtaPerformance
    measure(const OtaSizing& sizing, const process::Realization& realization) const;

    /// Chunk kernels: evaluate a group of points through one shared
    /// testbench prototype (see OtaPrototype). Element i of the result is
    /// bit-identical to the corresponding scalar measure() call.
    [[nodiscard]] std::vector<OtaPerformance>
    measure_chunk(std::span<const OtaSizing> sizings) const;

    /// Paired sizing/realisation points (corner sweeps); sizes must match.
    [[nodiscard]] std::vector<OtaPerformance>
    measure_chunk(std::span<const OtaSizing> sizings,
                  std::span<const process::Realization> realizations) const;

    /// One sizing under many realisations (Monte Carlo batches).
    [[nodiscard]] std::vector<OtaPerformance>
    measure_chunk(const OtaSizing& sizing,
                  std::span<const process::Realization> realizations) const;

    /// Full AC response of V(out)/V(inp) - Fig. 8's curve.
    struct Response {
        std::vector<double> freqs;
        std::vector<std::complex<double>> h;
    };
    [[nodiscard]] Response
    ac_response(const OtaSizing& sizing,
                const process::Realization* realization = nullptr) const;

    /// Operating region of each transistor at the nominal OP (testbench
    /// sanity assertions).
    [[nodiscard]] std::vector<std::pair<std::string, spice::Mosfet::Region>>
    op_regions(const OtaSizing& sizing) const;

    [[nodiscard]] const OtaConfig& config() const { return config_; }

    /// The persistent prototype pool behind the chunk kernels (reuse
    /// diagnostics: created() stops growing once the pool is warm).
    [[nodiscard]] const spice::PrototypePool<OtaPrototype>& prototype_pool() const {
        return *pool_;
    }

private:
    [[nodiscard]] OtaPerformance
    measure_impl(const OtaSizing& sizing,
                 const process::Realization* realization) const;

    OtaConfig config_;
    /// Shared so copies reuse the same warm instances (identical config).
    std::shared_ptr<spice::PrototypePool<OtaPrototype>> pool_;
};

} // namespace ypm::circuits
