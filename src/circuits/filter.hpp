#pragma once
/// \file filter.hpp
/// \brief The paper's hierarchical application: a 2nd-order low-pass filter
///        built from two OTAs (Figs. 9-11).
///
/// Realisation: unity-gain Sallen-Key stage (OTA1 as the buffer, R1/R2
/// fixed, C1 feedback / C2 shunt designable) followed by an OTA2 output
/// buffer loaded by designable C3. Using the OTA in unity feedback couples
/// the filter response to the OTA's finite gain and bandwidth, which is
/// what links the OTA specs (gain >= 50 dB, PM >= 60 deg) to filter yield.
///
/// The OTAs can be instantiated either as behavioural macromodels (the
/// paper's fast hierarchical flow) or at transistor level (verification).

#include <complex>
#include <span>
#include <string>
#include <vector>

#include "circuits/ota.hpp"
#include "mc/yield.hpp"
#include "spice/devices/capacitor.hpp"
#include "moo/problem.hpp"
#include "process/sampler.hpp"
#include "spice/circuit.hpp"
#include "spice/measure.hpp"
#include "util/rng.hpp"
#include "va/behav_ota_device.hpp"

namespace ypm::circuits {

/// Designable filter parameters (paper section 5: "capacitor values C1, C2
/// and C3"). Farads.
struct FilterSizing {
    double c1 = 47e-12;
    double c2 = 22e-12;
    double c3 = 10e-12;

    static constexpr std::size_t parameter_count = 3;

    [[nodiscard]] static FilterSizing from_vector(const std::vector<double>& v);
    [[nodiscard]] std::vector<double> to_vector() const;

    /// C in [2, 60] pF each.
    [[nodiscard]] static std::vector<moo::ParameterSpec> parameter_specs();
};

/// Which OTA model the filter instantiates.
enum class OtaModelKind { behavioural, transistor };

/// Fixed filter conditions. The resistor values put the passive corner
/// near 100 kHz with capacitors inside the designable [2, 60] pF box -
/// an anti-aliasing class this OTA's gain-bandwidth (~1 MHz at the
/// high-gain end of the front) can buffer cleanly.
struct FilterConfig {
    double r1 = 47e3; ///< ohms
    double r2 = 47e3;
    double vcm = 1.65;
    /// Macromodel electrical spec (behavioural kind). Defaults mirror the
    /// nominal transistor OTA: 57 dB, dominant pole from rout ~ 4.1 MOhm
    /// against the load (intrinsic pole out of band).
    va::BehaviouralOtaSpec ota_spec{57.0, 1e9, 4.1e6};
    /// Transistor-level OTA (transistor kind).
    OtaSizing ota_sizing;
    OtaConfig ota_config;
    double f_start = 1e2;
    double f_stop = 1e9;
    std::size_t points_per_decade = 12;
};

/// The anti-aliasing specification mask of paper Fig. 10 (frequency plan
/// scaled to this OTA class - see FilterConfig).
struct FilterSpecMask {
    double f_pass = 50e3;            ///< passband edge (Hz)
    double passband_ripple_db = 1.0; ///< |gain| deviation allowed up to f_pass
    double fc_target = 100e3;        ///< -3 dB target (Hz)
    double fc_tolerance = 0.20;      ///< relative tolerance on fc
    double f_stop = 1e6;             ///< stopband test frequency (Hz)
    /// Required attenuation at f_stop. An ideal 2nd-order response gives
    /// ~40 dB one decade out; the transistor OTA's high-frequency
    /// feedthrough (unmodelled in the macromodel, cf. paper Fig. 8)
    /// limits the realisable floor to ~21 dB, so the mask asks for 20 dB.
    double min_stop_atten_db = 20.0;
};

/// Build the filter; public nodes "vin" (driven) and "vout".
[[nodiscard]] spice::Circuit build_filter(const FilterSizing& sizing,
                                          const FilterConfig& config,
                                          OtaModelKind kind);

/// Measured filter response metrics.
struct FilterPerformance {
    bool valid = false;
    double passband_gain_db = 0.0;
    double fc = 0.0;               ///< -3 dB cutoff (Hz)
    double stopband_atten_db = 0.0;///< at mask.f_stop
    double worst_passband_dev_db = 0.0; ///< max |gain - passband_gain| below f_pass
    std::string failure;

    /// Does the response satisfy the Fig. 10 mask?
    [[nodiscard]] bool meets(const FilterSpecMask& mask) const;
};

class FilterEvaluator; // below

/// Prototype-backed filter measurement kernel: builds the filter once for a
/// fixed OTA model kind and re-binds the designable capacitors per point,
/// reusing the MNA factorisation workspaces across the chunk. Results are
/// bit-identical to FilterEvaluator::measure on a fresh build. Stateful -
/// one per thread.
class FilterPrototype {
public:
    FilterPrototype(const FilterEvaluator& evaluator, OtaModelKind kind);

    FilterPrototype(const FilterPrototype&) = delete;
    FilterPrototype& operator=(const FilterPrototype&) = delete;

    /// Re-bind C1/C2/C3 and measure.
    [[nodiscard]] FilterPerformance measure(const FilterSizing& sizing);

private:
    const FilterEvaluator* evaluator_;
    spice::CircuitPrototype proto_;
    spice::CircuitPrototype::Instance inst_;
    spice::Capacitor *c1_, *c2_, *c3_;
    spice::NodeId vout_, vin_;
    std::vector<double> freqs_;
};

class FilterEvaluator {
public:
    FilterEvaluator(FilterConfig config, FilterSpecMask mask);

    /// The prototype pool's factory captures `this`, so copies rebuild
    /// their own pool instead of leasing prototypes bound to the source.
    FilterEvaluator(const FilterEvaluator& other);
    FilterEvaluator& operator=(const FilterEvaluator& other);

    [[nodiscard]] FilterPerformance measure(const FilterSizing& sizing,
                                            OtaModelKind kind) const;

    /// Chunk kernel: evaluate a group of sizings through a leased warm
    /// filter prototype (persistent spice::PrototypePool keyed by the OTA
    /// model kind); element i is bit-identical to measure(sizings[i], kind).
    [[nodiscard]] std::vector<FilterPerformance>
    measure_chunk(std::span<const FilterSizing> sizings, OtaModelKind kind) const;

    /// The persistent prototype pool behind measure_chunk.
    [[nodiscard]] const spice::PrototypePool<FilterPrototype>& prototype_pool() const {
        return *pool_;
    }

    /// Response metrics from a computed transfer function (shared by the
    /// scalar and prototype paths so they stay bit-identical).
    [[nodiscard]] FilterPerformance
    metrics_from_transfer(const std::vector<double>& freqs,
                          const std::vector<std::complex<double>>& h) const;

    /// Measure with explicit per-OTA macromodel specs (used by yield MC).
    [[nodiscard]] FilterPerformance
    measure_behavioural(const FilterSizing& sizing,
                        const va::BehaviouralOtaSpec& ota1,
                        const va::BehaviouralOtaSpec& ota2) const;

    /// Measure at transistor level under a process realisation.
    [[nodiscard]] FilterPerformance
    measure_transistor(const FilterSizing& sizing,
                       const process::Realization& realization) const;

    /// Full AC response (Fig. 11 curve).
    struct Response {
        std::vector<double> freqs;
        std::vector<std::complex<double>> h;
    };
    [[nodiscard]] Response ac_response(const FilterSizing& sizing,
                                       OtaModelKind kind) const;

    [[nodiscard]] const FilterConfig& config() const { return config_; }
    [[nodiscard]] const FilterSpecMask& mask() const { return mask_; }

private:
    [[nodiscard]] FilterPerformance measure_circuit(spice::Circuit& ckt) const;
    [[nodiscard]] std::shared_ptr<spice::PrototypePool<FilterPrototype>>
    make_pool() const;

    FilterConfig config_;
    FilterSpecMask mask_;
    std::shared_ptr<spice::PrototypePool<FilterPrototype>> pool_;
};

/// Variation model for behavioural-level filter Monte Carlo: the OTA macro
/// parameters wobble with the Δ(%) the flow extracted, capacitors with a
/// matching-grade sigma.
struct FilterVariation {
    double gain_delta_pct = 0.5; ///< 3-sigma relative gain spread (percent)
    double pm_delta_pct = 1.5;   ///< 3-sigma spread applied to f3db (percent)
    double cap_sigma_rel = 0.01; ///< 1-sigma relative capacitor spread
};

/// Yield of the behavioural filter against the mask under FilterVariation.
[[nodiscard]] mc::YieldEstimate
filter_yield_behavioural(const FilterEvaluator& evaluator,
                         const FilterSizing& sizing,
                         const FilterVariation& variation, std::size_t samples,
                         Rng& rng);

/// Yield of the transistor-level filter under full process + mismatch MC.
[[nodiscard]] mc::YieldEstimate
filter_yield_transistor(const FilterEvaluator& evaluator,
                        const FilterSizing& sizing,
                        const process::ProcessSampler& sampler,
                        std::size_t samples, Rng& rng);

} // namespace ypm::circuits
