#pragma once
/// \file filter_problem.hpp
/// \brief moo::Problem adapter for the filter capacitor optimisation (paper
///        section 5: 30 individuals x 40 generations over C1, C2, C3).

#include "circuits/filter.hpp"
#include "eval/engine.hpp"
#include "moo/problem.hpp"

namespace ypm::circuits {

/// Canonical filter objectives kernel: {fc_err_rel, passband_dev_db} at a
/// capacitor point, NaNs when the response does not exist. The scalar twin
/// of the chunk path below; consumers sharing an engine tag must measure
/// through one of these so cached rows stay interchangeable.
/// \param evaluator must outlive the returned kernel.
[[nodiscard]] eval::KernelFn
filter_objectives_kernel(const FilterEvaluator& evaluator, OtaModelKind kind);

/// Chunk twin: measures a group of requests through one shared filter
/// prototype (FilterEvaluator::measure_chunk). Element-wise bit-identical
/// to the scalar kernel.
[[nodiscard]] eval::BatchKernelFn
filter_objectives_chunk_kernel(const FilterEvaluator& evaluator,
                               OtaModelKind kind);

/// Objectives: minimise the relative cutoff error |fc - target|/target and
/// minimise the worst passband deviation, subject to the response existing
/// at all (failures evaluate to NaN).
class FilterProblem final : public moo::Problem {
public:
    FilterProblem(FilterConfig config, FilterSpecMask mask,
                  OtaModelKind kind = OtaModelKind::behavioural);

    // kernel_ captures evaluator_ by reference; a copy would dangle.
    FilterProblem(const FilterProblem&) = delete;
    FilterProblem& operator=(const FilterProblem&) = delete;

    [[nodiscard]] const std::vector<moo::ParameterSpec>& parameters() const override;
    [[nodiscard]] const std::vector<moo::ObjectiveSpec>& objectives() const override;
    [[nodiscard]] std::vector<double>
    evaluate(const std::vector<double>& params) const override;

    /// Prototype-reuse batch path: one shared filter prototype per call,
    /// element-wise bit-identical to the scalar evaluate().
    [[nodiscard]] std::vector<std::vector<double>>
    evaluate_batch(const std::vector<std::vector<double>>& points) const override;

    [[nodiscard]] const FilterEvaluator& evaluator() const { return evaluator_; }

private:
    FilterEvaluator evaluator_;
    OtaModelKind kind_;
    eval::KernelFn kernel_; ///< hoisted: built once, not per evaluate() call
    std::vector<moo::ParameterSpec> params_;
    std::vector<moo::ObjectiveSpec> objectives_;
};

} // namespace ypm::circuits
