#pragma once
/// \file filter_problem.hpp
/// \brief moo::Problem adapter for the filter capacitor optimisation (paper
///        section 5: 30 individuals x 40 generations over C1, C2, C3).

#include "circuits/filter.hpp"
#include "moo/problem.hpp"

namespace ypm::circuits {

/// Objectives: minimise the relative cutoff error |fc - target|/target and
/// minimise the worst passband deviation, subject to the response existing
/// at all (failures evaluate to NaN).
class FilterProblem final : public moo::Problem {
public:
    FilterProblem(FilterConfig config, FilterSpecMask mask,
                  OtaModelKind kind = OtaModelKind::behavioural);

    [[nodiscard]] const std::vector<moo::ParameterSpec>& parameters() const override;
    [[nodiscard]] const std::vector<moo::ObjectiveSpec>& objectives() const override;
    [[nodiscard]] std::vector<double>
    evaluate(const std::vector<double>& params) const override;

    [[nodiscard]] const FilterEvaluator& evaluator() const { return evaluator_; }

private:
    FilterEvaluator evaluator_;
    OtaModelKind kind_;
    std::vector<moo::ParameterSpec> params_;
    std::vector<moo::ObjectiveSpec> objectives_;
};

} // namespace ypm::circuits
