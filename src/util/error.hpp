#pragma once
/// \file error.hpp
/// \brief Exception types used across the ypm library.

#include <stdexcept>
#include <string>

namespace ypm {

/// Base class for every error raised by the library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when user-supplied input (netlist text, table file, control
/// string, configuration value) cannot be accepted.
class InvalidInputError : public Error {
public:
    explicit InvalidInputError(const std::string& what) : Error(what) {}
};

/// Raised when a numerical procedure fails (singular matrix, Newton
/// non-convergence, spline over degenerate data).
class NumericalError : public Error {
public:
    explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Raised when a table-model lookup falls outside the sampled data and the
/// control string forbids extrapolation (Verilog-A "E" behaviour).
class RangeError : public Error {
public:
    explicit RangeError(const std::string& what) : Error(what) {}
};

/// Raised on file-system level problems (missing .tbl file, unwritable
/// artefact directory).
class IoError : public Error {
public:
    explicit IoError(const std::string& what) : Error(what) {}
};

} // namespace ypm
