#pragma once
/// \file text_table.hpp
/// \brief Aligned plain-text tables for experiment reports - every bench
///        binary prints paper-style rows through this, and CSV export feeds
///        external plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace ypm {

/// Column-aligned text table with a header row.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Append a data row; must match the header arity.
    void add_row(std::vector<std::string> row);

    /// Number of data rows.
    [[nodiscard]] std::size_t rows() const { return rows_.size(); }

    /// Render with column padding and a separator rule under the header.
    [[nodiscard]] std::string to_string() const;

    /// Comma-separated export (minimal quoting: fields with commas quoted).
    [[nodiscard]] std::string to_csv() const;

    /// Write the rendered table to a stream.
    friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ypm
