#pragma once
/// \file strings.hpp
/// \brief Small string helpers shared by the netlist parser, table I/O and
///        report writers. All functions are pure and allocation-friendly.

#include <string>
#include <string_view>
#include <vector>

namespace ypm::str {

/// Remove leading and trailing whitespace (space, tab, CR, LF).
[[nodiscard]] std::string trim(std::string_view s);

/// Lower-case an ASCII string (netlists are case-insensitive).
[[nodiscard]] std::string to_lower(std::string_view s);

/// Upper-case an ASCII string.
[[nodiscard]] std::string to_upper(std::string_view s);

/// Split on a single delimiter character; empty fields are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on runs of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// True if \p s begins with \p prefix (case sensitive).
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Case-insensitive equality for ASCII strings.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Render a double with enough digits to round-trip (used by .tbl writers).
[[nodiscard]] std::string fmt_double(double v);

/// Escape \p s for embedding inside a JSON string literal; surrounding
/// quotes are not added. Used by the obs trace/metrics serializers and the
/// structured log sink.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Fixed-point rendering with \p digits decimals (used by report tables).
[[nodiscard]] std::string fmt_fixed(double v, int digits);

} // namespace ypm::str
