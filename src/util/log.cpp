#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <utility>

#include "util/mutex.hpp"
#include "util/strings.hpp"
#include "util/thread_annotations.hpp"

namespace ypm::log {

namespace {
std::atomic<Level> g_level{Level::warn};
/// Serialises whole lines onto stderr (or into the installed sink) and
/// guards the sink pointer itself.
util::Mutex g_mutex;
Sink& sink_slot() YPM_REQUIRES(g_mutex) {
    // Function-local so the std::function is constructed on first use
    // (no global-destructor ordering hazards); callers hold g_mutex.
    static Sink sink;
    return sink;
}
} // namespace

const char* level_name(Level l) {
    switch (l) {
    case Level::debug: return "debug";
    case Level::info: return "info";
    case Level::warn: return "warn";
    case Level::error: return "error";
    case Level::off: return "off";
    }
    return "?";
}

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_sink(Sink sink) {
    const util::MutexLock lock(g_mutex);
    sink_slot() = std::move(sink);
}

Sink json_lines_sink(std::vector<std::string>& lines) {
    return [&lines](Level lvl, const std::string& message) {
        lines.push_back(std::string("{\"level\":\"") + level_name(lvl) +
                        "\",\"msg\":\"" + str::json_escape(message) + "\"}");
    };
}

void write(Level lvl, const std::string& message) {
    if (lvl < level()) return;
    const util::MutexLock lock(g_mutex);
    Sink& sink = sink_slot();
    if (sink) {
        sink(lvl, message);
        return;
    }
    std::fprintf(stderr, "[ypm %-5s] %s\n", level_name(lvl), message.c_str());
}

} // namespace ypm::log
