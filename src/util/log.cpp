#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/mutex.hpp"

namespace ypm::log {

namespace {
std::atomic<Level> g_level{Level::warn};
/// Serialises whole lines onto stderr. The guarded "data" is the stream
/// itself, which no annotation can name - allowlisted in
/// scripts/lint_allowlist.txt.
util::Mutex g_mutex;

const char* level_name(Level l) {
    switch (l) {
    case Level::debug: return "debug";
    case Level::info: return "info ";
    case Level::warn: return "warn ";
    case Level::error: return "error";
    case Level::off: return "off  ";
    }
    return "?";
}
} // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
    if (lvl < level()) return;
    const util::MutexLock lock(g_mutex);
    std::fprintf(stderr, "[ypm %s] %s\n", level_name(lvl), message.c_str());
}

} // namespace ypm::log
