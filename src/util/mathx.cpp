#include "util/mathx.hpp"

#include <algorithm>
#include <cassert>

#include "util/error.hpp"

namespace ypm::mathx {

std::vector<double> linspace(double a, double b, std::size_t n) {
    if (n == 0) return {};
    if (n == 1) return {a};
    std::vector<double> out(n);
    const double step = (b - a) / static_cast<double>(n - 1);
    for (std::size_t i = 0; i < n; ++i) out[i] = a + step * static_cast<double>(i);
    out.back() = b;
    return out;
}

std::vector<double> logspace(double a, double b, std::size_t n) {
    if (a <= 0.0 || b <= 0.0)
        throw InvalidInputError("logspace: endpoints must be positive");
    auto exps = linspace(std::log10(a), std::log10(b), n);
    for (auto& e : exps) e = std::pow(10.0, e);
    if (!exps.empty()) {
        exps.front() = a;
        exps.back() = b;
    }
    return exps;
}

bool approx_equal(double a, double b, double rel, double abs) {
    const double diff = std::fabs(a - b);
    if (diff <= abs) return true;
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return diff <= rel * scale;
}

double normalize(double x, double lo, double hi) {
    const double span = hi - lo;
    if (span == 0.0) return 0.0;
    return (x - lo) / span;
}

std::size_t bracket(const std::vector<double>& xs, double x) {
    assert(xs.size() >= 2);
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    const std::ptrdiff_t idx = std::distance(xs.begin(), it) - 1;
    const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(xs.size()) - 2;
    return static_cast<std::size_t>(std::clamp<std::ptrdiff_t>(idx, 0, hi));
}

double interp_linear(const std::vector<double>& xs, const std::vector<double>& ys,
                     double x) {
    if (xs.size() != ys.size() || xs.size() < 2)
        throw InvalidInputError("interp_linear: need >= 2 matched samples");
    if (x <= xs.front()) return ys.front();
    if (x >= xs.back()) return ys.back();
    const std::size_t i = bracket(xs, x);
    const double t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    return lerp(ys[i], ys[i + 1], t);
}

double wrap_phase_deg(double deg) {
    while (deg > 0.0) deg -= 360.0;
    while (deg <= -360.0) deg += 360.0;
    return deg;
}

} // namespace ypm::mathx
