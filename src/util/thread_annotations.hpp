#pragma once
/// \file thread_annotations.hpp
/// \brief Portable Clang thread-safety analysis macros.
///
/// Every mutex-holding class in the repo declares its locking contract with
/// these macros, and the `ci-analyze` preset compiles the tree with
/// `-Wthread-safety -Werror` under Clang: an unguarded access to a
/// `YPM_GUARDED_BY` member, or a call to a `YPM_REQUIRES` function without
/// the capability, is a *compile error* rather than a rare TSan finding.
/// Under GCC (which has no thread-safety analysis) every macro expands to
/// nothing, so the annotations cost nothing outside the analysis build.
///
/// The macros name Clang's capability attributes one-to-one:
///  * YPM_CAPABILITY(name)    - marks a class as a lockable capability
///    (util::Mutex is the only such class in the repo);
///  * YPM_SCOPED_CAPABILITY   - marks an RAII class whose constructor
///    acquires and destructor releases (util::MutexLock);
///  * YPM_GUARDED_BY(mutex)   - data member readable/writable only while
///    holding `mutex`;
///  * YPM_PT_GUARDED_BY(mutex) - pointer member whose *pointee* is guarded;
///  * YPM_REQUIRES(mutex)     - function callable only with `mutex` held
///    (the "caller holds retire_mutex_" comment contract, made checkable);
///  * YPM_ACQUIRE / YPM_RELEASE / YPM_TRY_ACQUIRE - lock-shaped functions;
///  * YPM_EXCLUDES(mutex)     - function that must NOT be entered with
///    `mutex` held (self-deadlock guard);
///  * YPM_RETURN_CAPABILITY(mutex) - accessor returning a reference to a
///    capability;
///  * YPM_NO_THREAD_SAFETY_ANALYSIS - opt-out for a function whose locking
///    is deliberately too dynamic for the analysis (use sparingly, with a
///    comment explaining why).
///
/// scripts/lint_invariants.py enforces the repo-law half of the contract:
/// every mutex member must either be named by one of these annotations in
/// its translation unit or carry an allowlist entry explaining why not.

#if defined(__clang__) && !defined(SWIG)
#define YPM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define YPM_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

#define YPM_CAPABILITY(x) YPM_THREAD_ANNOTATION(capability(x))
#define YPM_SCOPED_CAPABILITY YPM_THREAD_ANNOTATION(scoped_lockable)
#define YPM_GUARDED_BY(x) YPM_THREAD_ANNOTATION(guarded_by(x))
#define YPM_PT_GUARDED_BY(x) YPM_THREAD_ANNOTATION(pt_guarded_by(x))
#define YPM_REQUIRES(...) YPM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define YPM_ACQUIRE(...) YPM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define YPM_RELEASE(...) YPM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define YPM_TRY_ACQUIRE(...) \
    YPM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define YPM_EXCLUDES(...) YPM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define YPM_RETURN_CAPABILITY(x) YPM_THREAD_ANNOTATION(lock_returned(x))
#define YPM_NO_THREAD_SAFETY_ANALYSIS \
    YPM_THREAD_ANNOTATION(no_thread_safety_analysis)
