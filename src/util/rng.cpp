#include "util/rng.hpp"

#include <cassert>
#include <numeric>

namespace ypm {

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
    // Run the seed through SplitMix64 so that nearby user seeds (0, 1, 2...)
    // do not produce correlated mt19937_64 states.
    std::uint64_t s = seed;
    const std::uint64_t mixed = splitmix64(s);
    engine_.seed(mixed);
}

Rng Rng::child(std::uint64_t stream) const {
    std::uint64_t s = seed_ ^ (0xD1B54A32D192ED03ull * (stream + 1));
    const std::uint64_t derived = splitmix64(s);
    return Rng(derived);
}

double Rng::uniform01() {
    // 53-bit mantissa construction: uniform in [0, 1).
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

double Rng::gauss() {
    std::normal_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

double Rng::gauss(double mean, double sigma) { return mean + sigma * gauss(); }

std::size_t Rng::index(std::size_t n) {
    assert(n > 0);
    std::uniform_int_distribution<std::size_t> dist(0, n - 1);
    return dist(engine_);
}

long long Rng::integer(long long lo, long long hi) {
    std::uniform_int_distribution<long long> dist(lo, hi);
    return dist(engine_);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

std::vector<std::size_t> Rng::permutation(std::size_t n) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = index(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

} // namespace ypm
