#include "util/units.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::units {

std::optional<double> try_parse_value(std::string_view text) {
    const std::string s = str::trim(text);
    if (s.empty()) return std::nullopt;

    const char* begin = s.c_str();
    char* end = nullptr;
    const double mantissa = std::strtod(begin, &end);
    if (end == begin) return std::nullopt;

    std::string suffix = str::to_lower(std::string_view(end));
    double scale = 1.0;
    if (!suffix.empty()) {
        // Multi-letter suffixes must be matched before single letters
        // ("meg" would otherwise parse as milli).
        if (str::starts_with(suffix, "meg")) {
            scale = 1e6;
        } else if (str::starts_with(suffix, "mil")) {
            scale = 25.4e-6;
        } else {
            switch (suffix[0]) {
            case 't': scale = 1e12; break;
            case 'g': scale = 1e9; break;
            case 'k': scale = 1e3; break;
            case 'm': scale = 1e-3; break;
            case 'u': scale = 1e-6; break;
            case 'n': scale = 1e-9; break;
            case 'p': scale = 1e-12; break;
            case 'f': scale = 1e-15; break;
            case 'a': scale = 1e-18; break;
            default:
                // A bare unit name like "v" or "ohm": acceptable, no scaling.
                if (!std::isalpha(static_cast<unsigned char>(suffix[0])))
                    return std::nullopt;
                scale = 1.0;
                break;
            }
        }
    }
    return mantissa * scale;
}

double parse_value(std::string_view text) {
    if (auto v = try_parse_value(text)) return *v;
    throw InvalidInputError("units: cannot parse value '" + std::string(text) + "'");
}

std::string format_eng(double value, int digits) {
    if (value == 0.0) return "0";
    if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");

    struct Suffix { double scale; const char* name; };
    static constexpr std::array<Suffix, 9> suffixes = {{
        {1e12, "t"}, {1e9, "g"}, {1e6, "meg"}, {1e3, "k"}, {1.0, ""},
        {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"},
    }};

    const double mag = std::fabs(value);
    for (const auto& s : suffixes) {
        if (mag >= s.scale * 0.9999999999) {
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.*g%s", digits, value / s.scale, s.name);
            return buf;
        }
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", digits, value);
    return buf;
}

} // namespace ypm::units
