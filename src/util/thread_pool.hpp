#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size worker pool with a deterministic parallel_for and an
///        asynchronous submission path.
///
/// Monte Carlo sampling and GA population evaluation are embarrassingly
/// parallel: work item i only depends on index i (each derives its own RNG
/// child stream), so results are bitwise identical for any thread count.
///
/// Two entry points:
///  * parallel_for(n, fn)        - blocking barrier, as before;
///  * parallel_for_async(n, fn)  - enqueues the same work and returns a Job
///    handle immediately. The per-call control state (including `fn`) is
///    co-owned by the handle and every queued task, so the caller may leave
///    the submitting scope before any item has run. This is what lets the
///    evaluation engine keep misses from several batches in flight at once.

#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ypm {

class ThreadPool {
public:
    /// \param threads worker count; 0 means hardware_concurrency (min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of workers.
    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Completion handle of a parallel_for_async submission. Default
    /// constructed handles are invalid no-ops; wait() may be called from
    /// any one thread and is idempotent.
    class Job {
    public:
        Job() = default;

        /// Block until every item has completed, then rethrow the first
        /// exception any item raised (if any). No-op on an invalid handle.
        void wait();

        /// True once every item has completed (does not consume errors).
        [[nodiscard]] bool done() const;

        [[nodiscard]] bool valid() const { return state_ != nullptr; }

    private:
        friend class ThreadPool;
        struct State;
        explicit Job(std::shared_ptr<State> state) : state_(std::move(state)) {}
        std::shared_ptr<State> state_;
    };

    /// Run fn(i) for i in [0, n); blocks until all items complete.
    /// fn must not throw across the boundary - exceptions are captured and
    /// the first one is rethrown on the calling thread after the barrier.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Asynchronous counterpart: enqueue the n items and return immediately
    /// with a Job handle; fn is copied into shared per-call state that the
    /// queued tasks co-own, so it may outlive the submitting scope. Items
    /// run on the workers only - the caller never executes fn inline, which
    /// keeps submission latency independent of the work size.
    [[nodiscard]] Job parallel_for_async(std::size_t n,
                                         std::function<void(std::size_t)> fn);

    /// Process-wide shared pool (created on first use).
    static ThreadPool& global();

private:
    void worker_loop();
    void enqueue_locked_batch(std::vector<std::function<void()>> tasks)
        YPM_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_ YPM_GUARDED_BY(mutex_);
    util::Mutex mutex_;
    util::ConditionVariable cv_;
    bool stopping_ YPM_GUARDED_BY(mutex_) = false;
};

} // namespace ypm
