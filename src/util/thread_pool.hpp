#pragma once
/// \file thread_pool.hpp
/// \brief Fixed-size worker pool with a deterministic parallel_for.
///
/// Monte Carlo sampling and GA population evaluation are embarrassingly
/// parallel: work item i only depends on index i (each derives its own RNG
/// child stream), so results are bitwise identical for any thread count.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ypm {

class ThreadPool {
public:
    /// \param threads worker count; 0 means hardware_concurrency (min 1).
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Number of workers.
    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Run fn(i) for i in [0, n); blocks until all items complete.
    /// fn must not throw across the boundary - exceptions are captured and
    /// the first one is rethrown on the calling thread after the barrier.
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Process-wide shared pool (created on first use).
    static ThreadPool& global();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace ypm
