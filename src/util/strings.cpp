#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

namespace ypm::str {

namespace {
bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}
} // namespace

std::string trim(std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_space(s[b])) ++b;
    while (e > b && is_space(s[e - 1])) --e;
    return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

std::string to_upper(std::string_view s) {
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string> split_ws(std::string_view s) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && is_space(s[i])) ++i;
        std::size_t start = i;
        while (i < s.size() && !is_space(s[i])) ++i;
        if (i > start) out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::string fmt_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

std::string fmt_fixed(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

} // namespace ypm::str
