#pragma once
/// \file mutex.hpp
/// \brief Annotated mutex / condition-variable wrappers.
///
/// std::mutex carries no capability attributes, so Clang's thread-safety
/// analysis cannot see through it. These zero-cost wrappers (inline
/// forwarding, no extra state) are the repo's only lock types: util::Mutex
/// is a YPM_CAPABILITY, util::MutexLock a YPM_SCOPED_CAPABILITY, and
/// util::ConditionVariable waits on a MutexLock. The analysis treats the
/// capability as held across a wait (it is re-acquired before wait
/// returns), which matches how every guarded access around a wait loop is
/// written.
///
/// Repo law (scripts/lint_invariants.py, rule `raw-mutex`): no
/// std::mutex / std::condition_variable / std::lock_guard /
/// std::unique_lock outside this file - raw lock types would silently fall
/// out of the static race analysis.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace ypm::util {

/// std::mutex with capability annotations. Lock through MutexLock; the
/// raw lock()/unlock() exist for the analysis contract and for adapters.
class YPM_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() YPM_ACQUIRE() { mutex_.lock(); }
    void unlock() YPM_RELEASE() { mutex_.unlock(); }
    [[nodiscard]] bool try_lock() YPM_TRY_ACQUIRE(true) {
        return mutex_.try_lock();
    }

private:
    friend class MutexLock;
    std::mutex mutex_;
};

/// RAII lock over a util::Mutex (the analysis-aware lock_guard). Wraps a
/// std::unique_lock so ConditionVariable can wait on it.
class YPM_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mutex) YPM_ACQUIRE(mutex)
        : lock_(mutex.mutex_) {}
    ~MutexLock() YPM_RELEASE() {}

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    friend class ConditionVariable;
    std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to util::MutexLock. wait() atomically releases
/// the lock and re-acquires it before returning; callers keep their guarded
/// accesses inside the locked scope and loop on the condition themselves:
///
///     util::MutexLock lock(mutex_);
///     while (!ready_) cv_.wait(lock);
class ConditionVariable {
public:
    ConditionVariable() = default;
    ConditionVariable(const ConditionVariable&) = delete;
    ConditionVariable& operator=(const ConditionVariable&) = delete;

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

    /// Blocks until notified; spurious wakeups possible - loop on the
    /// predicate at the call site (keeping the guarded reads visible to the
    /// analysis under the caller's lock).
    void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

private:
    std::condition_variable cv_;
};

} // namespace ypm::util
