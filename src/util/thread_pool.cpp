#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

namespace ypm {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? hw : 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

namespace {

/// Shared control block for one parallel_for call. Heap-allocated and
/// co-owned by the caller and every queued job: a worker that drains the
/// index counter may still touch the block *after* the caller's wait has
/// been satisfied, so stack storage would be a use-after-scope race.
struct ParallelState {
    explicit ParallelState(std::size_t total) : n(total) {}

    const std::size_t n;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::mutex error_mutex;
    std::exception_ptr first_error;
};

} // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (n == 1 || workers_.size() <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    auto state = std::make_shared<ParallelState>(n);

    // One chunked job per worker; each pulls indices until exhausted.
    // `fn` is captured by reference: every invocation completes before
    // `done` reaches n, and the caller cannot return before that.
    const std::size_t jobs = std::min(workers_.size(), n);
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (std::size_t j = 0; j < jobs; ++j) {
            tasks_.emplace([state, &fn] {
                for (;;) {
                    const std::size_t i =
                        state->next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= state->n) break;
                    try {
                        fn(i);
                    } catch (...) {
                        const std::lock_guard<std::mutex> elock(state->error_mutex);
                        if (!state->first_error)
                            state->first_error = std::current_exception();
                    }
                    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                        state->n) {
                        const std::lock_guard<std::mutex> dlock(state->done_mutex);
                        state->done_cv.notify_all();
                    }
                }
            });
        }
    }
    cv_.notify_all();

    {
        std::unique_lock<std::mutex> lock(state->done_mutex);
        state->done_cv.wait(lock, [&] {
            return state->done.load(std::memory_order_acquire) == state->n;
        });
    }
    if (state->first_error) std::rethrow_exception(state->first_error);
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

} // namespace ypm
