#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "util/clock.hpp"

namespace ypm {

namespace {

/// Pool instruments, resolved once (references are stable for the global
/// registry's lifetime). Always-on: per *task* cost (a handful of clock
/// reads and relaxed atomics per worker-sized chunk), not per item.
struct PoolMetrics {
    obs::Histogram& queue_depth;
    obs::Histogram& task_seconds;

    static PoolMetrics& get() {
        static PoolMetrics metrics{
            obs::MetricsRegistry::global().histogram(
                "pool.queue_depth",
                {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0}),
            obs::MetricsRegistry::global().histogram(
                "pool.task_seconds",
                {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0})};
        return metrics;
    }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads) {
    // Resolve the instruments before any worker exists: the metrics
    // registry static is then constructed before (so destroyed after) the
    // process-wide pool, and workers never race its teardown.
    (void)PoolMetrics::get();
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? hw : 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        const util::MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            util::MutexLock lock(mutex_);
            while (!stopping_ && tasks_.empty()) cv_.wait(lock);
            if (stopping_ && tasks_.empty()) return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        const util::TickNs t0 = util::now_ns();
        task();
        PoolMetrics::get().task_seconds.observe(util::seconds_since(t0));
    }
}

/// Shared control block for one parallel_for / parallel_for_async call.
/// Heap-allocated and co-owned by the caller's Job handle and every queued
/// task. It owns `fn` too: with async submission the caller may leave the
/// submitting scope before any item has run, so capturing the caller's
/// function by reference (the pre-async design) would be a use-after-scope.
struct ThreadPool::Job::State {
    State(std::size_t total, std::function<void(std::size_t)> f)
        : n(total), fn(std::move(f)) {}

    const std::size_t n;
    const std::function<void(std::size_t)> fn;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    util::Mutex done_mutex;
    util::ConditionVariable done_cv;
    /// The wait/notify handshake's predicate. `done` above stays atomic for
    /// the lock-free done() query; this guarded flag is what wait() sleeps
    /// on, so the thread-safety analysis sees the full handshake.
    bool all_done YPM_GUARDED_BY(done_mutex) = false;
    util::Mutex error_mutex;
    std::exception_ptr first_error YPM_GUARDED_BY(error_mutex);
};

void ThreadPool::Job::wait() {
    if (!state_) return;
    {
        util::MutexLock lock(state_->done_mutex);
        while (!state_->all_done) state_->done_cv.wait(lock);
    }
    std::exception_ptr error;
    {
        const util::MutexLock elock(state_->error_mutex);
        error = std::exchange(state_->first_error, nullptr);
    }
    if (error) std::rethrow_exception(error);
}

bool ThreadPool::Job::done() const {
    return state_ == nullptr ||
           state_->done.load(std::memory_order_acquire) == state_->n;
}

void ThreadPool::enqueue_locked_batch(std::vector<std::function<void()>> tasks) {
    {
        const util::MutexLock lock(mutex_);
        for (auto& t : tasks) tasks_.push(std::move(t));
        PoolMetrics::get().queue_depth.observe(
            static_cast<double>(tasks_.size()));
    }
    cv_.notify_all();
}

ThreadPool::Job ThreadPool::parallel_for_async(
    std::size_t n, std::function<void(std::size_t)> fn) {
    if (n == 0) return Job{};

    auto state = std::make_shared<Job::State>(n, std::move(fn));

    // One chunked task per worker; each pulls indices until exhausted. The
    // tasks share ownership of the state (and so of fn) with the returned
    // handle - nothing references the submitting scope.
    const std::size_t jobs = std::min(std::max<std::size_t>(workers_.size(), 1), n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
        tasks.emplace_back([state] {
            for (;;) {
                const std::size_t i =
                    state->next.fetch_add(1, std::memory_order_relaxed);
                if (i >= state->n) break;
                try {
                    state->fn(i);
                } catch (...) {
                    const util::MutexLock elock(state->error_mutex);
                    if (!state->first_error)
                        state->first_error = std::current_exception();
                }
                if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
                    state->n) {
                    const util::MutexLock dlock(state->done_mutex);
                    state->all_done = true;
                    state->done_cv.notify_all();
                }
            }
        });
    }
    enqueue_locked_batch(std::move(tasks));
    return Job{std::move(state)};
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    // Inline fast path: with one item or one worker the queue adds nothing
    // but latency, and running on the calling thread cannot change results
    // (item i only depends on index i).
    if (n == 1 || workers_.size() <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    parallel_for_async(n, fn).wait();
}

ThreadPool& ThreadPool::global() {
    static ThreadPool pool;
    return pool;
}

} // namespace ypm
