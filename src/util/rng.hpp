#pragma once
/// \file rng.hpp
/// \brief Deterministic random number generation.
///
/// Every stochastic component (GA operators, Monte Carlo sampling, process
/// realisations) takes an explicit `Rng`. Reproducibility contract: the same
/// master seed always produces the same optimisation trajectory and the same
/// MC population, regardless of thread count, because parallel work items
/// derive independent child streams via `child(index)`.

#include <cstdint>
#include <random>
#include <vector>

namespace ypm {

/// Wrapper around std::mt19937_64 with SplitMix64-based stream derivation.
class Rng {
public:
    /// Construct from a 64-bit seed.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /// Derive an independent child stream. Deterministic in (parent seed,
    /// stream index); children of distinct indices are decorrelated.
    [[nodiscard]] Rng child(std::uint64_t stream) const;

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform01();

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi);

    /// Standard normal draw.
    [[nodiscard]] double gauss();

    /// Normal draw with given mean and standard deviation.
    [[nodiscard]] double gauss(double mean, double sigma);

    /// Uniform integer in [0, n) ; n must be > 0.
    [[nodiscard]] std::size_t index(std::size_t n);

    /// Uniform integer in [lo, hi] inclusive.
    [[nodiscard]] long long integer(long long lo, long long hi);

    /// Bernoulli trial with probability p of true.
    [[nodiscard]] bool bernoulli(double p);

    /// Fisher-Yates shuffle of an index vector 0..n-1.
    [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

    /// Seed this generator was created with.
    [[nodiscard]] std::uint64_t seed() const { return seed_; }

    /// Access the underlying engine (for std distributions in tests).
    [[nodiscard]] std::mt19937_64& engine() { return engine_; }

private:
    std::uint64_t seed_;
    std::mt19937_64 engine_;
};

/// SplitMix64 step - public because seeding logic is unit-tested.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

} // namespace ypm
