#pragma once
/// \file units.hpp
/// \brief SPICE engineering-unit parsing and formatting.
///
/// Netlists and table files express values as `10u`, `0.35u`, `4meg`, `2.2k`
/// and so on. `parse_value` accepts the full SPICE suffix set (case
/// insensitive, trailing unit letters ignored, `meg`/`mil` handled before
/// `m`), and `format_eng` renders a double back into engineering notation.

#include <optional>
#include <string>
#include <string_view>

namespace ypm::units {

/// Parse a SPICE-style value such as "10u", "4meg", "1.5k", "2n", "1e-6".
/// Trailing unit names ("10uF", "50ohm") are tolerated after the suffix.
/// \throws ypm::InvalidInputError when the text is not a number at all.
[[nodiscard]] double parse_value(std::string_view text);

/// Non-throwing variant; returns std::nullopt on malformed text.
[[nodiscard]] std::optional<double> try_parse_value(std::string_view text);

/// Render with an engineering suffix, e.g. 1.5e-05 -> "15u".
/// \param digits significant digits of the mantissa (default 4).
[[nodiscard]] std::string format_eng(double value, int digits = 4);

} // namespace ypm::units
