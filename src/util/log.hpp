#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger. Long-running flows (GA generations, MC
///        batches) report progress through this; tests silence it.

#include <sstream>
#include <string>

namespace ypm::log {

enum class Level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Set the global threshold; messages below it are dropped.
void set_level(Level level);

/// Current global threshold.
[[nodiscard]] Level level();

/// Emit one line at the given level (thread safe).
void write(Level level, const std::string& message);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& v, const Rest&... rest) {
    os << v;
    append(os, rest...);
}
} // namespace detail

/// Variadic convenience: log::info("gen ", g, " best ", f);
template <typename... Args>
void debug(const Args&... args) {
    if (level() > Level::debug) return;
    std::ostringstream os;
    detail::append(os, args...);
    write(Level::debug, os.str());
}

template <typename... Args>
void info(const Args&... args) {
    if (level() > Level::info) return;
    std::ostringstream os;
    detail::append(os, args...);
    write(Level::info, os.str());
}

template <typename... Args>
void warn(const Args&... args) {
    if (level() > Level::warn) return;
    std::ostringstream os;
    detail::append(os, args...);
    write(Level::warn, os.str());
}

template <typename... Args>
void error(const Args&... args) {
    if (level() > Level::error) return;
    std::ostringstream os;
    detail::append(os, args...);
    write(Level::error, os.str());
}

} // namespace ypm::log
