#pragma once
/// \file log.hpp
/// \brief Minimal leveled logger. Long-running flows (GA generations, MC
///        batches) report progress through this; tests silence it.

#include <functional>
#include <sstream>
#include <string>
#include <vector>

namespace ypm::log {

enum class Level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Set the global threshold; messages below it are dropped.
void set_level(Level level);

/// Current global threshold.
[[nodiscard]] Level level();

/// Emit one line at the given level (thread safe).
void write(Level level, const std::string& message);

/// Short lower-case name of a level ("debug", "info", ...).
[[nodiscard]] const char* level_name(Level level);

/// Structured sink: receives every emitted message instead of the stderr
/// line. Invoked under the logger's internal mutex, so a sink needs no
/// locking of its own but must not call back into the logger.
using Sink = std::function<void(Level, const std::string&)>;

/// Install (or, with nullptr, remove) the process-wide structured sink.
/// While a sink is installed nothing is written to stderr - service
/// deployments ship JSON lines, tests assert on captured warnings.
void set_sink(Sink sink);

/// A Sink appending one JSON object per message to `lines`, e.g.
/// {"level":"warn","msg":"..."}. The logger's mutex serialises appends;
/// readers must quiesce logging threads first (tests join their work
/// before asserting).
[[nodiscard]] Sink json_lines_sink(std::vector<std::string>& lines);

namespace detail {
inline void append(std::ostringstream&) {}
template <typename T, typename... Rest>
void append(std::ostringstream& os, const T& v, const Rest&... rest) {
    os << v;
    append(os, rest...);
}
} // namespace detail

/// Variadic convenience: log::info("gen ", g, " best ", f);
template <typename... Args>
void debug(const Args&... args) {
    if (level() > Level::debug) return;
    std::ostringstream os;
    detail::append(os, args...);
    write(Level::debug, os.str());
}

template <typename... Args>
void info(const Args&... args) {
    if (level() > Level::info) return;
    std::ostringstream os;
    detail::append(os, args...);
    write(Level::info, os.str());
}

template <typename... Args>
void warn(const Args&... args) {
    if (level() > Level::warn) return;
    std::ostringstream os;
    detail::append(os, args...);
    write(Level::warn, os.str());
}

template <typename... Args>
void error(const Args&... args) {
    if (level() > Level::error) return;
    std::ostringstream os;
    detail::append(os, args...);
    write(Level::error, os.str());
}

} // namespace ypm::log
