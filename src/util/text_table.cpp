#include "util/text_table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace ypm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw InvalidInputError("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size())
        throw InvalidInputError("TextTable: row arity mismatch");
    rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit_row(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

std::string TextTable::to_csv() const {
    auto field = [](const std::string& s) {
        if (s.find(',') == std::string::npos && s.find('"') == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"') out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream os;
    for (std::size_t c = 0; c < header_.size(); ++c)
        os << field(header_[c]) << (c + 1 < header_.size() ? "," : "\n");
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            os << field(row[c]) << (c + 1 < row.size() ? "," : "\n");
    return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
    return os << t.to_string();
}

} // namespace ypm
