#pragma once
/// \file mathx.hpp
/// \brief Numeric helpers used throughout: grids, dB conversion, clamping,
///        approximate comparison and simple interpolation.

#include <cmath>
#include <cstddef>
#include <vector>

namespace ypm::mathx {

inline constexpr double pi = 3.14159265358979323846;

/// n points uniformly spaced on [a, b] inclusive (n >= 2; n==1 yields {a}).
[[nodiscard]] std::vector<double> linspace(double a, double b, std::size_t n);

/// n points logarithmically spaced on [a, b] inclusive (a, b > 0).
[[nodiscard]] std::vector<double> logspace(double a, double b, std::size_t n);

/// Voltage-ratio decibels: 20*log10(|x|).
[[nodiscard]] inline double db20(double x) { return 20.0 * std::log10(std::fabs(x)); }

/// Inverse of db20.
[[nodiscard]] inline double undb20(double db) { return std::pow(10.0, db / 20.0); }

[[nodiscard]] inline double deg_from_rad(double r) { return r * 180.0 / pi; }
[[nodiscard]] inline double rad_from_deg(double d) { return d * pi / 180.0; }

/// Clamp x into [lo, hi].
[[nodiscard]] inline double clamp(double x, double lo, double hi) {
    return x < lo ? lo : (x > hi ? hi : x);
}

/// Linear blend a + t*(b - a).
[[nodiscard]] inline double lerp(double a, double b, double t) { return a + t * (b - a); }

/// Relative/absolute tolerant comparison.
[[nodiscard]] bool approx_equal(double a, double b, double rel = 1e-9, double abs = 1e-12);

/// Map x in [lo, hi] to [0, 1] (no clamping; degenerate range maps to 0).
[[nodiscard]] double normalize(double x, double lo, double hi);

/// Map t in [0, 1] back to [lo, hi].
[[nodiscard]] inline double denormalize(double t, double lo, double hi) {
    return lo + t * (hi - lo);
}

/// Piecewise-linear interpolation of (xs, ys) at x. xs must be strictly
/// increasing. Out-of-range x clamps to the end values.
[[nodiscard]] double interp_linear(const std::vector<double>& xs,
                                   const std::vector<double>& ys, double x);

/// Index i such that xs[i] <= x < xs[i+1] (clamped to [0, n-2]).
[[nodiscard]] std::size_t bracket(const std::vector<double>& xs, double x);

/// Wrap a phase in degrees into (-360, 0] - the convention used for Bode
/// phase of a negative-feedback loop gain.
[[nodiscard]] double wrap_phase_deg(double deg);

} // namespace ypm::mathx
