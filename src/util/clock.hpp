#pragma once
/// \file clock.hpp
/// \brief The repo's single monotonic clock seam.
///
/// Every timing measurement - the engine ledger's wall_seconds, the flow's
/// FlowTimings, bench harness timers and the obs tracer's span timestamps -
/// reads this clock and nothing else. Centralising the read keeps the
/// wall-clock ban (scripts/lint_invariants.py, rule `raw-clock`) meaningful:
/// this header is the one allowlisted `steady_clock::now` site, so any other
/// direct clock call in src/ fails the linter. It also gives every consumer
/// the same epoch, which is what lets trace spans from different layers
/// (engine batches, pool tasks, flow steps) land on one coherent timeline.
///
/// Ticks are integer nanoseconds since an arbitrary process-local epoch:
/// cheap to store per-span, exact to difference, and trivially converted to
/// the microsecond doubles the Chrome trace format wants.

#include <chrono>
#include <cstdint>

namespace ypm::util {

/// Monotonic nanoseconds since an arbitrary (process-local) epoch.
using TickNs = std::int64_t;

/// Read the monotonic clock. The only raw-clock site in the repo
/// (allowlisted in scripts/lint_allowlist.txt).
[[nodiscard]] inline TickNs now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Seconds elapsed from tick `t0` to tick `t1`.
[[nodiscard]] inline double seconds_between(TickNs t0, TickNs t1) {
    return static_cast<double>(t1 - t0) * 1e-9;
}

/// Seconds elapsed since tick `t0`.
[[nodiscard]] inline double seconds_since(TickNs t0) {
    return seconds_between(t0, now_ns());
}

} // namespace ypm::util
