#pragma once
/// \file spline.hpp
/// \brief Piecewise-polynomial interpolants of degree 1, 2 and 3 - the three
///        spline types Verilog-A's $table_model supports (paper section 2.2).
///
/// The cubic spline realises paper eq. (3):
///   S_i(x) = a_i (x-x_i)^3 + b_i (x-x_i)^2 + c_i (x-x_i) + d_i
/// with coefficients chosen for C2 continuity (natural or not-a-knot ends).

#include <cstddef>
#include <memory>
#include <vector>

namespace ypm::table {

/// Common interface for the three interpolant degrees.
class Interpolant {
public:
    virtual ~Interpolant() = default;

    /// Value at x. x may lie outside [x_front, x_back]; concrete classes
    /// evaluate their end polynomial there (extrapolation *policy* - clamp /
    /// linear / error - is applied by TableModel1d, not here).
    [[nodiscard]] virtual double eval(double x) const = 0;

    /// First derivative at x.
    [[nodiscard]] virtual double derivative(double x) const = 0;

    /// Abscissa range covered by the data.
    [[nodiscard]] virtual double x_min() const = 0;
    [[nodiscard]] virtual double x_max() const = 0;

    /// Polynomial degree (1, 2 or 3).
    [[nodiscard]] virtual int degree() const = 0;
};

/// Degree-1: piecewise linear.
class LinearInterp final : public Interpolant {
public:
    /// \param xs strictly increasing abscissae (>= 2 points)
    /// \param ys matching ordinates
    LinearInterp(std::vector<double> xs, std::vector<double> ys);

    [[nodiscard]] double eval(double x) const override;
    [[nodiscard]] double derivative(double x) const override;
    [[nodiscard]] double x_min() const override { return xs_.front(); }
    [[nodiscard]] double x_max() const override { return xs_.back(); }
    [[nodiscard]] int degree() const override { return 1; }

private:
    std::vector<double> xs_, ys_;
};

/// Degree-2: C1 piecewise quadratic; the free end condition sets the initial
/// slope to the first-interval secant.
class QuadraticSpline final : public Interpolant {
public:
    QuadraticSpline(std::vector<double> xs, std::vector<double> ys);

    [[nodiscard]] double eval(double x) const override;
    [[nodiscard]] double derivative(double x) const override;
    [[nodiscard]] double x_min() const override { return xs_.front(); }
    [[nodiscard]] double x_max() const override { return xs_.back(); }
    [[nodiscard]] int degree() const override { return 2; }

private:
    std::vector<double> xs_, ys_;
    std::vector<double> b_; ///< slope at each knot
    std::vector<double> c_; ///< quadratic coefficient per interval
};

/// End condition for the cubic spline.
enum class CubicBc {
    natural,    ///< second derivative zero at both ends
    not_a_knot, ///< third derivative continuous across first/last interior knot
};

/// Degree-3: C2 cubic spline (paper eq. 3).
class CubicSpline final : public Interpolant {
public:
    CubicSpline(std::vector<double> xs, std::vector<double> ys,
                CubicBc bc = CubicBc::natural);

    [[nodiscard]] double eval(double x) const override;
    [[nodiscard]] double derivative(double x) const override;
    [[nodiscard]] double second_derivative(double x) const;
    [[nodiscard]] double x_min() const override { return xs_.front(); }
    [[nodiscard]] double x_max() const override { return xs_.back(); }
    [[nodiscard]] int degree() const override { return 3; }

    /// Per-interval coefficients of eq. (3): S_i(x) = a(x-xi)^3 + b(x-xi)^2
    /// + c(x-xi) + d. Exposed for coefficient-level unit tests.
    struct Coeffs { double a, b, c, d; };
    [[nodiscard]] Coeffs coeffs(std::size_t interval) const;

    [[nodiscard]] std::size_t intervals() const { return xs_.size() - 1; }

private:
    std::vector<double> xs_, ys_;
    std::vector<double> m_; ///< second derivative at each knot
};

/// Factory: build the interpolant of the requested degree (1, 2 or 3).
/// Degrades gracefully: with 2 points any request yields linear; with 3
/// points a cubic request yields quadratic.
[[nodiscard]] std::unique_ptr<Interpolant>
make_interpolant(int degree, std::vector<double> xs, std::vector<double> ys);

} // namespace ypm::table
