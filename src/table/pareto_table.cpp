#include "table/pareto_table.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "table/spline.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::table {

struct ParetoTable::Splines {
    std::unique_ptr<Interpolant> obj0;
    std::unique_ptr<Interpolant> obj1;
    std::vector<std::unique_ptr<Interpolant>> payload;
};

ParetoTable::ParetoTable(std::vector<std::string> payload_names,
                         std::vector<FrontPoint> points)
    : names_(std::move(payload_names)) {
    if (points.size() < 3)
        throw InvalidInputError("ParetoTable: need >= 3 front points");
    for (const auto& p : points)
        if (p.payload.size() != names_.size())
            throw InvalidInputError("ParetoTable: payload arity mismatch");

    std::sort(points.begin(), points.end(),
              [](const FrontPoint& a, const FrontPoint& b) { return a.obj0 < b.obj0; });

    // Merge near-duplicate obj0 knots (spline abscissae must be strictly
    // increasing). Tolerance is relative to the covered range.
    const double span = points.back().obj0 - points.front().obj0;
    const double eps = std::max(std::fabs(span) * 1e-9, 1e-300);
    std::vector<FrontPoint> merged;
    merged.reserve(points.size());
    std::size_t i = 0;
    while (i < points.size()) {
        FrontPoint acc = points[i];
        std::size_t count = 1;
        while (i + count < points.size() &&
               points[i + count].obj0 - points[i].obj0 <= eps) {
            acc.obj1 += points[i + count].obj1;
            for (std::size_t c = 0; c < acc.payload.size(); ++c)
                acc.payload[c] += points[i + count].payload[c];
            ++count;
        }
        acc.obj1 /= static_cast<double>(count);
        for (auto& v : acc.payload) v /= static_cast<double>(count);
        merged.push_back(std::move(acc));
        i += count;
    }
    if (merged.size() < 3)
        throw InvalidInputError("ParetoTable: fewer than 3 distinct front points "
                                "after merging duplicates");

    obj0_lo_ = merged.front().obj0;
    obj0_hi_ = merged.back().obj0;
    auto [mn, mx] = std::minmax_element(
        merged.begin(), merged.end(),
        [](const FrontPoint& a, const FrontPoint& b) { return a.obj1 < b.obj1; });
    obj1_lo_ = mn->obj1;
    obj1_hi_ = mx->obj1;

    // Normalised arc length along the front.
    const double d0 = std::max(obj0_hi_ - obj0_lo_, 1e-300);
    const double d1 = std::max(obj1_hi_ - obj1_lo_, 1e-300);
    s_.resize(merged.size());
    s_[0] = 0.0;
    for (std::size_t k = 1; k < merged.size(); ++k) {
        const double dx = (merged[k].obj0 - merged[k - 1].obj0) / d0;
        const double dy = (merged[k].obj1 - merged[k - 1].obj1) / d1;
        s_[k] = s_[k - 1] + std::hypot(dx, dy);
    }
    const double total = s_.back();
    if (total <= 0.0)
        throw InvalidInputError("ParetoTable: degenerate front (zero arc length)");
    for (auto& s : s_) s /= total;
    // Guard against numerically-equal consecutive knots.
    for (std::size_t k = 1; k < s_.size(); ++k)
        if (s_[k] <= s_[k - 1]) s_[k] = std::nextafter(s_[k - 1], 2.0);

    col_obj0_.resize(merged.size());
    col_obj1_.resize(merged.size());
    col_payload_.assign(names_.size(), std::vector<double>(merged.size()));
    for (std::size_t k = 0; k < merged.size(); ++k) {
        col_obj0_[k] = merged[k].obj0;
        col_obj1_[k] = merged[k].obj1;
        for (std::size_t c = 0; c < names_.size(); ++c)
            col_payload_[c][k] = merged[k].payload[c];
    }

    auto sp = std::make_shared<Splines>();
    sp->obj0 = make_interpolant(3, s_, col_obj0_);
    sp->obj1 = make_interpolant(3, s_, col_obj1_);
    sp->payload.reserve(names_.size());
    for (std::size_t c = 0; c < names_.size(); ++c)
        sp->payload.push_back(make_interpolant(3, s_, col_payload_[c]));
    splines_ = std::move(sp);
}

double ParetoTable::obj0_at(double s) const {
    return splines_->obj0->eval(mathx::clamp(s, 0.0, 1.0));
}

double ParetoTable::obj1_at(double s) const {
    return splines_->obj1->eval(mathx::clamp(s, 0.0, 1.0));
}

double ParetoTable::payload_at(std::size_t column, double s) const {
    if (column >= names_.size())
        throw InvalidInputError("ParetoTable: payload column out of range");
    return splines_->payload[column]->eval(mathx::clamp(s, 0.0, 1.0));
}

double ParetoTable::s_at_obj0(double obj0) const {
    // obj0 is monotone along the front (it is the sort key); invert by
    // monotone bisection on the spline.
    if (obj0 <= obj0_lo_) return 0.0;
    if (obj0 >= obj0_hi_) return 1.0;
    double lo = 0.0, hi = 1.0;
    const bool increasing = col_obj0_.back() > col_obj0_.front();
    for (int it = 0; it < 64; ++it) {
        const double mid = 0.5 * (lo + hi);
        const double v = splines_->obj0->eval(mid);
        if ((v < obj0) == increasing)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

namespace {
double sqr(double v) { return v * v; }
} // namespace

double ParetoTable::project(double obj0, double obj1) const {
    const double d0 = std::max(obj0_hi_ - obj0_lo_, 1e-300);
    const double d1 = std::max(obj1_hi_ - obj1_lo_, 1e-300);
    auto dist2 = [&](double s) {
        return sqr((splines_->obj0->eval(s) - obj0) / d0) +
               sqr((splines_->obj1->eval(s) - obj1) / d1);
    };
    // Coarse scan then golden-section refinement around the best cell.
    constexpr std::size_t scan = 257;
    double best_s = 0.0;
    double best_d = dist2(0.0);
    for (std::size_t k = 1; k < scan; ++k) {
        const double s = static_cast<double>(k) / (scan - 1);
        const double d = dist2(s);
        if (d < best_d) {
            best_d = d;
            best_s = s;
        }
    }
    const double cell = 1.0 / (scan - 1);
    double lo = std::max(0.0, best_s - cell);
    double hi = std::min(1.0, best_s + cell);
    constexpr double phi = 0.6180339887498949;
    double x1 = hi - phi * (hi - lo);
    double x2 = lo + phi * (hi - lo);
    double f1 = dist2(x1);
    double f2 = dist2(x2);
    for (int it = 0; it < 80 && (hi - lo) > 1e-12; ++it) {
        if (f1 < f2) {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = dist2(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = dist2(x2);
        }
    }
    return 0.5 * (lo + hi);
}

double ParetoTable::projection_residual(double obj0, double obj1) const {
    const double s = project(obj0, obj1);
    const double d0 = std::max(obj0_hi_ - obj0_lo_, 1e-300);
    const double d1 = std::max(obj1_hi_ - obj1_lo_, 1e-300);
    return std::hypot((splines_->obj0->eval(s) - obj0) / d0,
                      (splines_->obj1->eval(s) - obj1) / d1);
}

std::vector<double> ParetoTable::lookup(double obj0, double obj1) const {
    const double s = project(obj0, obj1);
    std::vector<double> out(names_.size());
    for (std::size_t c = 0; c < names_.size(); ++c) out[c] = payload_at(c, s);
    return out;
}

} // namespace ypm::table
