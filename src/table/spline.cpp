#include "table/spline.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::table {

namespace {

void check_data(const std::vector<double>& xs, const std::vector<double>& ys,
                std::size_t min_points, const char* who) {
    if (xs.size() != ys.size())
        throw InvalidInputError(std::string(who) + ": xs/ys size mismatch");
    if (xs.size() < min_points)
        throw InvalidInputError(std::string(who) + ": need at least " +
                                std::to_string(min_points) + " points, got " +
                                std::to_string(xs.size()));
    for (std::size_t i = 0; i + 1 < xs.size(); ++i)
        if (!(xs[i] < xs[i + 1]))
            throw InvalidInputError(std::string(who) +
                                    ": abscissae must be strictly increasing");
    for (double v : xs)
        if (!std::isfinite(v))
            throw InvalidInputError(std::string(who) + ": non-finite abscissa");
    for (double v : ys)
        if (!std::isfinite(v))
            throw InvalidInputError(std::string(who) + ": non-finite ordinate");
}

} // namespace

// ---------------------------------------------------------------- Linear

LinearInterp::LinearInterp(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
    check_data(xs_, ys_, 2, "LinearInterp");
}

double LinearInterp::eval(double x) const {
    const std::size_t i = mathx::bracket(xs_, x);
    const double t = (x - xs_[i]) / (xs_[i + 1] - xs_[i]);
    return mathx::lerp(ys_[i], ys_[i + 1], t);
}

double LinearInterp::derivative(double x) const {
    const std::size_t i = mathx::bracket(xs_, x);
    return (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);
}

// ------------------------------------------------------------- Quadratic

QuadraticSpline::QuadraticSpline(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
    check_data(xs_, ys_, 3, "QuadraticSpline");
    const std::size_t n = xs_.size();
    b_.resize(n);
    c_.resize(n - 1);
    // Free end condition: initial slope equals the first secant, then C1
    // continuity propagates: b_{i+1} = 2*secant_i - b_i.
    b_[0] = (ys_[1] - ys_[0]) / (xs_[1] - xs_[0]);
    for (std::size_t i = 0; i + 1 < n; ++i) {
        const double h = xs_[i + 1] - xs_[i];
        const double secant = (ys_[i + 1] - ys_[i]) / h;
        b_[i + 1] = 2.0 * secant - b_[i];
        c_[i] = (b_[i + 1] - b_[i]) / (2.0 * h);
    }
}

double QuadraticSpline::eval(double x) const {
    const std::size_t i = mathx::bracket(xs_, x);
    const double dx = x - xs_[i];
    return ys_[i] + b_[i] * dx + c_[i] * dx * dx;
}

double QuadraticSpline::derivative(double x) const {
    const std::size_t i = mathx::bracket(xs_, x);
    const double dx = x - xs_[i];
    return b_[i] + 2.0 * c_[i] * dx;
}

// ----------------------------------------------------------------- Cubic

CubicSpline::CubicSpline(std::vector<double> xs, std::vector<double> ys, CubicBc bc)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
    check_data(xs_, ys_, 3, "CubicSpline");
    const std::size_t n = xs_.size();

    // Solve the tridiagonal system for knot second derivatives m_i.
    std::vector<double> a(n, 0.0), b(n, 0.0), c(n, 0.0), d(n, 0.0);
    auto h = [&](std::size_t i) { return xs_[i + 1] - xs_[i]; };

    for (std::size_t i = 1; i + 1 < n; ++i) {
        a[i] = h(i - 1);
        b[i] = 2.0 * (h(i - 1) + h(i));
        c[i] = h(i);
        d[i] = 6.0 * ((ys_[i + 1] - ys_[i]) / h(i) - (ys_[i] - ys_[i - 1]) / h(i - 1));
    }

    if (bc == CubicBc::natural) {
        b[0] = 1.0;
        b[n - 1] = 1.0; // m_0 = m_{n-1} = 0
    } else {
        // Not-a-knot: S''' continuous across x_1 and x_{n-2}:
        // h1*m0 - (h0+h1)*m1 + h0*m2 = 0 (and mirrored at the other end).
        b[0] = h(1);
        c[0] = -(h(0) + h(1));
        d[0] = 0.0;
        // The extra m2 coefficient is folded in by a pre-elimination step.
        // Row 0: h1*m0 - (h0+h1)*m1 + h0*m2 = 0. Eliminate m2 using row 1.
        // For simplicity (n >= 4 required for true not-a-knot) fall back to
        // natural when too few points.
        if (n < 4) {
            b[0] = 1.0;
            c[0] = 0.0;
        }
        b[n - 1] = 1.0; // handled below
    }

    m_.assign(n, 0.0);
    if (bc == CubicBc::natural || n < 4) {
        // Thomas algorithm on the interior unknowns.
        std::vector<double> cp(n, 0.0), dp(n, 0.0);
        cp[0] = c[0] / b[0];
        dp[0] = d[0] / b[0];
        for (std::size_t i = 1; i < n; ++i) {
            const double denom = b[i] - a[i] * cp[i - 1];
            cp[i] = c[i] / denom;
            dp[i] = (d[i] - a[i] * dp[i - 1]) / denom;
        }
        m_[n - 1] = dp[n - 1];
        for (std::size_t i = n - 1; i-- > 0;) m_[i] = dp[i] - cp[i] * m_[i + 1];
    } else {
        // Not-a-knot via a small dense solve (n is tiny for table models).
        // Equations: interior C2 rows plus the two not-a-knot rows.
        std::vector<std::vector<double>> mat(n, std::vector<double>(n, 0.0));
        std::vector<double> rhs(n, 0.0);
        mat[0][0] = h(1);
        mat[0][1] = -(h(0) + h(1));
        mat[0][2] = h(0);
        for (std::size_t i = 1; i + 1 < n; ++i) {
            mat[i][i - 1] = a[i];
            mat[i][i] = b[i];
            mat[i][i + 1] = c[i];
            rhs[i] = d[i];
        }
        mat[n - 1][n - 3] = h(n - 2);
        mat[n - 1][n - 2] = -(h(n - 3) + h(n - 2));
        mat[n - 1][n - 1] = h(n - 3);

        // Gaussian elimination with partial pivoting.
        for (std::size_t k = 0; k < n; ++k) {
            std::size_t piv = k;
            for (std::size_t i = k + 1; i < n; ++i)
                if (std::fabs(mat[i][k]) > std::fabs(mat[piv][k])) piv = i;
            std::swap(mat[k], mat[piv]);
            std::swap(rhs[k], rhs[piv]);
            if (mat[k][k] == 0.0)
                throw NumericalError("CubicSpline: degenerate not-a-knot system");
            for (std::size_t i = k + 1; i < n; ++i) {
                const double f = mat[i][k] / mat[k][k];
                if (f == 0.0) continue;
                for (std::size_t j = k; j < n; ++j) mat[i][j] -= f * mat[k][j];
                rhs[i] -= f * rhs[k];
            }
        }
        for (std::size_t ii = n; ii-- > 0;) {
            double acc = rhs[ii];
            for (std::size_t j = ii + 1; j < n; ++j) acc -= mat[ii][j] * m_[j];
            m_[ii] = acc / mat[ii][ii];
        }
    }
}

CubicSpline::Coeffs CubicSpline::coeffs(std::size_t i) const {
    if (i + 1 >= xs_.size())
        throw InvalidInputError("CubicSpline::coeffs: interval out of range");
    const double h = xs_[i + 1] - xs_[i];
    Coeffs k{};
    k.a = (m_[i + 1] - m_[i]) / (6.0 * h);
    k.b = m_[i] / 2.0;
    k.c = (ys_[i + 1] - ys_[i]) / h - h * (2.0 * m_[i] + m_[i + 1]) / 6.0;
    k.d = ys_[i];
    return k;
}

double CubicSpline::eval(double x) const {
    const std::size_t i = mathx::bracket(xs_, x);
    const Coeffs k = coeffs(i);
    const double dx = x - xs_[i];
    return ((k.a * dx + k.b) * dx + k.c) * dx + k.d;
}

double CubicSpline::derivative(double x) const {
    const std::size_t i = mathx::bracket(xs_, x);
    const Coeffs k = coeffs(i);
    const double dx = x - xs_[i];
    return (3.0 * k.a * dx + 2.0 * k.b) * dx + k.c;
}

double CubicSpline::second_derivative(double x) const {
    const std::size_t i = mathx::bracket(xs_, x);
    const Coeffs k = coeffs(i);
    const double dx = x - xs_[i];
    return 6.0 * k.a * dx + 2.0 * k.b;
}

// --------------------------------------------------------------- Factory

std::unique_ptr<Interpolant> make_interpolant(int degree, std::vector<double> xs,
                                              std::vector<double> ys) {
    if (degree < 1 || degree > 3)
        throw InvalidInputError("make_interpolant: degree must be 1, 2 or 3");
    const std::size_t n = xs.size();
    // Graceful degradation mirrors $table_model: fewer points than the
    // degree needs drops to the highest degree the data supports.
    int effective = degree;
    if (n == 2) effective = 1;
    else if (n == 3 && degree == 3) effective = 2;

    switch (effective) {
    case 1: return std::make_unique<LinearInterp>(std::move(xs), std::move(ys));
    case 2: return std::make_unique<QuadraticSpline>(std::move(xs), std::move(ys));
    default: return std::make_unique<CubicSpline>(std::move(xs), std::move(ys));
    }
}

} // namespace ypm::table
