#pragma once
/// \file tbl_io.hpp
/// \brief Reader/writer for Verilog-A style `.tbl` data files.
///
/// Format (one sample per line, matching what $table_model consumes):
///     # comment
///     <x> [<y> ...] <value>
/// All lines must share the same column count. Columns 1..N-1 are
/// coordinates, the last column is the value. Engineering suffixes are
/// accepted on read; writes use full-precision %.17g.

#include <cstddef>
#include <string>
#include <vector>

namespace ypm::table {

/// In-memory representation of a .tbl file.
struct TblData {
    std::size_t coord_columns = 0;            ///< N-1 coordinate columns
    std::vector<std::vector<double>> coords;  ///< per-sample coordinates
    std::vector<double> values;               ///< per-sample value

    [[nodiscard]] std::size_t samples() const { return values.size(); }
};

/// Parse .tbl text. \throws ypm::InvalidInputError on ragged rows or
/// unparsable numbers.
[[nodiscard]] TblData parse_tbl(const std::string& text);

/// Read a .tbl file from disk. \throws ypm::IoError if unreadable.
[[nodiscard]] TblData read_tbl(const std::string& path);

/// Serialise to .tbl text. \param header optional comment lines (without #).
[[nodiscard]] std::string format_tbl(const TblData& data,
                                     const std::vector<std::string>& header = {});

/// Write a .tbl file to disk. \throws ypm::IoError if unwritable.
void write_tbl(const std::string& path, const TblData& data,
               const std::vector<std::string>& header = {});

/// Convenience: build 1-D tbl data from matched vectors.
[[nodiscard]] TblData make_tbl_1d(const std::vector<double>& xs,
                                  const std::vector<double>& values);

/// Convenience: build 2-D tbl data from matched vectors.
[[nodiscard]] TblData make_tbl_2d(const std::vector<double>& xs,
                                  const std::vector<double>& ys,
                                  const std::vector<double>& values);

} // namespace ypm::table
