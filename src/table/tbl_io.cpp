#include "table/tbl_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace ypm::table {

TblData parse_tbl(const std::string& text) {
    TblData data;
    std::istringstream is(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        const std::string stripped = str::trim(line);
        if (stripped.empty() || stripped[0] == '#' || stripped[0] == '*') continue;
        const auto fields = str::split_ws(stripped);
        if (fields.size() < 2)
            throw InvalidInputError("tbl line " + std::to_string(line_no) +
                                    ": need at least one coordinate and a value");
        if (data.coord_columns == 0) {
            data.coord_columns = fields.size() - 1;
        } else if (fields.size() - 1 != data.coord_columns) {
            throw InvalidInputError("tbl line " + std::to_string(line_no) +
                                    ": ragged row (expected " +
                                    std::to_string(data.coord_columns + 1) +
                                    " columns)");
        }
        std::vector<double> coord(data.coord_columns);
        for (std::size_t c = 0; c < data.coord_columns; ++c) {
            const auto v = units::try_parse_value(fields[c]);
            if (!v)
                throw InvalidInputError("tbl line " + std::to_string(line_no) +
                                        ": bad number '" + fields[c] + "'");
            coord[c] = *v;
        }
        const auto val = units::try_parse_value(fields.back());
        if (!val)
            throw InvalidInputError("tbl line " + std::to_string(line_no) +
                                    ": bad value '" + fields.back() + "'");
        data.coords.push_back(std::move(coord));
        data.values.push_back(*val);
    }
    if (data.samples() == 0)
        throw InvalidInputError("tbl: no data rows found");
    return data;
}

TblData read_tbl(const std::string& path) {
    std::ifstream f(path);
    if (!f) throw IoError("tbl: cannot open '" + path + "' for reading");
    std::ostringstream ss;
    ss << f.rdbuf();
    try {
        return parse_tbl(ss.str());
    } catch (const InvalidInputError& e) {
        throw InvalidInputError(path + ": " + e.what());
    }
}

std::string format_tbl(const TblData& data, const std::vector<std::string>& header) {
    std::ostringstream os;
    for (const auto& h : header) os << "# " << h << '\n';
    for (std::size_t i = 0; i < data.samples(); ++i) {
        for (std::size_t c = 0; c < data.coord_columns; ++c)
            os << str::fmt_double(data.coords[i][c]) << ' ';
        os << str::fmt_double(data.values[i]) << '\n';
    }
    return os.str();
}

void write_tbl(const std::string& path, const TblData& data,
               const std::vector<std::string>& header) {
    std::ofstream f(path);
    if (!f) throw IoError("tbl: cannot open '" + path + "' for writing");
    f << format_tbl(data, header);
    if (!f) throw IoError("tbl: write failed for '" + path + "'");
}

TblData make_tbl_1d(const std::vector<double>& xs, const std::vector<double>& values) {
    if (xs.size() != values.size())
        throw InvalidInputError("make_tbl_1d: size mismatch");
    TblData d;
    d.coord_columns = 1;
    d.coords.reserve(xs.size());
    for (double x : xs) d.coords.push_back({x});
    d.values = values;
    return d;
}

TblData make_tbl_2d(const std::vector<double>& xs, const std::vector<double>& ys,
                    const std::vector<double>& values) {
    if (xs.size() != ys.size() || xs.size() != values.size())
        throw InvalidInputError("make_tbl_2d: size mismatch");
    TblData d;
    d.coord_columns = 2;
    d.coords.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) d.coords.push_back({xs[i], ys[i]});
    d.values = values;
    return d;
}

} // namespace ypm::table
