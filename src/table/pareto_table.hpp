#pragma once
/// \file pareto_table.hpp
/// \brief Scattered-data table over a 2-objective Pareto front.
///
/// The paper's lp*_data.tbl lookups interpolate designable parameters from a
/// (gain, phase-margin) query, but Pareto points form a 1-D curve in the 2-D
/// objective space rather than a rectilinear grid. ParetoTable makes that
/// lookup well-defined: the front is parameterised by normalised arc length
/// s in objective space, every column (both objectives and every payload
/// parameter) is fitted as a cubic spline of s, and a 2-D query projects the
/// requested point onto the front before reading the payload splines.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace ypm::table {

/// One front point: objective pair plus payload (designable parameters).
struct FrontPoint {
    double obj0 = 0.0;            ///< e.g. open-loop gain (dB)
    double obj1 = 0.0;            ///< e.g. phase margin (deg)
    std::vector<double> payload;  ///< e.g. W1..W4, L1..L4
};

class ParetoTable {
public:
    /// \param payload_names column names for the payload entries
    /// \param points front points; sorted internally by obj0, near-duplicate
    ///        obj0 values merged. Needs >= 3 distinct points.
    ParetoTable(std::vector<std::string> payload_names,
                std::vector<FrontPoint> points);

    /// Number of payload columns.
    [[nodiscard]] std::size_t payload_columns() const { return names_.size(); }

    /// Payload column names.
    [[nodiscard]] const std::vector<std::string>& payload_names() const {
        return names_;
    }

    /// Number of (merged) front points.
    [[nodiscard]] std::size_t points() const { return s_.size(); }

    /// Project (obj0, obj1) onto the front; returns arc-length s in [0, 1].
    [[nodiscard]] double project(double obj0, double obj1) const;

    /// Distance (in normalised objective space) from the query to the front.
    /// Useful to detect queries far from any achievable design.
    [[nodiscard]] double projection_residual(double obj0, double obj1) const;

    /// Objectives along the front at parameter s.
    [[nodiscard]] double obj0_at(double s) const;
    [[nodiscard]] double obj1_at(double s) const;

    /// s such that obj0(s) == obj0 (obj0 is monotone along the front).
    /// Clamps to the end points outside the covered range.
    [[nodiscard]] double s_at_obj0(double obj0) const;

    /// Payload column value at front parameter s.
    [[nodiscard]] double payload_at(std::size_t column, double s) const;

    /// Arc-length knots of the (merged) front points, ascending in [0, 1].
    [[nodiscard]] const std::vector<double>& knots() const { return s_; }

    /// Exact stored values at knot k (no interpolation).
    [[nodiscard]] double obj0_knot(std::size_t k) const { return col_obj0_.at(k); }
    [[nodiscard]] double obj1_knot(std::size_t k) const { return col_obj1_.at(k); }
    [[nodiscard]] double payload_knot(std::size_t column, std::size_t k) const {
        return col_payload_.at(column).at(k);
    }

    /// All payload values for a 2-D objective query (project + read).
    [[nodiscard]] std::vector<double> lookup(double obj0, double obj1) const;

    /// Covered objective ranges.
    [[nodiscard]] double obj0_min() const { return obj0_lo_; }
    [[nodiscard]] double obj0_max() const { return obj0_hi_; }
    [[nodiscard]] double obj1_min() const { return obj1_lo_; }
    [[nodiscard]] double obj1_max() const { return obj1_hi_; }

private:
    std::vector<std::string> names_;
    std::vector<double> s_;                       ///< arc-length knots in [0,1]
    std::vector<double> col_obj0_, col_obj1_;     ///< objective knots
    std::vector<std::vector<double>> col_payload_; ///< [column][knot]
    double obj0_lo_ = 0, obj0_hi_ = 0, obj1_lo_ = 0, obj1_hi_ = 0;

    // Spline evaluation helpers over the knot arrays (built lazily per call
    // would be wasteful; cached as TableModel-free raw splines).
    struct Splines;
    std::shared_ptr<const Splines> splines_;
};

} // namespace ypm::table
