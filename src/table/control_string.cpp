#include "table/control_string.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::table {

namespace {

Extrapolation parse_extrap(char c) {
    switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'C': return Extrapolation::constant;
    case 'L': return Extrapolation::linear;
    case 'E': return Extrapolation::error;
    default:
        throw InvalidInputError(std::string("ControlString: unknown extrapolation '") +
                                c + "' (expected C, L or E)");
    }
}

char extrap_letter(Extrapolation e) {
    switch (e) {
    case Extrapolation::constant: return 'C';
    case Extrapolation::linear: return 'L';
    case Extrapolation::error: return 'E';
    }
    return '?';
}

DimensionControl parse_field(std::string_view field) {
    DimensionControl dc;
    const std::string f = ypm::str::trim(field);
    std::size_t pos = 0;
    if (pos < f.size() && std::isdigit(static_cast<unsigned char>(f[pos]))) {
        dc.degree = f[pos] - '0';
        if (dc.degree < 1 || dc.degree > 3)
            throw InvalidInputError("ControlString: degree must be 1, 2 or 3, got '" +
                                    std::string(1, f[pos]) + "'");
        ++pos;
    }
    if (pos < f.size()) {
        dc.below = dc.above = parse_extrap(f[pos]);
        ++pos;
    }
    if (pos < f.size()) {
        dc.above = parse_extrap(f[pos]);
        ++pos;
    }
    if (pos < f.size())
        throw InvalidInputError("ControlString: trailing characters in field '" +
                                f + "'");
    return dc;
}

} // namespace

ControlString::ControlString(std::string_view text) {
    for (const auto& field : str::split(text, ','))
        dims_.push_back(parse_field(field));
    if (dims_.empty()) dims_.emplace_back();
}

ControlString::ControlString(std::vector<DimensionControl> dims)
    : dims_(std::move(dims)) {
    if (dims_.empty()) dims_.emplace_back();
}

const DimensionControl& ControlString::dim(std::size_t d) const {
    // Verilog-A semantics: missing trailing fields repeat the last one.
    return d < dims_.size() ? dims_[d] : dims_.back();
}

std::string ControlString::to_string() const {
    std::string out;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
        if (i != 0) out += ',';
        out += static_cast<char>('0' + dims_[i].degree);
        out += extrap_letter(dims_[i].below);
        if (dims_[i].above != dims_[i].below) out += extrap_letter(dims_[i].above);
    }
    return out;
}

} // namespace ypm::table
