#pragma once
/// \file control_string.hpp
/// \brief Verilog-A $table_model control-string parsing.
///
/// A control string carries one comma-separated field per table dimension.
/// Each field is an optional interpolation degree digit (1 = linear,
/// 2 = quadratic, 3 = cubic; default 1) followed by zero, one or two
/// extrapolation letters: 'C' clamp (constant), 'L' linear, 'E' error (no
/// extrapolation allowed - the paper's choice, section 3.5: "3E").
/// One letter applies to both ends; two letters give (below, above).

#include <string>
#include <string_view>
#include <vector>

namespace ypm::table {

/// Behaviour when a lookup falls outside the sampled abscissa range.
enum class Extrapolation {
    error,    ///< 'E': raise ypm::RangeError (paper's "no extrapolation")
    constant, ///< 'C': clamp to the end value
    linear,   ///< 'L': extend using the end slope (Verilog-A default)
};

/// Parsed per-dimension control field.
struct DimensionControl {
    int degree = 1;
    Extrapolation below = Extrapolation::linear;
    Extrapolation above = Extrapolation::linear;

    [[nodiscard]] bool operator==(const DimensionControl&) const = default;
};

/// Parsed control string for an N-dimensional table.
class ControlString {
public:
    /// Parse e.g. "3E", "1CL", "3E,3E", "" (empty -> one default field).
    /// \throws ypm::InvalidInputError on malformed text.
    explicit ControlString(std::string_view text);

    /// Build from already-parsed fields.
    explicit ControlString(std::vector<DimensionControl> dims);

    /// Number of dimension fields present in the string.
    [[nodiscard]] std::size_t dimensions() const { return dims_.size(); }

    /// Field for dimension d; if the string has fewer fields than the table
    /// has dimensions, Verilog-A repeats the last field - so does this.
    [[nodiscard]] const DimensionControl& dim(std::size_t d) const;

    /// Canonical text form (e.g. "3E,1CL").
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<DimensionControl> dims_;
};

} // namespace ypm::table
