#pragma once
/// \file table_model.hpp
/// \brief 1-D and 2-D table models - the library's $table_model() equivalent
///        (paper section 3.5).
///
/// TableModel1d maps scattered (x, value) samples through a spline of the
/// control string's degree with its extrapolation policy. TableModel2d works
/// on a rectilinear grid via tensor-product splines. Both can be constructed
/// directly from sample vectors or loaded from a `.tbl` file (tbl_io.hpp).

#include <memory>
#include <string>
#include <vector>

#include "table/control_string.hpp"
#include "table/spline.hpp"

namespace ypm::table {

/// One-dimensional table model: value = f(x).
class TableModel1d {
public:
    /// Build from samples. Samples are sorted by x; duplicate abscissae
    /// (within 1e-12 relative) are merged by averaging their values.
    /// \throws ypm::InvalidInputError with fewer than 2 distinct samples.
    TableModel1d(std::vector<double> xs, std::vector<double> ys,
                 const ControlString& control = ControlString("3E"));

    /// Lookup with the control string's extrapolation policy applied.
    /// \throws ypm::RangeError outside the data when policy is error.
    [[nodiscard]] double eval(double x) const;

    /// Derivative df/dx with the same policy (constant extrapolation has
    /// zero slope outside the range).
    [[nodiscard]] double derivative(double x) const;

    [[nodiscard]] double x_min() const { return interp_->x_min(); }
    [[nodiscard]] double x_max() const { return interp_->x_max(); }
    [[nodiscard]] const ControlString& control() const { return control_; }
    [[nodiscard]] std::size_t samples() const { return n_samples_; }

private:
    ControlString control_;
    std::unique_ptr<Interpolant> interp_;
    std::size_t n_samples_ = 0;
};

/// Two-dimensional grid table model: value = f(x, y).
///
/// Evaluation uses tensor-product interpolation: a spline along y for each
/// grid row x_i gives intermediate values v_i(y), then a spline across the
/// v_i completes the lookup. Each axis honours its own control field
/// (e.g. "3E,3E" as the paper's lp*_data tables use).
class TableModel2d {
public:
    /// \param xs grid abscissae, strictly increasing (size nx >= 2)
    /// \param ys grid ordinates, strictly increasing (size ny >= 2)
    /// \param values row-major nx * ny values: values[i*ny + j] = f(xs[i], ys[j])
    TableModel2d(std::vector<double> xs, std::vector<double> ys,
                 std::vector<double> values,
                 const ControlString& control = ControlString("3E,3E"));

    /// Lookup with per-axis extrapolation policies.
    [[nodiscard]] double eval(double x, double y) const;

    [[nodiscard]] double x_min() const { return xs_.front(); }
    [[nodiscard]] double x_max() const { return xs_.back(); }
    [[nodiscard]] double y_min() const { return ys_.front(); }
    [[nodiscard]] double y_max() const { return ys_.back(); }
    [[nodiscard]] const ControlString& control() const { return control_; }

private:
    [[nodiscard]] double clamp_axis(double v, double lo, double hi,
                                    const DimensionControl& dc, const char* axis) const;

    std::vector<double> xs_, ys_;
    std::vector<double> values_; // row-major
    ControlString control_;
    // Pre-built splines along y, one per x row (reused across evals).
    std::vector<std::unique_ptr<Interpolant>> row_interp_;
};

} // namespace ypm::table
