#include "table/table_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::table {

namespace {

/// Sort samples by x and merge duplicates (average of equal-x values).
void sort_and_merge(std::vector<double>& xs, std::vector<double>& ys) {
    if (xs.size() != ys.size())
        throw InvalidInputError("TableModel1d: xs/ys size mismatch");
    std::vector<std::size_t> order(xs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

    const double span = xs.empty() ? 0.0
                                   : (xs[order.back()] - xs[order.front()]);
    const double eps = std::max(std::fabs(span) * 1e-12, 1e-300);

    std::vector<double> out_x, out_y;
    out_x.reserve(xs.size());
    out_y.reserve(ys.size());
    std::size_t i = 0;
    while (i < order.size()) {
        double x0 = xs[order[i]];
        double sum = ys[order[i]];
        std::size_t count = 1;
        while (i + count < order.size() && xs[order[i + count]] - x0 <= eps) {
            sum += ys[order[i + count]];
            ++count;
        }
        out_x.push_back(x0);
        out_y.push_back(sum / static_cast<double>(count));
        i += count;
    }
    xs = std::move(out_x);
    ys = std::move(out_y);
}

/// Apply an extrapolation policy on one side. Returns the x actually fed to
/// the interpolant plus a flag for constant clamping.
double apply_policy(double x, double lo, double hi, const DimensionControl& dc,
                    const char* what) {
    if (x < lo) {
        switch (dc.below) {
        case Extrapolation::error:
            throw RangeError(std::string(what) + ": lookup " + str::fmt_double(x) +
                             " below table range [" + str::fmt_double(lo) + ", " +
                             str::fmt_double(hi) + "] and control forbids extrapolation");
        case Extrapolation::constant: return lo;
        case Extrapolation::linear: return x; // end polynomial extends naturally
        }
    }
    if (x > hi) {
        switch (dc.above) {
        case Extrapolation::error:
            throw RangeError(std::string(what) + ": lookup " + str::fmt_double(x) +
                             " above table range [" + str::fmt_double(lo) + ", " +
                             str::fmt_double(hi) + "] and control forbids extrapolation");
        case Extrapolation::constant: return hi;
        case Extrapolation::linear: return x;
        }
    }
    return x;
}

/// For linear extrapolation, evaluate using the end slope rather than the
/// end polynomial (matches Verilog-A 'L': first-order continuation).
double eval_with_policy(const Interpolant& f, double x, const DimensionControl& dc,
                        const char* what) {
    const double lo = f.x_min();
    const double hi = f.x_max();
    const double xa = apply_policy(x, lo, hi, dc, what);
    if (xa < lo) {
        // only reachable with linear policy
        return f.eval(lo) + f.derivative(lo) * (xa - lo);
    }
    if (xa > hi) {
        return f.eval(hi) + f.derivative(hi) * (xa - hi);
    }
    return f.eval(xa);
}

} // namespace

// ---------------------------------------------------------------- 1-D

TableModel1d::TableModel1d(std::vector<double> xs, std::vector<double> ys,
                           const ControlString& control)
    : control_(control) {
    sort_and_merge(xs, ys);
    n_samples_ = xs.size();
    if (n_samples_ < 2)
        throw InvalidInputError("TableModel1d: need >= 2 distinct samples");
    interp_ = make_interpolant(control_.dim(0).degree, std::move(xs), std::move(ys));
}

double TableModel1d::eval(double x) const {
    return eval_with_policy(*interp_, x, control_.dim(0), "TableModel1d");
}

double TableModel1d::derivative(double x) const {
    const auto& dc = control_.dim(0);
    const double lo = interp_->x_min();
    const double hi = interp_->x_max();
    if (x < lo) {
        if (dc.below == Extrapolation::error)
            throw RangeError("TableModel1d: derivative below range");
        if (dc.below == Extrapolation::constant) return 0.0;
        return interp_->derivative(lo);
    }
    if (x > hi) {
        if (dc.above == Extrapolation::error)
            throw RangeError("TableModel1d: derivative above range");
        if (dc.above == Extrapolation::constant) return 0.0;
        return interp_->derivative(hi);
    }
    return interp_->derivative(x);
}

// ---------------------------------------------------------------- 2-D

TableModel2d::TableModel2d(std::vector<double> xs, std::vector<double> ys,
                           std::vector<double> values, const ControlString& control)
    : xs_(std::move(xs)), ys_(std::move(ys)), values_(std::move(values)),
      control_(control) {
    if (xs_.size() < 2 || ys_.size() < 2)
        throw InvalidInputError("TableModel2d: each axis needs >= 2 points");
    if (values_.size() != xs_.size() * ys_.size())
        throw InvalidInputError("TableModel2d: values size must be nx*ny");
    for (std::size_t i = 0; i + 1 < xs_.size(); ++i)
        if (!(xs_[i] < xs_[i + 1]))
            throw InvalidInputError("TableModel2d: x grid must be strictly increasing");
    for (std::size_t j = 0; j + 1 < ys_.size(); ++j)
        if (!(ys_[j] < ys_[j + 1]))
            throw InvalidInputError("TableModel2d: y grid must be strictly increasing");

    const int ydeg = control_.dim(1).degree;
    row_interp_.reserve(xs_.size());
    for (std::size_t i = 0; i < xs_.size(); ++i) {
        std::vector<double> row(values_.begin() + static_cast<std::ptrdiff_t>(i * ys_.size()),
                                values_.begin() + static_cast<std::ptrdiff_t>((i + 1) * ys_.size()));
        row_interp_.push_back(make_interpolant(ydeg, ys_, std::move(row)));
    }
}

double TableModel2d::eval(double x, double y) const {
    // Evaluate each row spline at y (with the y-axis policy), then spline
    // the results across x (with the x-axis policy).
    std::vector<double> column(xs_.size());
    for (std::size_t i = 0; i < xs_.size(); ++i)
        column[i] = eval_with_policy(*row_interp_[i], y, control_.dim(1),
                                     "TableModel2d(y)");
    const auto xinterp = make_interpolant(control_.dim(0).degree, xs_, std::move(column));
    return eval_with_policy(*xinterp, x, control_.dim(0), "TableModel2d(x)");
}

} // namespace ypm::table
