#include "core/ota_mc.hpp"

#include <limits>

namespace ypm::core {

mc::McResult run_ota_monte_carlo(eval::Engine& engine,
                                 const circuits::OtaEvaluator& evaluator,
                                 const circuits::OtaSizing& sizing,
                                 const process::ProcessSampler& sampler,
                                 std::size_t samples, Rng& rng) {
    // Geometry inventory once (identical for every sample of this sizing).
    spice::Circuit proto = circuits::build_ota_testbench(sizing, evaluator.config());
    const auto geometries = proto.mos_geometries();

    mc::McConfig cfg;
    cfg.samples = samples;
    return mc::run_monte_carlo(
        engine, cfg, rng,
        [&](std::size_t, Rng& sample_rng) -> std::vector<double> {
            constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();
            const process::Realization real = sampler.sample(sample_rng, geometries);
            const circuits::OtaPerformance perf = evaluator.measure(sizing, real);
            if (!perf.valid) return {nan_v, nan_v};
            return {perf.gain_db, perf.pm_deg};
        });
}

mc::McResult run_ota_monte_carlo(const circuits::OtaEvaluator& evaluator,
                                 const circuits::OtaSizing& sizing,
                                 const process::ProcessSampler& sampler,
                                 std::size_t samples, Rng& rng, bool parallel) {
    eval::EngineConfig engine_config;
    engine_config.parallel = parallel;
    engine_config.cache_capacity = 0;
    eval::Engine engine(engine_config);
    return run_ota_monte_carlo(engine, evaluator, sizing, sampler, samples, rng);
}

} // namespace ypm::core
