#include "core/ota_mc.hpp"

#include <limits>

namespace ypm::core {

mc::McResult run_ota_monte_carlo(eval::Engine& engine,
                                 const circuits::OtaEvaluator& evaluator,
                                 const circuits::OtaSizing& sizing,
                                 const process::ProcessSampler& sampler,
                                 std::size_t samples, Rng& rng) {
    return mc::wait_monte_carlo(
        engine,
        submit_ota_monte_carlo(engine, evaluator, sizing, sampler, samples, rng));
}

mc::McTicket submit_ota_monte_carlo(eval::Engine& engine,
                                    const circuits::OtaEvaluator& evaluator,
                                    const circuits::OtaSizing& sizing,
                                    const process::ProcessSampler& sampler,
                                    std::size_t samples, Rng& rng) {
    // Geometry inventory once (identical for every sample of this sizing).
    spice::Circuit proto = circuits::build_ota_testbench(sizing, evaluator.config());
    auto geometries = proto.mos_geometries();

    mc::McConfig cfg;
    cfg.samples = samples;
    // Chunk kernel: realisations are drawn per sample from the same child
    // streams as the scalar path, then measured through a leased warm
    // testbench prototype - element-wise bit-identical to measuring each
    // sample on a fresh build. Sizing and geometries are captured by value:
    // with async dispatch the kernel outlives this scope (the evaluator and
    // sampler are the caller's lifetime problem, see header).
    return mc::submit_monte_carlo(
        engine, cfg, rng,
        mc::ChunkSampleFn([&evaluator, &sampler, sizing,
                           geometries = std::move(geometries)](
                              std::span<const std::size_t>, std::span<Rng> rngs) {
            constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();
            std::vector<process::Realization> reals;
            reals.reserve(rngs.size());
            for (Rng& sample_rng : rngs)
                reals.push_back(sampler.sample(sample_rng, geometries));
            const auto perfs = evaluator.measure_chunk(sizing, reals);
            std::vector<std::vector<double>> rows;
            rows.reserve(perfs.size());
            for (const circuits::OtaPerformance& perf : perfs) {
                if (!perf.valid)
                    rows.push_back({nan_v, nan_v});
                else
                    rows.push_back({perf.gain_db, perf.pm_deg});
            }
            return rows;
        }));
}

yield::KernelFactory
ota_yield_kernel_factory(const circuits::OtaEvaluator& evaluator,
                         const circuits::OtaSizing& sizing,
                         const process::ProcessSampler& sampler) {
    // Geometry inventory once; every kernel the factory builds shares it.
    spice::Circuit proto = circuits::build_ota_testbench(sizing, evaluator.config());
    auto geometries = proto.mos_geometries();

    return [&evaluator, &sampler, sizing, geometries = std::move(geometries)](
               const process::ProposalMixture& proposal,
               bool record_u) -> mc::ChunkSampleFn {
        return [&evaluator, &sampler, sizing, geometries, proposal, record_u](
                   std::span<const std::size_t>, std::span<Rng> rngs) {
            constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();
            std::vector<process::Realization> reals;
            std::vector<double> log_weights;
            std::vector<std::vector<double>> us;
            reals.reserve(rngs.size());
            log_weights.reserve(rngs.size());
            if (record_u) us.reserve(rngs.size());
            for (Rng& sample_rng : rngs) {
                process::ShiftedDraw draw =
                    sampler.sample_mixture(sample_rng, geometries, proposal, record_u);
                reals.push_back(std::move(draw.realization));
                log_weights.push_back(draw.log_weight);
                if (record_u) us.push_back(std::move(draw.u));
            }
            const auto perfs = evaluator.measure_chunk(sizing, reals);
            std::vector<std::vector<double>> rows;
            rows.reserve(perfs.size());
            for (std::size_t k = 0; k < perfs.size(); ++k) {
                std::vector<double> row;
                row.reserve(3 + (record_u ? us[k].size() : 0));
                if (!perfs[k].valid) {
                    row.push_back(nan_v);
                    row.push_back(nan_v);
                } else {
                    row.push_back(perfs[k].gain_db);
                    row.push_back(perfs[k].pm_deg);
                }
                row.push_back(log_weights[k]);
                if (record_u)
                    row.insert(row.end(), us[k].begin(), us[k].end());
                rows.push_back(std::move(row));
            }
            return rows;
        };
    };
}

std::size_t ota_yield_dimension(const circuits::OtaEvaluator& evaluator,
                                const circuits::OtaSizing& sizing) {
    spice::Circuit proto = circuits::build_ota_testbench(sizing, evaluator.config());
    return process::SampleShift::dimension(proto.mos_geometries().size());
}

mc::McResult run_ota_monte_carlo(const circuits::OtaEvaluator& evaluator,
                                 const circuits::OtaSizing& sizing,
                                 const process::ProcessSampler& sampler,
                                 std::size_t samples, Rng& rng, bool parallel) {
    eval::EngineConfig engine_config;
    engine_config.parallel = parallel;
    engine_config.cache_capacity = 0;
    eval::Engine engine(engine_config);
    return run_ota_monte_carlo(engine, evaluator, sizing, sampler, samples, rng);
}

} // namespace ypm::core
