#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::core {

namespace {

const ParameterSensitivity&
dominant(const std::vector<ParameterSensitivity>& params, bool for_gain) {
    if (params.empty())
        throw InvalidInputError("SensitivityReport: empty parameter list");
    const auto it = std::max_element(
        params.begin(), params.end(),
        [&](const ParameterSensitivity& a, const ParameterSensitivity& b) {
            const double va = for_gain ? a.gain_elasticity : a.pm_elasticity;
            const double vb = for_gain ? b.gain_elasticity : b.pm_elasticity;
            return std::fabs(va) < std::fabs(vb);
        });
    return *it;
}

} // namespace

const ParameterSensitivity& SensitivityReport::dominant_for_gain() const {
    return dominant(parameters, true);
}

const ParameterSensitivity& SensitivityReport::dominant_for_pm() const {
    return dominant(parameters, false);
}

SensitivityReport compute_sensitivities(const circuits::OtaEvaluator& evaluator,
                                        const circuits::OtaSizing& sizing,
                                        double rel_step) {
    if (!(rel_step > 0.0) || rel_step > 0.2)
        throw InvalidInputError("compute_sensitivities: rel_step must be in (0, 0.2]");

    const circuits::OtaPerformance nominal = evaluator.measure(sizing);
    if (!nominal.valid)
        throw NumericalError("compute_sensitivities: nominal point failed: " +
                             nominal.failure);

    SensitivityReport report;
    report.gain_db = nominal.gain_db;
    report.pm_deg = nominal.pm_deg;

    const auto specs = circuits::OtaSizing::parameter_specs();
    const auto base = sizing.to_vector();
    report.parameters.reserve(base.size());

    for (std::size_t k = 0; k < base.size(); ++k) {
        ParameterSensitivity ps;
        ps.name = specs[k].name;
        ps.value = base[k];

        const double h = base[k] * rel_step;
        auto lo = base;
        auto hi = base;
        lo[k] = mathx::clamp(base[k] - h, specs[k].lo, specs[k].hi);
        hi[k] = mathx::clamp(base[k] + h, specs[k].lo, specs[k].hi);
        const double span = hi[k] - lo[k];
        if (span <= 0.0) {
            report.parameters.push_back(ps);
            continue;
        }

        const auto p_lo =
            evaluator.measure(circuits::OtaSizing::from_vector(lo));
        const auto p_hi =
            evaluator.measure(circuits::OtaSizing::from_vector(hi));
        if (p_lo.valid && p_hi.valid) {
            // Elasticity: (relative change in objective)/(relative change
            // in parameter), from the central difference over [lo, hi].
            const double rel_dp = span / base[k];
            ps.gain_elasticity =
                (p_hi.gain_db - p_lo.gain_db) / std::fabs(report.gain_db) / rel_dp;
            ps.pm_elasticity =
                (p_hi.pm_deg - p_lo.pm_deg) / std::fabs(report.pm_deg) / rel_dp;
        }
        report.parameters.push_back(ps);
    }
    return report;
}

} // namespace ypm::core
