#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "circuits/ota_problem.hpp"
#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::core {

namespace {

const ParameterSensitivity&
dominant(const std::vector<ParameterSensitivity>& params, bool for_gain) {
    if (params.empty())
        throw InvalidInputError("SensitivityReport: empty parameter list");
    const auto it = std::max_element(
        params.begin(), params.end(),
        [&](const ParameterSensitivity& a, const ParameterSensitivity& b) {
            const double va = for_gain ? a.gain_elasticity : a.pm_elasticity;
            const double vb = for_gain ? b.gain_elasticity : b.pm_elasticity;
            return std::fabs(va) < std::fabs(vb);
        });
    return *it;
}

} // namespace

const ParameterSensitivity& SensitivityReport::dominant_for_gain() const {
    return dominant(parameters, true);
}

const ParameterSensitivity& SensitivityReport::dominant_for_pm() const {
    return dominant(parameters, false);
}

SensitivityReport compute_sensitivities(eval::Engine& engine,
                                        const circuits::OtaEvaluator& evaluator,
                                        const circuits::OtaSizing& sizing,
                                        double rel_step) {
    if (!(rel_step > 0.0) || rel_step > 0.2)
        throw InvalidInputError("compute_sensitivities: rel_step must be in (0, 0.2]");

    const auto specs = circuits::OtaSizing::parameter_specs();
    const auto base = sizing.to_vector();

    // One batch: the nominal point plus lo/hi probes for every parameter
    // whose clipped central-difference span is non-degenerate.
    eval::EvalBatch batch;
    batch.add(base);
    std::vector<double> spans(base.size(), 0.0);
    std::vector<std::size_t> probe_index(base.size(), 0); ///< into batch
    for (std::size_t k = 0; k < base.size(); ++k) {
        const double h = base[k] * rel_step;
        auto lo = base;
        auto hi = base;
        lo[k] = mathx::clamp(base[k] - h, specs[k].lo, specs[k].hi);
        hi[k] = mathx::clamp(base[k] + h, specs[k].lo, specs[k].hi);
        spans[k] = hi[k] - lo[k];
        if (spans[k] <= 0.0) continue;
        probe_index[k] = batch.size();
        batch.add(std::move(lo));
        batch.add(std::move(hi));
    }

    // Chunk kernel: the 17 probes share warm pooled prototypes; rows stay
    // interchangeable with the scalar ota_objectives_kernel cache entries.
    const auto evals = engine.evaluate(
        std::move(batch), circuits::ota_objectives_chunk_kernel(evaluator));

    if (evals.front().failed()) {
        // Re-measure outside the engine to recover the failure diagnostic
        // (EvalResult only carries the NaN sentinel).
        const auto nominal = evaluator.measure(sizing);
        throw NumericalError("compute_sensitivities: nominal point failed: " +
                             nominal.failure);
    }

    SensitivityReport report;
    report.gain_db = evals.front().values[0];
    report.pm_deg = evals.front().values[1];
    report.parameters.reserve(base.size());

    for (std::size_t k = 0; k < base.size(); ++k) {
        ParameterSensitivity ps;
        ps.name = specs[k].name;
        ps.value = base[k];

        if (spans[k] > 0.0) {
            const auto& p_lo = evals[probe_index[k]];
            const auto& p_hi = evals[probe_index[k] + 1];
            if (!p_lo.failed() && !p_hi.failed()) {
                // Elasticity: (relative change in objective)/(relative change
                // in parameter), from the central difference over [lo, hi].
                const double rel_dp = spans[k] / base[k];
                ps.gain_elasticity = (p_hi.values[0] - p_lo.values[0]) /
                                     std::fabs(report.gain_db) / rel_dp;
                ps.pm_elasticity = (p_hi.values[1] - p_lo.values[1]) /
                                   std::fabs(report.pm_deg) / rel_dp;
            }
        }
        report.parameters.push_back(ps);
    }
    return report;
}

SensitivityReport compute_sensitivities(const circuits::OtaEvaluator& evaluator,
                                        const circuits::OtaSizing& sizing,
                                        double rel_step) {
    eval::Engine engine;
    return compute_sensitivities(engine, evaluator, sizing, rel_step);
}

} // namespace ypm::core
