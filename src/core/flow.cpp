#include "core/flow.hpp"

#include <algorithm>
#include <memory>

#include "circuits/ota_problem.hpp"
#include "core/ota_mc.hpp"
#include "moo/pareto.hpp"
#include "moo/problem.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "yield/estimator.hpp"
#include "yield/probe.hpp"

namespace ypm::core {

namespace {

/// Scoped tracing session: enables the tracer for the run when a trace
/// path is configured, and on destruction (normal or exceptional) drains
/// the collected events, writes the Chrome trace JSON with an embedded
/// metrics snapshot, and disables tracing again.
class TraceSession {
public:
    explicit TraceSession(std::string path) : path_(std::move(path)) {
        if (path_.empty()) return;
        obs::Tracer::set_enabled(true);
        // Drop events left over from earlier runs in this process, so the
        // file describes exactly this flow.
        obs::Tracer::global().clear();
    }
    ~TraceSession() {
        if (path_.empty()) return;
        obs::Tracer::set_enabled(false);
        try {
            const auto events = obs::Tracer::global().drain();
            const auto metrics = obs::MetricsRegistry::global().snapshot();
            obs::write_chrome_trace(path_, events, &metrics);
            log::info("flow: trace written to ", path_, " (",
                      events.size(), " events)\n",
                      obs::trace_summary_table(events));
        } catch (const std::exception& err) {
            log::error("flow: failed to write trace: ", err.what());
        }
    }
    TraceSession(const TraceSession&) = delete;
    TraceSession& operator=(const TraceSession&) = delete;

private:
    std::string path_;
};

/// Cache-key tag for the nominal Bode kernel: it returns
/// {gain, pm, f3db, gbw} for the same parameter points the objectives
/// kernel maps to {gain, pm}, so it needs its own key space.
constexpr std::uint64_t kBodeTag = 0x626f6465; // "bode"

} // namespace

YieldFlow::YieldFlow(circuits::OtaConfig ota, FlowConfig config)
    : ota_(ota), config_(config) {}

std::vector<std::size_t> extract_front_indices(const moo::WbgaResult& result) {
    std::vector<std::vector<double>> objectives;
    objectives.reserve(result.archive.size());
    for (const auto& e : result.archive) objectives.push_back(e.objectives);
    const std::vector<moo::ObjectiveSpec> specs = {
        {"gain_db", moo::Direction::maximize}, {"pm_deg", moo::Direction::maximize}};
    auto front = moo::pareto_front_indices_2d(objectives, specs);
    std::sort(front.begin(), front.end(), [&](std::size_t a, std::size_t b) {
        return result.archive[a].objectives[0] < result.archive[b].objectives[0];
    });
    // Elites re-enter the archive every generation, and identical objective
    // vectors are mutually non-dominated - keep one representative each.
    front.erase(std::unique(front.begin(), front.end(),
                            [&](std::size_t a, std::size_t b) {
                                return result.archive[a].objectives ==
                                       result.archive[b].objectives;
                            }),
                front.end());
    return front;
}

FlowResult YieldFlow::run() const {
    // Fail fast, before the expensive MOO/MC stages: the OTA yield kernel's
    // row layout is fixed at {gain_db, pm_deg, log_weight}, so the specs
    // must match it positionally - a reversed pair would otherwise certify
    // silently wrong yields.
    if (!config_.yield_specs.empty()) {
        if (config_.yield_specs.size() != 2 ||
            config_.yield_specs[0].name != "gain_db" ||
            config_.yield_specs[1].name != "pm_deg")
            throw InvalidInputError(
                "YieldFlow: yield_specs must be exactly {gain_db, pm_deg}, in "
                "that order (the OTA yield kernel's column layout)");
        if (config_.yield_sequential.chunk_samples == 0 ||
            config_.yield_sequential.max_samples == 0)
            throw InvalidInputError(
                "YieldFlow: yield_sequential chunk_samples/max_samples must "
                "be >= 1");
        if (!(config_.yield_sequential.pilot_scale > 0.0))
            throw InvalidInputError(
                "YieldFlow: yield_sequential.pilot_scale must be > 0");
        if (config_.yield_sequential.min_samples >
            config_.yield_sequential.max_samples)
            throw InvalidInputError(
                "YieldFlow: yield_sequential.min_samples exceeds max_samples "
                "(the early stop would be unreachable)");
        if (!(config_.yield_sequential.shift_fit.defensive_weight >= 0.0 &&
              config_.yield_sequential.shift_fit.defensive_weight < 1.0))
            throw InvalidInputError(
                "YieldFlow: yield_sequential.shift_fit.defensive_weight must "
                "be in [0, 1)");
        // Resolve the estimator-zoo selection up front: an unknown name
        // must fail before the expensive MOO/MC stages, not after them.
        if (!config_.yield_estimator.empty())
            (void)yield::EstimatorRegistry::instance().create(
                config_.yield_estimator);
    }
    const FlowConfig::ProbeKnobs& probe_knobs = config_.yield_probe;
    if (probe_knobs.budget > 0) {
        if (config_.yield_specs.empty())
            throw InvalidInputError(
                "YieldFlow: yield_probe.budget is set but yield_specs is "
                "empty - probes need the specs to estimate yield against");
        if (probe_knobs.activation_generation >= config_.ga.generations)
            throw InvalidInputError(
                "YieldFlow: yield_probe.activation_generation >= "
                "ga.generations - the probes would never activate; lower the "
                "activation or raise the generation count");
        if (!(probe_knobs.target_half_width >= 0.0))
            throw InvalidInputError(
                "YieldFlow: yield_probe.target_half_width must be >= 0");
        moo::RobustnessConfig shape;
        shape.mode = probe_knobs.mode;
        shape.yield_weight = probe_knobs.yield_weight;
        shape.min_yield = probe_knobs.min_yield;
        moo::validate_robustness_config(shape);
        // A valid estimator name can still be probe-incompatible (its pilot
        // alone would exceed the probe budget): fail fast with the
        // compatible zoo members listed, never degrade silently.
        (void)yield::configure_probe_estimator(
            probe_knobs.estimator, config_.yield_sequential,
            probe_knobs.budget, probe_knobs.target_half_width);
    }

    const TraceSession trace(config_.trace_path);
    const util::TickNs t_start = util::now_ns();
    obs::Span run_span("flow.run", "flow");
    FlowResult result;
    Rng rng(config_.seed);

    // One evaluation engine for the whole Fig. 3 pipeline: the GA, the
    // per-point nominal re-measures and the Monte Carlo stage share its
    // scheduler, cache and ledger.
    eval::EngineConfig engine_config;
    engine_config.parallel = config_.parallel;
    engine_config.cache_capacity = config_.eval_cache;
    eval::Engine engine(engine_config);

    // Steps 1-2: problem definition + WBGA optimisation. The process
    // sampler is shared by the optimiser-side probes and the step-4 MC /
    // certification stages (its construction draws nothing, so hoisting it
    // above the GA leaves the probe-off flow bit-identical).
    circuits::OtaProblem problem(ota_);
    const circuits::OtaEvaluator& evaluator = problem.evaluator();
    const process::ProcessSampler sampler(ota_.card, config_.variation);
    moo::WbgaConfig ga = config_.ga;
    ga.parallel = config_.parallel;
    ga.engine = &engine;

    // Tier 1, yield in the loop: a low-budget probe per (selected)
    // individual feeds estimated yield into the WBGA fitness through the
    // robustness channel. The probe RNG derives from a dedicated child
    // stream (4) of the flow seed, keyed per generation - streams 1-3
    // (GA / MC / certification) are untouched, so probes off is
    // bit-identical by construction.
    std::unique_ptr<yield::YieldProbe> probe;
    if (probe_knobs.budget > 0) {
        yield::ProbeConfig probe_config;
        probe_config.sequential = config_.yield_sequential;
        probe_config.estimator = probe_knobs.estimator;
        probe_config.budget = probe_knobs.budget;
        probe_config.target_half_width = probe_knobs.target_half_width;
        probe_config.warm_start = probe_knobs.warm_start;
        // The u-record dimension is a topology property, identical for
        // every sizing (see ota_yield_dimension) - probe it at the box
        // midpoint without running any simulation.
        std::vector<double> midpoint;
        midpoint.reserve(problem.parameters().size());
        for (const auto& p : problem.parameters())
            midpoint.push_back(0.5 * (p.lo + p.hi));
        const std::size_t dimension = ota_yield_dimension(
            evaluator, circuits::OtaSizing::from_vector(midpoint));
        probe = std::make_unique<yield::YieldProbe>(
            std::move(probe_config), config_.yield_specs,
            [&evaluator, &sampler](const std::vector<double>& params) {
                return ota_yield_kernel_factory(
                    evaluator, circuits::OtaSizing::from_vector(params),
                    sampler);
            },
            dimension);

        ga.robustness.activation_generation = probe_knobs.activation_generation;
        ga.robustness.mode = probe_knobs.mode;
        ga.robustness.yield_weight = probe_knobs.yield_weight;
        ga.robustness.min_yield = probe_knobs.min_yield;
        ga.robustness.max_points = probe_knobs.max_points;
        const Rng probe_rng = rng.child(4);
        ga.robustness.probe =
            [&engine, &result, probe_rng,
             probe_ptr = probe.get()](const std::vector<std::vector<double>>& pts,
                                      std::size_t generation) {
                obs::Span span("flow.probe", "flow");
                span.arg("generation", static_cast<double>(generation));
                span.arg("points", static_cast<double>(pts.size()));
                const util::TickNs t0 = util::now_ns();
                const std::size_t before = probe_ptr->total_samples();
                const auto probed = probe_ptr->probe(
                    engine, pts, probe_rng.child(generation + 1), generation);
                std::vector<double> yields(probed.size());
                for (std::size_t i = 0; i < probed.size(); ++i)
                    yields[i] = probed[i].estimate.yield;
                result.timings.probe_seconds += util::seconds_since(t0);
                result.timings.probe_points += pts.size();
                result.timings.probe_samples +=
                    probe_ptr->total_samples() - before;
                span.arg("samples",
                         static_cast<double>(probe_ptr->total_samples() - before));
                return yields;
            };
    }

    const moo::Wbga optimiser(problem, ga);
    {
        obs::Span span("flow.moo", "flow");
        const util::TickNs t0 = util::now_ns();
        Rng ga_rng = rng.child(1);
        result.optimisation = optimiser.run(ga_rng, [](std::size_t gen, double best) {
            log::info("flow: generation ", gen, " best fitness ", best);
        });
        result.timings.moo_seconds = util::seconds_since(t0);
        result.timings.moo_evaluations = result.optimisation.evaluations;
        span.arg("evaluations",
                 static_cast<double>(result.timings.moo_evaluations));
        if (probe)
            log::info("flow: probes spent ", result.timings.probe_samples,
                      " yield samples across ", result.timings.probe_points,
                      " individuals");
    }

    // Step 3: performance model from the Pareto front.
    result.pareto_indices = extract_front_indices(result.optimisation);
    log::info("flow: pareto front has ", result.pareto_indices.size(), " points");

    // Optional subsampling for MC budget control (evenly along the front).
    std::vector<std::size_t> mc_points = result.pareto_indices;
    if (config_.max_mc_points > 0 && mc_points.size() > config_.max_mc_points) {
        std::vector<std::size_t> picked;
        picked.reserve(config_.max_mc_points);
        const double step = static_cast<double>(mc_points.size() - 1) /
                            static_cast<double>(config_.max_mc_points - 1);
        for (std::size_t k = 0; k < config_.max_mc_points; ++k) {
            const auto idx = static_cast<std::size_t>(
                static_cast<double>(k) * step + 0.5);
            picked.push_back(mc_points[std::min(idx, mc_points.size() - 1)]);
        }
        picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
        mc_points = std::move(picked);
    }

    // Step 4: variation model - MC on every (selected) Pareto point. The
    // stages stream: every point's nominal-Bode batch and MC run is
    // submitted before any result is retired, so misses from all points
    // overlap on the engine's pool instead of barriering point-by-point.
    {
        const util::TickNs t0 = util::now_ns();
        Rng mc_rng = rng.child(2);

        const eval::KernelFn bode_kernel = [&](const eval::EvalRequest& request) {
            const auto perf =
                evaluator.measure(circuits::OtaSizing::from_vector(request.params));
            if (!perf.valid) return moo::failed_evaluation(4);
            return std::vector<double>{perf.gain_db, perf.pm_deg, perf.bode.f3db,
                                       perf.bode.gbw};
        };

        // Pre-filter on archive objectives alone (no simulation needed), so
        // only points worth a Monte Carlo budget get submitted at all.
        struct PointStage {
            FrontPointData point;
            eval::Engine::Ticket bode;
            mc::McTicket mc;
        };
        std::vector<PointStage> stages;
        stages.reserve(mc_points.size());
        for (std::size_t archive_idx : mc_points) {
            const auto& e = result.optimisation.archive[archive_idx];
            PointStage stage;
            stage.point.sizing = circuits::OtaSizing::from_vector(e.params);
            stage.point.gain_db = e.objectives[0];
            stage.point.pm_deg = e.objectives[1];
            stage.point.probe_yield = e.robustness;
            // Front hygiene: skip endpoints no model query should land on.
            if (stage.point.pm_deg < config_.min_front_pm_deg ||
                stage.point.gain_db < config_.min_front_gain_db) {
                log::debug("flow: dropping extreme front point (gain ",
                           stage.point.gain_db, " dB, pm ", stage.point.pm_deg,
                           " deg)");
                continue;
            }
            stages.push_back(std::move(stage));
        }

        // Submission pass: per point, the nominal Bode batch followed by
        // the MC run. Each point's RNG stream derives from its submission
        // position, independent of later hygiene filtering. Everything is
        // in flight at once: an MC request carries no parameters (just a
        // sample id) and a result row is two doubles, so even a full
        // paper-scale front (~1000 points x 200 samples) stays in the
        // low-megabyte range; max_mc_points bounds it when that matters.
        for (std::size_t i = 0; i < stages.size(); ++i) {
            PointStage& stage = stages[i];
            eval::EvalBatch bode_batch(kBodeTag);
            bode_batch.add(stage.point.sizing.to_vector());
            stage.bode = engine.submit(std::move(bode_batch), bode_kernel);
            Rng point_rng = mc_rng.child(i + 1);
            stage.mc =
                submit_ota_monte_carlo(engine, evaluator, stage.point.sizing,
                                       sampler, config_.mc_samples, point_rng);
            result.timings.mc_evaluations += config_.mc_samples;
        }

        // Retirement pass, in submission order: apply the MC-dependent
        // hygiene filters and number the surviving designs sequentially.
        result.front.reserve(stages.size());
        std::size_t design_id = 1;
        for (PointStage& stage : stages) {
            FrontPointData point = stage.point;
            const auto nominal = engine.wait(std::move(stage.bode));
            if (!nominal.front().failed()) {
                point.f3db = nominal.front().values[2];
                point.gbw = nominal.front().values[3];
            }

            const mc::McResult mc_result =
                mc::wait_monte_carlo(engine, std::move(stage.mc));
            point.mc_failures = mc_result.failed();
            if (static_cast<double>(point.mc_failures) >
                config_.max_front_mc_failure_ratio *
                    static_cast<double>(config_.mc_samples))
                continue;
            const auto gain_var = mc_result.column_variation(0);
            const auto pm_var = mc_result.column_variation(1);
            point.dgain_pct = gain_var.delta_3sigma_pct;
            point.dpm_pct = pm_var.delta_3sigma_pct;
            point.dgain_halfrange_pct = gain_var.delta_halfrange_pct;
            point.dpm_halfrange_pct = pm_var.delta_halfrange_pct;
            if (point.dgain_pct > config_.max_front_delta_pct ||
                point.dpm_pct > config_.max_front_delta_pct)
                continue;
            point.design_id = design_id++;
            result.front.push_back(point);
        }
        result.timings.mc_seconds = util::seconds_since(t0);
        // Recorded explicitly (not RAII) so the span ends here: the yield
        // stage below shares this scope's locals but is its own flow step.
        if (obs::Tracer::enabled())
            obs::Tracer::record_complete(
                "flow.mc", "flow", t0, util::now_ns(),
                {{"points", static_cast<double>(stages.size())},
                 {"samples_per_point",
                  static_cast<double>(config_.mc_samples)}});

        // Yield certification: importance-sampled sequential estimation per
        // surviving point, remaining budget allocated adaptively to the
        // points with the widest confidence intervals. Rides the same
        // engine (streamed chunks, warm prototypes, one ledger).
        if (!config_.yield_specs.empty() && !result.front.empty()) {
            obs::Span yield_span("flow.yield", "flow");
            yield_span.arg("points", static_cast<double>(result.front.size()));
            const util::TickNs t1 = util::now_ns();
            yield::AdaptiveYieldConfig yield_config;
            yield_config.sequential = config_.yield_sequential;
            if (!config_.yield_estimator.empty()) {
                const auto estimator =
                    yield::EstimatorRegistry::instance().create(
                        config_.yield_estimator);
                yield_config.sequential =
                    estimator->configure(yield_config.sequential);
                log::info("flow: yield estimator '", config_.yield_estimator,
                          "'");
            }
            yield_config.total_samples = config_.yield_total_samples;
            const std::size_t dimension =
                ota_yield_dimension(evaluator, result.front.front().sizing);
            std::vector<yield::YieldPoint> points;
            points.reserve(result.front.size());
            for (const FrontPointData& point : result.front) {
                yield::YieldPoint yp;
                yp.specs = config_.yield_specs;
                yp.factory =
                    ota_yield_kernel_factory(evaluator, point.sizing, sampler);
                yp.dimension = dimension;
                points.push_back(std::move(yp));
            }
            auto estimates = yield::run_adaptive_yield(engine, yield_config,
                                                       points, rng.child(3));
            result.yields.reserve(estimates.size());
            for (std::size_t i = 0; i < estimates.size(); ++i) {
                log::info("flow: design ", result.front[i].design_id, " yield ",
                          estimates[i].estimate.yield, " (",
                          estimates[i].samples_used, " samples, ESS ",
                          estimates[i].estimate.ess, ")");
                result.yields.push_back({result.front[i].design_id,
                                         std::move(estimates[i]),
                                         result.front[i].probe_yield});
            }
            result.timings.yield_seconds = util::seconds_since(t1);
        }
    }

    // Step 5: table model generation.
    if (!config_.artifact_dir.empty() && result.front.size() < 3) {
        log::warn("flow: only ", result.front.size(),
                  " usable front points after filtering - skipping artifacts");
    } else if (!config_.artifact_dir.empty()) {
        obs::Span span("flow.table", "flow");
        const util::TickNs t0 = util::now_ns();
        std::vector<YieldTableRow> yield_rows;
        yield_rows.reserve(result.yields.size());
        for (const FrontPointYield& y : result.yields) {
            YieldTableRow row;
            row.design_id = y.design_id;
            row.probe_yield = y.probe_yield;
            row.yield = y.result.estimate.yield;
            row.ci_low = y.result.estimate.ci_low;
            row.ci_high = y.result.estimate.ci_high;
            row.ess = y.result.estimate.ess;
            row.samples = y.result.samples_used;
            row.reached_target = y.result.reached_target;
            yield_rows.push_back(row);
        }
        result.artifacts =
            write_artifacts(result.front, yield_rows, config_.artifact_dir);
        result.timings.table_seconds = util::seconds_since(t0);
    }

    result.timings.engine = engine.counters();
    result.timings.total_seconds = util::seconds_since(t_start);
    run_span.arg("requests",
                 static_cast<double>(result.timings.engine.requests));
    run_span.arg("evaluations",
                 static_cast<double>(result.timings.engine.evaluations));
    run_span.arg("cache_hits",
                 static_cast<double>(result.timings.engine.cache_hits));
    run_span.arg("failures",
                 static_cast<double>(result.timings.engine.failures));
    return result;
}

} // namespace ypm::core
