#pragma once
/// \file artifacts.hpp
/// \brief The data files the flow emits (paper sections 3.3-3.5): Pareto
///        performance tables, variation tables and the generated Verilog-A
///        module.

#include <string>
#include <vector>

#include "circuits/ota.hpp"

namespace ypm::core {

/// One enriched Pareto-front point: nominal performance + MC variation.
struct FrontPointData {
    std::size_t design_id = 0; ///< 1-based index along the front (by gain)
    circuits::OtaSizing sizing;
    double gain_db = 0.0;
    double pm_deg = 0.0;
    double dgain_pct = 0.0; ///< paper Δ: 3*sigma/mean*100 over the MC population
    double dpm_pct = 0.0;
    double dgain_halfrange_pct = 0.0; ///< worst-case variant
    double dpm_halfrange_pct = 0.0;
    double f3db = 0.0; ///< dominant pole (Hz) for the macromodel
    double gbw = 0.0;
    std::size_t mc_failures = 0;
};

/// Paths of everything written to the artifact directory.
struct ModelArtifacts {
    std::string dir;
    std::string gain_delta_tbl; ///< 1-D: gain_db -> Δgain %
    std::string pm_delta_tbl;   ///< 1-D: pm_deg -> Δpm %
    std::vector<std::string> param_tbls; ///< 2-D: (gain, pm) -> parameter, lp1..lp8
    std::string f3db_tbl;       ///< 2-D: (gain, pm) -> f3db
    std::string front_csv;      ///< full front table for plotting
    std::string va_module;      ///< generated Verilog-A source
};

/// Write every artefact for a computed front. Creates `dir` if needed.
/// \throws ypm::IoError on filesystem problems.
[[nodiscard]] ModelArtifacts write_artifacts(const std::vector<FrontPointData>& front,
                                             const std::string& dir);

/// Reload the front from artefact files (inverse of write_artifacts).
[[nodiscard]] std::vector<FrontPointData>
read_front_from_artifacts(const ModelArtifacts& artifacts);

} // namespace ypm::core
