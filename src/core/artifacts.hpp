#pragma once
/// \file artifacts.hpp
/// \brief The data files the flow emits (paper sections 3.3-3.5): Pareto
///        performance tables, variation tables and the generated Verilog-A
///        module.

#include <limits>
#include <string>
#include <vector>

#include "circuits/ota.hpp"

namespace ypm::core {

/// One enriched Pareto-front point: nominal performance + MC variation.
struct FrontPointData {
    std::size_t design_id = 0; ///< 1-based index along the front (by gain)
    circuits::OtaSizing sizing;
    double gain_db = 0.0;
    double pm_deg = 0.0;
    double dgain_pct = 0.0; ///< paper Δ: 3*sigma/mean*100 over the MC population
    double dpm_pct = 0.0;
    double dgain_halfrange_pct = 0.0; ///< worst-case variant
    double dpm_halfrange_pct = 0.0;
    double f3db = 0.0; ///< dominant pole (Hz) for the macromodel
    double gbw = 0.0;
    std::size_t mc_failures = 0;
    /// Optimiser-side yield probe estimate of this design (NaN when the
    /// design was never probed: probes off, pre-activation generation, or
    /// outside the probed top-K).
    double probe_yield = std::numeric_limits<double>::quiet_NaN();
};

/// One row of the yield artifact table: the certified yield of a front
/// design next to the probe estimate that steered the optimiser toward it
/// (the probe-vs-certified delta is the two-tier recipe's calibration
/// signal). A plain POD mirror of core::FrontPointYield, so the artifact
/// layer stays independent of the flow/yield headers.
struct YieldTableRow {
    std::size_t design_id = 0; ///< matches FrontPointData::design_id
    double probe_yield = std::numeric_limits<double>::quiet_NaN();
    double yield = 0.0;    ///< certified (sequential-run) estimate
    double ci_low = 0.0;   ///< 95 % CI of the certified estimate
    double ci_high = 1.0;
    double ess = 0.0;      ///< fail-side effective sample size
    std::size_t samples = 0; ///< certification samples folded
    bool reached_target = false;
};

/// Paths of everything written to the artifact directory.
struct ModelArtifacts {
    std::string dir;
    std::string gain_delta_tbl; ///< 1-D: gain_db -> Δgain %
    std::string pm_delta_tbl;   ///< 1-D: pm_deg -> Δpm %
    std::vector<std::string> param_tbls; ///< 2-D: (gain, pm) -> parameter, lp1..lp8
    std::string f3db_tbl;       ///< 2-D: (gain, pm) -> f3db
    std::string front_csv;      ///< full front table for plotting
    std::string yield_csv;      ///< probe-vs-certified yield table; empty
                                ///< when no yield rows were provided
    std::string yield_tbl;      ///< 2-D: (gain, pm) -> certified yield;
                                ///< written only when every front point has
                                ///< a yield row (model back-annotation)
    std::string va_module;      ///< generated Verilog-A source
};

/// Write every artefact for a computed front. Creates `dir` if needed.
/// \throws ypm::IoError on filesystem problems.
[[nodiscard]] ModelArtifacts write_artifacts(const std::vector<FrontPointData>& front,
                                             const std::string& dir);

/// As above, plus the yield artifact table (`yield_front.csv`): one row per
/// certified design - probe estimate, certified estimate with CI/ESS, and
/// the probe-vs-certified delta. Rows match front points by design_id (rows
/// without a matching front point are rejected); when every front point has
/// a row, a 2-D (gain, pm) -> yield spline table rides along for model
/// back-annotation. An empty `yields` behaves exactly like the overload
/// above. \throws ypm::InvalidInputError on an unmatched design_id.
[[nodiscard]] ModelArtifacts
write_artifacts(const std::vector<FrontPointData>& front,
                const std::vector<YieldTableRow>& yields,
                const std::string& dir);

/// Reload the front from artefact files (inverse of write_artifacts).
[[nodiscard]] std::vector<FrontPointData>
read_front_from_artifacts(const ModelArtifacts& artifacts);

} // namespace ypm::core
