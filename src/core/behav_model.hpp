#pragma once
/// \file behav_model.hpp
/// \brief The combined performance + variation behavioural model - the
///        paper's headline deliverable.
///
/// Given a required specification (gain >= G, PM >= P), the model:
///   1. interpolates the performance variation Δ at the required values
///      from the variation tables (paper $table_model on gain_delta.tbl),
///   2. inflates the requirement so the worst-case (3-sigma) sample still
///      meets it: target = required * (1 + Δ/100)  (paper Table 3),
///   3. interpolates the designable parameters at the inflated target from
///      the Pareto performance tables (paper lp*_data.tbl),
/// and can emit the electrical macromodel spec for hierarchical simulation.

#include <optional>
#include <vector>

#include "circuits/ota.hpp"
#include "core/artifacts.hpp"
#include "table/pareto_table.hpp"
#include "table/table_model.hpp"
#include "va/behav_ota_device.hpp"

namespace ypm::core {

/// Outcome of a yield-targeted sizing query (paper Table 3 row pair).
struct SizingResult {
    double required_gain_db = 0.0;
    double required_pm_deg = 0.0;
    double variation_gain_pct = 0.0; ///< Δ interpolated at the requirement
    double variation_pm_pct = 0.0;
    double target_gain_db = 0.0; ///< "New Performance" (inflated)
    double target_pm_deg = 0.0;
    circuits::OtaSizing sizing;  ///< interpolated designable parameters
    double predicted_gain_db = 0.0; ///< front performance at the chosen point
    double predicted_pm_deg = 0.0;
    double f3db = 0.0;           ///< macromodel pole at the chosen point
    bool feasible = false;       ///< front point meets both inflated targets
};

class BehaviouralModel {
public:
    /// Build from an in-memory front (>= 3 points).
    explicit BehaviouralModel(const std::vector<FrontPointData>& front);

    /// Build by reloading the .tbl artefacts from disk.
    [[nodiscard]] static BehaviouralModel
    from_artifacts(const ModelArtifacts& artifacts);

    /// Δgain(%) interpolated at a gain requirement (cubic, clamped ends).
    [[nodiscard]] double gain_delta_pct(double gain_db) const;

    /// Δpm(%) interpolated at a PM requirement.
    [[nodiscard]] double pm_delta_pct(double pm_deg) const;

    /// Full yield-targeted sizing (steps 1-3 above). If no front point
    /// satisfies both inflated targets, the closest point is returned with
    /// feasible = false.
    [[nodiscard]] SizingResult size_for_spec(double min_gain_db,
                                             double min_pm_deg) const;

    /// Electrical macromodel spec for a sizing result (drives
    /// va::BehaviouralOta in hierarchical designs). Mirrors the paper's
    /// module, whose output contribution is gain*Vin - I(out)*ro: the
    /// dominant pole comes from ro against the load, so ro is derived from
    /// the characterised pole and the testbench load capacitance - the
    /// macromodel's bandwidth then scales with loading exactly like the
    /// transistor circuit's.
    /// \param c_load the OtaConfig::c_load used during characterisation.
    [[nodiscard]] va::BehaviouralOtaSpec
    macromodel_spec(const SizingResult& sizing, double c_load = 10e-12) const;

    /// Covered performance ranges.
    [[nodiscard]] double gain_min() const { return front_.obj0_min(); }
    [[nodiscard]] double gain_max() const { return front_.obj0_max(); }
    [[nodiscard]] double pm_min() const { return front_.obj1_min(); }
    [[nodiscard]] double pm_max() const { return front_.obj1_max(); }

    /// Underlying scattered front table.
    [[nodiscard]] const table::ParetoTable& front_table() const { return front_; }

private:
    static table::ParetoTable build_front(const std::vector<FrontPointData>& front);

    table::ParetoTable front_; ///< payload: 8 params + f3db
    table::TableModel1d gain_delta_;
    table::TableModel1d pm_delta_;
};

} // namespace ypm::core
