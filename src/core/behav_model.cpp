#include "core/behav_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::core {

namespace {

/// Variation tables use clamped-cubic lookups: the paper specifies "3E" (no
/// extrapolation), and queries at the exact table edge must still succeed,
/// so the ends clamp rather than throw. DESIGN.md notes this softening.
const table::ControlString k_delta_control{"3C"};

table::TableModel1d build_delta_table(const std::vector<FrontPointData>& front,
                                      bool use_pm) {
    std::vector<double> xs, ys;
    xs.reserve(front.size());
    ys.reserve(front.size());
    for (const auto& p : front) {
        xs.push_back(use_pm ? p.pm_deg : p.gain_db);
        ys.push_back(use_pm ? p.dpm_pct : p.dgain_pct);
    }
    return table::TableModel1d(std::move(xs), std::move(ys), k_delta_control);
}

} // namespace

table::ParetoTable
BehaviouralModel::build_front(const std::vector<FrontPointData>& front) {
    std::vector<std::string> names = circuits::OtaSizing::parameter_names();
    names.push_back("f3db");
    std::vector<table::FrontPoint> points;
    points.reserve(front.size());
    for (const auto& p : front) {
        table::FrontPoint fp;
        fp.obj0 = p.gain_db;
        fp.obj1 = p.pm_deg;
        fp.payload = p.sizing.to_vector();
        fp.payload.push_back(p.f3db);
        points.push_back(std::move(fp));
    }
    return table::ParetoTable(std::move(names), std::move(points));
}

BehaviouralModel::BehaviouralModel(const std::vector<FrontPointData>& front)
    : front_(build_front(front)), gain_delta_(build_delta_table(front, false)),
      pm_delta_(build_delta_table(front, true)) {}

BehaviouralModel BehaviouralModel::from_artifacts(const ModelArtifacts& artifacts) {
    return BehaviouralModel(read_front_from_artifacts(artifacts));
}

double BehaviouralModel::gain_delta_pct(double gain_db) const {
    // A variation is a spread magnitude; spline undershoot between samples
    // must not produce a (meaningless) negative Δ.
    return std::max(0.0, gain_delta_.eval(gain_db));
}

double BehaviouralModel::pm_delta_pct(double pm_deg) const {
    return std::max(0.0, pm_delta_.eval(pm_deg));
}

SizingResult BehaviouralModel::size_for_spec(double min_gain_db,
                                             double min_pm_deg) const {
    SizingResult r;
    r.required_gain_db = min_gain_db;
    r.required_pm_deg = min_pm_deg;

    // Step 1: interpolate the variation at the requirement.
    r.variation_gain_pct = gain_delta_pct(min_gain_db);
    r.variation_pm_pct = pm_delta_pct(min_pm_deg);

    // Step 2: inflate so a -3 sigma sample still meets the requirement.
    r.target_gain_db = min_gain_db * (1.0 + r.variation_gain_pct / 100.0);
    r.target_pm_deg = min_pm_deg * (1.0 + r.variation_pm_pct / 100.0);

    // Step 3: choose the front point. The paper interpolates the parameters
    // *at* the inflated target (Table 3), so among the feasible arc (both
    // inflated targets met) the point closest to the target is selected -
    // exceeding a requirement by more than the variation demands wastes the
    // other objective (e.g. a far-too-slow but high-PM corner). With no
    // feasible point, fall back to the plain projection and flag it.
    constexpr std::size_t scan = 513;
    const double gain_span = std::max(gain_max() - gain_min(), 1e-12);
    const double pm_span = std::max(pm_max() - pm_min(), 1e-12);
    double best_feasible_s = -1.0;
    double best_feasible_dist = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < scan; ++k) {
        const double s = static_cast<double>(k) / (scan - 1);
        const double g = front_.obj0_at(s);
        const double p = front_.obj1_at(s);
        if (g < r.target_gain_db || p < r.target_pm_deg) continue;
        const double dg = (g - r.target_gain_db) / gain_span;
        const double dp = (p - r.target_pm_deg) / pm_span;
        const double dist = std::hypot(dg, dp);
        if (dist < best_feasible_dist) {
            best_feasible_dist = dist;
            best_feasible_s = s;
        }
    }
    double s_star;
    if (best_feasible_s >= 0.0) {
        r.feasible = true;
        s_star = best_feasible_s;
    } else {
        r.feasible = false;
        s_star = front_.project(r.target_gain_db, r.target_pm_deg);
    }

    // Parameter-continuity guard. Adjacent Pareto-optimal designs need not
    // be neighbours in parameter space (the GA may realise nearby
    // performance with unrelated sizings); interpolating across such a
    // jump yields a sizing whose performance matches neither endpoint. If
    // the bracketing designs differ by more than 25 % of any designable
    // range, snap to the nearer actual design instead of interpolating.
    const auto specs = circuits::OtaSizing::parameter_specs();
    const auto& knots = front_.knots();
    std::size_t lo_k = 0;
    while (lo_k + 2 < knots.size() && knots[lo_k + 1] <= s_star) ++lo_k;
    const std::size_t hi_k = lo_k + 1;
    bool jumpy = false;
    for (std::size_t c = 0; c < circuits::OtaSizing::parameter_count; ++c) {
        const double span = specs[c].hi - specs[c].lo;
        if (std::fabs(front_.payload_knot(c, hi_k) - front_.payload_knot(c, lo_k)) >
            0.25 * span) {
            jumpy = true;
            break;
        }
    }

    std::vector<double> payload(circuits::OtaSizing::parameter_count);
    if (jumpy) {
        const std::size_t snap =
            (s_star - knots[lo_k] <= knots[hi_k] - s_star) ? lo_k : hi_k;
        for (std::size_t c = 0; c < payload.size(); ++c)
            payload[c] = front_.payload_knot(c, snap);
        r.predicted_gain_db = front_.obj0_knot(snap);
        r.predicted_pm_deg = front_.obj1_knot(snap);
        r.f3db = front_.payload_knot(circuits::OtaSizing::parameter_count, snap);
        // Snapping must not move below the inflated targets; prefer the
        // other bracket knot when it does and that one qualifies.
        const std::size_t other = snap == lo_k ? hi_k : lo_k;
        if (r.feasible && (r.predicted_gain_db < r.target_gain_db ||
                           r.predicted_pm_deg < r.target_pm_deg) &&
            front_.obj0_knot(other) >= r.target_gain_db &&
            front_.obj1_knot(other) >= r.target_pm_deg) {
            for (std::size_t c = 0; c < payload.size(); ++c)
                payload[c] = front_.payload_knot(c, other);
            r.predicted_gain_db = front_.obj0_knot(other);
            r.predicted_pm_deg = front_.obj1_knot(other);
            r.f3db = front_.payload_knot(circuits::OtaSizing::parameter_count, other);
        }
    } else {
        r.predicted_gain_db = front_.obj0_at(s_star);
        r.predicted_pm_deg = front_.obj1_at(s_star);
        // Cubic interpolation can still overshoot slightly; the decoded
        // sizing must stay inside the designable box (paper Table 1).
        for (std::size_t c = 0; c < payload.size(); ++c)
            payload[c] =
                mathx::clamp(front_.payload_at(c, s_star), specs[c].lo, specs[c].hi);
        r.f3db = front_.payload_at(circuits::OtaSizing::parameter_count, s_star);
    }
    r.sizing = circuits::OtaSizing::from_vector(payload);
    return r;
}

va::BehaviouralOtaSpec BehaviouralModel::macromodel_spec(const SizingResult& sizing,
                                                         double c_load) const {
    va::BehaviouralOtaSpec spec;
    spec.gain_db = sizing.predicted_gain_db;
    // ro reproduces the characterised dominant pole against the testbench
    // load; the device's intrinsic pole is pushed out of band so bandwidth
    // in the hierarchy is set by ro and the *actual* loading (the paper's
    // listing models exactly this: a gain plus a series ro, no extra pole).
    const double f3db = sizing.f3db > 0.0 ? sizing.f3db : 10e3;
    spec.rout = 1.0 / (2.0 * mathx::pi * f3db * c_load);
    spec.f3db = 1e9;
    return spec;
}

} // namespace ypm::core
