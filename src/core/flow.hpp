#pragma once
/// \file flow.hpp
/// \brief The paper's Fig. 3 pipeline, end to end:
///        1. netlist + objective generation     (circuits::OtaProblem)
///        2. multi-objective optimisation        (moo::Wbga), optionally
///           yield-aware: low-budget yield probes (yield::YieldProbe) feed
///           estimated yield into the WBGA fitness each generation
///        3. performance model from Pareto front (moo::pareto + sort)
///        4. variation model from Monte Carlo    (core::run_ota_monte_carlo)
///           + optional yield certification via the variance-reduction
///           yield engine (yield::run_adaptive_yield)
///        5. table model generation              (core::write_artifacts)
///
/// With probes enabled the pipeline is *two-tier*: cheap coarse-CI yield
/// estimates steer selection inside the optimiser (tier 1), and the full
/// sequential certification runs only on the surviving front (tier 2).
/// Probes off reproduces the certification-only flow bit-for-bit.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "circuits/ota.hpp"
#include "core/artifacts.hpp"
#include "eval/engine.hpp"
#include "mc/yield.hpp"
#include "moo/robustness.hpp"
#include "moo/wbga.hpp"
#include "process/variation.hpp"
#include "yield/sequential.hpp"

namespace ypm::core {

struct FlowConfig {
    moo::WbgaConfig ga;             ///< paper: population 100 x 100 generations
    std::size_t mc_samples = 200;   ///< paper: 200 per Pareto point
    std::size_t max_mc_points = 0;  ///< cap MC to N front points (0 = all),
                                    ///< evenly subsampled along the front
    std::uint64_t seed = 1;
    std::string artifact_dir;       ///< empty = skip file output
    process::VariationSpec variation = process::VariationSpec::c35();
    bool parallel = true;
    std::size_t eval_cache = 4096;  ///< engine memoisation entries; 0 disables

    /// Front hygiene: extreme Pareto endpoints (near-zero phase margin,
    /// exploding relative variation, frequent MC failures) are useless in a
    /// model and poison the spline tables; points violating these limits
    /// are dropped from the variation model.
    double min_front_pm_deg = 10.0;
    double min_front_gain_db = 1.0;
    double max_front_delta_pct = 25.0;
    double max_front_mc_failure_ratio = 0.2;

    /// Yield certification (step 4, after the hygiene filters): when
    /// non-empty, every surviving front point's parametric yield against
    /// these specs is estimated with the variance-reduction yield engine
    /// (pilot + importance sampling + sequential early stop). Spec columns
    /// are {gain_db, pm_deg}, in that order.
    std::vector<mc::Spec> yield_specs;
    /// Per-point pilot/chunk/early-stop settings for the yield stage,
    /// including the proposal-family knobs: `mixture_proposal` (defensive
    /// mixture vs legacy single shift), `refine_after_chunks`/`max_refits`
    /// (cross-entropy refinement) and `shift_fit.defensive_weight`.
    yield::SequentialConfig yield_sequential;
    /// Cross-point sample budget, allocated adaptively to the points with
    /// the widest confidence intervals (0 = per-point caps only).
    std::size_t yield_total_samples = 0;
    /// Estimator-zoo selection by registry name (yield/estimator.hpp):
    /// when non-empty, the named estimator's configure() specializes
    /// `yield_sequential`'s method knobs before the yield stage runs -
    /// e.g. "plain_mc", "single_shift", "mixture_ce", "mixture_ce_scale",
    /// "mixture_merge", "control_variate". Empty keeps `yield_sequential`
    /// exactly as given (the legacy behaviour). Unknown names throw
    /// ypm::InvalidInputError at flow construction, listing the registry.
    std::string yield_estimator;
    /// Yield-in-the-loop probes (step 2): when `budget` > 0, every WBGA
    /// generation at or past `activation_generation` runs a low-budget
    /// yield probe per (selected) individual against `yield_specs`, and the
    /// estimated yield enters the eq. (5) fitness per `mode`. Requires
    /// non-empty `yield_specs`. Probes ride the same engine and estimator
    /// zoo as certification; budget 0 (the default) reproduces the
    /// certification-only flow bit-for-bit.
    struct ProbeKnobs {
        /// Hard per-individual sample budget, pilot included; 0 = off.
        std::size_t budget = 0;
        /// First GA generation that probes (earlier generations evaluate
        /// nominally). Must be < ga.generations when probes are on.
        std::size_t activation_generation = 0;
        /// Coarse per-probe CI half-width early stop (0 = spend the budget).
        double target_half_width = 0.08;
        /// How estimated yield enters the fitness (weight blend vs yield
        /// constraint; see moo/robustness.hpp).
        moo::RobustnessMode mode = moo::RobustnessMode::weight;
        double yield_weight = 0.5; ///< weight mode: robustness share [0, 1]
        double min_yield = 0.9;    ///< constraint mode: yield target (0, 1]
        /// Probe only the K nominally-fittest individuals per generation
        /// (0 = whole population) - the tiered budget control.
        std::size_t max_points = 0;
        /// Carry fitted proposals across generations (skip later pilots).
        bool warm_start = true;
        /// Estimator-zoo member the probes run (empty = plain_mc). Must be
        /// probe-compatible with `budget`: a pilot that leaves no main-stage
        /// sample fails fast, listing the compatible zoo members.
        std::string estimator;
    };
    ProbeKnobs yield_probe;
    /// When non-empty, span tracing (obs::Tracer) is enabled for this run
    /// and the collected trace - flow step spans, engine batches, kernel
    /// chunks, yield chunk diagnostics, plus a metrics snapshot - is
    /// written here as Chrome trace-event JSON (chrome://tracing /
    /// Perfetto loadable). Purely observational: results are bit-identical
    /// with tracing on or off. Tracing is disabled again when run()
    /// returns.
    std::string trace_path;
};

struct FlowTimings {
    double moo_seconds = 0.0;
    double probe_seconds = 0.0; ///< inside moo_seconds: the probe share
    double mc_seconds = 0.0;
    double yield_seconds = 0.0;
    double table_seconds = 0.0;
    double total_seconds = 0.0;
    std::size_t moo_evaluations = 0; ///< points submitted by the optimiser
    std::size_t mc_evaluations = 0;  ///< points submitted by the MC stage
    std::size_t probe_points = 0;    ///< individuals probed during the GA
    std::size_t probe_samples = 0;   ///< yield samples spent by the probes

    /// The engine's ledger for the whole run: every testbench evaluation of
    /// the Fig. 3 pipeline (GA, nominal re-measures, MC) flows through one
    /// engine instance, so requests/evaluations/cache_hits/failures add up
    /// here and nowhere else.
    eval::EngineCounters engine;
};

/// Yield certificate of one surviving front point.
struct FrontPointYield {
    std::size_t design_id = 0; ///< matches FrontPointData::design_id
    yield::SequentialYieldResult result;
    /// The optimiser-side probe estimate of the same design (NaN when the
    /// point was never probed - probes off, pre-activation generation, or
    /// outside the probed top-K). The probe-vs-certified delta this exposes
    /// is the two-tier recipe's calibration signal.
    double probe_yield = std::numeric_limits<double>::quiet_NaN();
};

struct FlowResult {
    moo::WbgaResult optimisation;
    std::vector<std::size_t> pareto_indices; ///< into optimisation.archive
    std::vector<FrontPointData> front;       ///< MC-enriched, sorted by gain
    std::vector<FrontPointYield> yields;     ///< parallel to front; empty
                                             ///< unless config.yield_specs set
    ModelArtifacts artifacts;                ///< empty paths if no artifact_dir
    FlowTimings timings;
};

class YieldFlow {
public:
    YieldFlow(circuits::OtaConfig ota, FlowConfig config);

    /// Run the full pipeline. Deterministic in config.seed.
    [[nodiscard]] FlowResult run() const;

    [[nodiscard]] const FlowConfig& config() const { return config_; }
    [[nodiscard]] const circuits::OtaConfig& ota_config() const { return ota_; }

private:
    circuits::OtaConfig ota_;
    FlowConfig config_;
};

/// Step 3 alone: extract and sort the front from an optimisation archive.
/// Returns archive indices of non-dominated points, sorted by gain.
[[nodiscard]] std::vector<std::size_t>
extract_front_indices(const moo::WbgaResult& result);

} // namespace ypm::core
