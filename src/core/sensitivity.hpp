#pragma once
/// \file sensitivity.hpp
/// \brief Finite-difference sensitivity of the OTA performance to each
///        designable parameter.
///
/// Answers "which W/L actually moves gain and phase margin here?" - the
/// designer-facing diagnostic behind the paper's parameter choice (its
/// Table 1 fixes M1/M2 and exposes 8 parameters; the sensitivities show
/// why that split is reasonable at typical sizings).

#include <string>
#include <vector>

#include "circuits/ota.hpp"
#include "eval/engine.hpp"

namespace ypm::core {

/// Sensitivity of both objectives to one parameter, as relative-to-relative
/// ("elasticity") values: (df/f) / (dp/p) evaluated by central differences.
struct ParameterSensitivity {
    std::string name;
    double value = 0.0;        ///< parameter value at the expansion point
    double gain_elasticity = 0.0; ///< % gain(dB) change per % parameter change
    double pm_elasticity = 0.0;   ///< % PM change per % parameter change
};

struct SensitivityReport {
    double gain_db = 0.0; ///< nominal performance at the expansion point
    double pm_deg = 0.0;
    std::vector<ParameterSensitivity> parameters; ///< one per designable

    /// Parameter with the largest |gain elasticity| / |pm elasticity|.
    [[nodiscard]] const ParameterSensitivity& dominant_for_gain() const;
    [[nodiscard]] const ParameterSensitivity& dominant_for_pm() const;
};

/// Compute the report at a sizing, submitting the nominal point and all
/// 2x8 central-difference probes as one engine batch (they simulate in
/// parallel; probes landing on already-evaluated points hit the cache).
/// \param rel_step central-difference step as a fraction of each parameter
/// value (clipped to the Table 1 box).
/// \throws ypm::NumericalError when the nominal point fails to simulate.
[[nodiscard]] SensitivityReport
compute_sensitivities(eval::Engine& engine,
                      const circuits::OtaEvaluator& evaluator,
                      const circuits::OtaSizing& sizing, double rel_step = 0.02);

/// Legacy entry point: private engine, parallel dispatch.
[[nodiscard]] SensitivityReport
compute_sensitivities(const circuits::OtaEvaluator& evaluator,
                      const circuits::OtaSizing& sizing, double rel_step = 0.02);

} // namespace ypm::core
