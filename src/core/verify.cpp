#include "core/verify.hpp"

#include <cmath>

#include "circuits/ota_problem.hpp"
#include "core/ota_mc.hpp"
#include "util/error.hpp"

namespace ypm::core {

ModelVsTransistor
compare_model_vs_transistor(eval::Engine& engine,
                            const circuits::OtaEvaluator& evaluator,
                            const SizingResult& sizing) {
    // Default tag: measures through the canonical objectives chunk kernel,
    // so it shares the engine's nominal {gain, pm} cache key space.
    eval::EvalBatch batch;
    batch.add(sizing.sizing.to_vector());
    const auto evals =
        engine.evaluate(batch, circuits::ota_objectives_chunk_kernel(evaluator));
    if (evals.front().failed()) {
        // Re-measure outside the engine to recover the failure diagnostic.
        const auto perf = evaluator.measure(sizing.sizing);
        throw NumericalError("compare_model_vs_transistor: transistor simulation "
                             "failed: " +
                             perf.failure);
    }

    ModelVsTransistor cmp;
    cmp.transistor_gain_db = evals.front().values[0];
    cmp.transistor_pm_deg = evals.front().values[1];
    cmp.model_gain_db = sizing.predicted_gain_db;
    cmp.model_pm_deg = sizing.predicted_pm_deg;
    cmp.gain_error_pct =
        std::fabs(cmp.transistor_gain_db - cmp.model_gain_db) /
        std::fabs(cmp.transistor_gain_db) * 100.0;
    cmp.pm_error_pct = std::fabs(cmp.transistor_pm_deg - cmp.model_pm_deg) /
                       std::fabs(cmp.transistor_pm_deg) * 100.0;
    return cmp;
}

ModelVsTransistor
compare_model_vs_transistor(const circuits::OtaEvaluator& evaluator,
                            const SizingResult& sizing) {
    eval::Engine engine;
    return compare_model_vs_transistor(engine, evaluator, sizing);
}

YieldVerification verify_ota_yield(eval::Engine& engine,
                                   const circuits::OtaEvaluator& evaluator,
                                   const circuits::OtaSizing& sizing,
                                   const process::ProcessSampler& sampler,
                                   double min_gain_db, double min_pm_deg,
                                   std::size_t samples, Rng& rng) {
    const mc::McResult result =
        run_ota_monte_carlo(engine, evaluator, sizing, sampler, samples, rng);

    YieldVerification v;
    v.gain_variation = result.column_variation(0);
    v.pm_variation = result.column_variation(1);
    const std::vector<mc::Spec> specs = {
        mc::Spec::at_least("gain_db", min_gain_db),
        mc::Spec::at_least("pm_deg", min_pm_deg),
    };
    v.yield = mc::estimate_yield(result.rows, specs);
    return v;
}

YieldVerification verify_ota_yield(const circuits::OtaEvaluator& evaluator,
                                   const circuits::OtaSizing& sizing,
                                   const process::ProcessSampler& sampler,
                                   double min_gain_db, double min_pm_deg,
                                   std::size_t samples, Rng& rng) {
    eval::Engine engine;
    return verify_ota_yield(engine, evaluator, sizing, sampler, min_gain_db,
                            min_pm_deg, samples, rng);
}

} // namespace ypm::core
