#include "core/artifacts.hpp"

#include <filesystem>
#include <fstream>

#include "table/tbl_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "va/va_codegen.hpp"

namespace ypm::core {

namespace fs = std::filesystem;

ModelArtifacts write_artifacts(const std::vector<FrontPointData>& front,
                               const std::string& dir) {
    return write_artifacts(front, {}, dir);
}

ModelArtifacts write_artifacts(const std::vector<FrontPointData>& front,
                               const std::vector<YieldTableRow>& yields,
                               const std::string& dir) {
    if (front.size() < 3)
        throw InvalidInputError("write_artifacts: need >= 3 front points");

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) throw IoError("write_artifacts: cannot create '" + dir + "'");

    ModelArtifacts art;
    art.dir = dir;

    std::vector<double> gains, pms, dgains, dpms, f3dbs;
    gains.reserve(front.size());
    for (const auto& p : front) {
        gains.push_back(p.gain_db);
        pms.push_back(p.pm_deg);
        dgains.push_back(p.dgain_pct);
        dpms.push_back(p.dpm_pct);
        f3dbs.push_back(p.f3db);
    }

    const auto join = [&](const std::string& name) {
        return (fs::path(dir) / name).string();
    };

    // 1-D variation tables (paper: gain_delta.tbl / pm_delta.tbl).
    art.gain_delta_tbl = join("gain_delta.tbl");
    table::write_tbl(art.gain_delta_tbl, table::make_tbl_1d(gains, dgains),
                     {"gain (dB) -> delta gain (%, 3sigma/mean)"});
    art.pm_delta_tbl = join("pm_delta.tbl");
    table::write_tbl(art.pm_delta_tbl, table::make_tbl_1d(pms, dpms),
                     {"phase margin (deg) -> delta pm (%, 3sigma/mean)"});

    // 2-D parameter tables (paper: lp1_data.tbl ... ), one per designable.
    const auto& names = circuits::OtaSizing::parameter_names();
    art.param_tbls.clear();
    for (std::size_t k = 0; k < names.size(); ++k) {
        std::vector<double> column;
        column.reserve(front.size());
        for (const auto& p : front) column.push_back(p.sizing.to_vector()[k]);
        const std::string path = join("lp" + std::to_string(k + 1) + "_data.tbl");
        table::write_tbl(path, table::make_tbl_2d(gains, pms, column),
                         {"(gain dB, pm deg) -> " + names[k] + " (m)"});
        art.param_tbls.push_back(path);
    }

    art.f3db_tbl = join("lp_f3db.tbl");
    table::write_tbl(art.f3db_tbl, table::make_tbl_2d(gains, pms, f3dbs),
                     {"(gain dB, pm deg) -> dominant pole f3db (Hz)"});

    // Full front as CSV for plotting.
    art.front_csv = join("pareto_front.csv");
    {
        std::ofstream f(art.front_csv);
        if (!f) throw IoError("write_artifacts: cannot write front csv");
        f << "design_id,gain_db,pm_deg,dgain_pct,dpm_pct,dgain_halfrange_pct,"
             "dpm_halfrange_pct,f3db_hz,gbw_hz,mc_failures,probe_yield";
        for (const auto& n : names) f << ',' << n;
        f << '\n';
        for (const auto& p : front) {
            f << p.design_id << ',' << str::fmt_double(p.gain_db) << ','
              << str::fmt_double(p.pm_deg) << ',' << str::fmt_double(p.dgain_pct)
              << ',' << str::fmt_double(p.dpm_pct) << ','
              << str::fmt_double(p.dgain_halfrange_pct) << ','
              << str::fmt_double(p.dpm_halfrange_pct) << ','
              << str::fmt_double(p.f3db) << ',' << str::fmt_double(p.gbw) << ','
              << p.mc_failures << ',' << str::fmt_double(p.probe_yield);
            for (double v : p.sizing.to_vector()) f << ',' << str::fmt_double(v);
            f << '\n';
        }
    }

    // Yield table: probe estimate vs certified estimate per design - the
    // two-tier calibration signal - plus, when the whole front is covered,
    // a (gain, pm) -> yield spline table for model back-annotation.
    if (!yields.empty()) {
        const auto front_of = [&](std::size_t design_id) -> const FrontPointData& {
            for (const auto& p : front)
                if (p.design_id == design_id) return p;
            throw InvalidInputError(
                "write_artifacts: yield row for unknown design_id " +
                std::to_string(design_id));
        };
        art.yield_csv = join("yield_front.csv");
        std::ofstream f(art.yield_csv);
        if (!f) throw IoError("write_artifacts: cannot write yield csv");
        f << "design_id,gain_db,pm_deg,probe_yield,yield,ci_low,ci_high,"
             "probe_delta,ess,samples,reached_target\n";
        for (const auto& row : yields) {
            const FrontPointData& p = front_of(row.design_id);
            f << row.design_id << ',' << str::fmt_double(p.gain_db) << ','
              << str::fmt_double(p.pm_deg) << ','
              << str::fmt_double(row.probe_yield) << ','
              << str::fmt_double(row.yield) << ','
              << str::fmt_double(row.ci_low) << ','
              << str::fmt_double(row.ci_high) << ','
              << str::fmt_double(row.probe_yield - row.yield) << ','
              << str::fmt_double(row.ess) << ',' << row.samples << ','
              << (row.reached_target ? 1 : 0) << '\n';
        }
        if (yields.size() == front.size()) {
            std::vector<double> ygains, ypms, yvals;
            ygains.reserve(yields.size());
            for (const auto& row : yields) {
                const FrontPointData& p = front_of(row.design_id);
                ygains.push_back(p.gain_db);
                ypms.push_back(p.pm_deg);
                yvals.push_back(row.yield);
            }
            art.yield_tbl = join("yield_front.tbl");
            table::write_tbl(art.yield_tbl,
                             table::make_tbl_2d(ygains, ypms, yvals),
                             {"(gain dB, pm deg) -> certified yield"});
        }
    }

    // Generated Verilog-A module (paper section 4.4 listing).
    va::VaModuleFiles files;
    files.gain_delta = "gain_delta.tbl";
    files.pm_delta = "pm_delta.tbl";
    for (std::size_t k = 0; k < names.size(); ++k)
        files.param_tables.push_back("lp" + std::to_string(k + 1) + "_data.tbl");
    art.va_module = join("ota_yield_model.va");
    va::write_va_module(art.va_module, files);

    return art;
}

std::vector<FrontPointData>
read_front_from_artifacts(const ModelArtifacts& artifacts) {
    const table::TblData gain_delta = table::read_tbl(artifacts.gain_delta_tbl);
    const table::TblData pm_delta = table::read_tbl(artifacts.pm_delta_tbl);
    const table::TblData f3db = table::read_tbl(artifacts.f3db_tbl);
    if (gain_delta.coord_columns != 1 || pm_delta.coord_columns != 1 ||
        f3db.coord_columns != 2)
        throw InvalidInputError("read_front_from_artifacts: unexpected table arity");

    const std::size_t n = gain_delta.samples();
    if (pm_delta.samples() != n || f3db.samples() != n)
        throw InvalidInputError("read_front_from_artifacts: table sizes differ");

    std::vector<table::TblData> params;
    params.reserve(artifacts.param_tbls.size());
    for (const auto& path : artifacts.param_tbls) {
        params.push_back(table::read_tbl(path));
        if (params.back().samples() != n || params.back().coord_columns != 2)
            throw InvalidInputError("read_front_from_artifacts: bad param table '" +
                                    path + "'");
    }
    if (params.size() != circuits::OtaSizing::parameter_count)
        throw InvalidInputError("read_front_from_artifacts: expected 8 param tables");

    std::vector<FrontPointData> front(n);
    for (std::size_t i = 0; i < n; ++i) {
        front[i].design_id = i + 1;
        front[i].gain_db = gain_delta.coords[i][0];
        front[i].dgain_pct = gain_delta.values[i];
        front[i].pm_deg = pm_delta.coords[i][0];
        front[i].dpm_pct = pm_delta.values[i];
        front[i].f3db = f3db.values[i];
        std::vector<double> sizing(circuits::OtaSizing::parameter_count);
        for (std::size_t k = 0; k < params.size(); ++k)
            sizing[k] = params[k].values[i];
        front[i].sizing = circuits::OtaSizing::from_vector(sizing);
    }
    return front;
}

} // namespace ypm::core
