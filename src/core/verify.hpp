#pragma once
/// \file verify.hpp
/// \brief Verification of the behavioural model against transistor-level
///        simulation: the paper's Table 4 comparison and the 500-sample
///        Monte Carlo yield check.

#include "circuits/ota.hpp"
#include "core/behav_model.hpp"
#include "eval/engine.hpp"
#include "mc/stats.hpp"
#include "mc/yield.hpp"
#include "process/sampler.hpp"

namespace ypm::core {

/// Paper Table 4: transistor-level performance of the interpolated sizing
/// vs the model's prediction.
struct ModelVsTransistor {
    double transistor_gain_db = 0.0;
    double transistor_pm_deg = 0.0;
    double model_gain_db = 0.0;
    double model_pm_deg = 0.0;
    double gain_error_pct = 0.0; ///< |transistor - model| / transistor * 100
    double pm_error_pct = 0.0;
};

[[nodiscard]] ModelVsTransistor
compare_model_vs_transistor(eval::Engine& engine,
                            const circuits::OtaEvaluator& evaluator,
                            const SizingResult& sizing);

/// Legacy entry point: private engine.
[[nodiscard]] ModelVsTransistor
compare_model_vs_transistor(const circuits::OtaEvaluator& evaluator,
                            const SizingResult& sizing);

/// Paper section 4.4: "A Monte Carlo simulation using 500 samples was
/// carried out and verified a yield of 100%".
struct YieldVerification {
    mc::YieldEstimate yield;
    mc::VariationMetrics gain_variation;
    mc::VariationMetrics pm_variation;
};

/// MC the sized design against the *original* (un-inflated) requirement.
[[nodiscard]] YieldVerification
verify_ota_yield(eval::Engine& engine, const circuits::OtaEvaluator& evaluator,
                 const circuits::OtaSizing& sizing,
                 const process::ProcessSampler& sampler, double min_gain_db,
                 double min_pm_deg, std::size_t samples, Rng& rng);

/// Legacy entry point: private engine, parallel dispatch.
[[nodiscard]] YieldVerification
verify_ota_yield(const circuits::OtaEvaluator& evaluator,
                 const circuits::OtaSizing& sizing,
                 const process::ProcessSampler& sampler, double min_gain_db,
                 double min_pm_deg, std::size_t samples, Rng& rng);

} // namespace ypm::core
