#pragma once
/// \file ota_mc.hpp
/// \brief Monte Carlo analysis of one OTA sizing (paper section 3.4 / 4.4):
///        N process realisations, each measured through the full testbench.

#include "circuits/ota.hpp"
#include "eval/engine.hpp"
#include "mc/monte_carlo.hpp"
#include "process/sampler.hpp"
#include "util/rng.hpp"
#include "yield/sequential.hpp"

namespace ypm::core {

/// Run `samples` process realisations of the given sizing through a shared
/// evaluation engine. Result columns: 0 = gain_db, 1 = pm_deg (NaN rows
/// mark convergence failures).
[[nodiscard]] mc::McResult
run_ota_monte_carlo(eval::Engine& engine, const circuits::OtaEvaluator& evaluator,
                    const circuits::OtaSizing& sizing,
                    const process::ProcessSampler& sampler, std::size_t samples,
                    Rng& rng);

/// Async variant: enqueue the run and return its ticket without blocking,
/// so MC stages of several Pareto points overlap on the engine's pool.
/// `evaluator` and `sampler` must outlive mc::wait_monte_carlo(); rows are
/// bit-identical to run_ota_monte_carlo() with the same engine state/rng.
[[nodiscard]] mc::McTicket
submit_ota_monte_carlo(eval::Engine& engine,
                       const circuits::OtaEvaluator& evaluator,
                       const circuits::OtaSizing& sizing,
                       const process::ProcessSampler& sampler,
                       std::size_t samples, Rng& rng);

/// Legacy entry point: private engine honouring `parallel`.
[[nodiscard]] mc::McResult
run_ota_monte_carlo(const circuits::OtaEvaluator& evaluator,
                    const circuits::OtaSizing& sizing,
                    const process::ProcessSampler& sampler, std::size_t samples,
                    Rng& rng, bool parallel = true);

/// Kernel factory for the variance-reduction yield engine
/// (yield::SequentialYieldRunner): chunks draw process realisations from the
/// defensive mixture proposal (process::ProcessSampler::sample_mixture) and
/// measure them through the warm prototype pool. Rows are {gain_db, pm_deg,
/// log_weight}, plus the standardized coordinates when u recording is
/// requested; a failed simulation keeps its (valid) weight and fails every
/// spec via NaN performances. With a one-component inactive mixture the
/// performance columns are bit-identical to run_ota_monte_carlo rows.
/// `evaluator` and `sampler` are captured by reference and must outlive the
/// run; sizing, geometry and the mixture are captured by value.
[[nodiscard]] yield::KernelFactory
ota_yield_kernel_factory(const circuits::OtaEvaluator& evaluator,
                         const circuits::OtaSizing& sizing,
                         const process::ProcessSampler& sampler);

/// Standardized process-space dimension of the factory's u record (the
/// testbench's MOS inventory; identical for every sizing of one topology).
[[nodiscard]] std::size_t
ota_yield_dimension(const circuits::OtaEvaluator& evaluator,
                    const circuits::OtaSizing& sizing);

} // namespace ypm::core
