#pragma once
/// \file corners.hpp
/// \brief Worst-case corner screening of an OTA sizing.
///
/// Before spending a Monte Carlo budget, designers sweep the classic
/// process corners (TT/FF/SS/FS/SF at +/-3 sigma global shifts). Corner
/// screening brackets the global-variation component of the spread but
/// misses local mismatch, so it complements - never replaces - the paper's
/// per-point MC (see bench_ablation_mc for the quantitative comparison).

#include <string>
#include <vector>

#include "circuits/ota.hpp"
#include "eval/engine.hpp"
#include "process/sampler.hpp"

namespace ypm::core {

/// Performance at one corner.
struct CornerPoint {
    process::Corner corner = process::Corner::tt;
    bool valid = false;
    double gain_db = 0.0;
    double pm_deg = 0.0;
};

/// Results of a 5-corner sweep.
struct CornerSweep {
    std::vector<CornerPoint> points; ///< tt, ff, ss, fs, sf in order
    double gain_min = 0.0, gain_max = 0.0;
    double pm_min = 0.0, pm_max = 0.0;

    /// Corner-predicted Δ(%) analogue: half-spread relative to the TT value.
    double dgain_halfspread_pct = 0.0;
    double dpm_halfspread_pct = 0.0;

    [[nodiscard]] const CornerPoint& at(process::Corner c) const;
};

/// Sweep all five corners for a sizing as one engine batch (the corners
/// simulate in parallel through warm pooled testbench prototypes, and
/// repeated sweeps of the same sizing are served from the engine's cache).
/// \throws ypm::NumericalError when the typical (TT) corner fails to
/// simulate; other corner failures are reported via CornerPoint::valid.
[[nodiscard]] CornerSweep run_corner_sweep(eval::Engine& engine,
                                           const circuits::OtaEvaluator& evaluator,
                                           const circuits::OtaSizing& sizing,
                                           const process::ProcessSampler& sampler);

/// Legacy entry point: private engine, parallel dispatch.
[[nodiscard]] CornerSweep run_corner_sweep(const circuits::OtaEvaluator& evaluator,
                                           const circuits::OtaSizing& sizing,
                                           const process::ProcessSampler& sampler);

} // namespace ypm::core
