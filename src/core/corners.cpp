#include "core/corners.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "moo/problem.hpp"
#include "util/error.hpp"

namespace ypm::core {

namespace {

/// Cache-key convention: 0 is reserved for the nominal process, so corner
/// c maps to 1 + its enum value.
std::uint64_t corner_key(process::Corner c) {
    return 1 + static_cast<std::uint64_t>(c);
}

process::Corner corner_from_key(std::uint64_t key) {
    return static_cast<process::Corner>(key - 1);
}

} // namespace

const CornerPoint& CornerSweep::at(process::Corner c) const {
    for (const auto& p : points)
        if (p.corner == c) return p;
    throw InvalidInputError("CornerSweep: corner not present");
}

CornerSweep run_corner_sweep(eval::Engine& engine,
                             const circuits::OtaEvaluator& evaluator,
                             const circuits::OtaSizing& sizing,
                             const process::ProcessSampler& sampler) {
    using process::Corner;
    constexpr Corner kCorners[] = {Corner::tt, Corner::ff, Corner::ss, Corner::fs,
                                   Corner::sf};

    eval::EvalBatch batch;
    for (Corner c : kCorners) batch.add(sizing.to_vector(), corner_key(c));

    // Chunk kernel: corner realisations decode from the process key, then
    // the whole group measures through a leased warm testbench prototype.
    const auto evals = engine.evaluate(
        std::move(batch),
        eval::BatchKernelFn([&](const std::vector<const eval::EvalRequest*>&
                                    requests) {
            std::vector<circuits::OtaSizing> sizings;
            std::vector<process::Realization> reals;
            sizings.reserve(requests.size());
            reals.reserve(requests.size());
            for (const eval::EvalRequest* request : requests) {
                sizings.push_back(
                    circuits::OtaSizing::from_vector(request->params));
                reals.push_back(
                    sampler.corner(corner_from_key(request->process_key)));
            }
            const auto perfs = evaluator.measure_chunk(sizings, reals);
            std::vector<std::vector<double>> rows;
            rows.reserve(perfs.size());
            for (const circuits::OtaPerformance& perf : perfs) {
                if (!perf.valid)
                    rows.push_back(moo::failed_evaluation(2));
                else
                    rows.push_back({perf.gain_db, perf.pm_deg});
            }
            return rows;
        }));

    CornerSweep sweep;
    sweep.points.reserve(std::size(kCorners));
    for (std::size_t i = 0; i < std::size(kCorners); ++i) {
        CornerPoint point;
        point.corner = kCorners[i];
        if (!evals[i].failed()) {
            point.valid = true;
            point.gain_db = evals[i].values[0];
            point.pm_deg = evals[i].values[1];
        }
        sweep.points.push_back(point);
    }

    if (!sweep.points.front().valid)
        throw NumericalError("run_corner_sweep: typical corner failed to simulate");

    bool first = true;
    for (const auto& p : sweep.points) {
        if (!p.valid) continue;
        if (first) {
            sweep.gain_min = sweep.gain_max = p.gain_db;
            sweep.pm_min = sweep.pm_max = p.pm_deg;
            first = false;
            continue;
        }
        sweep.gain_min = std::min(sweep.gain_min, p.gain_db);
        sweep.gain_max = std::max(sweep.gain_max, p.gain_db);
        sweep.pm_min = std::min(sweep.pm_min, p.pm_deg);
        sweep.pm_max = std::max(sweep.pm_max, p.pm_deg);
    }

    const CornerPoint& tt = sweep.points.front();
    if (std::fabs(tt.gain_db) > 0.0)
        sweep.dgain_halfspread_pct =
            0.5 * (sweep.gain_max - sweep.gain_min) / std::fabs(tt.gain_db) * 100.0;
    if (std::fabs(tt.pm_deg) > 0.0)
        sweep.dpm_halfspread_pct =
            0.5 * (sweep.pm_max - sweep.pm_min) / std::fabs(tt.pm_deg) * 100.0;
    return sweep;
}

CornerSweep run_corner_sweep(const circuits::OtaEvaluator& evaluator,
                             const circuits::OtaSizing& sizing,
                             const process::ProcessSampler& sampler) {
    eval::Engine engine;
    return run_corner_sweep(engine, evaluator, sizing, sampler);
}

} // namespace ypm::core
