#include "core/corners.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ypm::core {

const CornerPoint& CornerSweep::at(process::Corner c) const {
    for (const auto& p : points)
        if (p.corner == c) return p;
    throw InvalidInputError("CornerSweep: corner not present");
}

CornerSweep run_corner_sweep(const circuits::OtaEvaluator& evaluator,
                             const circuits::OtaSizing& sizing,
                             const process::ProcessSampler& sampler) {
    using process::Corner;
    CornerSweep sweep;
    sweep.points.reserve(5);

    for (Corner c : {Corner::tt, Corner::ff, Corner::ss, Corner::fs, Corner::sf}) {
        CornerPoint point;
        point.corner = c;
        const process::Realization real = sampler.corner(c);
        const circuits::OtaPerformance perf = evaluator.measure(sizing, real);
        if (perf.valid) {
            point.valid = true;
            point.gain_db = perf.gain_db;
            point.pm_deg = perf.pm_deg;
        }
        sweep.points.push_back(point);
    }

    if (!sweep.points.front().valid)
        throw NumericalError("run_corner_sweep: typical corner failed to simulate");

    bool first = true;
    for (const auto& p : sweep.points) {
        if (!p.valid) continue;
        if (first) {
            sweep.gain_min = sweep.gain_max = p.gain_db;
            sweep.pm_min = sweep.pm_max = p.pm_deg;
            first = false;
            continue;
        }
        sweep.gain_min = std::min(sweep.gain_min, p.gain_db);
        sweep.gain_max = std::max(sweep.gain_max, p.gain_db);
        sweep.pm_min = std::min(sweep.pm_min, p.pm_deg);
        sweep.pm_max = std::max(sweep.pm_max, p.pm_deg);
    }

    const CornerPoint& tt = sweep.points.front();
    if (std::fabs(tt.gain_db) > 0.0)
        sweep.dgain_halfspread_pct =
            0.5 * (sweep.gain_max - sweep.gain_min) / std::fabs(tt.gain_db) * 100.0;
    if (std::fabs(tt.pm_deg) > 0.0)
        sweep.dpm_halfspread_pct =
            0.5 * (sweep.pm_max - sweep.pm_min) / std::fabs(tt.pm_deg) * 100.0;
    return sweep;
}

} // namespace ypm::core
