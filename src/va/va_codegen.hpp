#pragma once
/// \file va_codegen.hpp
/// \brief Verilog-A source generator.
///
/// The paper's deliverable is a Verilog-A module whose $table_model() calls
/// read the performance/variation tables produced by the flow (section 4.4
/// listing). Spectre is not available offline, so the module text itself is
/// generated as an artefact - byte-for-byte in the paper's structure - and
/// its semantics execute natively through va::BehaviouralOta plus
/// table::TableModel1d / table::ParetoTable.

#include <string>
#include <vector>

namespace ypm::va {

/// File names referenced by the generated module.
struct VaModuleFiles {
    std::string gain_delta = "gain_delta.tbl";
    std::string pm_delta = "pm_delta.tbl";
    /// Per-designable-parameter tables, e.g. {"lp1_data.tbl", ...}.
    std::vector<std::string> param_tables;
    std::string params_out = "params.dat";
};

struct VaModuleOptions {
    std::string module_name = "ota_yield_model";
    std::string control_1d = "3E";     ///< paper section 3.5: cubic, no extrap
    std::string control_2d = "3E,3E";
    double rout = 1e6;                 ///< ro of the output contribution
};

/// Generate the complete Verilog-A module text (the paper's section 4.4
/// listing generalised to N designable parameters).
[[nodiscard]] std::string generate_va_module(const VaModuleFiles& files,
                                             const VaModuleOptions& options = {});

/// Write the module to a file. \throws ypm::IoError on failure.
void write_va_module(const std::string& path, const VaModuleFiles& files,
                     const VaModuleOptions& options = {});

} // namespace ypm::va
