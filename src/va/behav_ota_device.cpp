#include "va/behav_ota_device.hpp"

#include <complex>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::va {

BehaviouralOta::BehaviouralOta(std::string name, spice::NodeId inp,
                               spice::NodeId inn, spice::NodeId out,
                               BehaviouralOtaSpec spec)
    : Device(std::move(name)), inp_(inp), inn_(inn), out_(out) {
    set_spec(spec);
}

void BehaviouralOta::set_spec(const BehaviouralOtaSpec& spec) {
    if (!(spec.rout > 0.0))
        throw InvalidInputError("BehaviouralOta " + name() + ": rout must be > 0");
    if (!(spec.f3db > 0.0))
        throw InvalidInputError("BehaviouralOta " + name() + ": f3db must be > 0");
    spec_ = spec;
    a0_ = mathx::undb20(spec.gain_db);
}

void BehaviouralOta::stamp_dc(spice::RealStamper& s, const spice::Solution&) const {
    const spice::NodeId u = internal_node();
    // Controlled source: V(u) = A0 * (V(inp) - V(inn)); branch current into u.
    s.mat_branch_col(u, branch(), 1.0);
    s.mat_branch_row(branch(), u, 1.0);
    s.mat_branch_row(branch(), inp_, -a0_);
    s.mat_branch_row(branch(), inn_, a0_);
    // Series output resistance u -> out.
    s.conductance(u, out_, 1.0 / spec_.rout);
}

void BehaviouralOta::stamp_tran(spice::RealStamper& s, const spice::Solution&,
                                const spice::TranContext& ctx) const {
    const spice::NodeId u = internal_node();
    // du/dt = wp (A0 vd - u), backward Euler:
    // u_n (1 + wp dt) - wp dt A0 vd_n = u_{n-1}.
    const double wp = 2.0 * mathx::pi * spec_.f3db;
    const double k = wp * ctx.dt;
    const double u_prev = ctx.prev->voltage(u);
    s.mat_branch_col(u, branch(), 1.0);
    s.mat_branch_row(branch(), u, 1.0 + k);
    s.mat_branch_row(branch(), inp_, -k * a0_);
    s.mat_branch_row(branch(), inn_, k * a0_);
    s.rhs_branch(branch(), u_prev);
    s.conductance(u, out_, 1.0 / spec_.rout);
}

void BehaviouralOta::stamp_ac(spice::ComplexStamper& s, double omega,
                              const spice::Solution&) const {
    const spice::NodeId u = internal_node();
    // Single dominant pole: A(jw) = A0 / (1 + j w/wp).
    const double wp = 2.0 * mathx::pi * spec_.f3db;
    const std::complex<double> a = a0_ / std::complex<double>(1.0, omega / wp);
    s.mat_branch_col(u, branch(), {1.0, 0.0});
    s.mat_branch_row(branch(), u, {1.0, 0.0});
    s.mat_branch_row(branch(), inp_, -a);
    s.mat_branch_row(branch(), inn_, a);
    s.conductance(u, out_, {1.0 / spec_.rout, 0.0});
}

} // namespace ypm::va
