#pragma once
/// \file behav_ota_device.hpp
/// \brief Behavioural OTA macromodel as a simulator device.
///
/// Runtime equivalent of the paper's generated Verilog-A module (section
/// 4.4 listing): the output contribution is
///
///     V(out) <+ A(s) * (V(inp) - V(inn)) - I(out) * ro
///
/// realised as an internal controlled source with a single dominant pole
/// A(s) = A0 / (1 + j f/fp) plus a series output resistance. Higher-order
/// (parasitic) poles of the transistor circuit are intentionally not
/// modelled - reproducing the >40 MHz divergence of paper Fig. 8.

#include "spice/device.hpp"

namespace ypm::va {

/// Electrical parameters of the macromodel.
struct BehaviouralOtaSpec {
    double gain_db = 50.0; ///< DC open-loop gain (dB)
    double f3db = 10e3;    ///< dominant-pole frequency (Hz)
    double rout = 1e6;     ///< output resistance (ohm)
};

class BehaviouralOta final : public spice::Device {
public:
    BehaviouralOta(std::string name, spice::NodeId inp, spice::NodeId inn,
                   spice::NodeId out, BehaviouralOtaSpec spec);

    /// One private node (the ideal gain output before rout).
    [[nodiscard]] std::size_t internal_node_count() const override { return 1; }
    /// One branch current (the controlled source's).
    [[nodiscard]] std::size_t branch_count() const override { return 1; }

    void stamp_dc(spice::RealStamper& s, const spice::Solution& x) const override;
    void stamp_ac(spice::ComplexStamper& s, double omega,
                  const spice::Solution& op) const override;
    /// Transient: the dominant pole becomes a first-order ODE on the
    /// internal node, integrated with backward Euler.
    void stamp_tran(spice::RealStamper& s, const spice::Solution& x,
                    const spice::TranContext& ctx) const override;

    [[nodiscard]] const BehaviouralOtaSpec& spec() const { return spec_; }
    void set_spec(const BehaviouralOtaSpec& spec);

private:
    spice::NodeId inp_, inn_, out_;
    BehaviouralOtaSpec spec_;
    double a0_ = 0.0; ///< linear DC gain, cached from spec
};

} // namespace ypm::va
