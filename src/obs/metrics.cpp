#include "obs/metrics.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::obs {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
    if (edges_.empty())
        throw InvalidInputError("obs::Histogram: need >= 1 bucket edge");
    if (!std::is_sorted(edges_.begin(), edges_.end()) ||
        std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end())
        throw InvalidInputError(
            "obs::Histogram: bucket edges must be strictly increasing");
    buckets_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(edges_.size() + 1);
    for (std::size_t i = 0; i <= edges_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
    std::size_t bucket = edges_.size(); // overflow unless an edge matches
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (v <= edges_[i]) {
            bucket = i;
            break;
        }
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> out(edges_.size() + 1);
    for (std::size_t i = 0; i <= edges_.size(); ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

void Histogram::reset() {
    for (std::size_t i = 0; i <= edges_.size(); ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
    for (const CounterSnapshot& c : counters)
        if (c.name == name) return c.value;
    return 0;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
    for (const GaugeSnapshot& g : gauges)
        if (g.name == name) return g.value;
    return 0.0;
}

std::string MetricsSnapshot::to_json() const {
    std::string out = "{\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (i != 0) out += ',';
        out += '"' + str::json_escape(counters[i].name) +
               "\":" + std::to_string(counters[i].value);
    }
    out += "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        if (i != 0) out += ',';
        out += '"' + str::json_escape(gauges[i].name) +
               "\":" + str::fmt_double(gauges[i].value);
    }
    out += "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        const HistogramSnapshot& h = histograms[i];
        if (i != 0) out += ',';
        out += '"' + str::json_escape(h.name) + "\":{\"edges\":[";
        for (std::size_t k = 0; k < h.edges.size(); ++k) {
            if (k != 0) out += ',';
            out += str::fmt_double(h.edges[k]);
        }
        out += "],\"buckets\":[";
        for (std::size_t k = 0; k < h.buckets.size(); ++k) {
            if (k != 0) out += ',';
            out += std::to_string(h.buckets[k]);
        }
        out += "],\"count\":" + std::to_string(h.count) +
               ",\"sum\":" + str::fmt_double(h.sum) + "}";
    }
    out += "}}";
    return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    const util::MutexLock lock(mutex_);
    Entry& entry = entries_[name];
    if (entry.counter == nullptr) {
        if (entry.gauge != nullptr || entry.histogram != nullptr)
            throw InvalidInputError("obs::MetricsRegistry: '" + name +
                                    "' is already registered with a "
                                    "different instrument kind");
        entry.kind = Kind::counter;
        entry.counter = std::make_unique<Counter>();
    }
    return *entry.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    const util::MutexLock lock(mutex_);
    Entry& entry = entries_[name];
    if (entry.gauge == nullptr) {
        if (entry.counter != nullptr || entry.histogram != nullptr)
            throw InvalidInputError("obs::MetricsRegistry: '" + name +
                                    "' is already registered with a "
                                    "different instrument kind");
        entry.kind = Kind::gauge;
        entry.gauge = std::make_unique<Gauge>();
    }
    return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> edges) {
    const util::MutexLock lock(mutex_);
    Entry& entry = entries_[name];
    if (entry.histogram == nullptr) {
        if (entry.counter != nullptr || entry.gauge != nullptr)
            throw InvalidInputError("obs::MetricsRegistry: '" + name +
                                    "' is already registered with a "
                                    "different instrument kind");
        entry.kind = Kind::histogram;
        entry.histogram = std::make_unique<Histogram>(std::move(edges));
    } else if (entry.histogram->edges() != edges) {
        throw InvalidInputError("obs::MetricsRegistry: histogram '" + name +
                                "' re-registered with different bucket edges");
    }
    return *entry.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    const util::MutexLock lock(mutex_);
    for (const auto& [name, entry] : entries_) {
        switch (entry.kind) {
        case Kind::counter:
            snap.counters.push_back({name, entry.counter->value()});
            break;
        case Kind::gauge:
            snap.gauges.push_back({name, entry.gauge->value()});
            break;
        case Kind::histogram:
            snap.histograms.push_back({name, entry.histogram->edges(),
                                       entry.histogram->bucket_counts(),
                                       entry.histogram->count(),
                                       entry.histogram->sum()});
            break;
        }
    }
    return snap;
}

void MetricsRegistry::reset() {
    const util::MutexLock lock(mutex_);
    for (auto& [name, entry] : entries_) {
        switch (entry.kind) {
        case Kind::counter: entry.counter->reset(); break;
        case Kind::gauge: entry.gauge->reset(); break;
        case Kind::histogram: entry.histogram->reset(); break;
        }
    }
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

} // namespace ypm::obs
