#pragma once
/// \file trace.hpp
/// \brief Opt-in span tracer with Chrome trace-event export.
///
/// The tracer records timed spans (RAII obs::Span scopes and explicit
/// complete events) and instant events into per-thread buffers; drain()
/// merges them into one run-wide, time-sorted trace that
/// write_chrome_trace() serializes as Chrome trace-event JSON - loadable
/// directly in chrome://tracing or https://ui.perfetto.dev.
///
/// Design constraints, in order:
///
///  * Disabled cost ~ zero. Tracing is off by default; every instrumentation
///    site first reads one relaxed atomic flag (Tracer::enabled()) and does
///    nothing else when it is false - no clock reads, no string
///    construction, no allocation. The bench-smoke CI job gates on this
///    (<= 2 % on chunk throughput with tracing off).
///  * Purely observational. Recording never touches RNG streams, engine
///    retirement order or reduction order, so results are bit-identical
///    with tracing on or off (asserted in tests/test_async.cpp and
///    tests/test_obs.cpp).
///  * TSan-clean. Each thread appends to its own buffer under that buffer's
///    own util::Mutex (uncontended in steady state); drain() walks the
///    buffer registry and takes each buffer lock in turn.
///
/// Thread ids in the trace are small integers assigned in first-record
/// order, not OS tids - stable enough to read and compare across runs.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/clock.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ypm::obs {

/// One span argument; values are doubles (counts, rates, seconds) - enough
/// for every diagnostic the engine/yield layers emit, and trivially JSON.
struct TraceArg {
    const char* key = "";
    double value = 0.0;
};

/// One recorded event. `dur_ns` > 0 or == 0 with instant == false is a
/// complete ("X") event; instant == true is an instant ("i") event.
struct TraceEvent {
    const char* name = "";     ///< static string (instrumentation literals)
    const char* category = ""; ///< static string
    util::TickNs start_ns = 0;
    util::TickNs dur_ns = 0;
    std::uint32_t tid = 0;
    bool instant = false;
    std::vector<TraceArg> args;
};

/// Process-wide trace collector. All mutation goes through the static
/// helpers; the instance API covers drain/clear and serialization.
class Tracer {
public:
    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// The one check every instrumentation site makes first. Relaxed load:
    /// a site racing a set_enabled() flip may record one event more or
    /// fewer, which only affects the trace, never results.
    [[nodiscard]] static bool enabled() {
        return enabled_.load(std::memory_order_relaxed);
    }
    static void set_enabled(bool on) {
        enabled_.store(on, std::memory_order_relaxed);
    }

    /// Append one event to the calling thread's buffer. No-op when tracing
    /// is disabled (sites normally check enabled() first and never build
    /// the event; this re-check just makes late racers harmless).
    static void record(TraceEvent event);

    /// Record a complete ("X") event from explicit tick stamps - for spans
    /// whose begin/end straddle scopes (e.g. an engine batch: stamped at
    /// submit, recorded at retirement).
    static void record_complete(const char* name, const char* category,
                                util::TickNs start_ns, util::TickNs end_ns,
                                std::initializer_list<TraceArg> args = {});

    /// Record an instant ("i") event at now. Arguments are evaluated by the
    /// caller, so guard call sites with `if (Tracer::enabled())`.
    static void instant(const char* name, const char* category,
                        std::initializer_list<TraceArg> args = {});

    /// Move every buffered event out, merged and sorted by (start, tid).
    [[nodiscard]] std::vector<TraceEvent> drain();

    /// Discard every buffered event.
    void clear();

    [[nodiscard]] static Tracer& global();

private:
    Tracer() = default;

    struct ThreadBuffer {
        util::Mutex mutex;
        std::vector<TraceEvent> events YPM_GUARDED_BY(mutex);
        std::uint32_t tid = 0; ///< assigned once at registration
    };

    /// The calling thread's buffer, registered with the global tracer on
    /// first use and kept alive by the registry afterwards.
    [[nodiscard]] static ThreadBuffer& local_buffer();

    static std::atomic<bool> enabled_;

    mutable util::Mutex registry_mutex_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_
        YPM_GUARDED_BY(registry_mutex_);
    std::uint32_t next_tid_ YPM_GUARDED_BY(registry_mutex_) = 0;
};

/// RAII span: stamps the clock at construction and records one complete
/// event at destruction. When tracing is disabled at construction the span
/// is disarmed - construction and destruction are then a single relaxed
/// atomic load and a branch.
class Span {
public:
    Span(const char* name, const char* category)
        : armed_(Tracer::enabled()), name_(name), category_(category) {
        if (armed_) start_ = util::now_ns();
    }
    ~Span() {
        if (!armed_) return;
        Tracer::record(TraceEvent{name_, category_, start_,
                                  util::now_ns() - start_, 0, false,
                                  std::move(args_)});
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span(Span&&) = delete;
    Span& operator=(Span&&) = delete;

    /// Attach a diagnostic argument (no-op when disarmed).
    void arg(const char* key, double value) {
        if (armed_) args_.push_back({key, value});
    }

private:
    bool armed_;
    const char* name_;
    const char* category_;
    util::TickNs start_ = 0;
    std::vector<TraceArg> args_;
};

/// Serialize a drained trace as Chrome trace-event JSON (object form). The
/// optional metrics snapshot is embedded as a top-level "metrics" key -
/// Chrome/Perfetto ignore unknown keys, scripts/check_trace.py reads it.
[[nodiscard]] std::string
chrome_trace_json(const std::vector<TraceEvent>& events,
                  const MetricsSnapshot* metrics = nullptr);

/// chrome_trace_json() straight to a file. \throws ypm::IoError on failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const MetricsSnapshot* metrics = nullptr);

/// Compact per-span-name summary (count, total/mean/max ms), sorted by
/// total time descending - the "where did the run go" table.
[[nodiscard]] std::string
trace_summary_table(const std::vector<TraceEvent>& events);

} // namespace ypm::obs
