#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::obs {

std::atomic<bool> Tracer::enabled_{false};

Tracer& Tracer::global() {
    static Tracer tracer;
    return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
    // One buffer per thread, created on first record and registered with
    // the global tracer; the registry's shared_ptr keeps it alive past
    // thread exit, so drain() after a pool thread dies still sees its
    // events. Bounded by the process's total thread count.
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto fresh = std::make_shared<ThreadBuffer>();
        Tracer& tracer = global();
        const util::MutexLock lock(tracer.registry_mutex_);
        fresh->tid = tracer.next_tid_++;
        tracer.buffers_.push_back(fresh);
        return fresh;
    }();
    return *buffer;
}

void Tracer::record(TraceEvent event) {
    if (!enabled()) return;
    ThreadBuffer& buffer = local_buffer();
    event.tid = buffer.tid;
    const util::MutexLock lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

void Tracer::record_complete(const char* name, const char* category,
                             util::TickNs start_ns, util::TickNs end_ns,
                             std::initializer_list<TraceArg> args) {
    if (!enabled()) return;
    record(TraceEvent{name, category, start_ns,
                      std::max<util::TickNs>(end_ns - start_ns, 0), 0, false,
                      std::vector<TraceArg>(args)});
}

void Tracer::instant(const char* name, const char* category,
                     std::initializer_list<TraceArg> args) {
    if (!enabled()) return;
    record(TraceEvent{name, category, util::now_ns(), 0, 0, true,
                      std::vector<TraceArg>(args)});
}

std::vector<TraceEvent> Tracer::drain() {
    std::vector<TraceEvent> all;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        const util::MutexLock lock(registry_mutex_);
        buffers = buffers_;
    }
    for (const auto& buffer : buffers) {
        const util::MutexLock lock(buffer->mutex);
        all.insert(all.end(),
                   std::make_move_iterator(buffer->events.begin()),
                   std::make_move_iterator(buffer->events.end()));
        buffer->events.clear();
    }
    std::sort(all.begin(), all.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                  if (a.tid != b.tid) return a.tid < b.tid;
                  return a.dur_ns > b.dur_ns; // parents before children
              });
    return all;
}

void Tracer::clear() { (void)drain(); }

namespace {

/// Microseconds with nanosecond resolution - the trace format's time unit.
std::string fmt_us(util::TickNs ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) * 1e-3);
    return buf;
}

void append_event_json(std::string& out, const TraceEvent& e) {
    out += "{\"name\":\"" + str::json_escape(e.name) + "\",\"cat\":\"" +
           str::json_escape(e.category) + "\",\"ph\":\"";
    out += e.instant ? 'i' : 'X';
    out += "\",\"ts\":" + fmt_us(e.start_ns);
    if (!e.instant) out += ",\"dur\":" + fmt_us(e.dur_ns);
    out += ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (e.instant) out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
        out += ",\"args\":{";
        for (std::size_t i = 0; i < e.args.size(); ++i) {
            if (i != 0) out += ',';
            out += '"' + str::json_escape(e.args[i].key) +
                   "\":" + str::fmt_double(e.args[i].value);
        }
        out += '}';
    }
    out += '}';
}

} // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events,
                              const MetricsSnapshot* metrics) {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i != 0) out += ',';
        out += '\n';
        append_event_json(out, events[i]);
    }
    out += "\n]";
    if (metrics != nullptr) out += ",\"metrics\":" + metrics->to_json();
    out += "}\n";
    return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events,
                        const MetricsSnapshot* metrics) {
    std::ofstream file(path);
    if (!file) throw IoError("obs: cannot open trace file '" + path + "'");
    file << chrome_trace_json(events, metrics);
    if (!file.good())
        throw IoError("obs: failed writing trace file '" + path + "'");
}

std::string trace_summary_table(const std::vector<TraceEvent>& events) {
    struct Row {
        std::size_t count = 0;
        util::TickNs total_ns = 0;
        util::TickNs max_ns = 0;
    };
    // Ordered map: only integer tick accumulation here, and a deterministic
    // iteration order for the tie-sorted table below.
    std::map<std::string, Row> rows;
    for (const TraceEvent& e : events) {
        if (e.instant) continue;
        Row& row = rows[e.name];
        ++row.count;
        row.total_ns += e.dur_ns;
        row.max_ns = std::max(row.max_ns, e.dur_ns);
    }
    std::vector<std::pair<std::string, Row>> sorted(rows.begin(), rows.end());
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                         return a.second.total_ns > b.second.total_ns;
                     });
    std::size_t name_width = 4; // "span"
    for (const auto& [name, row] : sorted)
        name_width = std::max(name_width, name.size());

    const auto ms = [](util::TickNs ns) {
        return str::fmt_fixed(static_cast<double>(ns) * 1e-6, 3);
    };
    std::string out = "span";
    out.append(name_width - 4, ' ');
    out += "  count  total_ms   mean_ms    max_ms\n";
    for (const auto& [name, row] : sorted) {
        out += name;
        out.append(name_width - name.size(), ' ');
        char buf[64];
        std::snprintf(buf, sizeof buf, "  %5zu", row.count);
        out += buf;
        const auto pad = [&](const std::string& cell) {
            out.append(cell.size() < 10 ? 10 - cell.size() : 1, ' ');
            out += cell;
        };
        pad(ms(row.total_ns));
        pad(ms(row.total_ns / static_cast<util::TickNs>(row.count)));
        pad(ms(row.max_ns));
        out += '\n';
    }
    return out;
}

} // namespace ypm::obs
