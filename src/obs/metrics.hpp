#pragma once
/// \file metrics.hpp
/// \brief Process-wide registry of named counters, gauges and fixed-bucket
///        histograms.
///
/// The metrics layer is the always-on half of the observability stack (the
/// span tracer in obs/trace.hpp is the opt-in half). Every instrument is
/// cheap enough to leave enabled in production paths:
///
///  * Counter    - one relaxed atomic fetch_add per event;
///  * Gauge      - one relaxed atomic store per update;
///  * Histogram  - one branchless-ish bucket scan over a handful of edges
///                 plus two relaxed atomic updates per observation.
///
/// Registration (name -> instrument) takes the registry mutex once; hot
/// paths cache the returned reference (instruments are never deallocated
/// while the registry lives, so the reference is stable). None of this
/// touches RNG state, retirement order or any reduction order - metrics are
/// purely observational, and the bit-identity tests assert exactly that.
///
/// snapshot() copies every instrument into plain structs (deterministically
/// ordered by name) for tests, summary tables and the JSON exporter.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ypm::obs {

/// Monotonic event counter. Thread-safe; relaxed ordering is enough because
/// readers only ever want an eventually-consistent total.
class Counter {
public:
    void add(std::uint64_t n = 1) {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. a hit rate or queue depth sampled in passing).
class Gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= edges[i] (the
/// first matching edge wins), and one overflow bucket counts everything
/// above the last edge. Edges are fixed at registration, so observation is
/// lock-free: a linear scan over the edges plus relaxed atomic updates.
class Histogram {
public:
    /// \param edges strictly increasing upper bucket bounds; must be
    ///        non-empty. \throws ypm::InvalidInputError otherwise.
    explicit Histogram(std::vector<double> edges);

    void observe(double v);

    [[nodiscard]] const std::vector<double>& edges() const { return edges_; }
    /// Per-bucket counts; size() == edges().size() + 1 (overflow last).
    [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
    [[nodiscard]] std::uint64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const {
        return sum_.load(std::memory_order_relaxed);
    }
    void reset();

private:
    std::vector<double> edges_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

struct CounterSnapshot {
    std::string name;
    std::uint64_t value = 0;
};

struct GaugeSnapshot {
    std::string name;
    double value = 0.0;
};

struct HistogramSnapshot {
    std::string name;
    std::vector<double> edges;
    std::vector<std::uint64_t> buckets; ///< edges.size() + 1, overflow last
    std::uint64_t count = 0;
    double sum = 0.0;
};

/// Point-in-time copy of every registered instrument, sorted by name (the
/// registry map is ordered, so iteration - and the JSON - is deterministic).
struct MetricsSnapshot {
    std::vector<CounterSnapshot> counters;
    std::vector<GaugeSnapshot> gauges;
    std::vector<HistogramSnapshot> histograms;

    /// Value of a named counter, or 0 when absent (absent and never-bumped
    /// are indistinguishable by design - instruments register lazily).
    [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
    /// Value of a named gauge, or 0.0 when absent.
    [[nodiscard]] double gauge_value(const std::string& name) const;

    /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
    [[nodiscard]] std::string to_json() const;
};

/// Name -> instrument registry. Lookup/registration is mutex-protected;
/// the returned references stay valid for the registry's lifetime, so hot
/// paths resolve once and cache. Re-registering a name with a different
/// instrument kind (or a histogram with different edges) throws.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    [[nodiscard]] Counter& counter(const std::string& name);
    [[nodiscard]] Gauge& gauge(const std::string& name);
    [[nodiscard]] Histogram& histogram(const std::string& name,
                                       std::vector<double> edges);

    [[nodiscard]] MetricsSnapshot snapshot() const;

    /// Zero every instrument (names stay registered). Not linearizable
    /// against concurrent writers - a bench/test convenience between runs,
    /// not a consistency primitive.
    void reset();

    /// The process-wide registry every built-in instrument registers in.
    [[nodiscard]] static MetricsRegistry& global();

private:
    enum class Kind { counter, gauge, histogram };
    struct Entry {
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable util::Mutex mutex_;
    std::map<std::string, Entry> entries_ YPM_GUARDED_BY(mutex_);
};

} // namespace ypm::obs
