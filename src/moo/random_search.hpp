#pragma once
/// \file random_search.hpp
/// \brief Uniform random sampling baseline - the "conventional simulation
///        based approach" of blindly sweeping the design space with the
///        same evaluation budget as the GA.

#include <vector>

#include "moo/problem.hpp"
#include "moo/wbga.hpp" // EvaluatedIndividual
#include "util/rng.hpp"

namespace ypm::moo {

struct RandomSearchResult {
    std::vector<EvaluatedIndividual> archive;
    std::size_t evaluations = 0;
};

/// Evaluate `samples` uniform points in the parameter box.
/// Deterministic in the RNG seed regardless of parallelism.
[[nodiscard]] RandomSearchResult random_search(const Problem& problem,
                                               std::size_t samples, Rng& rng,
                                               bool parallel = true);

/// Same search, submitted as one batch through a shared engine.
[[nodiscard]] RandomSearchResult random_search(eval::Engine& engine,
                                               const Problem& problem,
                                               std::size_t samples, Rng& rng);

} // namespace ypm::moo
