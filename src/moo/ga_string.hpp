#pragma once
/// \file ga_string.hpp
/// \brief The WBGA chromosome (paper Figs. 4 and 6).
///
/// A GA string concatenates the designable parameters with the objective
/// weights, all held as normalised genes in [0, 1]. Decoding maps parameter
/// genes through their box constraints and normalises weight genes with
/// paper eq. (4): w_i <- w_i / sum_j w_j.

#include <cstddef>
#include <vector>

#include "moo/problem.hpp"
#include "util/rng.hpp"

namespace ypm::moo {

class GaString {
public:
    /// Zero-initialised string with the given layout.
    GaString(std::size_t n_params, std::size_t n_weights);

    /// Uniformly random genes.
    [[nodiscard]] static GaString random(std::size_t n_params, std::size_t n_weights,
                                         Rng& rng);

    [[nodiscard]] std::size_t n_params() const { return n_params_; }
    [[nodiscard]] std::size_t n_weights() const { return n_weights_; }
    [[nodiscard]] std::size_t size() const { return genes_.size(); }

    /// Full gene vector (parameters first, then weights), each in [0, 1].
    [[nodiscard]] const std::vector<double>& genes() const { return genes_; }
    [[nodiscard]] std::vector<double>& genes() { return genes_; }

    /// Clamp every gene into [0, 1] (after crossover/mutation).
    void clamp();

    /// Physical parameter values: gene t -> lo + t*(hi - lo).
    /// \throws ypm::InvalidInputError if specs.size() != n_params().
    [[nodiscard]] std::vector<double>
    decode_parameters(const std::vector<ParameterSpec>& specs) const;

    /// Normalised objective weights per eq. (4). A degenerate all-zero
    /// weight block decodes to uniform weights.
    [[nodiscard]] std::vector<double> decode_weights() const;

private:
    std::size_t n_params_;
    std::size_t n_weights_;
    std::vector<double> genes_;
};

/// Standalone eq. (4): normalise a raw weight vector to unit sum.
/// All-zero input yields the uniform vector.
[[nodiscard]] std::vector<double> normalize_weights(std::vector<double> raw);

} // namespace ypm::moo
