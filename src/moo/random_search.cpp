#include "moo/random_search.hpp"

#include "util/thread_pool.hpp"

namespace ypm::moo {

RandomSearchResult random_search(const Problem& problem, std::size_t samples,
                                 Rng& rng, bool parallel) {
    const auto& pspecs = problem.parameters();
    const std::size_t n_params = pspecs.size();

    RandomSearchResult result;
    result.archive.assign(samples, EvaluatedIndividual{GaString(n_params, 0), {}, {},
                                                       {}, 0.0, 0});

    // Draw all chromosomes up-front on the caller's stream so the sample set
    // is independent of evaluation order.
    for (std::size_t i = 0; i < samples; ++i)
        result.archive[i].chromosome = GaString::random(n_params, 0, rng);

    auto eval_one = [&](std::size_t i) {
        auto& e = result.archive[i];
        e.params = e.chromosome.decode_parameters(pspecs);
        e.objectives = problem.evaluate(e.params);
    };
    if (parallel)
        ThreadPool::global().parallel_for(samples, eval_one);
    else
        for (std::size_t i = 0; i < samples; ++i) eval_one(i);

    result.evaluations = samples;
    return result;
}

} // namespace ypm::moo
