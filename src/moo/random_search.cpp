#include "moo/random_search.hpp"

#include "moo/population_eval.hpp"

namespace ypm::moo {

RandomSearchResult random_search(const Problem& problem, std::size_t samples,
                                 Rng& rng, bool parallel) {
    eval::EngineConfig config;
    config.parallel = parallel;
    eval::Engine engine(config);
    return random_search(engine, problem, samples, rng);
}

RandomSearchResult random_search(eval::Engine& engine, const Problem& problem,
                                 std::size_t samples, Rng& rng) {
    const auto& pspecs = problem.parameters();
    const std::size_t n_params = pspecs.size();

    RandomSearchResult result;
    result.archive.assign(samples, EvaluatedIndividual{GaString(n_params, 0), {}, {},
                                                       {}, 0.0, 0});

    // Draw all chromosomes up-front on the caller's stream so the sample set
    // is independent of evaluation order.
    std::vector<std::vector<double>> points(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        auto& e = result.archive[i];
        e.chromosome = GaString::random(n_params, 0, rng);
        e.params = e.chromosome.decode_parameters(pspecs);
        points[i] = e.params;
    }

    const auto evals = evaluate_population(engine, problem, points);
    for (std::size_t i = 0; i < samples; ++i)
        result.archive[i].objectives = evals[i].values;

    result.evaluations = samples;
    return result;
}

} // namespace ypm::moo
