#include "moo/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "moo/problem.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace ypm::moo {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
} // namespace

void validate_robustness_config(const RobustnessConfig& config) {
    if (!(config.yield_weight >= 0.0 && config.yield_weight <= 1.0))
        throw InvalidInputError("robustness: yield_weight must be in [0, 1], got " +
                                str::fmt_double(config.yield_weight));
    if (config.mode == RobustnessMode::constraint &&
        !(config.min_yield > 0.0 && config.min_yield <= 1.0))
        throw InvalidInputError(
            "robustness: constraint-mode min_yield must be in (0, 1], got " +
            str::fmt_double(config.min_yield));
}

double robust_fitness(double fitness, double robustness,
                      const RobustnessConfig& config) {
    if (std::isnan(robustness)) return fitness;
    const double r = std::clamp(robustness, 0.0, 1.0);
    switch (config.mode) {
    case RobustnessMode::weight:
        return (1.0 - config.yield_weight) * fitness + config.yield_weight * r;
    case RobustnessMode::constraint:
        return fitness * std::min(1.0, r / config.min_yield);
    }
    return fitness;
}

std::vector<double>
probe_population_robustness(const RobustnessConfig& config,
                            const std::vector<std::vector<double>>& points,
                            std::size_t generation) {
    if (!config.enabled() || generation < config.activation_generation)
        return std::vector<double>(points.size(), kNan);
    auto robustness = config.probe(points, generation);
    if (robustness.size() != points.size())
        throw InvalidInputError("robustness: probe returned " +
                                std::to_string(robustness.size()) + " values for " +
                                std::to_string(points.size()) + " points");
    return robustness;
}

std::vector<std::size_t>
robustness_probe_indices(const std::vector<double>& fitness, std::size_t k) {
    const std::size_t n = fitness.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (k == 0 || k >= n) return order;
    // Stable sort keeps the tie toward the lower population index, so the
    // probed subset - and therefore the probe's RNG consumption - is a pure
    // function of the fitness column.
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return fitness[a] > fitness[b];
    });
    order.resize(k);
    std::sort(order.begin(), order.end());
    return order;
}

std::vector<std::vector<double>>
append_robustness_objective(const std::vector<std::vector<double>>& objectives,
                            const std::vector<double>& robustness,
                            const RobustnessConfig& config,
                            std::vector<ObjectiveSpec>& specs) {
    if (objectives.size() != robustness.size())
        throw InvalidInputError("robustness: objective/robustness size mismatch");
    std::vector<std::vector<double>> extended = objectives;
    for (std::size_t i = 0; i < extended.size(); ++i) {
        double r = robustness[i];
        r = std::isnan(r) ? 0.0 : std::clamp(r, 0.0, 1.0);
        if (config.mode == RobustnessMode::constraint)
            r = std::min(r, config.min_yield);
        extended[i].push_back(r);
    }
    specs.push_back(ObjectiveSpec{"robustness", Direction::maximize});
    return extended;
}

} // namespace ypm::moo
