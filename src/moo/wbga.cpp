#include "moo/wbga.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "moo/population_eval.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace ypm::moo {

std::vector<double> share_fitness(const std::vector<double>& fitness,
                                  const std::vector<std::vector<double>>& weights,
                                  double radius) {
    if (radius <= 0.0) return fitness;
    if (fitness.size() != weights.size())
        throw InvalidInputError("share_fitness: size mismatch");
    const std::size_t n = fitness.size();
    std::vector<double> shared(n);
    for (std::size_t i = 0; i < n; ++i) {
        double niche = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            double d2 = 0.0;
            for (std::size_t k = 0; k < weights[i].size(); ++k) {
                const double d = weights[i][k] - weights[j][k];
                d2 += d * d;
            }
            const double d = std::sqrt(d2);
            if (d < radius) niche += 1.0 - d / radius;
        }
        // niche >= 1 always (self-distance 0), so the division is safe.
        shared[i] = fitness[i] / niche;
    }
    return shared;
}

Wbga::Wbga(const Problem& problem, WbgaConfig config)
    : problem_(problem), config_(config) {
    if (config_.population < 2)
        throw InvalidInputError("Wbga: population must be >= 2");
    if (config_.generations == 0)
        throw InvalidInputError("Wbga: generations must be >= 1");
    if (config_.elites >= config_.population)
        throw InvalidInputError("Wbga: elites must be < population");
    validate_robustness_config(config_.robustness);
}

WbgaResult Wbga::run(Rng& rng, const ProgressFn& progress) const {
    const auto& pspecs = problem_.parameters();
    const auto& ospecs = problem_.objectives();
    const std::size_t n_params = pspecs.size();
    const std::size_t n_weights = ospecs.size();
    const std::size_t pop_size = config_.population;
    const double mutation_rate =
        config_.mutation_rate > 0.0
            ? config_.mutation_rate
            : 1.0 / static_cast<double>(n_params + n_weights);

    WbgaResult result;
    if (config_.keep_archive)
        result.archive.reserve(pop_size * config_.generations);

    // All population evaluations route through one engine: elites and
    // duplicated offspring are served from its memoisation cache, and its
    // ledger feeds the flow-level accounting.
    eval::EngineConfig private_config;
    private_config.parallel = config_.parallel;
    eval::Engine private_engine(private_config);
    eval::Engine& engine = config_.engine ? *config_.engine : private_engine;

    // Initial random population.
    std::vector<GaString> population;
    population.reserve(pop_size);
    for (std::size_t i = 0; i < pop_size; ++i)
        population.push_back(GaString::random(n_params, n_weights, rng));

    std::vector<EvaluatedIndividual> evaluated(pop_size,
                                               EvaluatedIndividual{GaString(n_params, n_weights),
                                                                   {}, {}, {}, 0.0, 0});

    auto evaluate_population_gen = [&](std::size_t generation) {
        std::vector<std::vector<double>> points(pop_size);
        std::vector<std::vector<double>> wts(pop_size);
        for (std::size_t i = 0; i < pop_size; ++i) {
            EvaluatedIndividual& e = evaluated[i];
            e.chromosome = population[i];
            e.params = population[i].decode_parameters(pspecs);
            e.weights = population[i].decode_weights();
            e.generation = generation;
            points[i] = e.params;
            wts[i] = e.weights;
        }
        const auto evals = evaluate_population(engine, problem_, points);
        for (const auto& r : evals)
            if (r.values.size() != ospecs.size())
                throw InvalidInputError("Wbga: problem returned wrong objective arity");

        // eq. (5) fitness with per-generation min/max normalisation.
        const auto fit = wbga_fitness_all(evals, wts, ospecs);

        // Robustness channel: probe the nominal top-K (tiered budget) and
        // fold estimated yield into the fitness used by selection *and*
        // elitism. Unprobed individuals keep their nominal score, so a
        // disabled or not-yet-activated channel is bit-identical.
        const RobustnessConfig& rcfg = config_.robustness;
        std::vector<double> robustness(pop_size,
                                       std::numeric_limits<double>::quiet_NaN());
        if (rcfg.enabled() && generation >= rcfg.activation_generation) {
            const auto idx = robustness_probe_indices(fit, rcfg.max_points);
            std::vector<std::vector<double>> probe_points;
            probe_points.reserve(idx.size());
            for (const std::size_t i : idx) probe_points.push_back(points[i]);
            const auto probed =
                probe_population_robustness(rcfg, probe_points, generation);
            for (std::size_t k = 0; k < idx.size(); ++k)
                robustness[idx[k]] = probed[k];
        }

        for (std::size_t i = 0; i < pop_size; ++i) {
            evaluated[i].objectives = evals[i].values;
            evaluated[i].robustness = robustness[i];
            evaluated[i].fitness = robust_fitness(fit[i], robustness[i], rcfg);
        }

        if (config_.keep_archive)
            for (const auto& e : evaluated) result.archive.push_back(e);
        result.evaluations += pop_size;
    };

    for (std::size_t gen = 0; gen < config_.generations; ++gen) {
        evaluate_population_gen(gen);

        double best = 0.0;
        for (const auto& e : evaluated) best = std::max(best, e.fitness);
        result.best_fitness_history.push_back(best);
        if (progress) progress(gen, best);
        log::debug("wbga gen ", gen, " best fitness ", best);

        if (gen + 1 == config_.generations) break;

        // Selection pressure uses shared fitness (weight-space niching).
        std::vector<double> fitness(pop_size);
        std::vector<std::vector<double>> weights(pop_size);
        for (std::size_t i = 0; i < pop_size; ++i) {
            fitness[i] = evaluated[i].fitness;
            weights[i] = evaluated[i].weights;
        }
        const auto shared = share_fitness(fitness, weights, config_.sharing_radius);

        // Elitism on raw fitness.
        std::vector<std::size_t> order(pop_size);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return fitness[a] > fitness[b];
        });

        std::vector<GaString> next;
        next.reserve(pop_size);
        for (std::size_t e = 0; e < config_.elites; ++e)
            next.push_back(population[order[e]]);

        while (next.size() < pop_size) {
            const std::size_t ia = select_tournament(shared, config_.tournament, rng);
            const std::size_t ib = select_tournament(shared, config_.tournament, rng);
            GaString child_a(n_params, n_weights), child_b(n_params, n_weights);
            if (rng.bernoulli(config_.crossover_rate)) {
                crossover(config_.crossover, population[ia], population[ib], child_a,
                          child_b, rng);
            } else {
                child_a = population[ia];
                child_b = population[ib];
            }
            mutate(config_.mutation, child_a, mutation_rate, config_.mutation_sigma, rng);
            next.push_back(std::move(child_a));
            if (next.size() < pop_size) {
                mutate(config_.mutation, child_b, mutation_rate, config_.mutation_sigma,
                       rng);
                next.push_back(std::move(child_b));
            }
        }
        population = std::move(next);
    }

    result.final_population = evaluated;
    return result;
}

} // namespace ypm::moo
