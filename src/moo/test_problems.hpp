#pragma once
/// \file test_problems.hpp
/// \brief Analytic benchmark problems with known Pareto fronts, used to
///        validate the optimisers independently of the circuit simulator.

#include <vector>

#include "moo/problem.hpp"

namespace ypm::moo {

/// Schaffer's SCH: one parameter x in [-3, 5]; minimise {x^2, (x-2)^2}.
/// Pareto-optimal set: x in [0, 2].
class SchafferProblem final : public Problem {
public:
    SchafferProblem();
    [[nodiscard]] const std::vector<ParameterSpec>& parameters() const override;
    [[nodiscard]] const std::vector<ObjectiveSpec>& objectives() const override;
    [[nodiscard]] std::vector<double>
    evaluate(const std::vector<double>& params) const override;

private:
    std::vector<ParameterSpec> params_;
    std::vector<ObjectiveSpec> objectives_;
};

/// ZDT test family (Zitzler-Deb-Thiele), n parameters in [0, 1], minimise
/// {f1, f2}. variant: 1 (convex front), 2 (non-convex), 3 (disconnected).
class ZdtProblem final : public Problem {
public:
    explicit ZdtProblem(int variant, std::size_t n = 30);
    [[nodiscard]] const std::vector<ParameterSpec>& parameters() const override;
    [[nodiscard]] const std::vector<ObjectiveSpec>& objectives() const override;
    [[nodiscard]] std::vector<double>
    evaluate(const std::vector<double>& params) const override;

    /// True front value f2*(f1) with g = 1.
    [[nodiscard]] double true_front_f2(double f1) const;

private:
    int variant_;
    std::vector<ParameterSpec> params_;
    std::vector<ObjectiveSpec> objectives_;
};

/// A two-parameter analytic stand-in for the OTA trade-off: maximise
/// gain-like and pm-like objectives that are in tension, with a known
/// concave trade-off curve. Cheap enough for operator-level unit tests.
class ToyAmplifierProblem final : public Problem {
public:
    ToyAmplifierProblem();
    [[nodiscard]] const std::vector<ParameterSpec>& parameters() const override;
    [[nodiscard]] const std::vector<ObjectiveSpec>& objectives() const override;
    [[nodiscard]] std::vector<double>
    evaluate(const std::vector<double>& params) const override;

private:
    std::vector<ParameterSpec> params_;
    std::vector<ObjectiveSpec> objectives_;
};

} // namespace ypm::moo
