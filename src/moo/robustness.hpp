#pragma once
/// \file robustness.hpp
/// \brief Per-individual robustness channel for the optimisers: the seam
///        through which estimated yield (or any worst-case robustness
///        measure in [0, 1]) enters WBGA fitness and NSGA-II dominance
///        *during* the search, instead of being certified after it.
///
/// The channel is a callback: once per generation, after the nominal
/// objective evaluation, the optimiser hands the decoded parameter points to
/// a RobustnessFn and receives one value per individual - estimated yield in
/// [0, 1], or NaN for "not probed" (pre-activation generations, individuals
/// outside the probed top-K). The optimiser-side contract is strict:
///
///  * probe null, or generation < activation_generation: the channel is off
///    and the optimiser's behaviour - RNG consumption included - is
///    bit-identical to a build without the channel;
///  * NaN robustness never changes an individual's fitness or rank: an
///    unprobed individual competes exactly as it would nominally;
///  * the probe is invoked *between* evaluation and selection, so it may
///    submit work to the same eval::Engine the population used (the
///    yield-probe path of core::YieldFlow does exactly that).
///
/// WBGA consumes the channel through robust_fitness() (a blend or a
/// constraint penalty on the eq. 5 score); NSGA-II consumes it as an extra
/// maximize objective column in the non-dominated sort (capped at min_yield
/// in constraint mode, so selection pressure vanishes once the target is
/// met and the nominal trade-off takes over again).

#include <cstddef>
#include <functional>
#include <vector>

#include "moo/problem.hpp"

namespace ypm::moo {

/// Per-generation robustness probe: points are the decoded physical
/// parameter vectors of the individuals to probe, in population order;
/// the result must have one entry per point (estimated yield in [0, 1],
/// NaN = unprobed). Invoked at most once per generation.
using RobustnessFn = std::function<std::vector<double>(
    const std::vector<std::vector<double>>& points, std::size_t generation)>;

/// How the optimiser folds robustness into selection pressure.
enum class RobustnessMode {
    /// WBGA: fitness' = (1 - yield_weight) * fitness + yield_weight * r.
    /// NSGA-II: r is an extra maximize objective (full trade-off).
    weight,
    /// WBGA: fitness' = fitness * min(1, r / min_yield) - designs below the
    /// yield target are penalised proportionally, designs at or above it
    /// compete purely on nominal fitness. NSGA-II: the extra objective is
    /// min(r, min_yield), so dominance pressure stops at the target.
    constraint,
};

struct RobustnessConfig {
    /// Null = channel off (the optimiser is bit-identical to the legacy
    /// path, RNG consumption included).
    RobustnessFn probe;
    /// First generation the probe runs on; earlier generations evaluate
    /// nominally. An activation at or past the run's generation count means
    /// the probe never fires (validated fail-fast by core::YieldFlow).
    std::size_t activation_generation = 0;
    RobustnessMode mode = RobustnessMode::weight;
    /// Robustness share of the blended fitness (weight mode), in [0, 1].
    double yield_weight = 0.5;
    /// Yield target of constraint mode, in (0, 1].
    double min_yield = 0.9;
    /// Probe only the K best individuals per generation (WBGA: by nominal
    /// eq. 5 fitness, ties toward the lower population index) - the tiered
    /// budget control. 0 probes the whole population. NSGA-II probes the
    /// whole population regardless (it has no scalar pre-rank to tier on).
    std::size_t max_points = 0;

    [[nodiscard]] bool enabled() const { return static_cast<bool>(probe); }
};

/// \throws ypm::InvalidInputError on yield_weight outside [0, 1] or a
/// constraint-mode min_yield outside (0, 1].
void validate_robustness_config(const RobustnessConfig& config);

/// Fold one individual's robustness into its scalar fitness per the mode.
/// NaN robustness returns `fitness` unchanged (the unprobed contract);
/// finite robustness is clamped to [0, 1] first.
[[nodiscard]] double robust_fitness(double fitness, double robustness,
                                    const RobustnessConfig& config);

/// Invoke the probe for one generation, enforcing the channel contract:
/// returns an all-NaN column (size n) when the channel is off or the
/// generation precedes activation; otherwise calls the probe and validates
/// the result size. \throws ypm::InvalidInputError on a size mismatch.
[[nodiscard]] std::vector<double>
probe_population_robustness(const RobustnessConfig& config,
                            const std::vector<std::vector<double>>& points,
                            std::size_t generation);

/// The K indices WBGA probes under max_points: the K best by nominal
/// fitness, ties toward the lower index, in ascending index order. K = 0 or
/// K >= n selects everyone.
[[nodiscard]] std::vector<std::size_t>
robustness_probe_indices(const std::vector<double>& fitness, std::size_t k);

/// NSGA-II's view of the channel: objective rows extended by one maximize
/// column carrying each individual's robustness (NaN -> 0: an unprobed
/// individual earns no robustness credit but keeps competing on its nominal
/// columns; constraint mode caps the column at min_yield). Returns the
/// extended rows and appends the extra ObjectiveSpec to `specs`.
[[nodiscard]] std::vector<std::vector<double>>
append_robustness_objective(const std::vector<std::vector<double>>& objectives,
                            const std::vector<double>& robustness,
                            const RobustnessConfig& config,
                            std::vector<ObjectiveSpec>& specs);

} // namespace ypm::moo
