#include "moo/problem.hpp"

#include <cmath>
#include <limits>

namespace ypm::moo {

std::vector<std::vector<double>>
Problem::evaluate_batch(const std::vector<std::vector<double>>& points) const {
    std::vector<std::vector<double>> out;
    out.reserve(points.size());
    for (const auto& p : points) out.push_back(evaluate(p));
    return out;
}

bool evaluation_failed(const std::vector<double>& objectives) {
    for (double v : objectives)
        if (std::isnan(v)) return true;
    return false;
}

std::vector<double> failed_evaluation(std::size_t arity) {
    return std::vector<double>(arity, std::numeric_limits<double>::quiet_NaN());
}

} // namespace ypm::moo
