#pragma once
/// \file pareto.hpp
/// \brief Dominance relations and Pareto-front extraction (paper section
///        3.3: conditions (a) and (b) for the non-dominated set), plus the
///        front-quality metrics used by the optimiser ablation.

#include <cstddef>
#include <vector>

#include "moo/problem.hpp"

namespace ypm::moo {

/// True if objective vector a dominates b under the given directions:
/// a is no worse in every objective and strictly better in at least one.
/// Vectors containing NaN never dominate and are always dominated.
[[nodiscard]] bool dominates(const std::vector<double>& a,
                             const std::vector<double>& b,
                             const std::vector<ObjectiveSpec>& specs);

/// Indices of the non-dominated points - naive O(n^2 m) reference
/// implementation, any objective count.
[[nodiscard]] std::vector<std::size_t>
pareto_front_indices(const std::vector<std::vector<double>>& objectives,
                     const std::vector<ObjectiveSpec>& specs);

/// Same result for exactly two objectives via sort-and-scan (Kung's
/// algorithm specialised to m = 2), O(n log n).
[[nodiscard]] std::vector<std::size_t>
pareto_front_indices_2d(const std::vector<std::vector<double>>& objectives,
                        const std::vector<ObjectiveSpec>& specs);

/// NSGA-II fast non-dominated sort: returns fronts in rank order; fronts[0]
/// is the Pareto front.
[[nodiscard]] std::vector<std::vector<std::size_t>>
non_dominated_sort(const std::vector<std::vector<double>>& objectives,
                   const std::vector<ObjectiveSpec>& specs);

/// NSGA-II crowding distance for the given subset of points (indices into
/// `objectives`). Boundary points get +infinity.
[[nodiscard]] std::vector<double>
crowding_distance(const std::vector<std::vector<double>>& objectives,
                  const std::vector<std::size_t>& subset,
                  const std::vector<ObjectiveSpec>& specs);

/// Two-objective hypervolume (area dominated between the front and a
/// reference point). Directions are honoured; the reference must be weakly
/// worse than every point or its contribution clips to zero.
[[nodiscard]] double hypervolume_2d(const std::vector<std::vector<double>>& front,
                                    const std::vector<double>& reference,
                                    const std::vector<ObjectiveSpec>& specs);

} // namespace ypm::moo
