#include "moo/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace ypm::moo {

namespace {

/// Map a raw objective to "larger is better" sign convention.
double oriented(double v, Direction d) {
    return d == Direction::maximize ? v : -v;
}

bool has_nan(const std::vector<double>& v) {
    for (double x : v)
        if (std::isnan(x)) return true;
    return false;
}

} // namespace

bool dominates(const std::vector<double>& a, const std::vector<double>& b,
               const std::vector<ObjectiveSpec>& specs) {
    if (a.size() != specs.size() || b.size() != specs.size())
        throw InvalidInputError("dominates: objective arity mismatch");
    if (has_nan(a)) return false;
    if (has_nan(b)) return true; // valid point dominates a failed one
    bool strictly_better = false;
    for (std::size_t m = 0; m < specs.size(); ++m) {
        const double av = oriented(a[m], specs[m].dir);
        const double bv = oriented(b[m], specs[m].dir);
        if (av < bv) return false;
        if (av > bv) strictly_better = true;
    }
    return strictly_better;
}

std::vector<std::size_t>
pareto_front_indices(const std::vector<std::vector<double>>& objectives,
                     const std::vector<ObjectiveSpec>& specs) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < objectives.size(); ++i) {
        if (has_nan(objectives[i])) continue;
        bool dominated = false;
        for (std::size_t j = 0; j < objectives.size() && !dominated; ++j) {
            if (j == i) continue;
            if (dominates(objectives[j], objectives[i], specs)) dominated = true;
        }
        if (!dominated) front.push_back(i);
    }
    return front;
}

std::vector<std::size_t>
pareto_front_indices_2d(const std::vector<std::vector<double>>& objectives,
                        const std::vector<ObjectiveSpec>& specs) {
    if (specs.size() != 2)
        throw InvalidInputError("pareto_front_indices_2d: exactly 2 objectives required");

    std::vector<std::size_t> order;
    order.reserve(objectives.size());
    for (std::size_t i = 0; i < objectives.size(); ++i)
        if (!has_nan(objectives[i])) order.push_back(i);

    // Sort by the first oriented objective descending, tie-break second
    // descending; then one scan keeps points with strictly improving second
    // objective. Duplicate objective vectors: the first sorted instance is
    // kept (matches the naive filter's treatment of strict dominance).
    auto key0 = [&](std::size_t i) { return oriented(objectives[i][0], specs[0].dir); };
    auto key1 = [&](std::size_t i) { return oriented(objectives[i][1], specs[1].dir); };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (key0(a) != key0(b)) return key0(a) > key0(b);
        if (key1(a) != key1(b)) return key1(a) > key1(b);
        return a < b;
    });

    std::vector<std::size_t> front;
    double best1 = -std::numeric_limits<double>::infinity();
    double last_kept0 = std::numeric_limits<double>::quiet_NaN();
    double last_kept1 = std::numeric_limits<double>::quiet_NaN();
    for (std::size_t idx : order) {
        const double k0 = key0(idx);
        const double k1 = key1(idx);
        // Keep if strictly better in the second objective than everything
        // seen so far, or an exact duplicate of the last kept point (equal
        // vectors never dominate each other, matching the naive filter).
        if (k1 > best1 || (k0 == last_kept0 && k1 == last_kept1)) {
            front.push_back(idx);
            best1 = std::max(best1, k1);
            last_kept0 = k0;
            last_kept1 = k1;
        }
    }
    std::sort(front.begin(), front.end());
    return front;
}

std::vector<std::vector<std::size_t>>
non_dominated_sort(const std::vector<std::vector<double>>& objectives,
                   const std::vector<ObjectiveSpec>& specs) {
    const std::size_t n = objectives.size();
    std::vector<std::size_t> domination_count(n, 0);
    std::vector<std::vector<std::size_t>> dominated_by(n);
    std::vector<std::vector<std::size_t>> fronts(1);

    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t q = 0; q < n; ++q) {
            if (p == q) continue;
            if (dominates(objectives[p], objectives[q], specs))
                dominated_by[p].push_back(q);
            else if (dominates(objectives[q], objectives[p], specs))
                ++domination_count[p];
        }
        if (domination_count[p] == 0) fronts[0].push_back(p);
    }

    std::size_t current = 0;
    while (!fronts[current].empty()) {
        std::vector<std::size_t> next;
        for (std::size_t p : fronts[current]) {
            for (std::size_t q : dominated_by[p]) {
                if (--domination_count[q] == 0) next.push_back(q);
            }
        }
        ++current;
        fronts.push_back(std::move(next));
    }
    fronts.pop_back(); // drop the trailing empty front
    return fronts;
}

std::vector<double>
crowding_distance(const std::vector<std::vector<double>>& objectives,
                  const std::vector<std::size_t>& subset,
                  const std::vector<ObjectiveSpec>& specs) {
    const std::size_t n = subset.size();
    std::vector<double> dist(n, 0.0);
    if (n <= 2) {
        std::fill(dist.begin(), dist.end(), std::numeric_limits<double>::infinity());
        return dist;
    }
    std::vector<std::size_t> order(n);
    for (std::size_t m = 0; m < specs.size(); ++m) {
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return objectives[subset[a]][m] < objectives[subset[b]][m];
        });
        const double lo = objectives[subset[order.front()]][m];
        const double hi = objectives[subset[order.back()]][m];
        dist[order.front()] = std::numeric_limits<double>::infinity();
        dist[order.back()] = std::numeric_limits<double>::infinity();
        const double span = hi - lo;
        if (span <= 0.0) continue;
        for (std::size_t k = 1; k + 1 < n; ++k) {
            const double gap = objectives[subset[order[k + 1]]][m] -
                               objectives[subset[order[k - 1]]][m];
            dist[order[k]] += gap / span;
        }
    }
    return dist;
}

double hypervolume_2d(const std::vector<std::vector<double>>& front,
                      const std::vector<double>& reference,
                      const std::vector<ObjectiveSpec>& specs) {
    if (specs.size() != 2 || reference.size() != 2)
        throw InvalidInputError("hypervolume_2d: exactly 2 objectives required");
    if (front.empty()) return 0.0;

    // Orient everything to maximise, reference at the bottom-left.
    struct Pt { double x, y; };
    std::vector<Pt> pts;
    pts.reserve(front.size());
    const double rx = oriented(reference[0], specs[0].dir);
    const double ry = oriented(reference[1], specs[1].dir);
    for (const auto& f : front) {
        if (has_nan(f)) continue;
        const double x = oriented(f[0], specs[0].dir);
        const double y = oriented(f[1], specs[1].dir);
        if (x > rx && y > ry) pts.push_back({x, y});
    }
    if (pts.empty()) return 0.0;
    std::sort(pts.begin(), pts.end(), [](const Pt& a, const Pt& b) {
        if (a.x != b.x) return a.x > b.x;
        return a.y > b.y;
    });
    double area = 0.0;
    double prev_y = ry;
    for (const auto& p : pts) {
        if (p.y > prev_y) {
            area += (p.x - rx) * (p.y - prev_y);
            prev_y = p.y;
        }
    }
    return area;
}

} // namespace ypm::moo
