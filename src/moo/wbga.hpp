#pragma once
/// \file wbga.hpp
/// \brief Weight-Based Genetic Algorithm (paper section 3.2, after Hajela &
///        Lin [9]).
///
/// Each chromosome carries the designable parameters *and* the objective
/// weights (GaString), so the GA searches weight space and parameter space
/// simultaneously instead of requiring a designer-chosen weight vector.
/// Fitness is the normalised weighted sum of eq. (5); fitness sharing over
/// the weight sub-vector maintains a spread of weightings, which is what
/// makes a single WBGA run trace out the whole trade-off cloud the Pareto
/// filter then reduces (paper Fig. 7).

#include <functional>
#include <limits>
#include <vector>

#include "eval/engine.hpp"
#include "moo/fitness.hpp"
#include "moo/ga_string.hpp"
#include "moo/operators.hpp"
#include "moo/problem.hpp"
#include "moo/robustness.hpp"
#include "util/rng.hpp"

namespace ypm::moo {

/// One evaluated design point (kept for the full-run archive).
struct EvaluatedIndividual {
    GaString chromosome{0, 0};
    std::vector<double> params;     ///< decoded physical parameters
    std::vector<double> objectives; ///< raw performance values (NaN = failed)
    std::vector<double> weights;    ///< eq. (4)-normalised weights
    double fitness = 0.0;           ///< eq. (5) score within its generation
    std::size_t generation = 0;
    /// Estimated yield from the robustness channel (NaN = not probed).
    /// When probed, `fitness` already folds it in per the RobustnessConfig.
    double robustness = std::numeric_limits<double>::quiet_NaN();
};

struct WbgaConfig {
    std::size_t population = 100;   ///< paper section 4.2 uses 100
    std::size_t generations = 100;  ///< paper section 4.2 uses 100
    double crossover_rate = 0.9;
    CrossoverKind crossover = CrossoverKind::blend;
    double mutation_rate = 0.0;     ///< per-gene; 0 selects 1/genes
    double mutation_sigma = 0.08;
    MutationKind mutation = MutationKind::gaussian;
    std::size_t tournament = 2;
    std::size_t elites = 2;         ///< copied unchanged each generation
    double sharing_radius = 0.15;   ///< weight-space niching; 0 disables
    bool parallel = true;           ///< evaluate populations on the pool
    bool keep_archive = true;       ///< record every evaluation

    /// Shared evaluation engine (non-owning; must outlive the run). When
    /// null the optimiser creates a private engine honouring `parallel`;
    /// when set, the engine's own scheduling config governs and `parallel`
    /// is ignored.
    eval::Engine* engine = nullptr;

    /// Optional per-individual robustness channel: estimated yield blended
    /// into the eq. (5) fitness each generation (see moo/robustness.hpp).
    /// Disabled (null probe) reproduces the legacy run bit-for-bit.
    RobustnessConfig robustness;
};

struct WbgaResult {
    std::vector<EvaluatedIndividual> archive; ///< all evaluations, in order
    std::vector<EvaluatedIndividual> final_population;
    std::vector<double> best_fitness_history; ///< per generation
    std::size_t evaluations = 0;
};

class Wbga {
public:
    /// \param problem must outlive the optimiser
    Wbga(const Problem& problem, WbgaConfig config);

    /// Progress callback: (generation index, best eq.5 fitness).
    using ProgressFn = std::function<void(std::size_t, double)>;

    /// Run the full optimisation. Deterministic in the RNG seed regardless
    /// of thread count.
    [[nodiscard]] WbgaResult run(Rng& rng, const ProgressFn& progress = {}) const;

    [[nodiscard]] const WbgaConfig& config() const { return config_; }

private:
    const Problem& problem_;
    WbgaConfig config_;
};

/// Hajela-Lin fitness sharing: divide each fitness by its niche count,
/// where niching distance is the Euclidean distance between weight vectors.
[[nodiscard]] std::vector<double>
share_fitness(const std::vector<double>& fitness,
              const std::vector<std::vector<double>>& weights, double radius);

} // namespace ypm::moo
