#include "moo/test_problems.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::moo {

// ------------------------------------------------------------- Schaffer

SchafferProblem::SchafferProblem()
    : params_{{"x", -3.0, 5.0}},
      objectives_{{"f1", Direction::minimize}, {"f2", Direction::minimize}} {}

const std::vector<ParameterSpec>& SchafferProblem::parameters() const {
    return params_;
}
const std::vector<ObjectiveSpec>& SchafferProblem::objectives() const {
    return objectives_;
}

std::vector<double> SchafferProblem::evaluate(const std::vector<double>& p) const {
    if (p.size() != 1) throw InvalidInputError("Schaffer: expects 1 parameter");
    const double x = p[0];
    return {x * x, (x - 2.0) * (x - 2.0)};
}

// ------------------------------------------------------------------ ZDT

ZdtProblem::ZdtProblem(int variant, std::size_t n) : variant_(variant) {
    if (variant < 1 || variant > 3)
        throw InvalidInputError("Zdt: variant must be 1, 2 or 3");
    if (n < 2) throw InvalidInputError("Zdt: need >= 2 parameters");
    params_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        params_.push_back({"x" + std::to_string(i + 1), 0.0, 1.0});
    objectives_ = {{"f1", Direction::minimize}, {"f2", Direction::minimize}};
}

const std::vector<ParameterSpec>& ZdtProblem::parameters() const { return params_; }
const std::vector<ObjectiveSpec>& ZdtProblem::objectives() const {
    return objectives_;
}

std::vector<double> ZdtProblem::evaluate(const std::vector<double>& p) const {
    if (p.size() != params_.size())
        throw InvalidInputError("Zdt: parameter arity mismatch");
    const double f1 = p[0];
    double tail = 0.0;
    for (std::size_t i = 1; i < p.size(); ++i) tail += p[i];
    const double g = 1.0 + 9.0 * tail / static_cast<double>(p.size() - 1);
    double h;
    switch (variant_) {
    case 1: h = 1.0 - std::sqrt(f1 / g); break;
    case 2: h = 1.0 - (f1 / g) * (f1 / g); break;
    default:
        h = 1.0 - std::sqrt(f1 / g) - (f1 / g) * std::sin(10.0 * mathx::pi * f1);
        break;
    }
    return {f1, g * h};
}

double ZdtProblem::true_front_f2(double f1) const {
    switch (variant_) {
    case 1: return 1.0 - std::sqrt(f1);
    case 2: return 1.0 - f1 * f1;
    default: return 1.0 - std::sqrt(f1) - f1 * std::sin(10.0 * mathx::pi * f1);
    }
}

// -------------------------------------------------------- ToyAmplifier

ToyAmplifierProblem::ToyAmplifierProblem()
    : params_{{"b", 1.0, 8.0}, {"bias", 0.2, 1.0}},
      objectives_{{"gain_db", Direction::maximize},
                  {"pm_deg", Direction::maximize}} {}

const std::vector<ParameterSpec>& ToyAmplifierProblem::parameters() const {
    return params_;
}
const std::vector<ObjectiveSpec>& ToyAmplifierProblem::objectives() const {
    return objectives_;
}

std::vector<double> ToyAmplifierProblem::evaluate(const std::vector<double>& p) const {
    if (p.size() != 2) throw InvalidInputError("ToyAmplifier: expects 2 parameters");
    const double b = p[0];    // mirror ratio surrogate
    const double bias = p[1]; // bias current surrogate (mA-ish units)
    // Gain rises with b, falls mildly with bias; PM falls with b, rises with
    // bias - a smooth concave trade-off akin to the OTA's.
    const double gain = 40.0 + 20.0 * std::log10(b) - 4.0 * bias;
    const double pm = 90.0 - 7.5 * b + 12.0 * bias;
    return {gain, pm};
}

} // namespace ypm::moo
