#pragma once
/// \file fitness.hpp
/// \brief WBGA fitness: the normalised weighted summation of paper eq. (5).
///
///   O(w, x_i) = sum_j w_j * (f_j(x_i) - f_j_min) / (f_j_max - f_j_min)
///
/// where the min/max normalisation runs over the current population and a
/// minimised objective contributes (f_max - f) / (f_max - f_min) instead, so
/// every term - and thus the total fitness of a unit-sum weight vector -
/// lies in [0, 1].

#include <vector>

#include "eval/request.hpp"
#include "moo/problem.hpp"

namespace ypm::moo {

/// Population-wide objective min/max used for eq. (5) normalisation.
struct ObjectiveBounds {
    std::vector<double> min;
    std::vector<double> max;
};

/// Compute bounds over all valid (non-NaN) rows.
/// \throws ypm::InvalidInputError when no valid row exists.
[[nodiscard]] ObjectiveBounds
objective_bounds(const std::vector<std::vector<double>>& objectives,
                 const std::vector<ObjectiveSpec>& specs);

/// Eq. (5) for one individual. NaN objectives yield fitness 0 (worst).
[[nodiscard]] double wbga_fitness(const std::vector<double>& objectives,
                                  const std::vector<double>& weights,
                                  const ObjectiveBounds& bounds,
                                  const std::vector<ObjectiveSpec>& specs);

/// Eq. (5) for a whole population.
[[nodiscard]] std::vector<double>
wbga_fitness_all(const std::vector<std::vector<double>>& objectives,
                 const std::vector<std::vector<double>>& weights,
                 const std::vector<ObjectiveSpec>& specs);

/// Bounds straight from engine output, without copying objective rows.
[[nodiscard]] ObjectiveBounds
objective_bounds(const std::vector<eval::EvalResult>& results,
                 const std::vector<ObjectiveSpec>& specs);

/// Eq. (5) for a whole population straight from engine output.
[[nodiscard]] std::vector<double>
wbga_fitness_all(const std::vector<eval::EvalResult>& results,
                 const std::vector<std::vector<double>>& weights,
                 const std::vector<ObjectiveSpec>& specs);

} // namespace ypm::moo
