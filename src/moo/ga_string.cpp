#include "moo/ga_string.hpp"

#include <numeric>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::moo {

GaString::GaString(std::size_t n_params, std::size_t n_weights)
    : n_params_(n_params), n_weights_(n_weights), genes_(n_params + n_weights, 0.0) {}

GaString GaString::random(std::size_t n_params, std::size_t n_weights, Rng& rng) {
    GaString s(n_params, n_weights);
    for (auto& g : s.genes_) g = rng.uniform01();
    return s;
}

void GaString::clamp() {
    for (auto& g : genes_) g = mathx::clamp(g, 0.0, 1.0);
}

std::vector<double>
GaString::decode_parameters(const std::vector<ParameterSpec>& specs) const {
    if (specs.size() != n_params_)
        throw InvalidInputError("GaString: parameter spec arity mismatch");
    std::vector<double> out(n_params_);
    for (std::size_t i = 0; i < n_params_; ++i)
        out[i] = mathx::denormalize(genes_[i], specs[i].lo, specs[i].hi);
    return out;
}

std::vector<double> GaString::decode_weights() const {
    std::vector<double> raw(genes_.begin() + static_cast<std::ptrdiff_t>(n_params_),
                            genes_.end());
    return normalize_weights(std::move(raw));
}

std::vector<double> normalize_weights(std::vector<double> raw) {
    const double sum = std::accumulate(raw.begin(), raw.end(), 0.0);
    if (sum <= 0.0) {
        // Degenerate chromosome: fall back to uniform weighting.
        const double u = raw.empty() ? 0.0 : 1.0 / static_cast<double>(raw.size());
        std::fill(raw.begin(), raw.end(), u);
        return raw;
    }
    for (auto& w : raw) w /= sum;
    return raw;
}

} // namespace ypm::moo
