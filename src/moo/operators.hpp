#pragma once
/// \file operators.hpp
/// \brief Genetic operators on GA strings: selection, crossover, mutation
///        (paper section 3.2: "crossover, mutation and selection from one
///        generation to another").

#include <cstddef>
#include <vector>

#include "moo/ga_string.hpp"
#include "util/rng.hpp"

namespace ypm::moo {

/// Crossover flavours. All produce two children from two parents and keep
/// genes in [0, 1].
enum class CrossoverKind {
    single_point, ///< classic Goldberg one-point splice
    two_point,    ///< two-point splice
    uniform,      ///< per-gene coin flip
    blend,        ///< BLX-0.5 arithmetic blend (real-coded GA)
};

/// Mutation flavours.
enum class MutationKind {
    uniform_reset, ///< replace the gene with a fresh uniform draw
    gaussian,      ///< additive N(0, sigma) creep, clamped
};

/// Tournament selection: pick `tournament` random indices, return the one
/// with the highest fitness. fitness.size() defines the population.
[[nodiscard]] std::size_t select_tournament(const std::vector<double>& fitness,
                                            std::size_t tournament, Rng& rng);

/// Fitness-proportionate (roulette) selection. Non-positive total fitness
/// degrades to a uniform pick.
[[nodiscard]] std::size_t select_roulette(const std::vector<double>& fitness,
                                          Rng& rng);

/// Apply crossover; parents must share the same layout.
void crossover(CrossoverKind kind, const GaString& pa, const GaString& pb,
               GaString& child_a, GaString& child_b, Rng& rng);

/// Mutate in place. \param rate per-gene probability \param sigma gaussian
/// step (ignored for uniform_reset).
void mutate(MutationKind kind, GaString& s, double rate, double sigma, Rng& rng);

} // namespace ypm::moo
