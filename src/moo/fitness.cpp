#include "moo/fitness.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace ypm::moo {

ObjectiveBounds objective_bounds(const std::vector<std::vector<double>>& objectives,
                                 const std::vector<ObjectiveSpec>& specs) {
    const std::size_t m = specs.size();
    ObjectiveBounds b;
    b.min.assign(m, std::numeric_limits<double>::infinity());
    b.max.assign(m, -std::numeric_limits<double>::infinity());
    bool any_valid = false;
    for (const auto& row : objectives) {
        if (row.size() != m)
            throw InvalidInputError("objective_bounds: arity mismatch");
        if (evaluation_failed(row)) continue;
        any_valid = true;
        for (std::size_t j = 0; j < m; ++j) {
            b.min[j] = std::min(b.min[j], row[j]);
            b.max[j] = std::max(b.max[j], row[j]);
        }
    }
    if (!any_valid)
        throw InvalidInputError("objective_bounds: every evaluation failed");
    return b;
}

double wbga_fitness(const std::vector<double>& objectives,
                    const std::vector<double>& weights,
                    const ObjectiveBounds& bounds,
                    const std::vector<ObjectiveSpec>& specs) {
    if (objectives.size() != specs.size() || weights.size() != specs.size())
        throw InvalidInputError("wbga_fitness: arity mismatch");
    if (evaluation_failed(objectives)) return 0.0;
    double total = 0.0;
    for (std::size_t j = 0; j < specs.size(); ++j) {
        const double span = bounds.max[j] - bounds.min[j];
        double norm;
        if (span <= 0.0) {
            norm = 1.0; // population is degenerate in this objective
        } else if (specs[j].dir == Direction::maximize) {
            norm = (objectives[j] - bounds.min[j]) / span;
        } else {
            norm = (bounds.max[j] - objectives[j]) / span;
        }
        total += weights[j] * norm;
    }
    return total;
}

std::vector<double>
wbga_fitness_all(const std::vector<std::vector<double>>& objectives,
                 const std::vector<std::vector<double>>& weights,
                 const std::vector<ObjectiveSpec>& specs) {
    if (objectives.size() != weights.size())
        throw InvalidInputError("wbga_fitness_all: population size mismatch");
    const ObjectiveBounds bounds = objective_bounds(objectives, specs);
    std::vector<double> out(objectives.size());
    for (std::size_t i = 0; i < objectives.size(); ++i)
        out[i] = wbga_fitness(objectives[i], weights[i], bounds, specs);
    return out;
}

ObjectiveBounds objective_bounds(const std::vector<eval::EvalResult>& results,
                                 const std::vector<ObjectiveSpec>& specs) {
    const std::size_t m = specs.size();
    ObjectiveBounds b;
    b.min.assign(m, std::numeric_limits<double>::infinity());
    b.max.assign(m, -std::numeric_limits<double>::infinity());
    bool any_valid = false;
    for (const auto& r : results) {
        if (r.values.size() != m)
            throw InvalidInputError("objective_bounds: arity mismatch");
        if (evaluation_failed(r.values)) continue;
        any_valid = true;
        for (std::size_t j = 0; j < m; ++j) {
            b.min[j] = std::min(b.min[j], r.values[j]);
            b.max[j] = std::max(b.max[j], r.values[j]);
        }
    }
    if (!any_valid)
        throw InvalidInputError("objective_bounds: every evaluation failed");
    return b;
}

std::vector<double>
wbga_fitness_all(const std::vector<eval::EvalResult>& results,
                 const std::vector<std::vector<double>>& weights,
                 const std::vector<ObjectiveSpec>& specs) {
    if (results.size() != weights.size())
        throw InvalidInputError("wbga_fitness_all: population size mismatch");
    const ObjectiveBounds bounds = objective_bounds(results, specs);
    std::vector<double> out(results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        out[i] = wbga_fitness(results[i].values, weights[i], bounds, specs);
    return out;
}

} // namespace ypm::moo
