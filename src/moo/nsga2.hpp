#pragma once
/// \file nsga2.hpp
/// \brief NSGA-II baseline optimiser (Deb et al.), used by the optimiser
///        ablation (bench A2) to put the paper's WBGA choice in context.

#include <functional>
#include <vector>

#include "moo/ga_string.hpp"
#include "moo/operators.hpp"
#include "moo/problem.hpp"
#include "moo/wbga.hpp" // EvaluatedIndividual
#include "util/rng.hpp"

namespace ypm::moo {

struct Nsga2Config {
    std::size_t population = 100;
    std::size_t generations = 100;
    double crossover_rate = 0.9;
    CrossoverKind crossover = CrossoverKind::blend;
    double mutation_rate = 0.0; ///< per-gene; 0 selects 1/genes
    double mutation_sigma = 0.08;
    MutationKind mutation = MutationKind::gaussian;
    bool parallel = true;
    bool keep_archive = true;

    /// Shared evaluation engine (non-owning; must outlive the run). When
    /// null the optimiser creates a private engine honouring `parallel`.
    eval::Engine* engine = nullptr;

    /// Optional robustness channel: estimated yield becomes an extra
    /// maximize objective in the non-dominated sort (see moo/robustness.hpp;
    /// `max_points` is ignored - NSGA-II has no scalar pre-rank to tier on,
    /// so the whole population is probed). Disabled reproduces the legacy
    /// run bit-for-bit.
    RobustnessConfig robustness;
};

struct Nsga2Result {
    std::vector<EvaluatedIndividual> archive;
    std::vector<EvaluatedIndividual> final_population; ///< rank-0 first
    std::size_t evaluations = 0;
};

/// Classic NSGA-II: fast non-dominated sort + crowding distance, binary
/// crowded-comparison tournament, (mu + lambda) environmental selection.
/// Chromosomes reuse GaString with zero weight genes.
class Nsga2 {
public:
    Nsga2(const Problem& problem, Nsga2Config config);

    using ProgressFn = std::function<void(std::size_t)>;
    [[nodiscard]] Nsga2Result run(Rng& rng, const ProgressFn& progress = {}) const;

private:
    const Problem& problem_;
    Nsga2Config config_;
};

} // namespace ypm::moo
