#include "moo/population_eval.hpp"

namespace ypm::moo {

std::vector<eval::EvalResult>
evaluate_population(eval::Engine& engine, const Problem& problem,
                    const std::vector<std::vector<double>>& points) {
    return engine.evaluate(
        eval::EvalBatch::nominal(points),
        eval::BatchKernelFn([&problem](const std::vector<const eval::EvalRequest*>&
                                           requests) {
            std::vector<std::vector<double>> chunk;
            chunk.reserve(requests.size());
            for (const eval::EvalRequest* r : requests) chunk.push_back(r->params);
            return problem.evaluate_batch(chunk);
        }));
}

} // namespace ypm::moo
