#include "moo/operators.hpp"

#include <algorithm>
#include <cassert>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::moo {

std::size_t select_tournament(const std::vector<double>& fitness,
                              std::size_t tournament, Rng& rng) {
    if (fitness.empty()) throw InvalidInputError("select_tournament: empty population");
    if (tournament == 0) tournament = 1;
    std::size_t best = rng.index(fitness.size());
    for (std::size_t k = 1; k < tournament; ++k) {
        const std::size_t cand = rng.index(fitness.size());
        if (fitness[cand] > fitness[best]) best = cand;
    }
    return best;
}

std::size_t select_roulette(const std::vector<double>& fitness, Rng& rng) {
    if (fitness.empty()) throw InvalidInputError("select_roulette: empty population");
    double total = 0.0;
    for (double f : fitness) total += std::max(f, 0.0);
    if (total <= 0.0) return rng.index(fitness.size());
    const double pick = rng.uniform(0.0, total);
    double acc = 0.0;
    for (std::size_t i = 0; i < fitness.size(); ++i) {
        acc += std::max(fitness[i], 0.0);
        if (pick <= acc) return i;
    }
    return fitness.size() - 1;
}

namespace {

void splice(const std::vector<double>& a, const std::vector<double>& b,
            std::size_t from, std::size_t to, std::vector<double>& ca,
            std::vector<double>& cb) {
    for (std::size_t i = from; i < to; ++i) {
        ca[i] = b[i];
        cb[i] = a[i];
    }
}

} // namespace

void crossover(CrossoverKind kind, const GaString& pa, const GaString& pb,
               GaString& child_a, GaString& child_b, Rng& rng) {
    if (pa.size() != pb.size() || pa.n_params() != pb.n_params())
        throw InvalidInputError("crossover: parent layout mismatch");
    child_a = pa;
    child_b = pb;
    auto& ca = child_a.genes();
    auto& cb = child_b.genes();
    const auto& a = pa.genes();
    const auto& b = pb.genes();
    const std::size_t n = a.size();
    if (n < 2) return;

    switch (kind) {
    case CrossoverKind::single_point: {
        const std::size_t cut = 1 + rng.index(n - 1);
        splice(a, b, cut, n, ca, cb);
        break;
    }
    case CrossoverKind::two_point: {
        std::size_t c1 = 1 + rng.index(n - 1);
        std::size_t c2 = 1 + rng.index(n - 1);
        if (c1 > c2) std::swap(c1, c2);
        splice(a, b, c1, c2, ca, cb);
        break;
    }
    case CrossoverKind::uniform: {
        for (std::size_t i = 0; i < n; ++i)
            if (rng.bernoulli(0.5)) {
                ca[i] = b[i];
                cb[i] = a[i];
            }
        break;
    }
    case CrossoverKind::blend: {
        // BLX-alpha with alpha = 0.5: children drawn uniformly from the
        // interval spanned by the parents, extended by alpha each side.
        constexpr double alpha = 0.5;
        for (std::size_t i = 0; i < n; ++i) {
            const double lo = std::min(a[i], b[i]);
            const double hi = std::max(a[i], b[i]);
            const double span = hi - lo;
            const double xlo = lo - alpha * span;
            const double xhi = hi + alpha * span;
            ca[i] = rng.uniform(xlo, xhi);
            cb[i] = rng.uniform(xlo, xhi);
        }
        break;
    }
    }
    child_a.clamp();
    child_b.clamp();
}

void mutate(MutationKind kind, GaString& s, double rate, double sigma, Rng& rng) {
    for (auto& g : s.genes()) {
        if (!rng.bernoulli(rate)) continue;
        switch (kind) {
        case MutationKind::uniform_reset: g = rng.uniform01(); break;
        case MutationKind::gaussian: g = mathx::clamp(g + rng.gauss(0.0, sigma), 0.0, 1.0); break;
        }
    }
}

} // namespace ypm::moo
