#pragma once
/// \file population_eval.hpp
/// \brief Bridge between moo::Problem and the batched evaluation engine.
///
/// Optimisers submit whole populations as one EvalBatch; the engine serves
/// repeated points (elites, duplicated offspring) from its cache and routes
/// misses through Problem::evaluate_batch in worker-sized chunks, so a
/// problem that vectorises its batch path benefits without the optimisers
/// knowing.

#include <vector>

#include "eval/engine.hpp"
#include "moo/problem.hpp"

namespace ypm::moo {

/// Evaluate a population of physical parameter points through the engine.
/// Element i of the result corresponds to points[i]; values are the
/// objective vectors (NaN rows mark failures). Bit-identical to calling
/// problem.evaluate(points[i]) for every i, for any thread count.
[[nodiscard]] std::vector<eval::EvalResult>
evaluate_population(eval::Engine& engine, const Problem& problem,
                    const std::vector<std::vector<double>>& points);

} // namespace ypm::moo
