#include "moo/nsga2.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "moo/pareto.hpp"
#include "moo/population_eval.hpp"
#include "util/error.hpp"

namespace ypm::moo {

Nsga2::Nsga2(const Problem& problem, Nsga2Config config)
    : problem_(problem), config_(config) {
    if (config_.population < 4)
        throw InvalidInputError("Nsga2: population must be >= 4");
    if (config_.generations == 0)
        throw InvalidInputError("Nsga2: generations must be >= 1");
    validate_robustness_config(config_.robustness);
}

namespace {

struct Ranked {
    std::size_t rank = 0;
    double crowding = 0.0;
};

/// Crowded-comparison: lower rank wins; ties broken by larger crowding.
bool crowded_less(const Ranked& a, const Ranked& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.crowding > b.crowding;
}

} // namespace

Nsga2Result Nsga2::run(Rng& rng, const ProgressFn& progress) const {
    const auto& pspecs = problem_.parameters();
    const auto& ospecs = problem_.objectives();
    const std::size_t n_params = pspecs.size();
    const std::size_t pop_size = config_.population;
    const double mutation_rate = config_.mutation_rate > 0.0
                                     ? config_.mutation_rate
                                     : 1.0 / static_cast<double>(n_params);

    Nsga2Result result;

    eval::EngineConfig private_config;
    private_config.parallel = config_.parallel;
    eval::Engine private_engine(private_config);
    eval::Engine& engine = config_.engine ? *config_.engine : private_engine;

    auto evaluate = [&](std::vector<GaString>& chroms,
                        std::vector<EvaluatedIndividual>& out, std::size_t gen) {
        out.assign(chroms.size(), EvaluatedIndividual{GaString(n_params, 0), {}, {}, {},
                                                      0.0, gen});
        std::vector<std::vector<double>> points(chroms.size());
        for (std::size_t i = 0; i < chroms.size(); ++i) {
            out[i].chromosome = chroms[i];
            out[i].params = chroms[i].decode_parameters(pspecs);
            out[i].generation = gen;
            points[i] = out[i].params;
        }
        const auto evals = evaluate_population(engine, problem_, points);
        // Robustness channel: probe the whole cohort (no scalar pre-rank to
        // tier on); pre-activation the column stays NaN and ranking below
        // falls back to the nominal objectives bit-identically.
        const auto robustness =
            probe_population_robustness(config_.robustness, points, gen);
        for (std::size_t i = 0; i < chroms.size(); ++i) {
            out[i].objectives = evals[i].values;
            out[i].robustness = robustness[i];
        }
        result.evaluations += chroms.size();
        if (config_.keep_archive)
            for (const auto& e : out) result.archive.push_back(e);
    };

    auto rank_population = [&](const std::vector<EvaluatedIndividual>& pop) {
        std::vector<std::vector<double>> objs(pop.size());
        std::vector<double> robustness(pop.size());
        bool any_probed = false;
        for (std::size_t i = 0; i < pop.size(); ++i) {
            objs[i] = pop[i].objectives;
            robustness[i] = pop[i].robustness;
            any_probed = any_probed || !std::isnan(robustness[i]);
        }
        // Extend the dominance space by the robustness column only when at
        // least one individual was probed: an all-equal extra column would
        // leave dominance intact but still promote two arbitrary boundary
        // individuals to infinite crowding, breaking probe-off bit-identity.
        std::vector<ObjectiveSpec> specs = ospecs;
        if (any_probed)
            objs = append_robustness_objective(objs, robustness,
                                               config_.robustness, specs);
        const auto fronts = non_dominated_sort(objs, specs);
        std::vector<Ranked> ranked(pop.size());
        for (std::size_t f = 0; f < fronts.size(); ++f) {
            const auto crowd = crowding_distance(objs, fronts[f], specs);
            for (std::size_t k = 0; k < fronts[f].size(); ++k) {
                ranked[fronts[f][k]].rank = f;
                ranked[fronts[f][k]].crowding = crowd[k];
            }
        }
        return ranked;
    };

    // Parent generation.
    std::vector<GaString> parents;
    parents.reserve(pop_size);
    for (std::size_t i = 0; i < pop_size; ++i)
        parents.push_back(GaString::random(n_params, 0, rng));
    std::vector<EvaluatedIndividual> parent_eval;
    evaluate(parents, parent_eval, 0);
    std::vector<Ranked> parent_rank = rank_population(parent_eval);

    for (std::size_t gen = 1; gen < config_.generations; ++gen) {
        // Offspring via binary crowded tournament.
        auto pick = [&]() -> std::size_t {
            const std::size_t a = rng.index(pop_size);
            const std::size_t b = rng.index(pop_size);
            return crowded_less(parent_rank[a], parent_rank[b]) ? a : b;
        };
        std::vector<GaString> offspring;
        offspring.reserve(pop_size);
        while (offspring.size() < pop_size) {
            const std::size_t ia = pick();
            const std::size_t ib = pick();
            GaString ca(n_params, 0), cb(n_params, 0);
            if (rng.bernoulli(config_.crossover_rate))
                crossover(config_.crossover, parents[ia], parents[ib], ca, cb, rng);
            else {
                ca = parents[ia];
                cb = parents[ib];
            }
            mutate(config_.mutation, ca, mutation_rate, config_.mutation_sigma, rng);
            offspring.push_back(std::move(ca));
            if (offspring.size() < pop_size) {
                mutate(config_.mutation, cb, mutation_rate, config_.mutation_sigma, rng);
                offspring.push_back(std::move(cb));
            }
        }
        std::vector<EvaluatedIndividual> offspring_eval;
        evaluate(offspring, offspring_eval, gen);

        // (mu + lambda) environmental selection on the union.
        std::vector<EvaluatedIndividual> union_pop = parent_eval;
        union_pop.insert(union_pop.end(), offspring_eval.begin(), offspring_eval.end());
        std::vector<GaString> union_chroms = parents;
        union_chroms.insert(union_chroms.end(), offspring.begin(), offspring.end());

        const auto union_rank = rank_population(union_pop);
        std::vector<std::size_t> order(union_pop.size());
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            return crowded_less(union_rank[a], union_rank[b]);
        });

        std::vector<GaString> next_parents;
        std::vector<EvaluatedIndividual> next_eval;
        std::vector<Ranked> next_rank;
        next_parents.reserve(pop_size);
        next_eval.reserve(pop_size);
        next_rank.reserve(pop_size);
        for (std::size_t k = 0; k < pop_size; ++k) {
            next_parents.push_back(union_chroms[order[k]]);
            next_eval.push_back(union_pop[order[k]]);
            next_rank.push_back(union_rank[order[k]]);
        }
        parents = std::move(next_parents);
        parent_eval = std::move(next_eval);
        parent_rank = std::move(next_rank);

        if (progress) progress(gen);
    }

    // Final population sorted best-first.
    std::vector<std::size_t> order(parent_eval.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return crowded_less(parent_rank[a], parent_rank[b]);
    });
    result.final_population.reserve(parent_eval.size());
    for (std::size_t idx : order) result.final_population.push_back(parent_eval[idx]);
    return result;
}

} // namespace ypm::moo
