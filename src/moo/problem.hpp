#pragma once
/// \file problem.hpp
/// \brief Abstract multi-objective problem (paper eq. 1).
///
/// A problem owns its designable-parameter box constraints and its objective
/// directions; optimisers only see this interface, so the OTA sizing problem
/// and the analytic test suites (ZDT, Schaffer) are interchangeable.

#include <string>
#include <vector>

namespace ypm::moo {

/// One designable parameter with box constraints (paper Table 1 rows).
struct ParameterSpec {
    std::string name;
    double lo = 0.0;
    double hi = 1.0;
};

/// Optimisation direction per objective.
enum class Direction { maximize, minimize };

/// One performance function f_m(x) of paper eq. (1).
struct ObjectiveSpec {
    std::string name;
    Direction dir = Direction::maximize;
};

/// Multi-objective problem interface.
class Problem {
public:
    virtual ~Problem() = default;

    /// Box-constrained designable parameters (defines the parameter space).
    [[nodiscard]] virtual const std::vector<ParameterSpec>& parameters() const = 0;

    /// Objective names and directions (defines the objective space).
    [[nodiscard]] virtual const std::vector<ObjectiveSpec>& objectives() const = 0;

    /// Evaluate all objectives at a physical parameter point.
    /// Must be thread-safe (populations are evaluated in parallel).
    /// A failed evaluation (e.g. simulator non-convergence) is reported by
    /// returning NaN entries; optimisers assign worst fitness to such points.
    [[nodiscard]] virtual std::vector<double>
    evaluate(const std::vector<double>& params) const = 0;

    /// Evaluate a group of points at once. The default loops the scalar
    /// evaluate(); problems that can amortise work across points (shared
    /// testbench prototypes, vectorised models) may override, but the
    /// result must stay element-wise identical to the scalar path - the
    /// evaluation engine chunks batches arbitrarily across workers.
    [[nodiscard]] virtual std::vector<std::vector<double>>
    evaluate_batch(const std::vector<std::vector<double>>& points) const;
};

/// True if any objective entry is NaN (failed evaluation).
[[nodiscard]] bool evaluation_failed(const std::vector<double>& objectives);

/// An all-NaN objective row of the given arity (the failure sentinel the
/// Problem contract prescribes).
[[nodiscard]] std::vector<double> failed_evaluation(std::size_t arity);

} // namespace ypm::moo
