#pragma once
/// \file lhs.hpp
/// \brief Latin hypercube sampling - a variance-reduction alternative to
///        plain MC used by the sampling ablation (bench A3).

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace ypm::mc {

/// n stratified samples in the d-dimensional unit cube: each dimension's
/// marginal hits every one of the n strata exactly once.
[[nodiscard]] std::vector<std::vector<double>>
latin_hypercube(std::size_t n, std::size_t d, Rng& rng);

/// Map a unit-cube sample through the inverse normal CDF (per dimension) to
/// obtain stratified standard-normal draws for process parameters.
[[nodiscard]] std::vector<std::vector<double>>
latin_hypercube_gaussian(std::size_t n, std::size_t d, Rng& rng);

/// Acklam-style inverse normal CDF (max abs error ~ 1.15e-9).
[[nodiscard]] double inverse_normal_cdf(double p);

} // namespace ypm::mc
