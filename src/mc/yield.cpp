#include "mc/yield.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ypm::mc {

Spec Spec::at_least(std::string name, double bound) {
    Spec s;
    s.name = std::move(name);
    s.kind = Kind::at_least;
    s.lo = bound;
    return s;
}

Spec Spec::at_most(std::string name, double bound) {
    Spec s;
    s.name = std::move(name);
    s.kind = Kind::at_most;
    s.hi = bound;
    return s;
}

Spec Spec::range(std::string name, double lo, double hi) {
    if (!(lo <= hi)) throw InvalidInputError("Spec::range: lo must be <= hi");
    Spec s;
    s.name = std::move(name);
    s.kind = Kind::range;
    s.lo = lo;
    s.hi = hi;
    return s;
}

bool Spec::pass(double value) const {
    if (std::isnan(value)) return false;
    switch (kind) {
    case Kind::at_least: return value >= lo;
    case Kind::at_most: return value <= hi;
    case Kind::range: return value >= lo && value <= hi;
    }
    return false;
}

std::pair<double, double> wilson_interval(std::size_t passes, std::size_t samples) {
    if (samples == 0) return {0.0, 1.0}; // no evidence: the vacuous interval
    if (passes > samples)
        throw InvalidInputError("wilson_interval: passes must be <= samples");
    constexpr double z = kZ95;
    const double n = static_cast<double>(samples);
    const double phat = static_cast<double>(passes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double centre = phat + z2 / (2.0 * n);
    const double margin = z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
    double lo = (centre - margin) / denom;
    double hi = (centre + margin) / denom;
    // The edges are exact at the degenerate counts (the sqrt rounds them a
    // few ulp off): 0 passes has a lower bound of exactly 0, a clean sweep
    // an upper bound of exactly 1.
    if (passes == 0) lo = 0.0;
    if (passes == samples) hi = 1.0;
    return {lo, hi};
}

YieldEstimate yield_from_flags(const std::vector<bool>& pass) {
    YieldEstimate y;
    y.samples = pass.size();
    for (bool p : pass)
        if (p) ++y.passes;
    y.yield = y.samples > 0
                  ? static_cast<double>(y.passes) / static_cast<double>(y.samples)
                  : 0.0;
    const auto [lo, hi] = wilson_interval(y.passes, y.samples);
    y.ci_low = lo;
    y.ci_high = hi;
    return y;
}

YieldEstimate estimate_yield(const std::vector<std::vector<double>>& rows,
                             const std::vector<Spec>& specs) {
    std::vector<bool> flags;
    flags.reserve(rows.size());
    for (const auto& row : rows) {
        if (row.size() != specs.size())
            throw InvalidInputError("estimate_yield: row arity mismatch");
        bool all = true;
        for (std::size_t c = 0; c < specs.size(); ++c)
            if (!specs[c].pass(row[c])) {
                all = false;
                break;
            }
        flags.push_back(all);
    }
    return yield_from_flags(flags);
}

} // namespace ypm::mc
