#pragma once
/// \file yield.hpp
/// \brief Parametric yield: specification checks over MC populations with a
///        binomial confidence interval (the paper verifies "a yield of
///        100%" with 500-sample MC runs; the CI quantifies what 500 samples
///        can actually claim).

#include <cstddef>
#include <string>
#include <vector>

namespace ypm::mc {

/// 97.5th percentile of the standard normal: the z of every 95 % interval
/// in this repo (the Wilson interval and the weighted importance-sampling
/// estimator must stay at the same confidence level).
inline constexpr double kZ95 = 1.959963984540054;

/// Specification on one performance function.
struct Spec {
    enum class Kind { at_least, at_most, range };

    std::string name;
    Kind kind = Kind::at_least;
    double lo = 0.0; ///< bound for at_least; lower edge for range
    double hi = 0.0; ///< bound for at_most; upper edge for range

    [[nodiscard]] static Spec at_least(std::string name, double bound);
    [[nodiscard]] static Spec at_most(std::string name, double bound);
    [[nodiscard]] static Spec range(std::string name, double lo, double hi);

    /// Does a measured value satisfy this spec? NaN always fails.
    [[nodiscard]] bool pass(double value) const;
};

/// Result of a yield estimation.
struct YieldEstimate {
    std::size_t samples = 0;
    std::size_t passes = 0;
    double yield = 0.0;  ///< passes / samples
    double ci_low = 0.0; ///< 95 % Wilson score interval
    double ci_high = 0.0;
};

/// Yield from per-sample pass/fail flags.
[[nodiscard]] YieldEstimate yield_from_flags(const std::vector<bool>& pass);

/// Yield of a performance matrix (rows = samples, columns match specs);
/// a sample passes only if every spec passes.
[[nodiscard]] YieldEstimate
estimate_yield(const std::vector<std::vector<double>>& rows,
               const std::vector<Spec>& specs);

/// 95 % Wilson score interval for a binomial proportion. 0 samples return
/// the vacuous interval {0, 1}; the interval never collapses to a point (a
/// 0/n or n/n run still cannot claim exactly 0 % or 100 %).
/// \throws ypm::InvalidInputError when passes > samples.
[[nodiscard]] std::pair<double, double> wilson_interval(std::size_t passes,
                                                        std::size_t samples);

} // namespace ypm::mc
