#pragma once
/// \file monte_carlo.hpp
/// \brief Generic Monte Carlo runner (paper section 3.4).
///
/// The runner owns only the sampling discipline: N samples, each evaluated
/// with an independent deterministic RNG child stream, optionally in
/// parallel, with failed samples (NaN performances) tracked separately so
/// convergence failures degrade yield instead of silently vanishing.
/// Scheduling and accounting are delegated to the shared evaluation engine;
/// the legacy overload spins up a private engine for callers that do not
/// keep a flow-wide ledger.

#include <functional>
#include <span>
#include <vector>

#include "eval/engine.hpp"
#include "mc/stats.hpp"
#include "util/rng.hpp"

namespace ypm::mc {

struct McConfig {
    std::size_t samples = 200; ///< paper section 4.4 uses 200 per Pareto point
    bool parallel = true;
};

struct McResult {
    /// rows[i] = performance vector of sample i (may contain NaN on failure)
    std::vector<std::vector<double>> rows;

    /// Scan rows once, recording the per-row failure mask and the failure
    /// count. Every run path calls this before returning; hand-built
    /// results are finalised automatically on first access instead (call
    /// finalize() again after mutating `rows` - the accessors would
    /// otherwise keep serving the stale mask).
    void finalize();

    /// Samples with any NaN performance. Finalises on first access.
    [[nodiscard]] std::size_t failed() const;

    /// Per-row failure mask (1 = failed). Finalises on first access.
    [[nodiscard]] const std::vector<char>& failure_mask() const;

    /// Column-wise summary over the *successful* samples only.
    [[nodiscard]] Summary column_summary(std::size_t column) const;

    /// Column extracted over successful samples.
    [[nodiscard]] std::vector<double> column(std::size_t column) const;

    /// Paper Δ(%) metric for one column.
    [[nodiscard]] VariationMetrics column_variation(std::size_t column) const;

private:
    /// Lazy-finalisation guard for hand-built results. The run paths
    /// finalise eagerly before a result crosses threads, so first-touch
    /// here stays single-owner; concurrent readers of a finalised result
    /// only ever see the cached mask.
    void ensure_finalized() const;

    mutable std::vector<char> failure_mask_; ///< built by finalize()
    mutable std::size_t failed_ = 0;
    mutable bool finalized_ = false;
};

/// Sample kernel: fn(sample_index, rng) -> performance row. Must be
/// thread-safe and return the same arity every call.
using SampleFn = std::function<std::vector<double>(std::size_t, Rng&)>;

/// Chunk sample kernel: rows for a group of samples at once; sample_ids[k]
/// is the Monte Carlo sample index and rngs[k] its child stream (derived
/// exactly as the scalar path derives them). Kernels that amortise setup
/// across the chunk (shared testbench prototypes) use this form; results
/// must stay element-wise identical to the scalar SampleFn path.
using ChunkSampleFn = std::function<std::vector<std::vector<double>>(
    std::span<const std::size_t>, std::span<Rng>)>;

/// Evaluate `fn` for each sample through a shared engine (one ledger across
/// the whole flow). Advances `rng` once; bit-identical for any thread count.
[[nodiscard]] McResult run_monte_carlo(eval::Engine& engine,
                                       const McConfig& config, Rng& rng,
                                       const SampleFn& fn);

/// Chunked variant: samples are dispatched to `fn` in worker-sized groups
/// through the engine's stochastic chunk path. Bit-identical to the scalar
/// overload when the kernel honours the ChunkSampleFn contract.
[[nodiscard]] McResult run_monte_carlo(eval::Engine& engine,
                                       const McConfig& config, Rng& rng,
                                       const ChunkSampleFn& fn);

/// Handle of one in-flight Monte Carlo run (async engine dispatch).
struct McTicket {
    eval::Engine::Ticket ticket;
    [[nodiscard]] bool valid() const { return ticket.valid(); }
};

/// Async variant of the chunked runner: enqueue the run and return without
/// blocking, so the MC stages of several Pareto points stream onto the pool
/// together. Advances `rng` once at submission (same derivation as the
/// blocking overloads, in submission order); `fn` is copied and anything it
/// captures by reference must outlive wait_monte_carlo(). Rows are
/// bit-identical to run_monte_carlo() with the same engine state and rng.
[[nodiscard]] McTicket submit_monte_carlo(eval::Engine& engine,
                                          const McConfig& config, Rng& rng,
                                          const ChunkSampleFn& fn);

/// Block until the submitted run (and every batch submitted to the engine
/// before it) has retired, then collect its rows.
[[nodiscard]] McResult wait_monte_carlo(eval::Engine& engine, McTicket ticket);

/// Legacy entry point: runs through a private engine honouring
/// config.parallel. Results are bit-identical to the engine overload.
[[nodiscard]] McResult run_monte_carlo(const McConfig& config, Rng& rng,
                                       const SampleFn& fn);

} // namespace ypm::mc
