#pragma once
/// \file monte_carlo.hpp
/// \brief Generic Monte Carlo runner (paper section 3.4).
///
/// The runner owns only the sampling discipline: N samples, each evaluated
/// with an independent deterministic RNG child stream, optionally in
/// parallel, with failed samples (NaN performances) tracked separately so
/// convergence failures degrade yield instead of silently vanishing.

#include <functional>
#include <vector>

#include "mc/stats.hpp"
#include "util/rng.hpp"

namespace ypm::mc {

struct McConfig {
    std::size_t samples = 200; ///< paper section 4.4 uses 200 per Pareto point
    bool parallel = true;
};

struct McResult {
    /// rows[i] = performance vector of sample i (may contain NaN on failure)
    std::vector<std::vector<double>> rows;
    std::size_t failed = 0; ///< samples with any NaN performance

    /// Column-wise summary over the *successful* samples only.
    [[nodiscard]] Summary column_summary(std::size_t column) const;

    /// Column extracted over successful samples.
    [[nodiscard]] std::vector<double> column(std::size_t column) const;

    /// Paper Δ(%) metric for one column.
    [[nodiscard]] VariationMetrics column_variation(std::size_t column) const;
};

/// Evaluate `fn(sample_index, rng)` for each sample. fn must be thread-safe
/// and return the same arity every call.
[[nodiscard]] McResult run_monte_carlo(
    const McConfig& config, Rng& rng,
    const std::function<std::vector<double>(std::size_t, Rng&)>& fn);

} // namespace ypm::mc
