#pragma once
/// \file stats.hpp
/// \brief Descriptive statistics for Monte Carlo populations, including the
///        paper's Δ(%) performance-variation metric (Tables 2 and 3).

#include <cstddef>
#include <vector>

namespace ypm::mc {

/// Moments and extremes of one performance population.
struct Summary {
    std::size_t count = 0;
    double mean = 0.0;
    double variance = 0.0; ///< unbiased (n-1)
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/// Compute a Summary. NaN entries are rejected with ypm::NumericalError -
/// MC callers must filter failed samples first (they carry yield meaning).
[[nodiscard]] Summary summarize(const std::vector<double>& data);

/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> data, double p);

/// Fixed-width histogram of data over [lo, hi] with `bins` bins; values
/// outside the range clamp into the end bins.
[[nodiscard]] std::vector<std::size_t> histogram(const std::vector<double>& data,
                                                 std::size_t bins, double lo,
                                                 double hi);

/// The paper's performance-variation measure. Δ is reported relative to the
/// mean, in percent:
///   delta_3sigma_pct   = 3*sigma / |mean| * 100   (default used in tables)
///   delta_halfrange_pct = (max-min)/2 / |mean| * 100 (worst-case variant)
///
/// Degenerate-mean contract: a relative metric is meaningless when the
/// population spreads around zero. If the population varies but |mean| is
/// too small to carry the ratio (zero, or the division overflows), both
/// deltas are +infinity and relative_valid is false - "unboundedly large
/// relative variation", which downstream threshold filters treat as worse
/// than any finite limit. A constant population (zero spread) reports 0
/// even at zero mean.
struct VariationMetrics {
    Summary summary;
    double delta_3sigma_pct = 0.0;
    double delta_halfrange_pct = 0.0;
    bool relative_valid = true; ///< false = degenerate mean, deltas are +inf
};

[[nodiscard]] VariationMetrics variation_metrics(const std::vector<double>& data);

/// Pearson correlation of two equal-length populations.
[[nodiscard]] double correlation(const std::vector<double>& a,
                                 const std::vector<double>& b);

} // namespace ypm::mc
