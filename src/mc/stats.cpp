#include "mc/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/mathx.hpp"

namespace ypm::mc {

Summary summarize(const std::vector<double>& data) {
    if (data.empty()) throw NumericalError("summarize: empty population");
    Summary s;
    s.count = data.size();
    s.min = data.front();
    s.max = data.front();
    // Welford's algorithm for numerical stability.
    double mean = 0.0;
    double m2 = 0.0;
    std::size_t n = 0;
    for (double v : data) {
        if (std::isnan(v)) throw NumericalError("summarize: NaN in population");
        ++n;
        const double d1 = v - mean;
        mean += d1 / static_cast<double>(n);
        m2 += d1 * (v - mean);
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = mean;
    s.variance = n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
    s.stddev = std::sqrt(s.variance);
    return s;
}

double percentile(std::vector<double> data, double p) {
    if (data.empty()) throw NumericalError("percentile: empty population");
    if (p < 0.0 || p > 100.0)
        throw InvalidInputError("percentile: p must be in [0, 100]");
    std::sort(data.begin(), data.end());
    if (data.size() == 1) return data[0];
    const double rank = p / 100.0 * static_cast<double>(data.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, data.size() - 1);
    const double t = rank - static_cast<double>(lo);
    return mathx::lerp(data[lo], data[hi], t);
}

std::vector<std::size_t> histogram(const std::vector<double>& data, std::size_t bins,
                                   double lo, double hi) {
    if (bins == 0) throw InvalidInputError("histogram: need >= 1 bin");
    if (!(lo < hi)) throw InvalidInputError("histogram: lo must be < hi");
    std::vector<std::size_t> counts(bins, 0);
    const double width = (hi - lo) / static_cast<double>(bins);
    for (double v : data) {
        auto idx = static_cast<long long>(std::floor((v - lo) / width));
        idx = std::clamp<long long>(idx, 0, static_cast<long long>(bins) - 1);
        ++counts[static_cast<std::size_t>(idx)];
    }
    return counts;
}

VariationMetrics variation_metrics(const std::vector<double>& data) {
    VariationMetrics m;
    m.summary = summarize(data);
    const double denom = std::fabs(m.summary.mean);
    const double spread = m.summary.max - m.summary.min;
    if (spread == 0.0) return m; // constant population: 0 % variation
    m.delta_3sigma_pct = 3.0 * m.summary.stddev / denom * 100.0;
    m.delta_halfrange_pct = 0.5 * spread / denom * 100.0;
    // Degenerate mean: the population varies but the ratio to |mean| is not
    // representable (zero mean divides to inf/NaN; a subnormal mean can
    // overflow). Report unbounded relative variation, not a silent 0.
    if (!std::isfinite(m.delta_3sigma_pct) || !std::isfinite(m.delta_halfrange_pct)) {
        m.delta_3sigma_pct = std::numeric_limits<double>::infinity();
        m.delta_halfrange_pct = std::numeric_limits<double>::infinity();
        m.relative_valid = false;
    }
    return m;
}

double correlation(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size() || a.size() < 2)
        throw InvalidInputError("correlation: need matched populations of size >= 2");
    const Summary sa = summarize(a);
    const Summary sb = summarize(b);
    double cov = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        cov += (a[i] - sa.mean) * (b[i] - sb.mean);
    cov /= static_cast<double>(a.size() - 1);
    const double denom = sa.stddev * sb.stddev;
    return denom > 0.0 ? cov / denom : 0.0;
}

} // namespace ypm::mc
