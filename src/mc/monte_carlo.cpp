#include "mc/monte_carlo.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace ypm::mc {

namespace {
bool row_failed(const std::vector<double>& row) {
    for (double v : row)
        if (std::isnan(v)) return true;
    return false;
}
} // namespace

Summary McResult::column_summary(std::size_t col) const {
    return summarize(column(col));
}

std::vector<double> McResult::column(std::size_t col) const {
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto& row : rows) {
        if (row_failed(row)) continue;
        if (col >= row.size())
            throw InvalidInputError("McResult::column: column out of range");
        out.push_back(row[col]);
    }
    if (out.empty())
        throw NumericalError("McResult::column: every sample failed");
    return out;
}

VariationMetrics McResult::column_variation(std::size_t col) const {
    return variation_metrics(column(col));
}

McResult run_monte_carlo(
    const McConfig& config, Rng& rng,
    const std::function<std::vector<double>(std::size_t, Rng&)>& fn) {
    if (config.samples == 0)
        throw InvalidInputError("run_monte_carlo: need >= 1 sample");

    McResult result;
    result.rows.assign(config.samples, {});

    // Derive one child stream per sample from the caller's RNG so results
    // are identical for any thread count; advance the parent once so
    // successive runs differ.
    const Rng base = rng.child(rng.engine()());

    auto eval_one = [&](std::size_t i) {
        Rng sample_rng = base.child(i);
        result.rows[i] = fn(i, sample_rng);
    };
    if (config.parallel)
        ThreadPool::global().parallel_for(config.samples, eval_one);
    else
        for (std::size_t i = 0; i < config.samples; ++i) eval_one(i);

    for (const auto& row : result.rows)
        if (row_failed(row)) ++result.failed;
    return result;
}

} // namespace ypm::mc
