#include "mc/monte_carlo.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ypm::mc {

namespace {
bool row_failed(const std::vector<double>& row) {
    for (double v : row)
        if (std::isnan(v)) return true;
    return false;
}
} // namespace

void McResult::finalize() {
    finalized_ = false;
    ensure_finalized();
}

void McResult::ensure_finalized() const {
    if (finalized_ && failure_mask_.size() == rows.size()) return;
    failure_mask_.assign(rows.size(), 0);
    failed_ = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        failure_mask_[i] = row_failed(rows[i]) ? 1 : 0;
        if (failure_mask_[i]) ++failed_;
    }
    finalized_ = true;
}

std::size_t McResult::failed() const {
    ensure_finalized();
    return failed_;
}

const std::vector<char>& McResult::failure_mask() const {
    ensure_finalized();
    return failure_mask_;
}

Summary McResult::column_summary(std::size_t col) const {
    return summarize(column(col));
}

std::vector<double> McResult::column(std::size_t col) const {
    ensure_finalized();
    std::vector<double> out;
    out.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (failure_mask_[i] != 0) continue;
        if (col >= rows[i].size())
            throw InvalidInputError("McResult::column: column out of range");
        out.push_back(rows[i][col]);
    }
    if (out.empty())
        throw NumericalError("McResult::column: every sample failed");
    return out;
}

VariationMetrics McResult::column_variation(std::size_t col) const {
    return variation_metrics(column(col));
}

namespace {

/// The shared sampling discipline: a non-cacheable one-shot batch with the
/// sample index as process key.
eval::EvalBatch sample_batch(std::size_t samples) {
    eval::EvalBatch batch;
    batch.items.resize(samples);
    for (std::size_t i = 0; i < samples; ++i) {
        batch.items[i].process_key = i;
        batch.items[i].cacheable = false;
    }
    return batch;
}

McResult collect_rows(std::vector<eval::EvalResult> evals) {
    McResult result;
    result.rows.resize(evals.size());
    for (std::size_t i = 0; i < evals.size(); ++i)
        result.rows[i] = std::move(evals[i].values);
    result.finalize();
    return result;
}

} // namespace

McResult run_monte_carlo(eval::Engine& engine, const McConfig& config, Rng& rng,
                         const SampleFn& fn) {
    if (config.samples == 0)
        throw InvalidInputError("run_monte_carlo: need >= 1 sample");

    // One-shot stochastic samples: distinct streams mean a point never
    // repeats within a run, so keep them out of the memoisation cache.
    return collect_rows(engine.evaluate(
        sample_batch(config.samples),
        eval::StochasticKernelFn(
            [&fn](const eval::EvalRequest& request, Rng& sample_rng) {
                return fn(request.process_key, sample_rng);
            }),
        rng));
}

McResult run_monte_carlo(eval::Engine& engine, const McConfig& config, Rng& rng,
                         const ChunkSampleFn& fn) {
    return wait_monte_carlo(engine, submit_monte_carlo(engine, config, rng, fn));
}

McTicket submit_monte_carlo(eval::Engine& engine, const McConfig& config,
                            Rng& rng, const ChunkSampleFn& fn) {
    if (config.samples == 0)
        throw InvalidInputError("submit_monte_carlo: need >= 1 sample");

    eval::EvalBatch batch = sample_batch(config.samples);
    // The adapter owns a copy of fn: the chunk jobs may still be running
    // after the submitting scope has moved on to the next Pareto point.
    return McTicket{engine.submit(
        std::move(batch),
        eval::StochasticBatchKernelFn(
            [fn](const std::vector<const eval::EvalRequest*>& requests,
                 std::span<Rng> rngs) {
                std::vector<std::size_t> ids;
                ids.reserve(requests.size());
                for (const eval::EvalRequest* r : requests)
                    ids.push_back(r->process_key);
                return fn(ids, rngs);
            }),
        rng)};
}

McResult wait_monte_carlo(eval::Engine& engine, McTicket ticket) {
    return collect_rows(engine.wait(std::move(ticket.ticket)));
}

McResult run_monte_carlo(const McConfig& config, Rng& rng, const SampleFn& fn) {
    eval::EngineConfig engine_config;
    engine_config.parallel = config.parallel;
    engine_config.cache_capacity = 0; // nothing to memoise in a one-shot run
    eval::Engine engine(engine_config);
    return run_monte_carlo(engine, config, rng, fn);
}

} // namespace ypm::mc
