#include "mc/lhs.hpp"

#include <cmath>

#include "util/error.hpp"

namespace ypm::mc {

std::vector<std::vector<double>> latin_hypercube(std::size_t n, std::size_t d,
                                                 Rng& rng) {
    if (n == 0 || d == 0)
        throw InvalidInputError("latin_hypercube: n and d must be positive");
    std::vector<std::vector<double>> samples(n, std::vector<double>(d));
    for (std::size_t dim = 0; dim < d; ++dim) {
        const auto perm = rng.permutation(n);
        for (std::size_t i = 0; i < n; ++i) {
            const double stratum = static_cast<double>(perm[i]);
            samples[i][dim] = (stratum + rng.uniform01()) / static_cast<double>(n);
        }
    }
    return samples;
}

double inverse_normal_cdf(double p) {
    if (p <= 0.0 || p >= 1.0)
        throw InvalidInputError("inverse_normal_cdf: p must be in (0, 1)");

    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    constexpr double plow = 0.02425;
    constexpr double phigh = 1.0 - plow;

    double q, r;
    if (p < plow) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= phigh) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

std::vector<std::vector<double>> latin_hypercube_gaussian(std::size_t n, std::size_t d,
                                                          Rng& rng) {
    auto cube = latin_hypercube(n, d, rng);
    for (auto& row : cube)
        for (auto& v : row) v = inverse_normal_cdf(v);
    return cube;
}

} // namespace ypm::mc
