// Variance-reduction yield bench - the gating experiments for the
// importance-sampling subsystem (src/yield/).
//
// Scenario 1 (rare spec): the nominal OTA sizing under c35 process
// variation with a *rare* gain spec placed deep in the lower tail of the
// Monte Carlo gain population (mean - k*sigma, k = 2.4 by default -> ~1 %
// failure rate). Exactly the regime where the paper's 500-sample "100 %
// yield" runs are weakest, and where plain MC needs thousands of samples
// per CI digit.
//
//   BM_YieldBruteForceReference - a large plain-MC reference estimate
//     (YPM_BENCH_YIELD_REF samples, default 50000);
//   BM_YieldSequentialPlainMc   - the sequential driver with the pilot
//     disabled (zero shift = plain MC) running to the CI half-width target;
//   BM_YieldSequentialImportance - the two-stage pilot + *single* mean
//     shift (legacy ISLE proposal mode) running to the same target.
//
// Scenario 2 (bimodal two-spec): a low-tail gain spec plus a high-tail
// phase-margin spec (gain and PM are positively correlated under c35
// variation, so the two ~1 % failure modes sit in well-separated
// directions of the standardized process space). A single fitted mean
// shift points *between* the modes and its fail-side ESS collapses; the
// defensive mixture (nominal + per-spec components, cross-entropy refined)
// covers both.
//
//   BM_YieldBimodalReference   - plain-MC reference
//     (YPM_BENCH_YIELD_BIMODAL_REF samples, default 30000);
//   BM_YieldBimodalSingleShift - the single-shift driver (ESS collapse);
//   BM_YieldBimodalMixture     - the defensive mixture + one CE refinement.
//
// The CI gates (bench-smoke job) assert that the single-shift IS driver
// reaches the rare-spec target in <= 1/3 of the plain-MC samples, that on
// the bimodal scenario the single shift's fail-side ESS collapses below
// 10 % of its samples while the mixture reaches the same target in fewer
// samples, and that every estimate overlaps its brute-force reference
// interval. All drivers dump their samples-vs-half-width trajectory to
// <YPM_BENCH_DIR>/yield_is_trajectory.csv for the uploaded artifact.
//
// Environment knobs (on top of bench_common.hpp's):
//   YPM_BENCH_YIELD_REF         rare-spec reference samples (default 50000)
//   YPM_BENCH_YIELD_TARGET      CI half-width target        (default 0.0035)
//   YPM_BENCH_YIELD_SIGMA       spec depth in sigmas        (default 2.4)
//   YPM_BENCH_YIELD_BIMODAL_REF bimodal reference samples   (default 30000)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "circuits/ota.hpp"
#include "core/ota_mc.hpp"
#include "eval/engine.hpp"
#include "mc/monte_carlo.hpp"
#include "mc/stats.hpp"
#include "mc/yield.hpp"
#include "process/sampler.hpp"
#include "process/variation.hpp"
#include "util/rng.hpp"
#include "yield/sequential.hpp"

using namespace ypm;

namespace {

double env_double(const char* name, double fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    return std::strtod(v, nullptr);
}

eval::Engine make_engine() {
    eval::EngineConfig config;
    config.cache_capacity = 0;
    return eval::Engine(config);
}

/// The rare-spec scenario, built once: spec calibration from a small MC
/// population, then the brute-force reference estimate.
struct Scenario {
    circuits::OtaEvaluator evaluator;
    circuits::OtaSizing sizing; // nominal mid-range point
    process::ProcessSampler sampler{process::ProcessCard::c35(),
                                    process::VariationSpec::c35()};
    std::vector<mc::Spec> specs;
    double target_half_width = 0.0;
    mc::YieldEstimate reference;
    std::size_t reference_samples = 0;
};

const Scenario& scenario() {
    static const Scenario s = [] {
        Scenario sc;
        sc.target_half_width = env_double("YPM_BENCH_YIELD_TARGET", 0.0035);

        // Calibrate the rare spec from the sampled gain population.
        eval::Engine cal_engine = make_engine();
        Rng cal_rng(71);
        const mc::McResult cal = core::run_ota_monte_carlo(
            cal_engine, sc.evaluator, sc.sizing, sc.sampler, 512, cal_rng);
        const mc::Summary gain = cal.column_summary(0);
        const double depth = env_double("YPM_BENCH_YIELD_SIGMA", 2.4);
        sc.specs = {
            mc::Spec::at_least("gain_db", gain.mean - depth * gain.stddev),
            mc::Spec::at_least("pm_deg", 0.0)};

        // Brute-force reference.
        sc.reference_samples = benchx::env_size("YPM_BENCH_YIELD_REF", 50000);
        eval::Engine ref_engine = make_engine();
        Rng ref_rng(72);
        const mc::McResult ref =
            core::run_ota_monte_carlo(ref_engine, sc.evaluator, sc.sizing,
                                      sc.sampler, sc.reference_samples, ref_rng);
        sc.reference = mc::estimate_yield(ref.rows, sc.specs);
        return sc;
    }();
    return s;
}

yield::SequentialConfig driver_config(const Scenario& sc, bool importance) {
    yield::SequentialConfig config;
    config.pilot_samples = importance ? 256 : 0;
    config.pilot_scale = 2.0;
    config.chunk_samples = 128;
    config.max_samples = 60000;
    config.min_samples = 256;
    config.target_half_width = sc.target_half_width;
    // The rare-spec scenario benchmarks the legacy single-shift (ISLE)
    // proposal - one failure mode, where the mixture's defensive mass only
    // costs samples. The bimodal scenario below is the mixture's gate.
    config.mixture_proposal = false;
    return config;
}

yield::SequentialYieldResult run_driver(const Scenario& sc, bool importance) {
    eval::Engine engine = make_engine();
    yield::SequentialYieldRunner runner(
        engine, driver_config(sc, importance), sc.specs,
        core::ota_yield_kernel_factory(sc.evaluator, sc.sizing, sc.sampler),
        core::ota_yield_dimension(sc.evaluator, sc.sizing), Rng(73));
    return runner.run();
}

/// The bimodal two-spec scenario: low-gain tail + high-PM tail, both at
/// the same sigma depth, with its own brute-force reference.
struct BimodalScenario {
    circuits::OtaEvaluator evaluator;
    circuits::OtaSizing sizing;
    process::ProcessSampler sampler{process::ProcessCard::c35(),
                                    process::VariationSpec::c35()};
    std::vector<mc::Spec> specs;
    double target_half_width = 0.0;
    mc::YieldEstimate reference;
    std::size_t reference_samples = 0;
};

const BimodalScenario& bimodal_scenario() {
    static const BimodalScenario s = [] {
        BimodalScenario sc;
        sc.target_half_width = env_double("YPM_BENCH_YIELD_TARGET", 0.0035);

        eval::Engine cal_engine = make_engine();
        Rng cal_rng(71);
        const mc::McResult cal = core::run_ota_monte_carlo(
            cal_engine, sc.evaluator, sc.sizing, sc.sampler, 512, cal_rng);
        const mc::Summary gain = cal.column_summary(0);
        const mc::Summary pm = cal.column_summary(1);
        const double depth = env_double("YPM_BENCH_YIELD_SIGMA", 2.4);
        // Gain and PM move together under c35 variation (corr ~ +0.4), so
        // the low-gain and *high*-PM tails are two well-separated failure
        // modes in the standardized space - the case a single mean shift
        // cannot cover.
        sc.specs = {
            mc::Spec::at_least("gain_db", gain.mean - depth * gain.stddev),
            mc::Spec::at_most("pm_deg", pm.mean + depth * pm.stddev)};

        sc.reference_samples =
            benchx::env_size("YPM_BENCH_YIELD_BIMODAL_REF", 30000);
        eval::Engine ref_engine = make_engine();
        Rng ref_rng(72);
        const mc::McResult ref =
            core::run_ota_monte_carlo(ref_engine, sc.evaluator, sc.sizing,
                                      sc.sampler, sc.reference_samples, ref_rng);
        sc.reference = mc::estimate_yield(ref.rows, sc.specs);
        return sc;
    }();
    return s;
}

yield::SequentialYieldResult run_bimodal_driver(const BimodalScenario& sc,
                                                bool mixture) {
    eval::Engine engine = make_engine();
    yield::SequentialConfig config;
    config.pilot_samples = 256;
    config.pilot_scale = 2.0;
    config.chunk_samples = 128;
    config.max_samples = 12000;
    config.min_samples = 256;
    config.target_half_width = sc.target_half_width;
    config.mixture_proposal = mixture;
    if (mixture) {
        // One cross-entropy refinement once two chunks of failing records
        // accumulated: the pilot centers are re-fitted from main-stage
        // failures under the nominal density.
        config.refine_after_chunks = 2;
        config.max_refits = 1;
    }
    yield::SequentialYieldRunner runner(
        engine, config, sc.specs,
        core::ota_yield_kernel_factory(sc.evaluator, sc.sizing, sc.sampler),
        core::ota_yield_dimension(sc.evaluator, sc.sizing), Rng(73));
    return runner.run();
}

/// Append one driver's convergence trajectory to the artifact CSV.
void dump_trajectory(const std::string& driver,
                     const yield::SequentialYieldResult& result) {
    namespace fs = std::filesystem;
    const fs::path dir = benchx::artifact_dir();
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path csv = dir / "yield_is_trajectory.csv";
    // First write of this process truncates: a rerun must replace the
    // artifact, not interleave stale trajectories into it.
    static bool appending = false;
    std::ofstream out(csv, appending ? std::ios::app : std::ios::trunc);
    if (!out) return; // artifact only; never fail the bench on IO
    if (!appending) out << "driver,samples,ci_half_width\n";
    appending = true;
    for (const auto& [samples, half_width] : result.trajectory)
        out << driver << ',' << samples + result.pilot_samples << ','
            << half_width << '\n';
}

void BM_YieldBruteForceReference(benchmark::State& state) {
    for (auto _ : state) {
        const Scenario& sc = scenario();
        benchmark::DoNotOptimize(sc.reference.yield);
    }
    const Scenario& sc = scenario();
    state.counters["samples"] = static_cast<double>(sc.reference_samples);
    state.counters["yield"] = sc.reference.yield;
    state.counters["ci_low"] = sc.reference.ci_low;
    state.counters["ci_high"] = sc.reference.ci_high;
}
BENCHMARK(BM_YieldBruteForceReference)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_YieldSequentialPlainMc(benchmark::State& state) {
    yield::SequentialYieldResult result;
    for (auto _ : state) result = run_driver(scenario(), false);
    dump_trajectory("plain_mc", result);
    state.counters["samples"] = static_cast<double>(result.samples_used);
    state.counters["yield"] = result.estimate.yield;
    state.counters["ci_half_width"] = result.estimate.half_width();
    state.counters["reached_target"] = result.reached_target ? 1.0 : 0.0;
}
BENCHMARK(BM_YieldSequentialPlainMc)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_YieldSequentialImportance(benchmark::State& state) {
    yield::SequentialYieldResult result;
    for (auto _ : state) result = run_driver(scenario(), true);
    dump_trajectory("importance", result);
    state.counters["samples"] =
        static_cast<double>(result.samples_used + result.pilot_samples);
    state.counters["yield"] = result.estimate.yield;
    state.counters["ci_low"] = result.estimate.ci_low;
    state.counters["ci_high"] = result.estimate.ci_high;
    state.counters["ci_half_width"] = result.estimate.half_width();
    state.counters["ess"] = result.estimate.ess;
    state.counters["shift_norm"] = result.shift.norm();
    state.counters["reached_target"] = result.reached_target ? 1.0 : 0.0;
}
BENCHMARK(BM_YieldSequentialImportance)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_YieldBimodalReference(benchmark::State& state) {
    for (auto _ : state) {
        const BimodalScenario& sc = bimodal_scenario();
        benchmark::DoNotOptimize(sc.reference.yield);
    }
    const BimodalScenario& sc = bimodal_scenario();
    state.counters["samples"] = static_cast<double>(sc.reference_samples);
    state.counters["yield"] = sc.reference.yield;
    state.counters["ci_low"] = sc.reference.ci_low;
    state.counters["ci_high"] = sc.reference.ci_high;
}
BENCHMARK(BM_YieldBimodalReference)->Iterations(1)->Unit(benchmark::kMillisecond);

/// Shared counter block of the two bimodal drivers. `pilot_skipped` is
/// logged for the artifact record; these drivers run their own pilots
/// directly, so it is 0 here - the flag is set by run_adaptive_yield when
/// a cross-point budget starves a pilot.
void bimodal_counters(benchmark::State& state,
                      const yield::SequentialYieldResult& result) {
    state.counters["samples"] =
        static_cast<double>(result.samples_used + result.pilot_samples);
    state.counters["yield"] = result.estimate.yield;
    state.counters["ci_low"] = result.estimate.ci_low;
    state.counters["ci_high"] = result.estimate.ci_high;
    state.counters["ci_half_width"] = result.estimate.half_width();
    state.counters["ess"] = result.estimate.ess;
    state.counters["ess_per_sample"] =
        result.samples_used > 0
            ? result.estimate.ess / static_cast<double>(result.samples_used)
            : 0.0;
    state.counters["components"] =
        static_cast<double>(result.proposal.components.size());
    state.counters["refinements"] = static_cast<double>(result.refinements);
    state.counters["reached_target"] = result.reached_target ? 1.0 : 0.0;
    state.counters["pilot_skipped"] = result.pilot_skipped ? 1.0 : 0.0;
}

void BM_YieldBimodalSingleShift(benchmark::State& state) {
    yield::SequentialYieldResult result;
    for (auto _ : state) result = run_bimodal_driver(bimodal_scenario(), false);
    dump_trajectory("bimodal_single_shift", result);
    bimodal_counters(state, result);
}
BENCHMARK(BM_YieldBimodalSingleShift)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_YieldBimodalMixture(benchmark::State& state) {
    yield::SequentialYieldResult result;
    for (auto _ : state) result = run_bimodal_driver(bimodal_scenario(), true);
    dump_trajectory("bimodal_mixture", result);
    bimodal_counters(state, result);
}
BENCHMARK(BM_YieldBimodalMixture)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
