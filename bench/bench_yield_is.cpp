// Variance-reduction yield bench - the gating experiments for the
// importance-sampling subsystem (src/yield/).
//
// Scenario 1 (rare spec): yield::make_scenario("rare_ota") - the nominal
// OTA sizing under c35 process variation with a *rare* gain spec placed
// deep in the lower tail of the Monte Carlo gain population
// (mean - k*sigma, k = 2.4 by default -> ~1 % failure rate). Exactly the
// regime where the paper's 500-sample "100 % yield" runs are weakest, and
// where plain MC needs thousands of samples per CI digit.
//
//   BM_YieldBruteForceReference - a large plain-MC reference estimate
//     (YPM_BENCH_YIELD_REF samples, default 50000);
//   BM_YieldSequentialPlainMc   - the "plain_mc" estimator (no pilot, zero
//     shift) running to the CI half-width target;
//   BM_YieldSequentialImportance - the "single_shift" estimator (two-stage
//     pilot + single mean shift, legacy ISLE proposal mode).
//
// Scenario 2 (bimodal two-spec): yield::make_scenario("bimodal_ota") - a
// low-tail gain spec plus a high-tail phase-margin spec (gain and PM are
// positively correlated under c35 variation, so the two ~1 % failure modes
// sit in well-separated directions of the standardized process space). A
// single fitted mean shift points *between* the modes and its fail-side
// ESS collapses; the defensive mixture (nominal + per-spec components,
// cross-entropy refined) covers both.
//
//   BM_YieldBimodalReference   - plain-MC reference
//     (YPM_BENCH_YIELD_BIMODAL_REF samples, default 30000);
//   BM_YieldBimodalSingleShift - the "single_shift" estimator (ESS collapse);
//   BM_YieldBimodalMixture     - the "mixture_ce" estimator.
//
// Both scenarios and all four drivers come from the shared registries
// (yield/scenarios.hpp + yield/estimator.hpp): the spec thresholds,
// calibration seeds and driver recipes live there exactly once, shared
// with tests/ and bench_yield_matrix, so this bench's CI gates and the
// unit tests can never drift apart.
//
// The CI gates (bench-smoke job) assert that the single-shift IS driver
// reaches the rare-spec target in <= 1/3 of the plain-MC samples, that on
// the bimodal scenario the single shift's fail-side ESS collapses below
// 10 % of its samples while the mixture reaches the same target in fewer
// samples, and that every estimate overlaps its brute-force reference
// interval. All drivers dump their samples-vs-half-width trajectory to
// <YPM_BENCH_DIR>/yield_is_trajectory.csv for the uploaded artifact.
//
// Environment knobs (on top of bench_common.hpp's):
//   YPM_BENCH_YIELD_REF         rare-spec reference samples (default 50000)
//   YPM_BENCH_YIELD_TARGET      CI half-width target        (default 0.0035)
//   YPM_BENCH_YIELD_SIGMA       spec depth in sigmas        (default 2.4)
//   YPM_BENCH_YIELD_BIMODAL_REF bimodal reference samples   (default 30000)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "eval/engine.hpp"
#include "util/rng.hpp"
#include "yield/estimator.hpp"
#include "yield/scenarios.hpp"
#include "yield/sequential.hpp"
#include "yield/weighted.hpp"

using namespace ypm;

namespace {

double env_double(const char* name, double fallback) {
    // Read before any bench thread starts; nothing calls setenv, so the
    // getenv race clang-tidy guards against cannot occur.
    const char* v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr || *v == '\0') return fallback;
    return std::strtod(v, nullptr);
}

eval::Engine make_engine() {
    eval::EngineConfig config;
    config.cache_capacity = 0;
    return eval::Engine(config);
}

yield::ScenarioOptions scenario_options() {
    yield::ScenarioOptions options;
    options.target_half_width = env_double("YPM_BENCH_YIELD_TARGET", 0.0035);
    options.spec_depth = env_double("YPM_BENCH_YIELD_SIGMA", 2.4);
    return options;
}

/// One scenario + its brute-force reference, built once per column.
struct BenchScenario {
    yield::Scenario scenario;
    yield::WeightedYieldEstimate reference;
    std::size_t reference_samples = 0;
};

const BenchScenario& rare_scenario() {
    static const BenchScenario s = [] {
        BenchScenario sc;
        sc.scenario = yield::make_scenario("rare_ota", scenario_options());
        sc.reference_samples = benchx::env_size("YPM_BENCH_YIELD_REF", 50000);
        eval::Engine engine = make_engine();
        sc.reference = yield::scenario_reference(engine, sc.scenario,
                                                 sc.reference_samples, Rng(72));
        return sc;
    }();
    return s;
}

const BenchScenario& bimodal_scenario() {
    static const BenchScenario s = [] {
        BenchScenario sc;
        sc.scenario = yield::make_scenario("bimodal_ota", scenario_options());
        sc.reference_samples =
            benchx::env_size("YPM_BENCH_YIELD_BIMODAL_REF", 30000);
        eval::Engine engine = make_engine();
        sc.reference = yield::scenario_reference(engine, sc.scenario,
                                                 sc.reference_samples, Rng(72));
        return sc;
    }();
    return s;
}

/// Run one registered estimator on one scenario with the historical driver
/// seed (Rng(73)).
yield::SequentialYieldResult run_estimator(const BenchScenario& sc,
                                           const std::string& estimator) {
    eval::Engine engine = make_engine();
    return yield::EstimatorRegistry::instance().create(estimator)->estimate(
        engine, sc.scenario.config, sc.scenario.specs, sc.scenario.factory,
        sc.scenario.dimension, Rng(73));
}

/// Append one driver's convergence trajectory to the artifact CSV.
void dump_trajectory(const std::string& driver,
                     const yield::SequentialYieldResult& result) {
    namespace fs = std::filesystem;
    const fs::path dir = benchx::artifact_dir();
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path csv = dir / "yield_is_trajectory.csv";
    // First write of this process truncates: a rerun must replace the
    // artifact, not interleave stale trajectories into it.
    static bool appending = false;
    std::ofstream out(csv, appending ? std::ios::app : std::ios::trunc);
    if (!out) return; // artifact only; never fail the bench on IO
    if (!appending) out << "driver,samples,ci_half_width\n";
    appending = true;
    for (const auto& [samples, half_width] : result.trajectory)
        out << driver << ',' << samples + result.pilot_samples << ','
            << half_width << '\n';
}

void reference_counters(benchmark::State& state, const BenchScenario& sc) {
    state.counters["samples"] = static_cast<double>(sc.reference_samples);
    state.counters["yield"] = sc.reference.yield;
    state.counters["ci_low"] = sc.reference.ci_low;
    state.counters["ci_high"] = sc.reference.ci_high;
}

void BM_YieldBruteForceReference(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(rare_scenario().reference.yield);
    }
    reference_counters(state, rare_scenario());
}
BENCHMARK(BM_YieldBruteForceReference)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_YieldSequentialPlainMc(benchmark::State& state) {
    yield::SequentialYieldResult result;
    for (auto _ : state) result = run_estimator(rare_scenario(), "plain_mc");
    dump_trajectory("plain_mc", result);
    state.counters["samples"] = static_cast<double>(result.samples_used);
    state.counters["yield"] = result.estimate.yield;
    state.counters["ci_half_width"] = result.estimate.half_width();
    state.counters["reached_target"] = result.reached_target ? 1.0 : 0.0;
}
BENCHMARK(BM_YieldSequentialPlainMc)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_YieldSequentialImportance(benchmark::State& state) {
    yield::SequentialYieldResult result;
    for (auto _ : state) result = run_estimator(rare_scenario(), "single_shift");
    dump_trajectory("importance", result);
    state.counters["samples"] =
        static_cast<double>(result.samples_used + result.pilot_samples);
    state.counters["yield"] = result.estimate.yield;
    state.counters["ci_low"] = result.estimate.ci_low;
    state.counters["ci_high"] = result.estimate.ci_high;
    state.counters["ci_half_width"] = result.estimate.half_width();
    state.counters["ess"] = result.estimate.ess;
    state.counters["shift_norm"] = result.shift.norm();
    state.counters["reached_target"] = result.reached_target ? 1.0 : 0.0;
}
BENCHMARK(BM_YieldSequentialImportance)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_YieldBimodalReference(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(bimodal_scenario().reference.yield);
    }
    reference_counters(state, bimodal_scenario());
}
BENCHMARK(BM_YieldBimodalReference)->Iterations(1)->Unit(benchmark::kMillisecond);

/// Shared counter block of the two bimodal drivers. `pilot_skipped` is
/// logged for the artifact record; these drivers run their own pilots
/// directly, so it is 0 here - the flag is set by run_adaptive_yield when
/// a cross-point budget starves a pilot.
void bimodal_counters(benchmark::State& state,
                      const yield::SequentialYieldResult& result) {
    state.counters["samples"] =
        static_cast<double>(result.samples_used + result.pilot_samples);
    state.counters["yield"] = result.estimate.yield;
    state.counters["ci_low"] = result.estimate.ci_low;
    state.counters["ci_high"] = result.estimate.ci_high;
    state.counters["ci_half_width"] = result.estimate.half_width();
    state.counters["ess"] = result.estimate.ess;
    state.counters["ess_per_sample"] =
        result.samples_used > 0
            ? result.estimate.ess / static_cast<double>(result.samples_used)
            : 0.0;
    state.counters["components"] =
        static_cast<double>(result.proposal.components.size());
    state.counters["refinements"] = static_cast<double>(result.refinements);
    state.counters["reached_target"] = result.reached_target ? 1.0 : 0.0;
    state.counters["pilot_skipped"] = result.pilot_skipped ? 1.0 : 0.0;
}

void BM_YieldBimodalSingleShift(benchmark::State& state) {
    yield::SequentialYieldResult result;
    for (auto _ : state)
        result = run_estimator(bimodal_scenario(), "single_shift");
    dump_trajectory("bimodal_single_shift", result);
    bimodal_counters(state, result);
}
BENCHMARK(BM_YieldBimodalSingleShift)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_YieldBimodalMixture(benchmark::State& state) {
    yield::SequentialYieldResult result;
    for (auto _ : state) result = run_estimator(bimodal_scenario(), "mixture_ce");
    dump_trajectory("bimodal_mixture", result);
    bimodal_counters(state, result);
}
BENCHMARK(BM_YieldBimodalMixture)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
