// Yield-in-the-loop closure experiment: does feeding low-budget yield
// probes into WBGA selection buy a better *certified* front than spending
// the same engine-evaluation budget on more nominal generations?
//
// Two arms, equal optimiser budget by construction:
//   yield_aware   pop x gens nominal evaluations + the probes' yield
//                 samples (probe target_half_width 0, so every probed
//                 individual spends its full budget - the probe bill is
//                 exact, not an upper bound);
//   nominal       probes off, with extra generations worth exactly the
//                 probe bill (pop x (gens + probe_samples / pop)).
//
// Both arms' fronts then get the identical sequential yield certification,
// and each arm appends one row to <YPM_BENCH_DIR>/yield_closure.csv:
//
//   arm,population,generations,probe_budget,probe_points,probe_samples,
//   optimiser_evaluations,engine_evaluations,front_points,certified_points,
//   min_yield,mean_yield,min_ci_low,wall_ms
//
// scripts/check_closure.py gates this artifact in the bench-smoke CI job:
// equal optimiser budgets across the arms, and the yield-aware arm's
// certified minimum yield beating the nominal arm's by the calibrated
// ratio floor.
//
// Environment knobs (on top of bench_common.hpp's):
//   YPM_BENCH_CLOSURE_POP     population              (default 24)
//   YPM_BENCH_CLOSURE_GENS    yield-aware generations (default 12)
//   YPM_BENCH_CLOSURE_BUDGET  probe samples per point (default 32)
//   YPM_BENCH_CLOSURE_GAIN    gain spec floor in dB   (default 50)
//   YPM_BENCH_CLOSURE_PM      pm spec floor in deg    (default 70)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/flow.hpp"
#include "mc/yield.hpp"
#include "util/clock.hpp"

using namespace ypm;

namespace {

double env_double(const char* name, double fallback) {
    // Read before any bench thread starts; nothing calls setenv, so the
    // getenv race clang-tidy guards against cannot occur.
    const char* v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr || *v == '\0') return fallback;
    return std::strtod(v, nullptr);
}

struct ClosureScale {
    std::size_t population = 24;
    std::size_t generations = 12;       ///< yield-aware arm
    std::size_t probe_budget = 32;      ///< samples per probed individual
    std::size_t probe_activation = 4;   ///< first probing generation
    std::size_t probe_points = 6;       ///< top-K probed per generation
    double spec_gain_db = 50.0;
    double spec_pm_deg = 70.0;

    /// Exact probe bill: target_half_width 0 makes every probed individual
    /// spend its full budget, so the bill is a pure function of the knobs.
    [[nodiscard]] std::size_t probe_samples() const {
        return (generations - probe_activation) *
               std::min(probe_points, population) * probe_budget;
    }
    /// Nominal-arm generations carrying the probe bill as extra nominal
    /// evaluations (the equal-budget construction).
    [[nodiscard]] std::size_t nominal_generations() const {
        return generations + (probe_samples() + population - 1) / population;
    }
};

ClosureScale closure_scale() {
    ClosureScale s;
    s.population = benchx::env_size("YPM_BENCH_CLOSURE_POP", 24);
    s.generations = benchx::env_size("YPM_BENCH_CLOSURE_GENS", 12);
    s.probe_budget = benchx::env_size("YPM_BENCH_CLOSURE_BUDGET", 32);
    s.spec_gain_db = env_double("YPM_BENCH_CLOSURE_GAIN", 50.0);
    s.spec_pm_deg = env_double("YPM_BENCH_CLOSURE_PM", 70.0);
    return s;
}

core::FlowConfig closure_config(const ClosureScale& s, bool yield_aware) {
    core::FlowConfig cfg;
    cfg.ga.population = s.population;
    cfg.ga.generations = yield_aware ? s.generations : s.nominal_generations();
    cfg.mc_samples = 24;
    cfg.max_mc_points = 8;
    cfg.seed = 2008; // DATE'08
    cfg.yield_specs = {mc::Spec::at_least("gain_db", s.spec_gain_db),
                       mc::Spec::at_least("pm_deg", s.spec_pm_deg)};
    // Certify the spec-relevant front only: the hygiene floors sit at the
    // spec values, so "minimum certified yield" ranges over designs that
    // nominally meet the specs (anything below them certifies ~0 and would
    // flatten both arms to the same number).
    cfg.min_front_gain_db = s.spec_gain_db;
    cfg.min_front_pm_deg = s.spec_pm_deg;
    // Identical certification tier for both arms: the comparison is about
    // what the optimiser hands over, not how it is measured.
    cfg.yield_sequential.pilot_samples = 64;
    cfg.yield_sequential.chunk_samples = 64;
    cfg.yield_sequential.min_samples = 128;
    cfg.yield_sequential.max_samples = 512;
    cfg.yield_sequential.target_half_width = 0.02;
    if (yield_aware) {
        cfg.yield_probe.budget = s.probe_budget;
        cfg.yield_probe.activation_generation = s.probe_activation;
        cfg.yield_probe.max_points = s.probe_points;
        cfg.yield_probe.target_half_width = 0.0; // spend the exact budget
        cfg.yield_probe.mode = moo::RobustnessMode::weight;
        cfg.yield_probe.yield_weight = 0.5;
    }
    return cfg;
}

/// Append one arm row. First write of the process truncates, so a rerun
/// replaces the artifact instead of interleaving stale rows into it.
void dump_arm(const std::string& arm, const ClosureScale& s,
              const core::FlowConfig& cfg, const core::FlowResult& result,
              double wall_ms) {
    namespace fs = std::filesystem;
    const fs::path dir = benchx::artifact_dir();
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path csv = dir / "yield_closure.csv";
    static bool appending = false;
    std::ofstream out(csv, appending ? std::ios::app : std::ios::trunc);
    if (!out) return; // artifact only; never fail the bench on IO
    if (!appending)
        out << "arm,population,generations,probe_budget,probe_points,"
               "probe_samples,optimiser_evaluations,engine_evaluations,"
               "front_points,certified_points,min_yield,mean_yield,"
               "min_ci_low,wall_ms\n";
    appending = true;

    double min_yield = 1.0, sum_yield = 0.0, min_ci_low = 1.0;
    for (const auto& y : result.yields) {
        min_yield = std::min(min_yield, y.result.estimate.yield);
        min_ci_low = std::min(min_ci_low, y.result.estimate.ci_low);
        sum_yield += y.result.estimate.yield;
    }
    const double mean_yield =
        result.yields.empty()
            ? 0.0
            : sum_yield / static_cast<double>(result.yields.size());
    out << arm << ',' << s.population << ',' << cfg.ga.generations << ','
        << (arm == "yield_aware" ? s.probe_budget : 0) << ','
        << result.timings.probe_points << ',' << result.timings.probe_samples
        << ','
        << result.timings.moo_evaluations + result.timings.probe_samples << ','
        << result.timings.engine.evaluations << ',' << result.front.size()
        << ',' << result.yields.size() << ','
        << (result.yields.empty() ? 0.0 : min_yield) << ',' << mean_yield
        << ',' << (result.yields.empty() ? 0.0 : min_ci_low) << ',' << wall_ms
        << '\n';
}

void run_arm(benchmark::State& state, bool yield_aware) {
    const ClosureScale s = closure_scale();
    const core::FlowConfig cfg = closure_config(s, yield_aware);
    core::FlowResult result;
    double wall_ms = 0.0;
    for (auto _ : state) {
        const util::TickNs t0 = util::now_ns();
        result = core::YieldFlow(circuits::OtaConfig{}, cfg).run();
        wall_ms = util::seconds_since(t0) * 1e3;
    }
    dump_arm(yield_aware ? "yield_aware" : "nominal", s, cfg, result, wall_ms);
    double min_yield = 1.0;
    for (const auto& y : result.yields)
        min_yield = std::min(min_yield, y.result.estimate.yield);
    state.counters["optimiser_evals"] = static_cast<double>(
        result.timings.moo_evaluations + result.timings.probe_samples);
    state.counters["probe_samples"] =
        static_cast<double>(result.timings.probe_samples);
    state.counters["certified_points"] =
        static_cast<double>(result.yields.size());
    state.counters["min_yield"] = result.yields.empty() ? 0.0 : min_yield;
}

void BM_ClosureYieldAware(benchmark::State& state) { run_arm(state, true); }
void BM_ClosureNominal(benchmark::State& state) { run_arm(state, false); }

BENCHMARK(BM_ClosureYieldAware)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosureNominal)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
