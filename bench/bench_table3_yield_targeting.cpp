// Experiment E3 - paper Table 3: the yield-targeting interpolation example.
//
// Required spec: gain > 50 dB and PM > 74 deg. The model interpolates the
// variation Δ at the requirement, inflates the target
// (new = required * (1 + Δ/100)), and interpolates the designable
// parameters at the inflated target. The timed kernel is one complete
// size_for_spec query.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/behav_model.hpp"
#include "util/text_table.hpp"
#include "util/units.hpp"

using namespace ypm;

namespace {

std::vector<core::FrontPointData> g_front;

void BM_SizeForSpec(benchmark::State& state) {
    const core::BehaviouralModel model(g_front);
    const double g = (model.gain_min() + model.gain_max()) / 2.0;
    const double p = model.pm_min() + 0.25 * (model.pm_max() - model.pm_min());
    for (auto _ : state) {
        auto r = model.size_for_spec(g, p);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SizeForSpec)->Unit(benchmark::kMicrosecond);

void experiment() {
    std::printf("\n=== E3 / Table 3: yield-targeted interpolation ===\n");
    const core::BehaviouralModel model(g_front);
    std::printf("model coverage: gain [%s, %s] dB, pm [%s, %s] deg\n",
                benchx::fmt2(model.gain_min()).c_str(),
                benchx::fmt2(model.gain_max()).c_str(),
                benchx::fmt2(model.pm_min()).c_str(),
                benchx::fmt2(model.pm_max()).c_str());

    // Paper spec: gain > 50 dB, PM > 74 deg. If this front does not cover
    // that exact window, use the equivalent relative position and say so.
    double req_gain = 50.0, req_pm = 74.0;
    if (req_gain < model.gain_min() || req_gain > model.gain_max() ||
        req_pm < model.pm_min() || req_pm > model.pm_max()) {
        req_gain = model.gain_min() + 0.4 * (model.gain_max() - model.gain_min());
        req_pm = model.pm_min() + 0.3 * (model.pm_max() - model.pm_min());
        std::printf("note: paper spec (50 dB, 74 deg) outside this front; using "
                    "equivalent interior spec (%.2f dB, %.2f deg)\n",
                    req_gain, req_pm);
    }

    const core::SizingResult r = model.size_for_spec(req_gain, req_pm);

    TextTable t({"Performance", "Required", "Variation (%)", "New performance"});
    t.add_row({"Gain", "> " + benchx::fmt2(req_gain) + " dB",
               benchx::fmt2(r.variation_gain_pct),
               benchx::fmt2(r.target_gain_db) + " dB"});
    t.add_row({"Phase margin", "> " + benchx::fmt2(req_pm) + " deg",
               benchx::fmt2(r.variation_pm_pct),
               benchx::fmt2(r.target_pm_deg) + " deg"});
    std::printf("%s", t.to_string().c_str());
    std::printf("\npaper Table 3: gain 50 dB + 0.51%% -> 50.26 dB; "
                "pm 74 deg + 1.71%% -> 75.27 deg\n");

    std::printf("\ninterpolated designable parameters (feasible=%s):\n",
                r.feasible ? "yes" : "no");
    TextTable p({"param", "value"});
    const auto& names = circuits::OtaSizing::parameter_names();
    const auto values = r.sizing.to_vector();
    for (std::size_t i = 0; i < names.size(); ++i)
        p.add_row({names[i], units::format_eng(values[i]) + "m"});
    std::printf("%s", p.to_string().c_str());
    std::printf("\nmodel-predicted performance at this sizing: %s dB, %s deg\n",
                benchx::fmt2(r.predicted_gain_db).c_str(),
                benchx::fmt2(r.predicted_pm_deg).c_str());
}

} // namespace

int main(int argc, char** argv) {
    g_front = benchx::load_or_build_front();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
