// Ablation A2 - optimiser choice: the paper's WBGA versus NSGA-II and
// uniform random search at the same evaluation budget, scored by 2-D
// hypervolume of the resulting Pareto front on the real OTA problem and on
// the analytic ZDT1 (where the true front is known).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "circuits/ota_problem.hpp"
#include "moo/nsga2.hpp"
#include "moo/pareto.hpp"
#include "moo/random_search.hpp"
#include "moo/test_problems.hpp"
#include "moo/wbga.hpp"
#include "util/text_table.hpp"

using namespace ypm;

namespace {

double front_hypervolume(const std::vector<moo::EvaluatedIndividual>& archive,
                         const std::vector<moo::ObjectiveSpec>& specs,
                         const std::vector<double>& reference) {
    std::vector<std::vector<double>> objs;
    objs.reserve(archive.size());
    for (const auto& e : archive) objs.push_back(e.objectives);
    const auto front = moo::pareto_front_indices_2d(objs, specs);
    std::vector<std::vector<double>> pts;
    pts.reserve(front.size());
    for (std::size_t i : front) pts.push_back(objs[i]);
    return moo::hypervolume_2d(pts, reference, specs);
}

struct Score {
    double hypervolume = 0.0;
    std::size_t front_size = 0;
    double seconds = 0.0;
};

template <typename Runner>
Score run_scored(const moo::Problem& problem, const std::vector<double>& ref,
                 Runner&& runner) {
    const util::TickNs t0 = util::now_ns();
    const auto archive = runner();
    Score s;
    s.seconds = util::seconds_since(t0);
    s.hypervolume = front_hypervolume(archive, problem.objectives(), ref);
    std::vector<std::vector<double>> objs;
    for (const auto& e : archive) objs.push_back(e.objectives);
    s.front_size = moo::pareto_front_indices_2d(objs, problem.objectives()).size();
    return s;
}

void compare_on(const moo::Problem& problem, const std::vector<double>& ref,
                std::size_t pop, std::size_t gens, const char* title) {
    std::printf("\n--- %s (budget %zu evaluations) ---\n", title, pop * gens);

    moo::WbgaConfig wcfg;
    wcfg.population = pop;
    wcfg.generations = gens;
    const moo::Wbga wbga(problem, wcfg);

    moo::Nsga2Config ncfg;
    ncfg.population = pop;
    ncfg.generations = gens;
    const moo::Nsga2 nsga2(problem, ncfg);

    const Score sw = run_scored(problem, ref, [&] {
        Rng rng(11);
        return wbga.run(rng).archive;
    });
    const Score sn = run_scored(problem, ref, [&] {
        Rng rng(12);
        return nsga2.run(rng).archive;
    });
    const Score sr = run_scored(problem, ref, [&] {
        Rng rng(13);
        return moo::random_search(problem, pop * gens, rng).archive;
    });

    TextTable t({"optimiser", "hypervolume", "front size", "seconds"});
    t.add_row({"WBGA (paper)", benchx::fmt3(sw.hypervolume),
               std::to_string(sw.front_size), benchx::fmt2(sw.seconds)});
    t.add_row({"NSGA-II", benchx::fmt3(sn.hypervolume), std::to_string(sn.front_size),
               benchx::fmt2(sn.seconds)});
    t.add_row({"random search", benchx::fmt3(sr.hypervolume),
               std::to_string(sr.front_size), benchx::fmt2(sr.seconds)});
    std::printf("%s", t.to_string().c_str());
}

void BM_WbgaGenerationZdt(benchmark::State& state) {
    const moo::ZdtProblem problem(1, 30);
    moo::WbgaConfig cfg;
    cfg.population = 100;
    cfg.generations = 1;
    const moo::Wbga opt(problem, cfg);
    std::uint64_t seed = 0;
    for (auto _ : state) {
        Rng rng(seed++);
        auto res = opt.run(rng);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_WbgaGenerationZdt)->Unit(benchmark::kMillisecond);

void experiment() {
    std::printf("\n=== A2: optimiser ablation (WBGA vs NSGA-II vs random) ===\n");
    const moo::ZdtProblem zdt(1, 30);
    compare_on(zdt, {1.1, 10.0}, 60, 40, "ZDT1 (analytic)");

    const circuits::OtaProblem ota{circuits::OtaConfig{}};
    compare_on(ota, {30.0, 0.0}, 40, 20, "OTA sizing (circuit simulator)");
    std::printf("\nreading: WBGA trades front quality for per-generation cost; "
                "the paper's flow only needs a dense trade-off *cloud*, which "
                "WBGA's weight niching provides.\n");
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
