// Ablation A3 - Monte Carlo budget and sampling strategy.
//
// The paper uses 200 samples per Pareto point for the variation model and
// 500 for yield verification. This ablation shows (a) how the Δ(%) estimate
// converges with sample count, and (b) what Latin hypercube sampling buys
// over plain MC at equal budget for a smooth statistic.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/ota_mc.hpp"
#include "mc/lhs.hpp"
#include "util/text_table.hpp"

using namespace ypm;

namespace {

void BM_McBatch50(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed++);
        auto result =
            core::run_ota_monte_carlo(evaluator, circuits::OtaSizing{}, sampler, 50, rng);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_McBatch50)->Unit(benchmark::kMillisecond);

void experiment() {
    std::printf("\n=== A3: Monte Carlo budget ablation ===\n");
    const circuits::OtaEvaluator evaluator;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    const circuits::OtaSizing sizing;

    // Reference Δ from a large run.
    Rng ref_rng(99);
    const auto ref =
        core::run_ota_monte_carlo(evaluator, sizing, sampler, 2000, ref_rng);
    const double ref_dgain = ref.column_variation(0).delta_3sigma_pct;
    const double ref_dpm = ref.column_variation(1).delta_3sigma_pct;
    std::printf("reference (2000 samples): dGain %.3f%%  dPM %.3f%%\n\n", ref_dgain,
                ref_dpm);

    TextTable t({"samples", "dGain (%)", "err vs ref", "dPM (%)", "err vs ref"});
    for (std::size_t n : {25, 50, 100, 200, 500, 1000}) {
        // Average absolute error over a few repetitions.
        double egain = 0.0, epm = 0.0, dgain = 0.0, dpm = 0.0;
        constexpr int reps = 3;
        for (int r = 0; r < reps; ++r) {
            Rng rng(1000 + 17 * static_cast<std::uint64_t>(n) + r);
            const auto mc = core::run_ota_monte_carlo(evaluator, sizing, sampler, n, rng);
            const double dg = mc.column_variation(0).delta_3sigma_pct;
            const double dp = mc.column_variation(1).delta_3sigma_pct;
            dgain += dg / reps;
            dpm += dp / reps;
            egain += std::fabs(dg - ref_dgain) / reps;
            epm += std::fabs(dp - ref_dpm) / reps;
        }
        t.add_row({std::to_string(n), benchx::fmt3(dgain), benchx::fmt3(egain),
                   benchx::fmt3(dpm), benchx::fmt3(epm)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("\npaper budget (200) sits where the estimate has roughly "
                "stabilised - the table shows the error still shrinking beyond it.\n");

    // LHS vs plain MC on a smooth synthetic statistic (mean of a monotone
    // function of the process draws), matching how the sampler would be
    // driven through latin_hypercube_gaussian.
    std::printf("\nLHS vs plain MC (variance of the mean estimator, 64-sample "
                "budget, 200 trials):\n");
    Rng rng(7);
    double var_mc = 0.0, var_lhs = 0.0;
    constexpr int trials = 200;
    constexpr std::size_t budget = 64;
    for (int tr = 0; tr < trials; ++tr) {
        double m1 = 0.0;
        for (std::size_t i = 0; i < budget; ++i)
            m1 += std::tanh(rng.gauss()) / budget;
        var_mc += m1 * m1 / trials;
        const auto g = mc::latin_hypercube_gaussian(budget, 1, rng);
        double m2 = 0.0;
        for (const auto& row : g) m2 += std::tanh(row[0]) / budget;
        var_lhs += m2 * m2 / trials;
    }
    std::printf("  plain MC estimator variance: %.3e\n", var_mc);
    std::printf("  LHS estimator variance:      %.3e  (%.1fx reduction)\n", var_lhs,
                var_mc / var_lhs);
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
