// Experiment E1 - paper Figure 7 and part of Table 5.
//
// Runs the WBGA at the paper's scale (population 100 x 100 generations =
// 10,000 evaluated sizings), extracts the Pareto front, and reports the
// objective-space cloud and front statistics the figure shows (the paper
// finds 1022 Pareto-optimal points). google-benchmark timings cover the two
// kernels: one full OTA evaluation and one non-dominated filtering pass.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "circuits/ota_problem.hpp"
#include "core/flow.hpp"
#include "mc/stats.hpp"
#include "moo/pareto.hpp"
#include "moo/wbga.hpp"
#include "util/text_table.hpp"

using namespace ypm;

namespace {

// ------------------------------------------------- timed kernels

void BM_OtaEvaluation(benchmark::State& state) {
    const circuits::OtaProblem problem;
    const circuits::OtaSizing sizing;
    const auto params = sizing.to_vector();
    for (auto _ : state) {
        auto objs = problem.evaluate(params);
        benchmark::DoNotOptimize(objs);
    }
}
BENCHMARK(BM_OtaEvaluation)->Unit(benchmark::kMillisecond);

void BM_ParetoFilter10k(benchmark::State& state) {
    Rng rng(1);
    std::vector<std::vector<double>> objs;
    objs.reserve(10000);
    for (int i = 0; i < 10000; ++i)
        objs.push_back({rng.uniform(40.0, 65.0), rng.uniform(10.0, 90.0)});
    const std::vector<moo::ObjectiveSpec> specs = {
        {"gain", moo::Direction::maximize}, {"pm", moo::Direction::maximize}};
    for (auto _ : state) {
        auto front = moo::pareto_front_indices_2d(objs, specs);
        benchmark::DoNotOptimize(front);
    }
}
BENCHMARK(BM_ParetoFilter10k)->Unit(benchmark::kMillisecond);

void experiment() {
    std::printf("\n=== E1 / Figure 7: gain & phase margin cloud with Pareto front ===\n");
    const auto cfg = benchx::paper_flow_config();
    std::printf("WBGA: population %zu x %zu generations = %zu evaluations "
                "(paper: 100 x 100 = 10,000)\n",
                cfg.ga.population, cfg.ga.generations,
                cfg.ga.population * cfg.ga.generations);

    circuits::OtaProblem problem{circuits::OtaConfig{}};
    moo::WbgaConfig ga = cfg.ga;
    const moo::Wbga optimiser(problem, ga);
    Rng rng(cfg.seed);
    const util::TickNs t0 = util::now_ns();
    const moo::WbgaResult result = optimiser.run(rng);
    const double ga_seconds = util::seconds_since(t0);

    std::size_t failed = 0;
    std::vector<double> gains, pms;
    for (const auto& e : result.archive) {
        if (moo::evaluation_failed(e.objectives)) {
            ++failed;
            continue;
        }
        gains.push_back(e.objectives[0]);
        pms.push_back(e.objectives[1]);
    }
    const auto front = core::extract_front_indices(result);

    const auto gs = mc::summarize(gains);
    const auto ps = mc::summarize(pms);
    TextTable t({"quantity", "paper", "measured"});
    t.add_row({"evaluated individuals", "10000", std::to_string(result.evaluations)});
    t.add_row({"failed evaluations", "n/a", std::to_string(failed)});
    t.add_row({"pareto-optimal points", "1022", std::to_string(front.size())});
    t.add_row({"gain cloud range (dB)", "~44-52 (fig 7)",
               benchx::fmt2(gs.min) + " - " + benchx::fmt2(gs.max)});
    t.add_row({"pm cloud range (deg)", "~55-90 (fig 7)",
               benchx::fmt2(ps.min) + " - " + benchx::fmt2(ps.max)});
    t.add_row({"optimisation wall clock (s)", "14400 (4 h, Table 5)",
               benchx::fmt2(ga_seconds)});
    std::printf("%s", t.to_string().c_str());

    // The front itself, decimated to ~15 rows for the log.
    std::printf("\nPareto front (decimated):\n");
    TextTable f({"idx", "gain (dB)", "pm (deg)"});
    const std::size_t step = std::max<std::size_t>(1, front.size() / 15);
    for (std::size_t k = 0; k < front.size(); k += step) {
        const auto& e = result.archive[front[k]];
        f.add_row({std::to_string(k), benchx::fmt2(e.objectives[0]),
                   benchx::fmt2(e.objectives[1])});
    }
    std::printf("%s", f.to_string().c_str());
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
