// Ablation A4 - simulator kernel throughput.
//
// The flow's cost is dominated by DC Newton solves and AC sweeps of the OTA
// testbench; this binary benchmarks those kernels plus the underlying LU
// factorisation at representative sizes, so changes to the numerics are
// caught before they hit the multi-minute experiments. The chunk benchmarks
// at the bottom report the headline engine number: per-point testbench
// rebuild vs prototype-reuse batch evaluation at paper-scale chunk sizes
// (population 100), with a bit-identity cross-check between the two paths.

#include <benchmark/benchmark.h>

#include <complex>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "circuits/filter.hpp"
#include "circuits/ota.hpp"
#include "core/ota_mc.hpp"
#include "eval/engine.hpp"
#include "linalg/lu.hpp"
#include "mc/monte_carlo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "process/variation.hpp"
#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "util/rng.hpp"

using namespace ypm;

namespace {

/// Deterministic sizing chunk spanning the Table 1 box (seeded so the
/// rebuild and prototype benches see identical work).
std::vector<circuits::OtaSizing> sizing_chunk(std::size_t n) {
    Rng rng(2008);
    const auto specs = circuits::OtaSizing::parameter_specs();
    std::vector<circuits::OtaSizing> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> v;
        v.reserve(specs.size());
        for (const auto& s : specs) v.push_back(rng.uniform(s.lo, s.hi));
        out.push_back(circuits::OtaSizing::from_vector(v));
    }
    return out;
}

bool bits_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof a) == 0;
}

/// Objective vectors of the two paths must agree bit-for-bit.
bool chunk_matches_scalar(const circuits::OtaEvaluator& evaluator,
                          const std::vector<circuits::OtaSizing>& sizings) {
    const auto chunk = evaluator.measure_chunk(sizings);
    for (std::size_t i = 0; i < sizings.size(); ++i) {
        const auto scalar = evaluator.measure(sizings[i]);
        if (scalar.valid != chunk[i].valid) return false;
        if (!scalar.valid) continue;
        if (!bits_equal(scalar.gain_db, chunk[i].gain_db) ||
            !bits_equal(scalar.pm_deg, chunk[i].pm_deg))
            return false;
    }
    return true;
}

std::vector<circuits::FilterSizing> filter_sizing_chunk(std::size_t n) {
    Rng rng(42);
    std::vector<circuits::FilterSizing> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back({rng.uniform(2e-12, 60e-12), rng.uniform(2e-12, 60e-12),
                       rng.uniform(2e-12, 60e-12)});
    return out;
}

bool filter_chunk_matches_scalar(
    const circuits::FilterEvaluator& evaluator,
    const std::vector<circuits::FilterSizing>& sizings,
    circuits::OtaModelKind kind) {
    const auto chunk = evaluator.measure_chunk(sizings, kind);
    for (std::size_t i = 0; i < sizings.size(); ++i) {
        const auto scalar = evaluator.measure(sizings[i], kind);
        if (scalar.valid != chunk[i].valid) return false;
        if (!scalar.valid) continue;
        if (!bits_equal(scalar.fc, chunk[i].fc) ||
            !bits_equal(scalar.worst_passband_dev_db,
                        chunk[i].worst_passband_dev_db))
            return false;
    }
    return true;
}

void BM_LuFactorSolve(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(42);
    linalg::MatrixD a(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
        a(i, i) += static_cast<double>(n);
    }
    std::vector<double> b(n, 1.0);
    for (auto _ : state) {
        auto x = linalg::solve(a, b);
        benchmark::DoNotOptimize(x);
    }
    state.SetComplexityN(static_cast<long long>(n));
}
BENCHMARK(BM_LuFactorSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_LuComplexFactorSolve(benchmark::State& state) {
    using C = std::complex<double>;
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(43);
    linalg::MatrixC a(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        a(i, i) += C(static_cast<double>(n), 0.0);
    }
    std::vector<C> b(n, C(1.0, 0.0));
    for (auto _ : state) {
        auto x = linalg::solve(a, b);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_LuComplexFactorSolve)->Arg(8)->Arg(16)->Arg(32);

void BM_OtaDcOperatingPoint(benchmark::State& state) {
    const circuits::OtaConfig cfg;
    const circuits::OtaSizing sizing;
    for (auto _ : state) {
        spice::Circuit ckt = circuits::build_ota_testbench(sizing, cfg);
        const spice::DcSolver solver;
        auto op = solver.solve(ckt);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_OtaDcOperatingPoint)->Unit(benchmark::kMicrosecond);

void BM_OtaAcSweep(benchmark::State& state) {
    const circuits::OtaConfig cfg;
    const circuits::OtaSizing sizing;
    spice::Circuit ckt = circuits::build_ota_testbench(sizing, cfg);
    const spice::DcSolver solver;
    const auto op = solver.solve(ckt);
    const auto freqs = spice::log_sweep(cfg.f_start, cfg.f_stop,
                                        cfg.points_per_decade);
    for (auto _ : state) {
        auto ac = spice::run_ac(ckt, op.solution, freqs);
        benchmark::DoNotOptimize(ac);
    }
    state.counters["freq_points"] = static_cast<double>(freqs.size());
}
BENCHMARK(BM_OtaAcSweep)->Unit(benchmark::kMillisecond);

void BM_OtaFullMeasurement(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const circuits::OtaSizing sizing;
    for (auto _ : state) {
        auto perf = evaluator.measure(sizing);
        benchmark::DoNotOptimize(perf);
    }
}
BENCHMARK(BM_OtaFullMeasurement)->Unit(benchmark::kMillisecond);

void BM_CircuitConstruction(benchmark::State& state) {
    const circuits::OtaConfig cfg;
    const circuits::OtaSizing sizing;
    for (auto _ : state) {
        auto ckt = circuits::build_ota_testbench(sizing, cfg);
        benchmark::DoNotOptimize(ckt);
    }
}
BENCHMARK(BM_CircuitConstruction)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------ chunk kernel comparison
//
// The headline pair: the same chunk of random sizings measured by
// rebuilding the full testbench per point (the scalar OtaEvaluator::measure
// path) vs through one shared CircuitPrototype (measure_chunk). Identical
// work, bit-identical objective vectors; `points_per_second` is the
// throughput to compare.

void BM_OtaChunkRebuildPerPoint(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const auto sizings = sizing_chunk(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        for (const auto& s : sizings) {
            auto perf = evaluator.measure(s);
            benchmark::DoNotOptimize(perf);
        }
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
    state.counters["points_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OtaChunkRebuildPerPoint)
    ->Arg(16)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_OtaChunkPrototypeReuse(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const auto sizings = sizing_chunk(static_cast<std::size_t>(state.range(0)));
    if (!chunk_matches_scalar(evaluator, sizings)) {
        state.SkipWithError("prototype-reuse results diverge from scalar path");
        return;
    }
    for (auto _ : state) {
        auto perfs = evaluator.measure_chunk(sizings);
        benchmark::DoNotOptimize(perfs);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
    state.counters["points_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OtaChunkPrototypeReuse)
    ->Arg(16)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Gate: disabled-mode observability is a no-op. The same chunk work as
// BM_OtaChunkPrototypeReuse plus exactly the instrumentation pattern the
// engine dispatch path runs per chunk - a disarmed obs::Span (one relaxed
// load and a branch), the guarded instant-event check, and the always-on
// per-chunk counter bump. The bench-smoke CI job asserts the throughput
// ratio against the uninstrumented twin stays >= 0.98.
void BM_OtaChunkObsDisabledOverhead(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const auto sizings = sizing_chunk(static_cast<std::size_t>(state.range(0)));
    obs::Counter& chunks =
        obs::MetricsRegistry::global().counter("bench.obs_overhead.chunks");
    for (auto _ : state) {
        obs::Span span("bench.chunk", "bench");
        auto perfs = evaluator.measure_chunk(sizings);
        span.arg("points", static_cast<double>(perfs.size()));
        if (obs::Tracer::enabled())
            obs::Tracer::instant("bench.tick", "bench",
                                 {{"points", static_cast<double>(perfs.size())}});
        chunks.add();
        benchmark::DoNotOptimize(perfs);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
    state.counters["points_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OtaChunkObsDisabledOverhead)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_FilterChunkRebuildPerPoint(benchmark::State& state) {
    const circuits::FilterEvaluator evaluator{circuits::FilterConfig{},
                                              circuits::FilterSpecMask{}};
    const auto sizings =
        filter_sizing_chunk(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        for (const auto& s : sizings) {
            auto perf = evaluator.measure(s, circuits::OtaModelKind::behavioural);
            benchmark::DoNotOptimize(perf);
        }
    }
    state.counters["points_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FilterChunkRebuildPerPoint)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_FilterChunkPrototypeReuse(benchmark::State& state) {
    const circuits::FilterEvaluator evaluator{circuits::FilterConfig{},
                                              circuits::FilterSpecMask{}};
    const auto sizings =
        filter_sizing_chunk(static_cast<std::size_t>(state.range(0)));
    if (!filter_chunk_matches_scalar(evaluator, sizings,
                                     circuits::OtaModelKind::behavioural)) {
        state.SkipWithError("prototype-reuse results diverge from scalar path");
        return;
    }
    for (auto _ : state) {
        auto perfs =
            evaluator.measure_chunk(sizings, circuits::OtaModelKind::behavioural);
        benchmark::DoNotOptimize(perfs);
    }
    state.counters["points_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FilterChunkPrototypeReuse)->Arg(30)->Unit(benchmark::kMillisecond);

// ------------------------------------------- overlapped Monte Carlo stages
//
// The flow's step 4 runs, per Pareto point, a nominal Bode measurement, a
// Monte Carlo stage and the variation statistics. The blocking engine
// barriers between points: the pool drains, stragglers of the last chunk
// run alone, the serial Bode/stats work keeps the workers idle, then the
// next point starts from scratch. The async path submits every point's
// Bode batch and MC run up front and retires them in order, so chunks from
// all points stream onto the pool while the retiring thread does the
// serial work. Results are bit-identical (pre-checked once below).

constexpr std::size_t kMcParetoPoints = 6;
constexpr std::uint64_t kBodeBenchTag = 0x626f6465; // flow's nominal tag

double consume_variation(const mc::McResult& result) {
    const auto gain_var = result.column_variation(0);
    const auto pm_var = result.column_variation(1);
    return gain_var.delta_3sigma_pct + pm_var.delta_3sigma_pct;
}

eval::KernelFn bode_kernel(const circuits::OtaEvaluator& evaluator) {
    return [&evaluator](const eval::EvalRequest& request) {
        const auto perf =
            evaluator.measure(circuits::OtaSizing::from_vector(request.params));
        if (!perf.valid)
            return std::vector<double>(4,
                                       std::numeric_limits<double>::quiet_NaN());
        return std::vector<double>{perf.gain_db, perf.pm_deg, perf.bode.f3db,
                                   perf.bode.gbw};
    };
}

struct PointOutcome {
    std::vector<double> bode;
    mc::McResult mc;
};

/// One full blocking pass over all points (the flow's step 4, point by
/// point): Bode batch, MC run, stats.
std::vector<PointOutcome>
run_points_blocking(eval::Engine& engine, const circuits::OtaEvaluator& evaluator,
                    const process::ProcessSampler& sampler,
                    const std::vector<circuits::OtaSizing>& sizings,
                    std::size_t samples, Rng& rng, double& sink) {
    const eval::KernelFn bode = bode_kernel(evaluator);
    std::vector<PointOutcome> out;
    out.reserve(sizings.size());
    for (const auto& s : sizings) {
        PointOutcome point;
        eval::EvalBatch bode_batch(kBodeBenchTag);
        bode_batch.add(s.to_vector());
        point.bode =
            engine.evaluate(std::move(bode_batch), bode).front().values;
        point.mc = core::run_ota_monte_carlo(engine, evaluator, s, sampler,
                                             samples, rng);
        sink += consume_variation(point.mc);
        out.push_back(std::move(point));
    }
    return out;
}

/// The same pass overlapped: all Bode batches and MC runs in flight before
/// the first retirement.
std::vector<PointOutcome>
run_points_async(eval::Engine& engine, const circuits::OtaEvaluator& evaluator,
                 const process::ProcessSampler& sampler,
                 const std::vector<circuits::OtaSizing>& sizings,
                 std::size_t samples, Rng& rng, double& sink) {
    const eval::KernelFn bode = bode_kernel(evaluator);
    std::vector<eval::Engine::Ticket> bode_tickets;
    std::vector<mc::McTicket> mc_tickets;
    bode_tickets.reserve(sizings.size());
    mc_tickets.reserve(sizings.size());
    for (const auto& s : sizings) {
        eval::EvalBatch bode_batch(kBodeBenchTag);
        bode_batch.add(s.to_vector());
        bode_tickets.push_back(engine.submit(std::move(bode_batch), bode));
        mc_tickets.push_back(core::submit_ota_monte_carlo(
            engine, evaluator, s, sampler, samples, rng));
    }
    std::vector<PointOutcome> out;
    out.reserve(sizings.size());
    for (std::size_t p = 0; p < sizings.size(); ++p) {
        PointOutcome point;
        point.bode = engine.wait(std::move(bode_tickets[p])).front().values;
        point.mc = mc::wait_monte_carlo(engine, std::move(mc_tickets[p]));
        sink += consume_variation(point.mc);
        out.push_back(std::move(point));
    }
    return out;
}

bool rows_bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
    if (a.size() != b.size()) return false;
    return a.empty() ||
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Bit-identity cross-check, run once per process: the overlapped pass
/// must reproduce the blocking pass result-for-result (re-running it per
/// benchmark repetition would only add untimed wall-clock to CI).
bool async_mc_matches_blocking_once(std::size_t samples) {
    static const std::size_t checked_samples = samples;
    static const bool matches = [] {
        const circuits::OtaEvaluator evaluator;
        const process::ProcessSampler sampler(evaluator.config().card,
                                              process::VariationSpec::c35());
        const auto sizings = sizing_chunk(kMcParetoPoints);
        eval::EngineConfig cfg;
        cfg.cache_capacity = 0;
        eval::Engine blocking(cfg), async(cfg);
        Rng rb(2008), ra(2008);
        double sink_b = 0.0, sink_a = 0.0;
        const auto b = run_points_blocking(blocking, evaluator, sampler, sizings,
                                           checked_samples, rb, sink_b);
        const auto a = run_points_async(async, evaluator, sampler, sizings,
                                        checked_samples, ra, sink_a);
        for (std::size_t p = 0; p < sizings.size(); ++p) {
            if (!rows_bits_equal(a[p].bode, b[p].bode)) return false;
            if (a[p].mc.rows.size() != b[p].mc.rows.size()) return false;
            for (std::size_t i = 0; i < a[p].mc.rows.size(); ++i)
                if (!rows_bits_equal(a[p].mc.rows[i], b[p].mc.rows[i]))
                    return false;
        }
        return true;
    }();
    return samples == checked_samples && matches;
}

void BM_OtaMcParetoPointsBlocking(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    const auto sizings = sizing_chunk(kMcParetoPoints);
    const auto samples = static_cast<std::size_t>(state.range(0));
    eval::EngineConfig cfg;
    cfg.cache_capacity = 0;
    for (auto _ : state) {
        eval::Engine engine(cfg);
        Rng rng(2008);
        double sink = 0.0;
        auto outcomes = run_points_blocking(engine, evaluator, sampler, sizings,
                                            samples, rng, sink);
        benchmark::DoNotOptimize(outcomes);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(kMcParetoPoints) *
                            state.range(0));
    state.counters["samples_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(kMcParetoPoints) *
            static_cast<double>(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OtaMcParetoPointsBlocking)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

void BM_OtaMcParetoPointsAsync(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    const auto sizings = sizing_chunk(kMcParetoPoints);
    const auto samples = static_cast<std::size_t>(state.range(0));
    if (!async_mc_matches_blocking_once(samples)) {
        state.SkipWithError("overlapped MC results diverge from blocking engine");
        return;
    }
    eval::EngineConfig cfg;
    cfg.cache_capacity = 0;
    for (auto _ : state) {
        eval::Engine engine(cfg);
        Rng rng(2008);
        double sink = 0.0;
        auto outcomes = run_points_async(engine, evaluator, sampler, sizings,
                                         samples, rng, sink);
        benchmark::DoNotOptimize(outcomes);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(kMcParetoPoints) *
                            state.range(0));
    state.counters["samples_per_second"] = benchmark::Counter(
        static_cast<double>(state.iterations()) *
            static_cast<double>(kMcParetoPoints) *
            static_cast<double>(state.range(0)),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OtaMcParetoPointsAsync)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

} // namespace

BENCHMARK_MAIN();
