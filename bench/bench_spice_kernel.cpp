// Ablation A4 - simulator kernel throughput.
//
// The flow's cost is dominated by DC Newton solves and AC sweeps of the OTA
// testbench; this binary benchmarks those kernels plus the underlying LU
// factorisation at representative sizes, so changes to the numerics are
// caught before they hit the multi-minute experiments.

#include <benchmark/benchmark.h>

#include <complex>

#include "circuits/ota.hpp"
#include "linalg/lu.hpp"
#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "util/rng.hpp"

using namespace ypm;

namespace {

void BM_LuFactorSolve(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(42);
    linalg::MatrixD a(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
        a(i, i) += static_cast<double>(n);
    }
    std::vector<double> b(n, 1.0);
    for (auto _ : state) {
        auto x = linalg::solve(a, b);
        benchmark::DoNotOptimize(x);
    }
    state.SetComplexityN(static_cast<long long>(n));
}
BENCHMARK(BM_LuFactorSolve)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_LuComplexFactorSolve(benchmark::State& state) {
    using C = std::complex<double>;
    const auto n = static_cast<std::size_t>(state.range(0));
    Rng rng(43);
    linalg::MatrixC a(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            a(i, j) = C(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        a(i, i) += C(static_cast<double>(n), 0.0);
    }
    std::vector<C> b(n, C(1.0, 0.0));
    for (auto _ : state) {
        auto x = linalg::solve(a, b);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_LuComplexFactorSolve)->Arg(8)->Arg(16)->Arg(32);

void BM_OtaDcOperatingPoint(benchmark::State& state) {
    const circuits::OtaConfig cfg;
    const circuits::OtaSizing sizing;
    for (auto _ : state) {
        spice::Circuit ckt = circuits::build_ota_testbench(sizing, cfg);
        const spice::DcSolver solver;
        auto op = solver.solve(ckt);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_OtaDcOperatingPoint)->Unit(benchmark::kMicrosecond);

void BM_OtaAcSweep(benchmark::State& state) {
    const circuits::OtaConfig cfg;
    const circuits::OtaSizing sizing;
    spice::Circuit ckt = circuits::build_ota_testbench(sizing, cfg);
    const spice::DcSolver solver;
    const auto op = solver.solve(ckt);
    const auto freqs = spice::log_sweep(cfg.f_start, cfg.f_stop,
                                        cfg.points_per_decade);
    for (auto _ : state) {
        auto ac = spice::run_ac(ckt, op.solution, freqs);
        benchmark::DoNotOptimize(ac);
    }
    state.counters["freq_points"] = static_cast<double>(freqs.size());
}
BENCHMARK(BM_OtaAcSweep)->Unit(benchmark::kMillisecond);

void BM_OtaFullMeasurement(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const circuits::OtaSizing sizing;
    for (auto _ : state) {
        auto perf = evaluator.measure(sizing);
        benchmark::DoNotOptimize(perf);
    }
}
BENCHMARK(BM_OtaFullMeasurement)->Unit(benchmark::kMillisecond);

void BM_CircuitConstruction(benchmark::State& state) {
    const circuits::OtaConfig cfg;
    const circuits::OtaSizing sizing;
    for (auto _ : state) {
        auto ckt = circuits::build_ota_testbench(sizing, cfg);
        benchmark::DoNotOptimize(ckt);
    }
}
BENCHMARK(BM_CircuitConstruction)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
