// Ablation A1 - interpolation degree for the table models.
//
// The paper chooses cubic splines ("3E") "to maximise accuracy" (section
// 2.2). This ablation quantifies that choice: the performance table is
// downsampled, reconstructed with degree-1/2/3 interpolants, and the
// reconstruction error against the held-out points is reported, plus
// lookup-speed benchmarks per degree.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "table/table_model.hpp"
#include "util/text_table.hpp"

using namespace ypm;

namespace {

std::vector<core::FrontPointData> g_front;

table::TableModel1d build_model(int degree, int stride) {
    std::vector<double> xs, ys;
    for (std::size_t i = 0; i < g_front.size(); i += stride) {
        xs.push_back(g_front[i].gain_db);
        ys.push_back(g_front[i].pm_deg);
    }
    const std::string control = std::to_string(degree) + "C";
    return table::TableModel1d(std::move(xs), std::move(ys),
                               table::ControlString(control));
}

void BM_Lookup(benchmark::State& state) {
    const auto model = build_model(static_cast<int>(state.range(0)), 2);
    const double lo = model.x_min();
    const double hi = model.x_max();
    double x = lo;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.eval(x));
        x += (hi - lo) / 64.0;
        if (x > hi) x = lo;
    }
    state.SetLabel("degree " + std::to_string(state.range(0)));
}
BENCHMARK(BM_Lookup)->Arg(1)->Arg(2)->Arg(3)->Unit(benchmark::kNanosecond);

void experiment() {
    std::printf("\n=== A1: interpolation degree ablation (paper section 2.2) ===\n");
    if (g_front.size() < 8) {
        std::printf("front too small for the ablation\n");
        return;
    }

    TextTable t({"degree", "held-out RMS error (deg)", "max error (deg)"});
    for (int degree : {1, 2, 3}) {
        const auto model = build_model(degree, 2); // even points build...
        double sse = 0.0, worst = 0.0;
        std::size_t n = 0;
        for (std::size_t i = 1; i < g_front.size(); i += 2) { // ...odd held out
            const double x = g_front[i].gain_db;
            if (x < model.x_min() || x > model.x_max()) continue;
            const double err = std::fabs(model.eval(x) - g_front[i].pm_deg);
            sse += err * err;
            worst = std::max(worst, err);
            ++n;
        }
        const double rms = n > 0 ? std::sqrt(sse / static_cast<double>(n)) : 0.0;
        t.add_row({std::to_string(degree), benchx::fmt3(rms), benchx::fmt3(worst)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("\npaper picks cubic (degree 3) for accuracy; degree 1/2 rows "
                "show what that buys on this front.\n");
}

} // namespace

int main(int argc, char** argv) {
    g_front = benchx::load_or_build_front();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
