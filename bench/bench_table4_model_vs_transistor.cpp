// Experiment E4 - paper Table 4: "Performance comparison".
//
// The behavioural model proposes a sizing for the Table 3 spec; that exact
// sizing is then simulated at transistor level and the percentage error
// between the model's prediction and the simulation is reported (paper:
// 0.93 % gain error, 1.03 % PM error). Also runs the paper's 500-sample MC
// yield verification against the *original* requirement.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/behav_model.hpp"
#include "core/verify.hpp"
#include "util/text_table.hpp"

using namespace ypm;

namespace {

std::vector<core::FrontPointData> g_front;

void BM_TransistorVerification(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const circuits::OtaSizing sizing;
    for (auto _ : state) {
        auto perf = evaluator.measure(sizing);
        benchmark::DoNotOptimize(perf);
    }
}
BENCHMARK(BM_TransistorVerification)->Unit(benchmark::kMillisecond);

void experiment() {
    std::printf("\n=== E4 / Table 4: behavioural model vs transistor level ===\n");
    const core::BehaviouralModel model(g_front);

    double req_gain = 50.0, req_pm = 74.0;
    if (req_gain < model.gain_min() || req_gain > model.gain_max() ||
        req_pm < model.pm_min() || req_pm > model.pm_max()) {
        req_gain = model.gain_min() + 0.4 * (model.gain_max() - model.gain_min());
        req_pm = model.pm_min() + 0.3 * (model.pm_max() - model.pm_min());
        std::printf("note: using interior spec (%.2f dB, %.2f deg)\n", req_gain,
                    req_pm);
    }
    const core::SizingResult sized = model.size_for_spec(req_gain, req_pm);

    const circuits::OtaEvaluator evaluator;
    const core::ModelVsTransistor cmp =
        core::compare_model_vs_transistor(evaluator, sized);

    TextTable t({"Performance", "Transistor model", "Behavioural model", "% error",
                 "paper % error"});
    t.add_row({"Gain (dB)", benchx::fmt2(cmp.transistor_gain_db),
               benchx::fmt2(cmp.model_gain_db), benchx::fmt2(cmp.gain_error_pct),
               "0.93"});
    t.add_row({"Phase margin (deg)", benchx::fmt2(cmp.transistor_pm_deg),
               benchx::fmt2(cmp.model_pm_deg), benchx::fmt2(cmp.pm_error_pct),
               "1.03"});
    std::printf("%s", t.to_string().c_str());

    // Paper section 4.4: 500-sample MC verified 100 % yield at the original
    // requirement.
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    Rng rng(500);
    const core::YieldVerification v = core::verify_ota_yield(
        evaluator, sized.sizing, sampler, req_gain, req_pm, 500, rng);
    TextTable y({"quantity", "paper", "measured"});
    y.add_row({"MC samples", "500", std::to_string(v.yield.samples)});
    y.add_row({"yield", "100%", benchx::fmt2(v.yield.yield * 100.0) + "%"});
    y.add_row({"yield 95% CI low", "n/a", benchx::fmt2(v.yield.ci_low * 100.0) + "%"});
    y.add_row({"gain spread 3s/mean (%)", "~0.51",
               benchx::fmt2(v.gain_variation.delta_3sigma_pct)});
    y.add_row({"pm spread 3s/mean (%)", "~1.71",
               benchx::fmt2(v.pm_variation.delta_3sigma_pct)});
    std::printf("\n%s", y.to_string().c_str());
}

} // namespace

int main(int argc, char** argv) {
    g_front = benchx::load_or_build_front();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
