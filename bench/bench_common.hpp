#pragma once
/// \file bench_common.hpp
/// \brief Shared experiment plumbing for the per-table/figure bench
///        binaries: a cached paper-scale flow run (WBGA 100x100 + per-point
///        Monte Carlo) so the E2/E3/E4/E6 binaries do not redo the same
///        work, plus small formatting helpers.
///
/// Environment knobs:
///   YPM_BENCH_POP        population size          (default 100, paper value)
///   YPM_BENCH_GENS       generations              (default 100, paper value)
///   YPM_BENCH_MC         MC samples per point     (default 200, paper value)
///   YPM_BENCH_MC_POINTS  front points given MC    (default 200; 0 = all,
///                        the paper runs all ~1022 - slower)
///   YPM_BENCH_DIR        artifact cache directory (default ypm_bench_artifacts)

#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/behav_model.hpp"
#include "core/flow.hpp"
#include "eval/engine.hpp"
#include "util/clock.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace ypm::benchx {

inline std::size_t env_size(const char* name, std::size_t fallback) {
    // Read before any bench thread starts; nothing in the process calls
    // setenv, so the getenv race clang-tidy guards against cannot occur.
    const char* v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr || *v == '\0') return fallback;
    return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

inline std::string artifact_dir() {
    // Same single-threaded startup context as env_size above.
    const char* v = std::getenv("YPM_BENCH_DIR"); // NOLINT(concurrency-mt-unsafe)
    return v != nullptr && *v != '\0' ? v : "ypm_bench_artifacts";
}

inline core::FlowConfig paper_flow_config() {
    core::FlowConfig cfg;
    cfg.ga.population = env_size("YPM_BENCH_POP", 100);
    cfg.ga.generations = env_size("YPM_BENCH_GENS", 100);
    cfg.mc_samples = env_size("YPM_BENCH_MC", 200);
    cfg.max_mc_points = env_size("YPM_BENCH_MC_POINTS", 200);
    cfg.seed = 2008; // DATE'08
    cfg.artifact_dir = artifact_dir();
    return cfg;
}

/// Artifact paths as written by a previous bench run in this directory.
inline core::ModelArtifacts cached_artifacts() {
    namespace fs = std::filesystem;
    const std::string dir = artifact_dir();
    core::ModelArtifacts art;
    art.dir = dir;
    art.gain_delta_tbl = (fs::path(dir) / "gain_delta.tbl").string();
    art.pm_delta_tbl = (fs::path(dir) / "pm_delta.tbl").string();
    for (int i = 1; i <= 8; ++i)
        art.param_tbls.push_back(
            (fs::path(dir) / ("lp" + std::to_string(i) + "_data.tbl")).string());
    art.f3db_tbl = (fs::path(dir) / "lp_f3db.tbl").string();
    art.front_csv = (fs::path(dir) / "pareto_front.csv").string();
    art.va_module = (fs::path(dir) / "ota_yield_model.va").string();
    return art;
}

inline bool artifacts_present() {
    const auto art = cached_artifacts();
    return std::filesystem::exists(art.gain_delta_tbl) &&
           std::filesystem::exists(art.f3db_tbl) &&
           std::filesystem::exists(art.param_tbls.back());
}

/// Load the MC-enriched front from cache, or run the full flow (and cache).
inline std::vector<core::FrontPointData> load_or_build_front() {
    if (artifacts_present()) {
        log::info("bench: reusing cached artifacts in ", artifact_dir());
        return core::read_front_from_artifacts(cached_artifacts());
    }
    log::info("bench: no cache - running the full flow (WBGA + MC)");
    const core::YieldFlow flow(circuits::OtaConfig{}, paper_flow_config());
    return flow.run().front;
}

inline std::string fmt2(double v) { return str::fmt_fixed(v, 2); }
inline std::string fmt3(double v) { return str::fmt_fixed(v, 3); }

/// One-line summary of an engine ledger for the CPU-time tables:
/// "requests (kernel evaluations, cache hits, failures)".
inline std::string fmt_counters(const eval::EngineCounters& c) {
    return std::to_string(c.requests) + " (" + std::to_string(c.evaluations) +
           " evaluated, " + std::to_string(c.cache_hits) + " cached, " +
           std::to_string(c.failures) + " failed)";
}

} // namespace ypm::benchx
