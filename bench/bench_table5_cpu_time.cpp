// Experiment E5 - paper Table 5: "Design parameter summary" plus the
// headline speed claim.
//
// Reports the run-parameter summary (generations, evaluation samples,
// Pareto points, wall clock) for a fresh flow run, then quantifies the
// hierarchical-reuse speedup: once the model exists, evaluating a candidate
// design through the behavioural macromodel versus a full transistor-level
// simulation (the "conventional simulation based approach").

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "circuits/filter.hpp"
#include "core/flow.hpp"
#include "util/text_table.hpp"

using namespace ypm;

namespace {

void BM_FilterEval_Behavioural(benchmark::State& state) {
    const circuits::FilterEvaluator ev{circuits::FilterConfig{},
                                       circuits::FilterSpecMask{}};
    const circuits::FilterSizing sizing;
    for (auto _ : state) {
        auto perf = ev.measure(sizing, circuits::OtaModelKind::behavioural);
        benchmark::DoNotOptimize(perf);
    }
}
BENCHMARK(BM_FilterEval_Behavioural)->Unit(benchmark::kMillisecond);

void BM_FilterEval_Transistor(benchmark::State& state) {
    const circuits::FilterEvaluator ev{circuits::FilterConfig{},
                                       circuits::FilterSpecMask{}};
    const circuits::FilterSizing sizing;
    for (auto _ : state) {
        auto perf = ev.measure(sizing, circuits::OtaModelKind::transistor);
        benchmark::DoNotOptimize(perf);
    }
}
BENCHMARK(BM_FilterEval_Transistor)->Unit(benchmark::kMillisecond);

double time_filter_eval(circuits::OtaModelKind kind, int reps) {
    const circuits::FilterEvaluator ev{circuits::FilterConfig{},
                                       circuits::FilterSpecMask{}};
    const circuits::FilterSizing sizing;
    const util::TickNs t0 = util::now_ns();
    for (int i = 0; i < reps; ++i) {
        auto perf = ev.measure(sizing, kind);
        benchmark::DoNotOptimize(perf);
    }
    return util::seconds_since(t0) / reps;
}

void experiment() {
    std::printf("\n=== E5 / Table 5: design parameter summary & CPU time ===\n");

    // Fresh flow run with timing (also refreshes the artifact cache).
    auto cfg = benchx::paper_flow_config();
    const core::YieldFlow flow(circuits::OtaConfig{}, cfg);
    const core::FlowResult result = flow.run();

    TextTable t({"Parameter", "paper (Table 5)", "measured"});
    t.add_row({"No. generations", "100", std::to_string(cfg.ga.generations)});
    t.add_row({"Evaluation samples", "10,000",
               std::to_string(result.optimisation.evaluations)});
    t.add_row({"Pareto points", "1022", std::to_string(result.pareto_indices.size())});
    t.add_row({"MC-modelled points", "1022 (all)", std::to_string(result.front.size())});
    t.add_row({"MC samples per point", "200", std::to_string(cfg.mc_samples)});
    t.add_row({"optimisation time (s)", "14,400 (4 h on 1.2 GHz Sparc 3)",
               benchx::fmt2(result.timings.moo_seconds)});
    t.add_row({"variation model time (s)", "n/a",
               benchx::fmt2(result.timings.mc_seconds)});
    t.add_row({"total flow time (s)", "n/a",
               benchx::fmt2(result.timings.total_seconds)});
    // The unified engine's ledger: every testbench evaluation of the flow
    // (GA + nominal re-measures + MC) goes through one instance, so this is
    // the authoritative evaluation count behind the wall-clock numbers.
    t.add_row({"engine evaluations", "n/a",
               benchx::fmt_counters(result.timings.engine)});
    t.add_row({"engine eval wall time (s)", "n/a",
               benchx::fmt2(result.timings.engine.wall_seconds)});
    std::printf("%s", t.to_string().c_str());

    // Hierarchical reuse: the paper's claim is that *after* the one-off
    // model build, designs using the OTA simulate in a fraction of the
    // conventional time.
    const double behav_s = time_filter_eval(circuits::OtaModelKind::behavioural, 20);
    const double trans_s = time_filter_eval(circuits::OtaModelKind::transistor, 20);
    TextTable s({"filter candidate evaluation", "ms", "speedup"});
    s.add_row({"transistor-level (conventional)", benchx::fmt3(trans_s * 1e3), "1.0x"});
    s.add_row({"behavioural macromodel", benchx::fmt3(behav_s * 1e3),
               benchx::fmt2(trans_s / behav_s) + "x"});
    std::printf("\n%s", s.to_string().c_str());
    std::printf("\npaper: model-based optimisation 4 h vs 7 h previously reported "
                "for the same circuit [5] (1.75x); plus per-design reuse wins.\n");
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
