// Experiment E7 - paper Figures 9-11 / section 5: the hierarchical filter
// application.
//
// The OTA macromodel (sized by the behavioural model for gain >= 50 dB,
// PM >= 60 deg like the paper) drives a 2nd-order low-pass filter; a WBGA
// with 30 individuals x 40 generations optimises C1-C3 against the
// anti-aliasing mask (Fig. 10); the winning design's response is printed
// (Fig. 11) and verified with a 500-sample Monte Carlo (paper: 100 % yield).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "circuits/filter.hpp"
#include "circuits/filter_problem.hpp"
#include "core/behav_model.hpp"
#include "moo/pareto.hpp"
#include "moo/wbga.hpp"
#include "util/text_table.hpp"
#include "util/units.hpp"

using namespace ypm;

namespace {

std::vector<core::FrontPointData> g_front;

void BM_FilterMooGeneration(benchmark::State& state) {
    circuits::FilterProblem problem{circuits::FilterConfig{},
                                    circuits::FilterSpecMask{}};
    moo::WbgaConfig cfg;
    cfg.population = 30;
    cfg.generations = 1;
    const moo::Wbga opt(problem, cfg);
    std::uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed++);
        auto res = opt.run(rng);
        benchmark::DoNotOptimize(res);
    }
}
BENCHMARK(BM_FilterMooGeneration)->Unit(benchmark::kMillisecond);

void experiment() {
    std::printf("\n=== E7 / Figures 9-11: 2nd-order low-pass filter application ===\n");

    // Step 1: size the OTA for the paper's spec (gain >= 50 dB, PM >= 60 deg)
    // through the behavioural model.
    const core::BehaviouralModel model(g_front);
    double req_gain = 50.0, req_pm = 60.0;
    if (req_gain < model.gain_min() || req_gain > model.gain_max())
        req_gain = model.gain_min() + 0.4 * (model.gain_max() - model.gain_min());
    if (req_pm < model.pm_min() || req_pm > model.pm_max())
        req_pm = model.pm_min() + 0.3 * (model.pm_max() - model.pm_min());
    const core::SizingResult sized = model.size_for_spec(req_gain, req_pm);
    std::printf("OTA spec: gain >= %.2f dB, pm >= %.2f deg -> macromodel gain "
                "%.2f dB, f3db %s Hz\n",
                req_gain, req_pm, sized.predicted_gain_db,
                units::format_eng(sized.f3db, 3).c_str());

    circuits::FilterConfig fcfg;
    fcfg.ota_spec = model.macromodel_spec(sized);
    fcfg.ota_sizing = sized.sizing;
    const circuits::FilterSpecMask mask;

    // Step 2: MOO on C1-C3 (paper: 30 individuals, 40 generations).
    circuits::FilterProblem problem{fcfg, mask};
    moo::WbgaConfig ga;
    ga.population = 30;
    ga.generations = 40;
    const moo::Wbga opt(problem, ga);
    Rng rng(2008);
    const auto result = opt.run(rng);
    std::printf("filter MOO: %zu evaluations (paper: 30 x 40 = 1200)\n",
                result.evaluations);

    // Pick the best mask-satisfying design from the archive.
    const circuits::FilterEvaluator evaluator{fcfg, mask};
    double best_err = 1e18;
    circuits::FilterSizing best{};
    bool found = false;
    for (const auto& e : result.archive) {
        if (moo::evaluation_failed(e.objectives)) continue;
        const auto sizing = circuits::FilterSizing::from_vector(e.params);
        const auto perf = evaluator.measure(sizing, circuits::OtaModelKind::behavioural);
        if (!perf.meets(mask)) continue;
        if (e.objectives[0] < best_err) {
            best_err = e.objectives[0];
            best = sizing;
            found = true;
        }
    }
    if (!found) {
        // Fall back to the lowest cutoff error even if the mask is missed.
        for (const auto& e : result.archive) {
            if (moo::evaluation_failed(e.objectives)) continue;
            if (e.objectives[0] < best_err) {
                best_err = e.objectives[0];
                best = circuits::FilterSizing::from_vector(e.params);
            }
        }
        std::printf("warning: no archive design met the full mask; using best "
                    "cutoff match\n");
    }
    std::printf("chosen capacitors: C1=%sF C2=%sF C3=%sF\n",
                units::format_eng(best.c1, 3).c_str(),
                units::format_eng(best.c2, 3).c_str(),
                units::format_eng(best.c3, 3).c_str());

    // Step 3: response vs the Fig. 10 mask, behavioural and transistor.
    const auto perf_b = evaluator.measure(best, circuits::OtaModelKind::behavioural);
    const auto perf_t = evaluator.measure(best, circuits::OtaModelKind::transistor);
    TextTable t({"metric", "mask", "behavioural", "transistor"});
    t.add_row({"passband gain (dB)", "0 +/- " + benchx::fmt2(mask.passband_ripple_db),
               benchx::fmt2(perf_b.passband_gain_db),
               benchx::fmt2(perf_t.passband_gain_db)});
    t.add_row({"worst passband dev (dB)", "<= " + benchx::fmt2(mask.passband_ripple_db),
               benchx::fmt2(perf_b.worst_passband_dev_db),
               benchx::fmt2(perf_t.worst_passband_dev_db)});
    t.add_row({"cutoff fc (Hz)",
               units::format_eng(mask.fc_target, 3) + " +/- " +
                   std::to_string(static_cast<int>(mask.fc_tolerance * 100)) + "%",
               units::format_eng(perf_b.fc, 3), units::format_eng(perf_t.fc, 3)});
    t.add_row({"atten @ " + units::format_eng(mask.f_stop, 2) + "Hz (dB)",
               ">= " + benchx::fmt2(mask.min_stop_atten_db),
               benchx::fmt2(perf_b.stopband_atten_db),
               benchx::fmt2(perf_t.stopband_atten_db)});
    t.add_row({"meets mask", "yes", perf_b.meets(mask) ? "yes" : "no",
               perf_t.meets(mask) ? "yes" : "no"});
    std::printf("%s", t.to_string().c_str());

    // Fig. 11 series (decimated).
    const auto resp = evaluator.ac_response(best, circuits::OtaModelKind::behavioural);
    const auto mag = spice::magnitude_db(resp.h);
    std::printf("\nfilter response (behavioural, decimated):\n");
    TextTable r({"freq (Hz)", "gain (dB)"});
    for (std::size_t i = 0; i < resp.freqs.size(); i += 8)
        r.add_row({units::format_eng(resp.freqs[i], 3), benchx::fmt2(mag[i])});
    std::printf("%s", r.to_string().c_str());

    // Step 4: 500-sample MC yield (paper: 100 %).
    circuits::FilterVariation var;
    var.gain_delta_pct = sized.variation_gain_pct;
    var.pm_delta_pct = sized.variation_pm_pct;
    Rng mc_rng(500);
    const auto yield = filter_yield_behavioural(evaluator, best, var, 500, mc_rng);
    std::printf("\nMC yield over %zu samples: %.2f%% (95%% CI low %.2f%%)  "
                "[paper: 100%% at 500 samples]\n",
                yield.samples, yield.yield * 100.0, yield.ci_low * 100.0);
}

} // namespace

int main(int argc, char** argv) {
    g_front = benchx::load_or_build_front();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
