// Estimator-zoo benchmark matrix: every registered yield estimator
// (yield::EstimatorRegistry) runs over every registered scenario
// (yield::scenario_names), one benchmark per {estimator} x {scenario} cell,
// and every cell appends one row to <YPM_BENCH_DIR>/yield_matrix.csv:
//
//   estimator,scenario,samples,pilot_samples,total_samples,reached_target,
//   yield,ci_low,ci_high,ci_half_width,ess,ess_per_sample,max_weight_share,
//   refits,merged_components,components,wall_ms
//
// scripts/check_matrix.py gates the per-column floors on this artifact in
// the bench-matrix CI job (IS family vs plain MC on rare_ota, mixture
// family vs single shift on bimodal_ota, scale-adapted CE vs mean-only CE,
// fail-side ESS floors on each estimator's home scenario).
//
// Cells are registered dynamically (custom main below): the matrix shape
// follows the two registries, so adding an estimator or a scenario grows
// the matrix without touching this file.
//
// Environment knobs (on top of bench_common.hpp's):
//   YPM_BENCH_YIELD_TARGET  OTA-scenario CI half-width target (default 0.0035)
//   YPM_BENCH_YIELD_SIGMA   OTA spec depth in sigmas          (default 2.4)

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/engine.hpp"
#include "util/rng.hpp"
#include "yield/estimator.hpp"
#include "yield/scenarios.hpp"
#include "yield/sequential.hpp"

using namespace ypm;

namespace {

double env_double(const char* name, double fallback) {
    // Read before any bench thread starts; nothing calls setenv, so the
    // getenv race clang-tidy guards against cannot occur.
    const char* v = std::getenv(name); // NOLINT(concurrency-mt-unsafe)
    if (v == nullptr || *v == '\0') return fallback;
    return std::strtod(v, nullptr);
}

/// Scenarios are calibrated once (the OTA ones run a 512-sample MC
/// population at construction) and shared across their column's cells.
const yield::Scenario& get_scenario(const std::string& name) {
    static std::map<std::string, yield::Scenario> cache = [] {
        yield::ScenarioOptions options;
        options.target_half_width =
            env_double("YPM_BENCH_YIELD_TARGET", 0.0035);
        options.spec_depth = env_double("YPM_BENCH_YIELD_SIGMA", 2.4);
        std::map<std::string, yield::Scenario> scenarios;
        for (const std::string& n : yield::scenario_names())
            scenarios.emplace(n, yield::make_scenario(n, options));
        return scenarios;
    }();
    return cache.at(name);
}

/// Append one cell row to the matrix CSV. First write of the process
/// truncates, so a rerun replaces the artifact instead of interleaving
/// stale rows into it.
void dump_cell(const std::string& estimator, const std::string& scenario,
               const yield::SequentialYieldResult& result, double wall_ms) {
    namespace fs = std::filesystem;
    const fs::path dir = benchx::artifact_dir();
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path csv = dir / "yield_matrix.csv";
    static bool appending = false;
    std::ofstream out(csv, appending ? std::ios::app : std::ios::trunc);
    if (!out) return; // artifact only; never fail the bench on IO
    if (!appending)
        out << "estimator,scenario,samples,pilot_samples,total_samples,"
               "reached_target,yield,ci_low,ci_high,ci_half_width,ess,"
               "ess_per_sample,max_weight_share,refits,merged_components,"
               "components,wall_ms\n";
    appending = true;
    const std::size_t total = result.samples_used + result.pilot_samples;
    const double ess_per_sample =
        result.samples_used > 0
            ? result.estimate.ess / static_cast<double>(result.samples_used)
            : 0.0;
    out << estimator << ',' << scenario << ',' << result.samples_used << ','
        << result.pilot_samples << ',' << total << ','
        << (result.reached_target ? 1 : 0) << ',' << result.estimate.yield
        << ',' << result.estimate.ci_low << ',' << result.estimate.ci_high
        << ',' << result.estimate.half_width() << ',' << result.estimate.ess
        << ',' << ess_per_sample << ',' << result.estimate.max_weight_share
        << ',' << result.refinements << ',' << result.merged_components << ','
        << result.proposal.components.size() << ',' << wall_ms << '\n';
}

void run_cell(benchmark::State& state, const std::string& estimator_name,
              const std::string& scenario_name) {
    const yield::Scenario& sc = get_scenario(scenario_name);
    const auto estimator =
        yield::EstimatorRegistry::instance().create(estimator_name);
    yield::SequentialYieldResult result;
    double wall_ms = 0.0;
    for (auto _ : state) {
        eval::EngineConfig engine_config;
        engine_config.cache_capacity = 0;
        eval::Engine engine(engine_config);
        const util::TickNs t0 = util::now_ns();
        result = estimator->estimate(engine, sc.config, sc.specs, sc.factory,
                                     sc.dimension, Rng(73));
        wall_ms = util::seconds_since(t0) * 1e3;
    }
    dump_cell(estimator_name, scenario_name, result, wall_ms);
    state.counters["samples"] =
        static_cast<double>(result.samples_used + result.pilot_samples);
    state.counters["yield"] = result.estimate.yield;
    state.counters["ci_half_width"] = result.estimate.half_width();
    state.counters["ess"] = result.estimate.ess;
    state.counters["reached_target"] = result.reached_target ? 1.0 : 0.0;
}

} // namespace

int main(int argc, char** argv) {
    for (const std::string& scenario : yield::scenario_names())
        for (const std::string& estimator :
             yield::EstimatorRegistry::instance().names()) {
            const std::string name = "BM_Matrix/" + estimator + "/" + scenario;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [estimator, scenario](benchmark::State& state) {
                    run_cell(state, estimator, scenario);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
