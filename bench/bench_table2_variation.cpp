// Experiment E2 - paper Table 2: "Performance and variation values".
//
// Every Pareto point carries a 200-sample Monte Carlo variation analysis;
// the table lists design id, nominal gain, Δgain %, nominal PM and Δpm %
// for the designs around the paper's 50 dB / 75 deg region. The timed
// kernel is a single MC sample (process draw + full testbench measurement).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/ota_mc.hpp"
#include "util/text_table.hpp"

using namespace ypm;

namespace {

void BM_OneMcSample(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    const circuits::OtaSizing sizing;
    spice::Circuit proto = circuits::build_ota_testbench(sizing, evaluator.config());
    const auto geometries = proto.mos_geometries();
    Rng rng(7);
    for (auto _ : state) {
        const auto real = sampler.sample(rng, geometries);
        auto perf = evaluator.measure(sizing, real);
        benchmark::DoNotOptimize(perf);
    }
}
BENCHMARK(BM_OneMcSample)->Unit(benchmark::kMillisecond);

void experiment() {
    std::printf("\n=== E2 / Table 2: performance and variation values ===\n");
    const auto front = benchx::load_or_build_front();
    std::printf("front points with variation model: %zu "
                "(paper: 1022, MC 200 samples each)\n\n",
                front.size());

    // The paper's table shows designs around PM 73-77 deg (its front's
    // knee). Our topology lands its knee at the same PM band but a
    // different absolute gain, so the window is selected on PM; if the
    // front misses that band entirely, print a decimated overview instead.
    TextTable t({"Design", "Gain (dB)", "dGain (%)", "PM (deg)", "dPM (%)"});
    std::size_t in_window = 0;
    for (const auto& p : front) {
        if (p.pm_deg >= 72.0 && p.pm_deg <= 78.0) {
            t.add_row({std::to_string(p.design_id), benchx::fmt2(p.gain_db),
                       benchx::fmt2(p.dgain_pct), benchx::fmt2(p.pm_deg),
                       benchx::fmt2(p.dpm_pct)});
            ++in_window;
            if (in_window >= 12) break;
        }
    }
    if (in_window == 0) {
        const std::size_t step = std::max<std::size_t>(1, front.size() / 12);
        for (std::size_t k = 0; k < front.size(); k += step) {
            const auto& p = front[k];
            t.add_row({std::to_string(p.design_id), benchx::fmt2(p.gain_db),
                       benchx::fmt2(p.dgain_pct), benchx::fmt2(p.pm_deg),
                       benchx::fmt2(p.dpm_pct)});
        }
    }
    std::printf("%s", t.to_string().c_str());

    // Aggregate comparison against the paper's reported deltas, over the
    // same PM band the paper tabulates.
    double dg_min = 1e9, dg_max = -1e9, dp_min = 1e9, dp_max = -1e9;
    std::size_t band = 0;
    for (const auto& p : front) {
        if (p.pm_deg < 70.0 || p.pm_deg > 80.0) continue;
        dg_min = std::min(dg_min, p.dgain_pct);
        dg_max = std::max(dg_max, p.dgain_pct);
        dp_min = std::min(dp_min, p.dpm_pct);
        dp_max = std::max(dp_max, p.dpm_pct);
        ++band;
    }
    if (band > 0) {
        TextTable s({"quantity", "paper (Table 2)", "measured (PM 70-80 band)"});
        s.add_row({"designs in band", "10 shown", std::to_string(band)});
        s.add_row({"dGain range (%)", "0.42 - 0.52",
                   benchx::fmt2(dg_min) + " - " + benchx::fmt2(dg_max)});
        s.add_row({"dPM range (%)", "1.50 - 1.71",
                   benchx::fmt2(dp_min) + " - " + benchx::fmt2(dp_max)});
        s.add_row({"dPM > dGain", "yes", dp_max > dg_min ? "yes" : "no"});
        std::printf("\n%s", s.to_string().c_str());
    }
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
