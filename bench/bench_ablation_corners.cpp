// Ablation A5 - corner screening vs Monte Carlo.
//
// Worst-case corners are the cheap industrial pre-check (5 simulations)
// while the paper's flow runs a 200-sample MC per Pareto point. This
// ablation quantifies what the corners capture (the correlated global
// component) and what they miss (local mismatch), plus the cost ratio.
// Also prints the parameter sensitivity report at the nominal sizing.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "core/corners.hpp"
#include "core/ota_mc.hpp"
#include "core/sensitivity.hpp"
#include "util/text_table.hpp"
#include "util/units.hpp"

using namespace ypm;

namespace {

void BM_CornerSweep(benchmark::State& state) {
    const circuits::OtaEvaluator ev;
    const process::ProcessSampler sampler(ev.config().card,
                                          process::VariationSpec::c35());
    for (auto _ : state) {
        auto sweep = core::run_corner_sweep(ev, circuits::OtaSizing{}, sampler);
        benchmark::DoNotOptimize(sweep);
    }
}
BENCHMARK(BM_CornerSweep)->Unit(benchmark::kMillisecond);

void experiment() {
    std::printf("\n=== A5: corner screening vs Monte Carlo ===\n");
    const circuits::OtaEvaluator ev;
    const process::ProcessSampler sampler(ev.config().card,
                                          process::VariationSpec::c35());
    const circuits::OtaSizing sizing;

    const core::CornerSweep sweep = core::run_corner_sweep(ev, sizing, sampler);
    TextTable c({"corner", "gain (dB)", "pm (deg)"});
    for (const auto& p : sweep.points)
        c.add_row({process::to_string(p.corner), benchx::fmt2(p.gain_db),
                   benchx::fmt2(p.pm_deg)});
    std::printf("%s", c.to_string().c_str());

    Rng rng(5);
    const auto mc = core::run_ota_monte_carlo(ev, sizing, sampler, 200, rng);
    const auto gv = mc.column_variation(0);
    const auto pv = mc.column_variation(1);

    TextTable t({"method", "sims", "dGain (%)", "dPM (%)"});
    t.add_row({"5-corner half-spread", "5",
               benchx::fmt2(sweep.dgain_halfspread_pct),
               benchx::fmt2(sweep.dpm_halfspread_pct)});
    t.add_row({"MC 3sigma/mean (paper)", "200", benchx::fmt2(gv.delta_3sigma_pct),
               benchx::fmt2(pv.delta_3sigma_pct)});
    std::printf("\n%s", t.to_string().c_str());
    std::printf("\nreading: corners bracket the correlated (global) component at\n"
                "1/40th of the simulations but cannot see mismatch; the paper's\n"
                "MC-per-Pareto-point is what the variation tables need.\n");

    const core::SensitivityReport sens = core::compute_sensitivities(ev, sizing);
    TextTable s({"param", "value", "gain elasticity", "pm elasticity"});
    for (const auto& p : sens.parameters)
        s.add_row({p.name, units::format_eng(p.value, 3) + "m",
                   benchx::fmt3(p.gain_elasticity), benchx::fmt3(p.pm_elasticity)});
    std::printf("\nsensitivities at the nominal sizing (gain %.2f dB, pm %.2f deg):\n%s",
                sens.gain_db, sens.pm_deg, s.to_string().c_str());
    std::printf("dominant gain knob: %s; dominant pm knob: %s\n",
                sens.dominant_for_gain().name.c_str(),
                sens.dominant_for_pm().name.c_str());
}

} // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
