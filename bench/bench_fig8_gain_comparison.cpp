// Experiment E6 - paper Figure 8: "Open loop gain comparison".
//
// Overlays the transistor-level AC response of the sized OTA with the
// behavioural (single-pole) macromodel across frequency, printing the two
// series and the divergence frequency. The paper attributes the divergence
// above ~40 MHz to parasitic poles the behavioural model does not carry -
// the same mechanism reproduces here via the mirror-node poles.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/behav_model.hpp"
#include "spice/analysis/ac.hpp"
#include "spice/analysis/dc.hpp"
#include "spice/devices/capacitor.hpp"
#include "spice/devices/sources.hpp"
#include "util/text_table.hpp"
#include "util/units.hpp"
#include "va/behav_ota_device.hpp"

using namespace ypm;

namespace {

std::vector<core::FrontPointData> g_front;

void BM_AcSweepTransistor(benchmark::State& state) {
    const circuits::OtaEvaluator evaluator;
    const circuits::OtaSizing sizing;
    for (auto _ : state) {
        auto resp = evaluator.ac_response(sizing);
        benchmark::DoNotOptimize(resp);
    }
}
BENCHMARK(BM_AcSweepTransistor)->Unit(benchmark::kMillisecond);

/// Open-loop response of the macromodel with the same load capacitance the
/// transistor testbench carries (the rout-based dominant pole needs it).
std::vector<std::complex<double>>
macromodel_response(const va::BehaviouralOtaSpec& spec, double c_load,
                    const std::vector<double>& freqs) {
    spice::Circuit c;
    const auto inp = c.node("inp");
    const auto out = c.node("out");
    c.add<spice::VoltageSource>("vin", inp, spice::ground, 0.0, 1.0);
    c.add<va::BehaviouralOta>("ota", inp, spice::ground, out, spec);
    c.add<spice::Capacitor>("cl", out, spice::ground, c_load);
    const spice::Solution op = spice::solve_op(c);
    const spice::AcResult ac = spice::run_ac(c, op, freqs);
    return ac.transfer(out, inp);
}

void experiment() {
    std::printf("\n=== E6 / Figure 8: open-loop gain, transistor vs Verilog-A model ===\n");
    const core::BehaviouralModel model(g_front);
    const double req_gain =
        model.gain_min() + 0.4 * (model.gain_max() - model.gain_min());
    const double req_pm = model.pm_min() + 0.3 * (model.pm_max() - model.pm_min());
    const core::SizingResult sized = model.size_for_spec(req_gain, req_pm);
    const va::BehaviouralOtaSpec spec = model.macromodel_spec(sized);

    const circuits::OtaEvaluator evaluator;
    const auto trans = evaluator.ac_response(sized.sizing);
    const auto behav =
        macromodel_response(spec, evaluator.config().c_load, trans.freqs);

    TextTable t({"freq (Hz)", "transistor (dB)", "behavioural (dB)", "delta (dB)"});
    double divergence_freq = 0.0;
    const auto tmag = spice::magnitude_db(trans.h);
    const auto bmag = spice::magnitude_db(behav);
    for (std::size_t i = 0; i < trans.freqs.size(); ++i) {
        const double delta = std::fabs(tmag[i] - bmag[i]);
        if (divergence_freq == 0.0 && delta > 3.0) divergence_freq = trans.freqs[i];
        if (i % 6 == 0)
            t.add_row({units::format_eng(trans.freqs[i], 3), benchx::fmt2(tmag[i]),
                       benchx::fmt2(bmag[i]), benchx::fmt2(delta)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("\nmodels diverge by >3 dB above %s Hz "
                "(paper: divergence above 40 MHz from parasitic poles)\n",
                divergence_freq > 0.0 ? units::format_eng(divergence_freq, 3).c_str()
                                      : "never");

    const auto tb = spice::bode_metrics(trans.freqs, trans.h);
    const auto bb = spice::bode_metrics(trans.freqs, behav);
    TextTable s({"metric", "transistor", "behavioural"});
    s.add_row({"dc gain (dB)", benchx::fmt2(tb.dc_gain_db), benchx::fmt2(bb.dc_gain_db)});
    s.add_row({"f3db (Hz)", units::format_eng(tb.f3db, 3), units::format_eng(bb.f3db, 3)});
    s.add_row({"unity freq (Hz)", units::format_eng(tb.unity_freq, 3),
               units::format_eng(bb.unity_freq, 3)});
    s.add_row({"phase margin (deg)", benchx::fmt2(tb.phase_margin_deg),
               benchx::fmt2(bb.phase_margin_deg)});
    std::printf("\n%s", s.to_string().c_str());
}

} // namespace

int main(int argc, char** argv) {
    g_front = benchx::load_or_build_front();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    experiment();
    return 0;
}
