// Dedicated suite for the engine's async streaming dispatch: submit()/wait()
// must be bit-identical to evaluate() - results, cache behaviour and ledger
// counters - for all four kernel kinds, with the cache on and off; plus the
// ticket discipline (in-order retirement, out-of-order waits, error
// delivery, misuse) and the overlapped Monte Carlo entry points.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/ota_mc.hpp"
#include "eval/engine.hpp"
#include "mc/monte_carlo.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace {

using namespace ypm;
using namespace ypm::eval;

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();

std::vector<double> toy_kernel(const EvalRequest& r) {
    double sum = 0.0, prod = 1.0;
    for (double p : r.params) {
        sum += p;
        prod *= p;
    }
    return {sum + static_cast<double>(r.process_key), prod};
}

EvalBatch toy_batch(std::size_t n, double offset = 0.0) {
    EvalBatch batch;
    for (std::size_t i = 0; i < n; ++i)
        batch.add({offset + static_cast<double>(i),
                   0.5 * static_cast<double>(i)});
    return batch;
}

/// Sequence of batches covering the interesting shapes: distinct points,
/// repeats of an earlier batch (LRU hits), within-batch duplicates
/// (dedup aliases) and a NaN-failing point.
std::vector<EvalBatch> batch_sequence() {
    std::vector<EvalBatch> seq;
    seq.push_back(toy_batch(17));
    seq.push_back(toy_batch(17));      // full repeat -> cache hits
    EvalBatch dups;
    for (int rep = 0; rep < 4; ++rep) dups.add({2.0, 3.0});
    dups.add({-1.0, 1.0});             // NaN-failing point (see fail_kernel)
    dups.add({-1.0, 1.0});             // ... and its dedup alias
    seq.push_back(std::move(dups));
    seq.push_back(toy_batch(5, 100.0));
    return seq;
}

std::vector<double> fail_kernel(const EvalRequest& r) {
    if (r.params[0] < 0.0) return {nan_v, nan_v};
    return toy_kernel(r);
}

/// Bit-identical rows: memcmp over the double bit patterns, so NaN failure
/// sentinels compare equal to themselves (the equivalence criterion is
/// bitwise, not IEEE ==).
void expect_bits_identical(const std::vector<double>& a,
                           const std::vector<double>& b, std::size_t batch,
                           std::size_t item) {
    ASSERT_EQ(a.size(), b.size()) << "batch " << batch << ", item " << item;
    EXPECT_TRUE(a.empty() ||
                std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0)
        << "batch " << batch << ", item " << item;
}

void expect_same_results(const std::vector<std::vector<EvalResult>>& a,
                         const std::vector<std::vector<EvalResult>>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
        ASSERT_EQ(a[s].size(), b[s].size()) << "batch " << s;
        for (std::size_t i = 0; i < a[s].size(); ++i) {
            expect_bits_identical(a[s][i].values, b[s][i].values, s, i);
            EXPECT_EQ(a[s][i].from_cache, b[s][i].from_cache)
                << "batch " << s << ", item " << i;
            EXPECT_EQ(a[s][i].failed(), b[s][i].failed())
                << "batch " << s << ", item " << i;
        }
    }
}

void expect_same_counters(const EngineCounters& a, const EngineCounters& b) {
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.evaluations, b.evaluations);
    EXPECT_EQ(a.cache_hits, b.cache_hits);
    EXPECT_EQ(a.failures, b.failures);
}

EngineConfig config_with_cache(bool cache) {
    EngineConfig config;
    config.cache_capacity = cache ? 4096 : 0;
    return config;
}

// --------------------------------------------------- four kernel kinds

TEST(AsyncEquivalence, DeterministicKernel) {
    for (bool cache : {true, false}) {
        Engine blocking(config_with_cache(cache));
        Engine async(config_with_cache(cache));
        std::vector<std::vector<EvalResult>> blocking_results, async_results;
        for (const EvalBatch& batch : batch_sequence())
            blocking_results.push_back(
                blocking.evaluate(batch, KernelFn(fail_kernel)));
        for (const EvalBatch& batch : batch_sequence())
            async_results.push_back(
                async.wait(async.submit(batch, KernelFn(fail_kernel))));
        expect_same_results(blocking_results, async_results);
        expect_same_counters(blocking.counters(), async.counters());
    }
}

TEST(AsyncEquivalence, ChunkKernel) {
    const auto chunk_kernel =
        BatchKernelFn([](const std::vector<const EvalRequest*>& reqs) {
            std::vector<std::vector<double>> out;
            out.reserve(reqs.size());
            for (const auto* r : reqs) out.push_back(fail_kernel(*r));
            return out;
        });
    for (bool cache : {true, false}) {
        Engine blocking(config_with_cache(cache));
        Engine async(config_with_cache(cache));
        std::vector<std::vector<EvalResult>> blocking_results, async_results;
        for (const EvalBatch& batch : batch_sequence())
            blocking_results.push_back(blocking.evaluate(batch, chunk_kernel));
        for (const EvalBatch& batch : batch_sequence())
            async_results.push_back(async.wait(async.submit(batch, chunk_kernel)));
        expect_same_results(blocking_results, async_results);
        expect_same_counters(blocking.counters(), async.counters());
    }
}

TEST(AsyncEquivalence, StochasticKernel) {
    const auto kernel = StochasticKernelFn([](const EvalRequest& r, Rng& rng) {
        return std::vector<double>{rng.gauss(r.params[0], 1.0), rng.uniform01()};
    });
    for (bool cache : {true, false}) {
        Engine blocking(config_with_cache(cache));
        Engine async(config_with_cache(cache));
        Rng r1(42), r2(42);
        std::vector<std::vector<EvalResult>> blocking_results, async_results;
        for (const EvalBatch& batch : batch_sequence())
            blocking_results.push_back(blocking.evaluate(batch, kernel, r1));
        for (const EvalBatch& batch : batch_sequence())
            async_results.push_back(async.wait(async.submit(batch, kernel, r2)));
        expect_same_results(blocking_results, async_results);
        expect_same_counters(blocking.counters(), async.counters());
    }
}

TEST(AsyncEquivalence, StochasticChunkKernel) {
    const auto kernel = StochasticBatchKernelFn(
        [](const std::vector<const EvalRequest*>& reqs, std::span<Rng> rngs) {
            std::vector<std::vector<double>> out;
            out.reserve(reqs.size());
            for (std::size_t k = 0; k < reqs.size(); ++k)
                out.push_back({rngs[k].gauss(reqs[k]->params[0], 1.0),
                               rngs[k].uniform01()});
            return out;
        });
    for (bool cache : {true, false}) {
        Engine blocking(config_with_cache(cache));
        Engine async(config_with_cache(cache));
        Rng r1(13), r2(13);
        std::vector<std::vector<EvalResult>> blocking_results, async_results;
        for (const EvalBatch& batch : batch_sequence())
            blocking_results.push_back(blocking.evaluate(batch, kernel, r1));
        for (const EvalBatch& batch : batch_sequence())
            async_results.push_back(async.wait(async.submit(batch, kernel, r2)));
        expect_same_results(blocking_results, async_results);
        expect_same_counters(blocking.counters(), async.counters());
    }
}

// ------------------------------------------------- tracing bit-identity

/// Runs the batch sequence twice on fresh engines - tracing off, then on -
/// and requires bit-identical results and ledger counters. Spans and
/// metrics are observational only; this is that contract's enforcement
/// point, exercised for every kernel kind.
template <typename RunFn>
void expect_tracing_invariant(RunFn run) {
    obs::Tracer::global().clear();
    ASSERT_FALSE(obs::Tracer::enabled());
    Engine plain(config_with_cache(true));
    const auto untraced = run(plain);

    obs::Tracer::set_enabled(true);
    Engine traced(config_with_cache(true));
    const auto traced_results = run(traced);
    obs::Tracer::set_enabled(false);

    // Spans were actually recorded - the invariant is not vacuous.
    EXPECT_FALSE(obs::Tracer::global().drain().empty());
    expect_same_results(untraced, traced_results);
    expect_same_counters(plain.counters(), traced.counters());
}

TEST(TracingBitIdentity, DeterministicKernel) {
    expect_tracing_invariant([](Engine& e) {
        std::vector<std::vector<EvalResult>> out;
        for (const EvalBatch& batch : batch_sequence())
            out.push_back(e.wait(e.submit(batch, KernelFn(fail_kernel))));
        return out;
    });
}

TEST(TracingBitIdentity, ChunkKernel) {
    const auto kernel =
        BatchKernelFn([](const std::vector<const EvalRequest*>& reqs) {
            std::vector<std::vector<double>> rows;
            rows.reserve(reqs.size());
            for (const auto* r : reqs) rows.push_back(fail_kernel(*r));
            return rows;
        });
    expect_tracing_invariant([&kernel](Engine& e) {
        std::vector<std::vector<EvalResult>> out;
        for (const EvalBatch& batch : batch_sequence())
            out.push_back(e.wait(e.submit(batch, kernel)));
        return out;
    });
}

TEST(TracingBitIdentity, StochasticKernel) {
    const auto kernel = StochasticKernelFn([](const EvalRequest& r, Rng& rng) {
        return std::vector<double>{rng.gauss(r.params[0], 1.0), rng.uniform01()};
    });
    expect_tracing_invariant([&kernel](Engine& e) {
        Rng rng(42);
        std::vector<std::vector<EvalResult>> out;
        for (const EvalBatch& batch : batch_sequence())
            out.push_back(e.wait(e.submit(batch, kernel, rng)));
        return out;
    });
}

TEST(TracingBitIdentity, StochasticChunkKernel) {
    const auto kernel = StochasticBatchKernelFn(
        [](const std::vector<const EvalRequest*>& reqs, std::span<Rng> rngs) {
            std::vector<std::vector<double>> rows;
            rows.reserve(reqs.size());
            for (std::size_t k = 0; k < reqs.size(); ++k)
                rows.push_back({rngs[k].gauss(reqs[k]->params[0], 1.0),
                                rngs[k].uniform01()});
            return rows;
        });
    expect_tracing_invariant([&kernel](Engine& e) {
        Rng rng(13);
        std::vector<std::vector<EvalResult>> out;
        for (const EvalBatch& batch : batch_sequence())
            out.push_back(e.wait(e.submit(batch, kernel, rng)));
        return out;
    });
}

// ----------------------------------------------------- ticket discipline

TEST(AsyncTickets, ManyBatchesInFlightRetireInSubmissionOrder) {
    Engine engine;
    std::vector<Engine::Ticket> tickets;
    for (std::size_t b = 0; b < 8; ++b)
        tickets.push_back(engine.submit(toy_batch(32, 10.0 * b), KernelFn(toy_kernel)));
    EXPECT_EQ(engine.in_flight(), 8u);
    for (std::size_t b = 0; b < 8; ++b) {
        const auto results = engine.wait(tickets[b]);
        ASSERT_EQ(results.size(), 32u);
        for (std::size_t i = 0; i < results.size(); ++i) {
            EvalRequest expected{{10.0 * b + static_cast<double>(i),
                                  0.5 * static_cast<double>(i)}};
            EXPECT_EQ(results[i].values, toy_kernel(expected));
        }
    }
    EXPECT_EQ(engine.in_flight(), 0u);
    EXPECT_EQ(engine.counters().requests, 8u * 32u);
    EXPECT_EQ(engine.counters().evaluations, 8u * 32u);
}

TEST(AsyncTickets, OutOfOrderWaitRetiresEarlierBatchesFirst) {
    Engine engine;
    auto t1 = engine.submit(toy_batch(16), KernelFn(toy_kernel));
    auto t2 = engine.submit(toy_batch(16, 50.0), KernelFn(toy_kernel));
    // Waiting the newer ticket retires the older batch first (ledger and
    // cache updates stay in submission order), then the older ticket's
    // results are still available.
    const auto r2 = engine.wait(t2);
    EXPECT_EQ(engine.in_flight(), 0u);
    const auto r1 = engine.wait(t1);
    ASSERT_EQ(r1.size(), 16u);
    ASSERT_EQ(r2.size(), 16u);
    EXPECT_EQ(r1.front().values, toy_kernel(EvalRequest{{0.0, 0.0}}));
    EXPECT_EQ(r2.front().values, toy_kernel(EvalRequest{{50.0, 0.0}}));
}

TEST(AsyncTickets, CacheVisibilityFollowsRetirementOrder) {
    // Submitting B after A has *retired* hits the cache like the blocking
    // path; submitting B while A is still in flight deterministically
    // re-evaluates (lookups happen at submission, insertions at retirement).
    Engine sequential;
    auto a1 = sequential.submit(toy_batch(8), KernelFn(toy_kernel));
    (void)sequential.wait(a1);
    auto a2 = sequential.submit(toy_batch(8), KernelFn(toy_kernel));
    (void)sequential.wait(a2);
    EXPECT_EQ(sequential.counters().evaluations, 8u);
    EXPECT_EQ(sequential.counters().cache_hits, 8u);

    Engine overlapped;
    auto b1 = overlapped.submit(toy_batch(8), KernelFn(toy_kernel));
    auto b2 = overlapped.submit(toy_batch(8), KernelFn(toy_kernel));
    (void)overlapped.wait(b1);
    (void)overlapped.wait(b2);
    EXPECT_EQ(overlapped.counters().evaluations, 16u);
    EXPECT_EQ(overlapped.counters().cache_hits, 0u);
}

TEST(AsyncTickets, KernelErrorSurfacesAtTheFaultyTicketsWait) {
    Engine engine;
    auto bad = engine.submit(
        toy_batch(4), BatchKernelFn([](const std::vector<const EvalRequest*>&) {
            return std::vector<std::vector<double>>{}; // wrong arity
        }));
    auto good = engine.submit(toy_batch(4, 9.0), KernelFn(toy_kernel));
    EXPECT_THROW((void)engine.wait(bad), InvalidInputError);
    // The later batch is unaffected by the earlier failure.
    const auto results = engine.wait(good);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_FALSE(results.front().failed());
}

TEST(AsyncTickets, ErroredEarlierBatchDoesNotPoisonLaterWait) {
    Engine engine;
    auto bad = engine.submit(
        toy_batch(4), BatchKernelFn([](const std::vector<const EvalRequest*>&) {
            return std::vector<std::vector<double>>{};
        }));
    auto good = engine.submit(toy_batch(4, 9.0), KernelFn(toy_kernel));
    // Waiting the *later* ticket retires the errored batch on the way; its
    // error stays parked on its own ticket.
    const auto results = engine.wait(good);
    ASSERT_EQ(results.size(), 4u);
    EXPECT_THROW((void)engine.wait(bad), InvalidInputError);
}

TEST(AsyncTickets, TicketMisuseIsRejected) {
    Engine engine;
    EXPECT_THROW((void)engine.wait(Engine::Ticket{}), InvalidInputError);
    auto ticket = engine.submit(toy_batch(4), KernelFn(toy_kernel));
    auto copy = ticket;
    (void)engine.wait(ticket);
    EXPECT_THROW((void)engine.wait(copy), InvalidInputError); // consumed
}

TEST(AsyncTickets, DestructorDrainsInFlightBatches) {
    std::atomic<int> calls{0};
    {
        Engine engine;
        auto t1 = engine.submit(toy_batch(64), KernelFn([&calls](const EvalRequest& r) {
                                    calls.fetch_add(1);
                                    return toy_kernel(r);
                                }));
        auto t2 = engine.submit(toy_batch(64, 7.0), KernelFn([&calls](const EvalRequest& r) {
                                    calls.fetch_add(1);
                                    return toy_kernel(r);
                                }));
        (void)t1;
        (void)t2; // dropped without wait(): the engine must drain safely
    }
    EXPECT_EQ(calls.load(), 128);
}

TEST(AsyncTickets, SerialEngineSubmitWaitMatchesBlocking) {
    EngineConfig serial;
    serial.parallel = false;
    Engine blocking(serial), async(serial);
    std::vector<std::vector<EvalResult>> a, b;
    for (const EvalBatch& batch : batch_sequence())
        a.push_back(blocking.evaluate(batch, KernelFn(fail_kernel)));
    for (const EvalBatch& batch : batch_sequence())
        b.push_back(async.wait(async.submit(batch, KernelFn(fail_kernel))));
    expect_same_results(a, b);
    expect_same_counters(blocking.counters(), async.counters());
}

// --------------------------------------------------- Monte Carlo bridge

TEST(AsyncMc, SubmitWaitMatchesBlockingRunner) {
    const auto chunk_fn = mc::ChunkSampleFn(
        [](std::span<const std::size_t> ids, std::span<Rng> rngs) {
            std::vector<std::vector<double>> rows;
            rows.reserve(ids.size());
            for (std::size_t k = 0; k < ids.size(); ++k)
                rows.push_back({rngs[k].gauss(10.0, 1.0), rngs[k].uniform01()});
            return rows;
        });
    mc::McConfig config;
    config.samples = 48;

    Engine e1, e2;
    Rng r1(9), r2(9);
    const auto blocking = mc::run_monte_carlo(e1, config, r1, chunk_fn);
    auto ticket = mc::submit_monte_carlo(e2, config, r2, chunk_fn);
    EXPECT_TRUE(ticket.valid());
    const auto async = mc::wait_monte_carlo(e2, std::move(ticket));

    ASSERT_EQ(async.rows.size(), blocking.rows.size());
    for (std::size_t i = 0; i < blocking.rows.size(); ++i)
        EXPECT_EQ(async.rows[i], blocking.rows[i]);
    EXPECT_EQ(async.failed(), blocking.failed());
    expect_same_counters(e1.counters(), e2.counters());
}

TEST(AsyncMc, OverlappedRunsMatchSequentialRuns) {
    // Two "Pareto points" with different per-sample behaviour; overlapping
    // their submissions must not change any row of either run.
    auto point_fn = [](double mean) {
        return mc::ChunkSampleFn(
            [mean](std::span<const std::size_t> ids, std::span<Rng> rngs) {
                std::vector<std::vector<double>> rows;
                rows.reserve(ids.size());
                for (std::size_t k = 0; k < ids.size(); ++k)
                    rows.push_back({rngs[k].gauss(mean, 2.0)});
                return rows;
            });
    };
    mc::McConfig config;
    config.samples = 64;

    Engine sequential;
    Rng rs(77);
    const auto s1 = mc::run_monte_carlo(sequential, config, rs, point_fn(1.0));
    const auto s2 = mc::run_monte_carlo(sequential, config, rs, point_fn(200.0));

    Engine overlapped;
    Rng ro(77);
    auto t1 = mc::submit_monte_carlo(overlapped, config, ro, point_fn(1.0));
    auto t2 = mc::submit_monte_carlo(overlapped, config, ro, point_fn(200.0));
    const auto o1 = mc::wait_monte_carlo(overlapped, std::move(t1));
    const auto o2 = mc::wait_monte_carlo(overlapped, std::move(t2));

    EXPECT_EQ(o1.rows, s1.rows);
    EXPECT_EQ(o2.rows, s2.rows);
    expect_same_counters(sequential.counters(), overlapped.counters());
}

TEST(AsyncMc, OverlappedOtaPointsMatchBlockingPoints) {
    // The real thing at a small scale: two OTA sizings, a handful of
    // samples each, overlapped vs blocking - rows must be bit-identical.
    const circuits::OtaEvaluator evaluator;
    const process::ProcessSampler sampler(evaluator.config().card,
                                          process::VariationSpec::c35());
    circuits::OtaSizing a;
    circuits::OtaSizing b;
    b.w1 = 50e-6;
    constexpr std::size_t samples = 10;

    Engine blocking_engine;
    Rng rb(5);
    const auto blocking_a = core::run_ota_monte_carlo(blocking_engine, evaluator,
                                                      a, sampler, samples, rb);
    const auto blocking_b = core::run_ota_monte_carlo(blocking_engine, evaluator,
                                                      b, sampler, samples, rb);

    Engine async_engine;
    Rng ra(5);
    auto ta = core::submit_ota_monte_carlo(async_engine, evaluator, a, sampler,
                                           samples, ra);
    auto tb = core::submit_ota_monte_carlo(async_engine, evaluator, b, sampler,
                                           samples, ra);
    const auto async_a = mc::wait_monte_carlo(async_engine, std::move(ta));
    const auto async_b = mc::wait_monte_carlo(async_engine, std::move(tb));

    EXPECT_EQ(async_a.rows, blocking_a.rows);
    EXPECT_EQ(async_b.rows, blocking_b.rows);
    EXPECT_EQ(async_a.failed(), blocking_a.failed());
    EXPECT_EQ(async_b.failed(), blocking_b.failed());
}

} // namespace
